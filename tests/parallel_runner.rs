//! Integration tests for the parallel experiment runner (PR: perf_opt).
//!
//! The runner's contract is that parallel execution is an implementation
//! detail: for any `--jobs` value the results are bit-identical to the
//! serial path. These tests exercise that end-to-end through the public
//! API, plus the hot-path regression guards (budget-cache reuse instead of
//! per-query allocation).

use tailguard::{
    max_load, max_load_many, replicate, replicate_seeds, run_indexed, scenarios, sweep_loads,
    sweep_loads_parallel, ClassSpec, ClusterSpec, DeadlineEstimator, EstimatorMode, MaxLoadOptions,
};
use tailguard_policy::Policy;
use tailguard_simcore::SimDuration;
use tailguard_workload::TailbenchWorkload;

fn quick_opts() -> MaxLoadOptions {
    MaxLoadOptions {
        queries: 10_000,
        tolerance: 0.1,
        ..MaxLoadOptions::default()
    }
}

/// The tentpole acceptance criterion: a parallel sweep is bit-identical to
/// the serial sweep for jobs ∈ {1, 2, 8}, regardless of thread scheduling.
#[test]
fn sweep_is_bit_identical_across_jobs() {
    let scenario = scenarios::two_class(
        TailbenchWorkload::Masstree,
        1.0,
        tailguard_workload::ArrivalProcess::poisson(1.0),
    );
    let loads = [0.15, 0.3, 0.45, 0.6, 0.75];
    let opts = quick_opts();
    let serial = sweep_loads(&scenario, Policy::TfEdf, &loads, &opts);
    for jobs in [1usize, 2, 8] {
        let par = sweep_loads_parallel(&scenario, Policy::TfEdf, &loads, &opts, jobs);
        assert_eq!(par.len(), serial.len(), "jobs={jobs}");
        for (p, s) in par.iter().zip(&serial) {
            assert_eq!(p.load.to_bits(), s.load.to_bits(), "jobs={jobs}");
            assert_eq!(p.tails_by_class, s.tails_by_class, "jobs={jobs}");
            assert_eq!(p.meets, s.meets, "jobs={jobs}");
            assert_eq!(
                p.miss_ratio.to_bits(),
                s.miss_ratio.to_bits(),
                "jobs={jobs}"
            );
            assert_eq!(
                p.measured_load.to_bits(),
                s.measured_load.to_bits(),
                "jobs={jobs}"
            );
            assert_eq!(p.events_processed, s.events_processed, "jobs={jobs}");
        }
    }
}

/// Concurrent per-policy bisections return exactly what serial bisections
/// return, in the caller's policy order.
#[test]
fn max_load_many_is_bit_identical_to_serial() {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let opts = quick_opts();
    let policies = [Policy::TfEdf, Policy::Fifo, Policy::Priq];
    let many = max_load_many(&scenario, &policies, &opts, 8);
    assert_eq!(many.len(), policies.len());
    for (i, (policy, load)) in many.iter().enumerate() {
        assert_eq!(*policy, policies[i], "result order must follow input");
        assert_eq!(
            load.to_bits(),
            max_load(&scenario, *policy, &opts).to_bits(),
            "{policy:?}"
        );
    }
}

/// Multi-seed replication: the derived seed sequence, per-seed tails, and
/// aggregate statistics are all independent of the worker count.
#[test]
fn replicate_is_jobs_invariant() {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let opts = quick_opts();
    let a = replicate(&scenario, Policy::TfEdf, 0.35, &opts, 5, 1);
    let b = replicate(&scenario, Policy::TfEdf, 0.35, &opts, 5, 8);
    assert_eq!(a.seeds, replicate_seeds(scenario.seed, 5));
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.per_seed_tails_ms, b.per_seed_tails_ms);
    assert_eq!(a.tails, b.tails);
    assert_eq!(a.meets_fraction, b.meets_fraction);
}

/// `run_indexed` reassembles in input order even when cells finish wildly
/// out of order (later indices sleep less than earlier ones).
#[test]
fn run_indexed_order_survives_inverted_completion_times() {
    let items: Vec<u64> = (0..24).collect();
    let out = run_indexed(&items, 8, |i, &x| {
        std::thread::sleep(std::time::Duration::from_millis(24 - i as u64));
        x * 10
    });
    assert_eq!(out, items.iter().map(|x| x * 10).collect::<Vec<_>>());
}

/// Hot-path regression guard: repeated budget queries for already-seen
/// query types must hit the cache (lookup counter grows, cache size does
/// not) — i.e. the estimator no longer clones a heap key per query.
#[test]
fn budget_cache_stays_flat_while_lookups_grow() {
    let cluster = ClusterSpec::homogeneous(100, TailbenchWorkload::Masstree.service_dist());
    let classes = vec![
        ClassSpec::p99(SimDuration::from_millis_f64(1.0)),
        ClassSpec::p99(SimDuration::from_millis_f64(1.5)),
    ];
    let mut est = DeadlineEstimator::new(&cluster, classes, EstimatorMode::Analytic);
    // Warm the cache: 2 classes × 3 fanouts = 6 distinct (class, key) cells.
    for class in 0..2u8 {
        for fanout in [1u32, 10, 100] {
            let _ = est.budget(class, fanout, &[]);
        }
    }
    let warm_cache = est.cached_budget_count();
    let warm_lookups = est.budget_lookup_count();
    assert_eq!(warm_cache, 6);
    // Steady state: thousands of queries over the same types.
    for _ in 0..5_000 {
        for class in 0..2u8 {
            for fanout in [1u32, 10, 100] {
                let _ = est.budget(class, fanout, &[]);
            }
        }
    }
    assert_eq!(
        est.cached_budget_count(),
        warm_cache,
        "steady-state queries must not grow the budget cache"
    );
    assert_eq!(est.budget_lookup_count(), warm_lookups + 5_000 * 6);
}

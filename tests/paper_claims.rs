//! The paper's headline claims, verified end-to-end at reduced scale.
//!
//! These are slower than unit tests (each runs tens of thousands of
//! simulated queries) but still complete in seconds; the full-scale
//! versions live in `crates/bench`.

use tailguard_repro::policy::Policy;
use tailguard_repro::tailguard::{max_load, measure_at_load, scenarios, MaxLoadOptions};
use tailguard_repro::workload::{ArrivalProcess, TailbenchWorkload};

fn opts() -> MaxLoadOptions {
    MaxLoadOptions {
        queries: 25_000,
        tolerance: 0.03,
        ..MaxLoadOptions::default()
    }
}

#[test]
fn intro_example_fanout_inflates_violation_probability() {
    // §I: a 1% per-task tail becomes 63.4% at fanout 100, and holding the
    // query tail at 1% requires per-task 0.01%.
    use tailguard_repro::dist::order_stats;
    assert!((order_stats::query_violation_probability(0.01, 100) - 0.634).abs() < 1e-3);
    assert!((order_stats::per_task_percentile(0.99, 100) - 0.9999).abs() < 1e-6);
}

#[test]
fn table2_reproduced_exactly() {
    for w in TailbenchWorkload::ALL {
        let s = w.paper_stats();
        assert!(
            (w.mean_service_ms() - s.mean).abs() / s.mean < 1e-6,
            "{w} mean"
        );
        for (k, target) in [(1, s.x99_k1), (10, s.x99_k10), (100, s.x99_k100)] {
            let got = w.unloaded_query_tail(0.99, k);
            assert!((got - target).abs() / target < 0.005, "{w} k={k}");
        }
    }
}

#[test]
fn fig4_tailguard_beats_fifo_single_class() {
    // Fig. 4a at the tightest SLO: substantial gain (paper ~40%).
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 0.8, 100);
    let o = opts();
    let tg = max_load(&scenario, Policy::TfEdf, &o);
    let fifo = max_load(&scenario, Policy::Fifo, &o);
    assert!(
        tg > fifo * 1.15,
        "expected >15% gain at tight SLO: TailGuard {tg:.3} vs FIFO {fifo:.3}"
    );
}

#[test]
fn fig4_gain_shrinks_with_looser_slo() {
    // Needs a finer bisection and a wider SLO spread than the other tests
    // to resolve the trend at test scale.
    let o = MaxLoadOptions {
        queries: 40_000,
        tolerance: 0.015,
        ..MaxLoadOptions::default()
    };
    let gain_at = |slo: f64| {
        let s = scenarios::single_class(TailbenchWorkload::Masstree, slo, 100);
        max_load(&s, Policy::TfEdf, &o) / max_load(&s, Policy::Fifo, &o)
    };
    let tight = gain_at(0.8);
    let loose = gain_at(1.6);
    assert!(
        tight > loose,
        "gain must shrink as SLO loosens: {tight:.3} vs {loose:.3}"
    );
}

#[test]
fn table3_highest_fanout_binds_the_max_load() {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let o = opts();
    let load = max_load(&scenario, Policy::TfEdf, &o);
    let mut report = measure_at_load(&scenario, Policy::TfEdf, load, &o);
    let slo = 1.0;
    let t100 = report.type_tail(0, 100).as_millis_f64();
    let t1 = report.type_tail(0, 1).as_millis_f64();
    // The fanout-100 type runs close to the SLO; fanout-1 sits below it.
    assert!(
        t100 > slo * 0.80,
        "k=100 tail {t100} should approach the SLO"
    );
    assert!(t1 < slo, "k=1 tail {t1} should stay under the SLO");
}

#[test]
fn fig5_policy_ranking_two_classes() {
    // TailGuard >= T-EDFQ >= PRIQ-ish >= FIFO (allow slack for noise at
    // this scale; strict ordering of the middle pair varies by run length).
    let scenario = scenarios::two_class(
        TailbenchWorkload::Masstree,
        0.9,
        ArrivalProcess::poisson(1.0),
    );
    let o = opts();
    let tg = max_load(&scenario, Policy::TfEdf, &o);
    let tedf = max_load(&scenario, Policy::TEdf, &o);
    let fifo = max_load(&scenario, Policy::Fifo, &o);
    assert!(tg >= tedf - o.tolerance, "TailGuard {tg} vs T-EDFQ {tedf}");
    assert!(tedf > fifo, "T-EDFQ {tedf} vs FIFO {fifo}");
    assert!(tg > fifo * 1.2, "TailGuard {tg} vs FIFO {fifo}");
}

#[test]
fn fig5_pareto_reduces_all_max_loads() {
    let o = opts();
    for policy in [Policy::TfEdf, Policy::Fifo] {
        let poisson = max_load(
            &scenarios::two_class(
                TailbenchWorkload::Masstree,
                1.0,
                ArrivalProcess::poisson(1.0),
            ),
            policy,
            &o,
        );
        let pareto = max_load(
            &scenarios::two_class(
                TailbenchWorkload::Masstree,
                1.0,
                ArrivalProcess::pareto(1.0),
            ),
            policy,
            &o,
        );
        assert!(
            pareto <= poisson + o.tolerance,
            "{policy}: burstier arrivals must not increase max load \
             (poisson {poisson:.3}, pareto {pareto:.3})"
        );
    }
}

#[test]
fn fig6_tailguard_balances_the_two_classes() {
    // §IV.C: TailGuard's class saturation points lie within ~5-10% of each
    // other, while PRIQ's low class saturates far below its high class.
    let (hi, lo) = scenarios::fig6_slos(TailbenchWorkload::Masstree);
    let scenario = scenarios::oldi_two_class(TailbenchWorkload::Masstree, hi, lo);
    let o = MaxLoadOptions {
        queries: 20_000,
        tolerance: 0.03,
        ..MaxLoadOptions::default()
    };
    let load = max_load(&scenario, Policy::TfEdf, &o);
    let mut at_max = measure_at_load(&scenario, Policy::TfEdf, load, &o);
    let t0 = at_max.class_tail(0, 0.99).as_millis_f64() / hi;
    let t1 = at_max.class_tail(1, 0.99).as_millis_f64() / lo;
    // Both classes within SLO and using a comparable fraction of it.
    assert!(t0 <= 1.0 && t1 <= 1.0, "t0={t0:.2} t1={t1:.2}");
    assert!(
        (t0 - t1).abs() < 0.35,
        "classes should saturate together: {t0:.2} vs {t1:.2}"
    );
}

#[test]
fn fig6_priq_starves_the_low_class() {
    let (hi, lo) = scenarios::fig6_slos(TailbenchWorkload::Masstree);
    let scenario = scenarios::oldi_two_class(TailbenchWorkload::Masstree, hi, lo);
    let o = MaxLoadOptions {
        queries: 20_000,
        tolerance: 0.03,
        ..MaxLoadOptions::default()
    };
    // At a load PRIQ cannot sustain overall, its high class still looks
    // fine while the low class is deep in violation.
    let mut r = measure_at_load(&scenario, Policy::Priq, 0.55, &o);
    let hi_ratio = r.class_tail(0, 0.99).as_millis_f64() / hi;
    let lo_ratio = r.class_tail(1, 0.99).as_millis_f64() / lo;
    assert!(
        lo_ratio > hi_ratio,
        "PRIQ must favor the high class: hi {hi_ratio:.2} lo {lo_ratio:.2}"
    );
}

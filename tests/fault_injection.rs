//! Fault injection end to end: the ISSUE-3 acceptance checks.
//!
//! The headline claim (mirrored by `cargo bench --bench fault_matrix`,
//! which writes `BENCH_faults.json`): under a standard slowdown episode —
//! 10 of 100 servers serving at 8× for the whole run — TF-EDFQ *without*
//! mitigation misses a 5 ms p99 SLO by orders of magnitude, while TF-EDFQ
//! *with* deadline-aware hedging meets it. The remaining tests pin the
//! determinism and sim/testbed-agreement guarantees of the fault layer.

use tailguard_repro::policy::Policy;
use tailguard_repro::simcore::{SimDuration, SimTime};
use tailguard_repro::tailguard::{
    run_indexed, run_simulation, scenarios, FaultEpisode, FaultKind, FaultPlan, MitigationConfig,
    Scenario,
};
use tailguard_repro::testbed::{run_testbed, TestbedConfig, TestbedMode};
use tailguard_repro::workload::{FanoutDist, QueryMix, TailbenchWorkload};

const SLO_MS: f64 = 5.0;
const LOAD: f64 = 0.4;

/// The bench scenario: masstree, 100 servers, fixed fanout 10, 5 ms SLO.
fn slow_rack_scenario() -> Scenario {
    let mut s = scenarios::single_class(TailbenchWorkload::Masstree, SLO_MS, 100);
    s.mix = QueryMix::single(FanoutDist::fixed(10));
    s
}

/// 10 of the 100 servers serve at 8× for the whole run.
fn slow_rack_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    for server in 0..10 {
        plan = plan.with_episode(FaultEpisode::new(
            server,
            SimTime::ZERO,
            SimTime::from_millis(3_600_000),
            FaultKind::Slowdown { factor: 8.0 },
        ));
    }
    plan
}

/// ISSUE acceptance: with the standard slowdown episode enabled, TF-EDFQ
/// with hedging meets a p99 SLO that TF-EDFQ without hedging misses.
/// Asserted with tolerance: the unmitigated miss must exceed 2× the SLO
/// and the hedged run must stay under 80% of it (the measured values are
/// ~1950 ms vs ~2.6 ms, so both margins are wide).
#[test]
fn hedging_rescues_p99_under_slowdown() {
    let scenario = slow_rack_scenario();
    let queries = 12_000;
    let input = scenario.input(LOAD, queries);
    let base = || {
        scenario
            .config(Policy::TfEdf)
            .with_warmup(queries / 20)
            .with_faults(slow_rack_plan())
    };

    let mut faulty = run_simulation(&base(), &input);
    let faulty_p99 = faulty.class_tail(0, 0.99).as_millis_f64();
    assert!(
        faulty_p99 > 2.0 * SLO_MS,
        "unmitigated TF-EDFQ should miss the {SLO_MS} ms SLO badly, got p99 = {faulty_p99:.3} ms"
    );

    let mitigated_cfg = base().with_mitigation(MitigationConfig::new().with_hedge_after(0.5));
    let mut mitigated = run_simulation(&mitigated_cfg, &input);
    let mitigated_p99 = mitigated.class_tail(0, 0.99).as_millis_f64();
    assert!(
        mitigated_p99 < 0.8 * SLO_MS,
        "hedged TF-EDFQ should meet the {SLO_MS} ms SLO with margin, got p99 = {mitigated_p99:.3} ms"
    );

    // Hedging actually happened and won races; a slowdown loses no tasks.
    let r = &mitigated.robustness;
    assert!(r.hedges_issued > 0, "no hedges issued");
    assert!(r.hedge_wins > 0, "hedges never won");
    assert_eq!(r.tasks_lost_to_faults, 0);
    // Everything after warmup completes fully (slowdowns delay, never lose).
    assert_eq!(mitigated.completed_queries, (queries - queries / 20) as u64);
}

/// ISSUE acceptance: the same `FaultPlan` produces identical fault/hedge
/// counters (and identical reports) whether cells run serially or on
/// eight worker threads.
#[test]
fn fault_counters_identical_across_jobs() {
    let scenario = slow_rack_scenario();
    let plan = slow_rack_plan();
    let policies = [Policy::Fifo, Policy::Priq, Policy::TEdf, Policy::TfEdf];
    let run = |jobs: usize| {
        run_indexed(&policies, jobs, |_, &policy| {
            let input = scenario.input(LOAD, 3_000);
            let cfg = scenario
                .config(policy)
                .with_warmup(100)
                .with_faults(plan.clone())
                .with_mitigation(MitigationConfig::new().with_hedge_after(0.5));
            let report = run_simulation(&cfg, &input);
            (
                report.robustness.clone(),
                report.completed_queries,
                report.load.tasks_dispatched_count(),
            )
        })
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial, parallel);
    // Sanity: the cells actually exercised the fault machinery.
    assert!(serial.iter().all(|(r, ..)| r.hedges_issued > 0));
}

/// The simulator and the tokio testbed consume the same `FaultPlan` type
/// with the same semantics: under an identical blackout plan (drop
/// episodes on the first four servers for the whole run) both runtimes
/// lose tasks, issue deadline-aware retries, and still resolve every
/// query exactly once (full, partial, or failed).
#[test]
fn sim_and_testbed_count_faults_alike() {
    let queries = 300usize;
    let load = 0.3;
    let mut plan = FaultPlan::new();
    for server in 0..4 {
        plan = plan.with_episode(FaultEpisode::new(
            server,
            SimTime::ZERO,
            SimTime::from_millis(3_600_000),
            FaultKind::Drop,
        ));
    }
    let mitigation = MitigationConfig::new(); // retry lost tasks, no hedging

    let tb_config = TestbedConfig {
        policy: Policy::TfEdf,
        queries,
        target_load: load,
        calibration_probes: 20,
        store_days: 35,
        mode: TestbedMode::PausedTime,
        faults: Some(plan.clone()),
        mitigation: Some(mitigation),
        ..TestbedConfig::default()
    };
    let tb = run_testbed(&tb_config);

    let scenario = scenarios::sas_testbed();
    let cfg = scenario
        .config(Policy::TfEdf)
        .with_warmup(0)
        .with_faults(plan)
        .with_mitigation(mitigation);
    let input = scenario.input(load, queries);
    let sim = run_simulation(&cfg, &input);

    for (name, lost, retries, resolved) in [
        (
            "testbed",
            tb.robustness.tasks_lost_to_faults,
            tb.robustness.retries,
            tb.completed_queries
                + tb.rejected_queries
                + tb.robustness.partial_completions
                + tb.robustness.failed_queries,
        ),
        (
            "sim",
            sim.robustness.tasks_lost_to_faults,
            sim.robustness.retries,
            sim.completed_queries
                + sim.rejected_queries
                + sim.robustness.partial_completions
                + sim.robustness.failed_queries,
        ),
    ] {
        assert!(lost > 0, "{name}: blackout lost no tasks");
        assert!(retries > 0, "{name}: lost tasks were never retried");
        assert_eq!(
            resolved, queries as u64,
            "{name}: every query must resolve exactly once"
        );
    }
}

/// Crash recovery is runtime-agnostic: under an identical crash plan
/// (nodes 0–3 down for the first stretch of the run) with a lease TTL
/// armed, both the simulator and the tokio testbed reclaim expired
/// leases, re-enqueue the swallowed tasks, and still resolve every
/// query exactly once with nothing left live in the state store.
#[test]
fn sim_and_testbed_recover_from_crashes_alike() {
    let queries = 300usize;
    let load = 0.3;
    let mut plan = FaultPlan::new();
    for server in 0..4 {
        plan = plan.with_episode(FaultEpisode::new(
            server,
            SimTime::ZERO,
            SimTime::from_millis(3_000),
            FaultKind::Crash,
        ));
    }
    let lease = SimDuration::from_millis(500);

    let tb_config = TestbedConfig {
        policy: Policy::TfEdf,
        queries,
        target_load: load,
        calibration_probes: 20,
        store_days: 35,
        mode: TestbedMode::PausedTime,
        faults: Some(plan.clone()),
        lease_ttl: Some(lease),
        ..TestbedConfig::default()
    };
    let tb = run_testbed(&tb_config);

    let scenario = scenarios::sas_testbed();
    let cfg = scenario
        .config(Policy::TfEdf)
        .with_warmup(0)
        .with_faults(plan)
        .with_lease(lease);
    let input = scenario.input(load, queries);
    let sim = run_simulation(&cfg, &input);

    for (name, lc, resolved) in [
        (
            "testbed",
            &tb.lifecycle,
            tb.completed_queries
                + tb.rejected_queries
                + tb.robustness.partial_completions
                + tb.robustness.failed_queries,
        ),
        (
            "sim",
            &sim.lifecycle,
            sim.completed_queries
                + sim.rejected_queries
                + sim.robustness.partial_completions
                + sim.robustness.failed_queries,
        ),
    ] {
        assert!(lc.reclaims > 0, "{name}: crash never expired a lease");
        assert_eq!(
            resolved, queries as u64,
            "{name}: every query must resolve exactly once despite crashes"
        );
        assert_eq!(
            lc.queued + lc.leased + lc.running,
            0,
            "{name}: attempts left live in the state store"
        );
    }
}

/// An empty fault plan is normalised away: configuring `FaultPlan::new()`
/// yields the bit-identical report of a run with no plan at all (the
/// golden-pin guarantee).
#[test]
fn empty_fault_plan_is_identical_to_none() {
    let scenario = slow_rack_scenario();
    let input = scenario.input(LOAD, 2_000);
    let mut plain = run_simulation(&scenario.config(Policy::TfEdf), &input);
    let mut empty = run_simulation(
        &scenario.config(Policy::TfEdf).with_faults(FaultPlan::new()),
        &input,
    );
    assert_eq!(plain.completed_queries, empty.completed_queries);
    assert_eq!(plain.robustness, empty.robustness);
    assert_eq!(
        plain.class_tail(0, 0.99).as_micros(),
        empty.class_tail(0, 0.99).as_micros()
    );
    assert_eq!(
        plain.load.tasks_dispatched_count(),
        empty.load.tasks_dispatched_count()
    );
}

//! Validation of the cluster simulator against closed-form queueing
//! theory — independent ground truth no amount of self-consistent bugs can
//! satisfy.

use tailguard_repro::dist::{Deterministic, Exponential};
use tailguard_repro::policy::Policy;
use tailguard_repro::simcore::SimDuration;
use tailguard_repro::tailguard::{
    run_simulation, ClassSpec, ClusterSpec, QuerySpec, RequestInput, SimConfig, SimInput,
};
use tailguard_repro::workload::{ArrivalProcess, FanoutDist, QueryMix, Trace};

fn ms(v: f64) -> SimDuration {
    SimDuration::from_millis_f64(v)
}

/// Builds a single-server fanout-1 FIFO run at utilization `rho` and
/// returns the mean sojourn time in ms.
fn mean_sojourn(service: impl tailguard_repro::dist::Distribution + 'static, rho: f64) -> f64 {
    let service_mean = service.mean();
    let rate = rho / service_mean; // queries per ms
    let trace = Trace::generate(
        "theory",
        &ArrivalProcess::poisson(rate),
        &QueryMix::single(FanoutDist::fixed(1)),
        400_000,
        42,
    );
    let cfg = SimConfig::new(
        ClusterSpec::homogeneous(1, service),
        vec![ClassSpec::p99(ms(1e6))],
        Policy::Fifo,
    )
    .with_warmup(20_000);
    let report = run_simulation(&cfg, &SimInput::from_trace(&trace));
    report
        .query_latency_by_class
        .get(&0)
        .expect("recorded")
        .mean()
        .as_millis_f64()
}

#[test]
fn mm1_mean_sojourn_matches_theory() {
    // M/M/1: E[T] = S / (1 - rho).
    let service_ms = 0.5;
    for rho in [0.3, 0.6, 0.8] {
        let measured = mean_sojourn(Exponential::with_mean(service_ms), rho);
        let theory = service_ms / (1.0 - rho);
        let rel = (measured - theory).abs() / theory;
        assert!(
            rel < 0.05,
            "M/M/1 rho={rho}: measured {measured:.4}, theory {theory:.4}"
        );
    }
}

#[test]
fn md1_mean_wait_matches_pollaczek_khinchine() {
    // M/D/1: E[W] = rho S / (2 (1 - rho)); E[T] = E[W] + S.
    let service_ms = 0.5;
    for rho in [0.3, 0.6, 0.8] {
        let measured = mean_sojourn(Deterministic::new(service_ms), rho);
        let theory = service_ms + rho * service_ms / (2.0 * (1.0 - rho));
        let rel = (measured - theory).abs() / theory;
        assert!(
            rel < 0.05,
            "M/D/1 rho={rho}: measured {measured:.4}, theory {theory:.4}"
        );
    }
}

#[test]
fn mm1_p99_matches_exponential_sojourn_tail() {
    // M/M/1 sojourn time is Exp(mean S/(1-rho)); its p99 is mean·ln(100).
    let service_ms = 0.5;
    let rho = 0.6;
    let trace = Trace::generate(
        "theory-p99",
        &ArrivalProcess::poisson(rho / service_ms),
        &QueryMix::single(FanoutDist::fixed(1)),
        400_000,
        43,
    );
    let cfg = SimConfig::new(
        ClusterSpec::homogeneous(1, Exponential::with_mean(service_ms)),
        vec![ClassSpec::p99(ms(1e6))],
        Policy::Fifo,
    )
    .with_warmup(20_000);
    let mut report = run_simulation(&cfg, &SimInput::from_trace(&trace));
    let measured = report.class_tail(0, 0.99).as_millis_f64();
    let theory = service_ms / (1.0 - rho) * 100f64.ln();
    let rel = (measured - theory).abs() / theory;
    assert!(
        rel < 0.08,
        "M/M/1 p99: measured {measured:.3}, theory {theory:.3}"
    );
}

#[test]
fn fork_join_unloaded_latency_matches_order_statistics() {
    // With no contention, a fanout-k query's latency is the max of k
    // service draws; its mean for Exp(S) is S·H_k (harmonic number).
    let service_ms = 1.0;
    let k = 8u32;
    let input = SimInput {
        requests: (0..200_000u64)
            .map(|i| RequestInput {
                // Widely spaced arrivals: effectively an unloaded cluster.
                arrival: tailguard_repro::simcore::SimTime::from_millis(i * 100),
                queries: vec![QuerySpec::new(0, k)],
            })
            .collect(),
    };
    let cfg = SimConfig::new(
        ClusterSpec::homogeneous(8, Exponential::with_mean(service_ms)),
        vec![ClassSpec::p99(ms(1e6))],
        Policy::Fifo,
    )
    .with_warmup(0);
    let report = run_simulation(&cfg, &input);
    let measured = report
        .query_latency_by_class
        .get(&0)
        .expect("recorded")
        .mean()
        .as_millis_f64();
    let harmonic: f64 = (1..=k).map(|i| 1.0 / f64::from(i)).sum();
    let rel = (measured - harmonic * service_ms).abs() / (harmonic * service_ms);
    assert!(
        rel < 0.02,
        "fork-join mean: measured {measured:.4}, theory {:.4}",
        harmonic * service_ms
    );
}

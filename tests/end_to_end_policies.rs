//! Cross-crate integration: traces → simulator → reports, across all four
//! queuing policies.

use tailguard_repro::policy::Policy;
use tailguard_repro::simcore::SimDuration;
use tailguard_repro::tailguard::{
    run_simulation, scenarios, ClassSpec, ClusterSpec, SimConfig, SimInput,
};
use tailguard_repro::workload::{ArrivalProcess, FanoutDist, QueryMix, TailbenchWorkload, Trace};

fn two_class_trace(queries: usize, seed: u64) -> Trace {
    Trace::generate(
        "integration",
        &ArrivalProcess::poisson(1.0),
        &QueryMix::equiprobable(2, FanoutDist::paper_mix()),
        queries,
        seed,
    )
}

fn config(policy: Policy) -> SimConfig {
    SimConfig::new(
        ClusterSpec::homogeneous(100, TailbenchWorkload::Masstree.service_dist()),
        vec![
            ClassSpec::p99(SimDuration::from_millis_f64(1.0)),
            ClassSpec::p99(SimDuration::from_millis_f64(1.5)),
        ],
        policy,
    )
    .with_warmup(200)
}

#[test]
fn all_policies_complete_identical_work() {
    let input = SimInput::from_trace(&two_class_trace(4_000, 11));
    let mut total_work = Vec::new();
    for policy in Policy::ALL {
        let report = run_simulation(&config(policy), &input);
        assert_eq!(
            report.completed_queries, 3_800,
            "{policy}: all post-warm-up queries must complete"
        );
        // Same seeds + same draw order => identical executed work.
        let work = report.accepted_load() * report.elapsed.as_millis_f64();
        total_work.push(work);
    }
    for w in &total_work[1..] {
        assert!(
            (w - total_work[0]).abs() < 1e-6,
            "work differs: {total_work:?}"
        );
    }
}

#[test]
fn runs_are_bit_deterministic() {
    let input = SimInput::from_trace(&two_class_trace(3_000, 12));
    let mut a = run_simulation(&config(Policy::TfEdf), &input);
    let mut b = run_simulation(&config(Policy::TfEdf), &input);
    for class in 0..2u8 {
        assert_eq!(a.class_tail(class, 0.99), b.class_tail(class, 0.99));
        assert_eq!(a.class_tail(class, 0.5), b.class_tail(class, 0.5));
    }
    assert_eq!(a.deadline_miss_ratio(), b.deadline_miss_ratio());
}

#[test]
fn trace_json_roundtrip_preserves_simulation() {
    let trace = two_class_trace(2_000, 13);
    let json = trace.to_json().expect("serialize");
    let back = Trace::from_json(&json).expect("parse");
    let mut r1 = run_simulation(&config(Policy::TfEdf), &SimInput::from_trace(&trace));
    let mut r2 = run_simulation(&config(Policy::TfEdf), &SimInput::from_trace(&back));
    assert_eq!(r1.class_tail(0, 0.99), r2.class_tail(0, 0.99));
    assert_eq!(r1.completed_queries, r2.completed_queries);
}

#[test]
fn latencies_bounded_below_by_service_floor() {
    // No query can beat the minimum service time of the workload.
    let input = SimInput::from_trace(&two_class_trace(2_000, 14));
    let floor = {
        use tailguard_repro::dist::Cdf;
        TailbenchWorkload::Masstree.service_dist().quantile(0.0)
    };
    for policy in Policy::ALL {
        let mut report = run_simulation(&config(policy), &input);
        let min_latency = report
            .query_latency_by_class
            .values_mut()
            .map(|r| r.percentile(0.0).as_millis_f64())
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_latency >= floor - 1e-9,
            "{policy}: min latency {min_latency} below service floor {floor}"
        );
    }
}

#[test]
fn measured_load_matches_offered_for_all_policies() {
    let scenario = scenarios::single_class(TailbenchWorkload::Shore, 6.0, 100);
    let input = scenario.input(0.35, 4_000);
    for policy in Policy::ALL {
        let report = run_simulation(&scenario.config(policy).with_warmup(0), &input);
        let measured = report.accepted_load();
        assert!(
            (measured - 0.35).abs() < 0.06,
            "{policy}: measured {measured:.3} vs offered 0.35"
        );
    }
}

#[test]
fn per_type_reservoirs_partition_per_class_counts() {
    let input = SimInput::from_trace(&two_class_trace(3_000, 15));
    let report = run_simulation(&config(Policy::TfEdf), &input);
    for class in 0..2u8 {
        let class_count = report
            .query_latency_by_class
            .get(&class)
            .map_or(0, tailguard_repro::metrics::LatencyReservoir::len);
        let type_sum: usize = report
            .query_latency_by_type
            .iter()
            .filter(|(k, _)| k.class == class)
            .map(|(_, r)| r.len())
            .sum();
        assert_eq!(class_count, type_sum, "class {class}");
    }
}

//! Integration tests for the tokio SaS testbed against the simulation twin.

use tailguard_repro::policy::Policy;
use tailguard_repro::tailguard::{measure_at_load, scenarios, MaxLoadOptions};
use tailguard_repro::testbed::{run_testbed, TestbedConfig, TestbedMode};

fn quick(policy: Policy, load: f64, queries: usize) -> TestbedConfig {
    TestbedConfig {
        policy,
        queries,
        target_load: load,
        calibration_probes: 25,
        store_days: 35,
        mode: TestbedMode::PausedTime,
        ..TestbedConfig::default()
    }
}

#[test]
fn testbed_and_sim_twin_agree_on_cluster_profile() {
    // The tokio testbed and the discrete-event twin model the same system;
    // their per-cluster post-queuing profiles must agree at light load.
    let mut tb = run_testbed(&quick(Policy::TfEdf, 0.15, 600));
    let scenario = scenarios::sas_testbed();
    let sim = measure_at_load(
        &scenario,
        Policy::TfEdf,
        0.15,
        &MaxLoadOptions {
            queries: 4_000,
            ..MaxLoadOptions::default()
        },
    );
    // Compare cluster utilization ordering and rough magnitude.
    for (i, cluster) in scenarios::SasCluster::ALL.iter().enumerate() {
        let sim_load = sim.server_range_load(cluster.server_range());
        let tb_load = tb.clusters[i].load;
        assert!(
            (sim_load - tb_load).abs() < 0.12,
            "{}: sim {sim_load:.3} vs testbed {tb_load:.3}",
            cluster.name()
        );
    }
    // Class-A tail: both should be within the SLO and same magnitude.
    let tb_a = tb.class_p99_ms(0);
    assert!(tb_a > 100.0 && tb_a < 800.0, "testbed class A p99 {tb_a}");
}

#[test]
fn testbed_policies_rank_like_the_paper_at_moderate_load() {
    // At a load FIFO cannot sustain, TailGuard still meets the SLOs.
    let mut tg = run_testbed(&quick(Policy::TfEdf, 0.42, 1_200));
    let mut fifo = run_testbed(&quick(Policy::Fifo, 0.42, 1_200));
    let tg_ok = tg.meets_all_slos();
    let fifo_a = fifo.class_p99_ms(0);
    let tg_a = tg.class_p99_ms(0);
    assert!(
        tg_a <= fifo_a * 1.05,
        "TailGuard class A {tg_a:.0}ms must not lose to FIFO {fifo_a:.0}ms"
    );
    assert!(tg_ok, "TailGuard should hold 42% on the testbed");
}

#[test]
fn testbed_miss_ratio_small_when_meeting_slos() {
    // §III.C observation: SLOs hold while a small fraction (<2%) of tasks
    // misses deadlines.
    let mut report = run_testbed(&quick(Policy::TfEdf, 0.3, 800));
    assert!(report.meets_all_slos());
    assert!(
        report.miss_ratio < 0.05,
        "miss ratio {:.3} unexpectedly large",
        report.miss_ratio
    );
}

#[test]
fn testbed_realtime_mode_smoke() {
    // A tiny real-clock run (compressed 200x) exercises the RealTime path.
    let cfg = TestbedConfig {
        policy: Policy::TfEdf,
        queries: 60,
        target_load: 0.2,
        time_scale: 200.0,
        calibration_probes: 5,
        store_days: 35,
        mode: TestbedMode::RealTime,
        ..TestbedConfig::default()
    };
    let report = run_testbed(&cfg);
    assert_eq!(report.completed_queries, 60);
    assert!(report.records_retrieved > 0);
}

//! The static analyzer's acceptance gate, run as an ordinary workspace
//! test so `cargo test` fails when either side of the contract breaks:
//!
//! * the fixture corpus under `crates/lint/fixtures/bad/` must keep
//!   producing the byte-pinned JSON report (every rule fires, malformed
//!   allows are themselves reported), and
//! * `crates/lint/fixtures/allowed/` — one justified exemption per rule —
//!   must stay silent, and
//! * the workspace itself must lint clean, which is the invariant the
//!   whole tool exists to hold.

use std::path::{Path, PathBuf};

use tailguard_lint::rules::{Rule, ALL_RULES};
use tailguard_lint::{lint_paths, lint_workspace};

fn fixtures(sub: &str) -> Vec<PathBuf> {
    let dir = PathBuf::from("crates/lint/fixtures").join(sub);
    assert!(dir.is_dir(), "missing fixture dir {}", dir.display());
    vec![dir]
}

#[test]
fn bad_fixtures_match_pinned_json_report() {
    let report = lint_paths(&fixtures("bad")).expect("lint bad fixtures");
    let pinned = std::fs::read_to_string("crates/lint/fixtures/bad_report.json")
        .expect("read pinned report");
    assert_eq!(
        report.render_json(),
        pinned,
        "bad-fixture JSON drifted; if the change is intended, re-pin with\n  \
         cargo run -p tailguard-lint -- --paths crates/lint/fixtures/bad --json \
         > crates/lint/fixtures/bad_report.json"
    );
}

#[test]
fn every_rule_fires_on_the_bad_corpus() {
    let report = lint_paths(&fixtures("bad")).expect("lint bad fixtures");
    assert!(!report.ok());
    for &rule in ALL_RULES {
        assert!(
            report.count(rule) > 0,
            "rule `{}` has no triggering fixture under crates/lint/fixtures/bad/",
            rule.id()
        );
    }
}

#[test]
fn allowed_fixtures_are_silent_and_every_allow_is_used() {
    let report = lint_paths(&fixtures("allowed")).expect("lint allowed fixtures");
    assert!(
        report.ok(),
        "allowed fixtures must not flag:\n{}",
        report.render_text()
    );
    // One justified exemption per allowable rule (malformed-allow cannot be
    // allowed by design), and each must actually suppress something —
    // otherwise the stale-allow rule would have fired above.
    let allowable = ALL_RULES.len() - 1;
    assert_eq!(report.allows.len(), allowable, "{:?}", report.allows);
    for a in &report.allows {
        assert!(a.used > 0, "stale allow in fixture: {a:?}");
        assert_ne!(a.rule, Rule::MalformedAllow);
        assert!(!a.justification.is_empty());
    }
}

#[test]
fn workspace_lints_clean() {
    let report = lint_workspace(Path::new(".")).expect("lint workspace");
    assert!(
        report.ok(),
        "the workspace must lint clean; fix or justify:\n{}",
        report.render_text()
    );
    // Every suppression in the tree must still be load-bearing.
    for a in &report.allows {
        assert!(a.used > 0, "stale allow in the tree: {a:?}");
    }
}

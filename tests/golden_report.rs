//! Golden regression pins: exact outputs of fixed-seed runs.
//!
//! These values were captured from a verified build; any unintended change
//! to RNG streams, event ordering, estimator math, or policy behaviour
//! shows up here as an exact-value mismatch. Update them only after
//! deliberately changing simulation semantics (and say so in CHANGELOG.md).

use tailguard_repro::policy::Policy;
use tailguard_repro::tailguard::{measure_at_load, scenarios, MaxLoadOptions};
use tailguard_repro::workload::TailbenchWorkload;

fn opts() -> MaxLoadOptions {
    MaxLoadOptions {
        queries: 10_000,
        ..MaxLoadOptions::default()
    }
}

/// (policy, class-0 p99 in ns, completed queries, pre-dequeue p99 in ns)
/// at Masstree single-class, N=100, offered load 0.40, scenario seed.
// PROVENANCE — these pins were re-baselined when the workspace moved to the
// vendored offline RNG (third_party/rand, version 0.0.0-offline-stub). Its
// xoshiro256++ stream differs from upstream `rand`'s SmallRng, so every
// fixed-seed draw — and therefore every pin — shifted. The upstream-rand
// values could not be re-confirmed here because this build environment has
// no crates.io access (the seed's `rand = "0.10"` does not resolve).
// What WAS verified, offline:
//   1. The re-baseline is isolated in its own commit ("vendor offline
//      stand-ins…"), which contains the dependency swap and these pins but
//      none of the later hot-path optimizations.
//   2. The hot-path changes (u128 event key, inlined estimator group key,
//      scratch buffers) were landed separately and reproduce these exact
//      pins bit-for-bit — i.e. they are behavior-preserving with respect to
//      the RNG stream and event ordering.
//   3. The structural invariants below (FIFO == PRIQ == T-EDFQ with one
//      class; TailGuard and SJF distinct) held before and after the swap.
// If the real `rand` ever returns, expect pins to shift again: re-baseline
// deliberately, in a dedicated commit, and say so in CHANGELOG.md.
const GOLDEN: [(&str, u64, u64, u64); 5] = [
    ("TailGuard", 764618, 9500, 493996),
    ("FIFO", 733903, 9500, 462686),
    ("PRIQ", 733903, 9500, 462686),
    ("T-EDFQ", 733903, 9500, 462686),
    ("SJF", 959037, 9500, 552100),
];

#[test]
fn golden_single_class_masstree() {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    for (policy, (name, p99_ns, completed, pre_p99_ns)) in
        Policy::WITH_EXTENSIONS.iter().zip(GOLDEN)
    {
        assert_eq!(policy.name(), name);
        let mut r = measure_at_load(&scenario, *policy, 0.4, &opts());
        assert_eq!(
            r.class_tail(0, 0.99).as_nanos(),
            p99_ns,
            "{name}: class-0 p99 drifted"
        );
        assert_eq!(r.completed_queries, completed, "{name}: completion count");
        assert_eq!(
            r.pre_dequeue.percentile(0.99).as_nanos(),
            pre_p99_ns,
            "{name}: pre-dequeue p99 drifted"
        );
    }
}

#[test]
fn golden_single_class_invariants() {
    // Sanity companions to the exact pins: with one class, FIFO, PRIQ and
    // T-EDFQ must be *identical* executions (same deadlines or none), and
    // SJF must differ.
    assert_eq!(GOLDEN[1].1, GOLDEN[2].1);
    assert_eq!(GOLDEN[1].1, GOLDEN[3].1);
    assert_ne!(GOLDEN[0].1, GOLDEN[1].1);
    assert_ne!(GOLDEN[4].1, GOLDEN[1].1);
}

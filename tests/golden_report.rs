//! Golden regression pins: exact outputs of fixed-seed runs.
//!
//! These values were captured from a verified build; any unintended change
//! to RNG streams, event ordering, estimator math, or policy behaviour
//! shows up here as an exact-value mismatch. Update them only after
//! deliberately changing simulation semantics (and say so in CHANGELOG.md).

use tailguard_repro::policy::Policy;
use tailguard_repro::simcore::SimDuration;
use tailguard_repro::tailguard::{measure_at_load, run_simulation, scenarios, MaxLoadOptions};
use tailguard_repro::workload::TailbenchWorkload;

fn opts() -> MaxLoadOptions {
    MaxLoadOptions {
        queries: 10_000,
        ..MaxLoadOptions::default()
    }
}

/// (policy, class-0 p99 in ns, completed queries, pre-dequeue p99 in ns)
/// at Masstree single-class, N=100, offered load 0.40, scenario seed.
// PROVENANCE — these pins were re-baselined when the workspace moved to the
// vendored offline RNG (third_party/rand, version 0.0.0-offline-stub). Its
// xoshiro256++ stream differs from upstream `rand`'s SmallRng, so every
// fixed-seed draw — and therefore every pin — shifted. The upstream-rand
// values could not be re-confirmed here because this build environment has
// no crates.io access (the seed's `rand = "0.10"` does not resolve).
// What WAS verified, offline:
//   1. The re-baseline is isolated in its own commit ("vendor offline
//      stand-ins…"), which contains the dependency swap and these pins but
//      none of the later hot-path optimizations.
//   2. The hot-path changes (u128 event key, inlined estimator group key,
//      scratch buffers) were landed separately and reproduce these exact
//      pins bit-for-bit — i.e. they are behavior-preserving with respect to
//      the RNG stream and event ordering.
//   3. The structural invariants below (FIFO == PRIQ == T-EDFQ with one
//      class; TailGuard and SJF distinct) held before and after the swap.
// If the real `rand` ever returns, expect pins to shift again: re-baseline
// deliberately, in a dedicated commit, and say so in CHANGELOG.md.
const GOLDEN: [(&str, u64, u64, u64); 5] = [
    ("TailGuard", 764618, 9500, 493996),
    ("FIFO", 733903, 9500, 462686),
    ("PRIQ", 733903, 9500, 462686),
    ("T-EDFQ", 733903, 9500, 462686),
    ("SJF", 959037, 9500, 552100),
];

#[test]
fn golden_single_class_masstree() {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    for (policy, (name, p99_ns, completed, pre_p99_ns)) in
        Policy::WITH_EXTENSIONS.iter().zip(GOLDEN)
    {
        assert_eq!(policy.name(), name);
        let mut r = measure_at_load(&scenario, *policy, 0.4, &opts());
        assert_eq!(
            r.class_tail(0, 0.99).as_nanos(),
            p99_ns,
            "{name}: class-0 p99 drifted"
        );
        assert_eq!(r.completed_queries, completed, "{name}: completion count");
        assert_eq!(
            r.pre_dequeue.percentile(0.99).as_nanos(),
            pre_p99_ns,
            "{name}: pre-dequeue p99 drifted"
        );
    }
}

/// The durable-lifecycle layer is free on the golden path: arming a lease
/// TTL with no fault plan reproduces the exact golden pins — same p99,
/// completion count, pre-dequeue tail, busy time, and elapsed virtual
/// time — because every lease commits before it expires and the no-op
/// `LeaseCheck` events are excluded from activity accounting. Only the
/// event count may differ (the lease checks themselves).
#[test]
fn golden_pins_hold_with_lease_enabled() {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let queries = 10_000usize;
    let input = scenario.input(0.4, queries);
    let warmup = queries / 20;
    let base = run_simulation(&scenario.config(Policy::TfEdf).with_warmup(warmup), &input);
    let mut leased = run_simulation(
        &scenario
            .config(Policy::TfEdf)
            .with_warmup(warmup)
            .with_lease(SimDuration::from_millis(100)),
        &input,
    );
    assert_eq!(
        leased.class_tail(0, 0.99).as_nanos(),
        GOLDEN[0].1,
        "lease-enabled run drifted from the golden p99 pin"
    );
    assert_eq!(leased.completed_queries, GOLDEN[0].2);
    assert_eq!(leased.pre_dequeue.percentile(0.99).as_nanos(), GOLDEN[0].3);
    assert_eq!(leased.elapsed, base.elapsed, "lease checks moved time");
    assert_eq!(leased.busy_by_server, base.busy_by_server);
    assert_eq!(leased.robustness, base.robustness);
    let lc = &leased.lifecycle;
    assert!(lc.leases_issued > 0, "lease TTL armed but no leases issued");
    assert_eq!(lc.reclaims, 0, "no fault, so no lease should ever expire");
    assert_eq!(lc.duplicates_suppressed, 0);
    assert_eq!(lc.stale_commits_rejected, 0);
    assert_eq!(lc.completed, lc.leases_issued);
}

#[test]
fn golden_single_class_invariants() {
    // Sanity companions to the exact pins: with one class, FIFO, PRIQ and
    // T-EDFQ must be *identical* executions (same deadlines or none), and
    // SJF must differ.
    assert_eq!(GOLDEN[1].1, GOLDEN[2].1);
    assert_eq!(GOLDEN[1].1, GOLDEN[3].1);
    assert_ne!(GOLDEN[0].1, GOLDEN[1].1);
    assert_ne!(GOLDEN[4].1, GOLDEN[1].1);
}

//! Golden regression pins: exact outputs of fixed-seed runs.
//!
//! These values were captured from a verified build; any unintended change
//! to RNG streams, event ordering, estimator math, or policy behaviour
//! shows up here as an exact-value mismatch. Update them only after
//! deliberately changing simulation semantics (and say so in CHANGELOG.md).

use tailguard_repro::policy::Policy;
use tailguard_repro::tailguard::{measure_at_load, scenarios, MaxLoadOptions};
use tailguard_repro::workload::TailbenchWorkload;

fn opts() -> MaxLoadOptions {
    MaxLoadOptions {
        queries: 10_000,
        ..MaxLoadOptions::default()
    }
}

/// (policy, class-0 p99 in ns, completed queries, pre-dequeue p99 in ns)
/// at Masstree single-class, N=100, offered load 0.40, scenario seed.
const GOLDEN: [(&str, u64, u64, u64); 5] = [
    ("TailGuard", 778762, 9500, 484245),
    ("FIFO", 719144, 9500, 458604),
    ("PRIQ", 719144, 9500, 458604),
    ("T-EDFQ", 719144, 9500, 458604),
    ("SJF", 964166, 9500, 536566),
];

#[test]
fn golden_single_class_masstree() {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    for (policy, (name, p99_ns, completed, pre_p99_ns)) in
        Policy::WITH_EXTENSIONS.iter().zip(GOLDEN)
    {
        assert_eq!(policy.name(), name);
        let mut r = measure_at_load(&scenario, *policy, 0.4, &opts());
        assert_eq!(
            r.class_tail(0, 0.99).as_nanos(),
            p99_ns,
            "{name}: class-0 p99 drifted"
        );
        assert_eq!(r.completed_queries, completed, "{name}: completion count");
        assert_eq!(
            r.pre_dequeue.percentile(0.99).as_nanos(),
            pre_p99_ns,
            "{name}: pre-dequeue p99 drifted"
        );
    }
}

#[test]
fn golden_single_class_invariants() {
    // Sanity companions to the exact pins: with one class, FIFO, PRIQ and
    // T-EDFQ must be *identical* executions (same deadlines or none), and
    // SJF must differ.
    assert_eq!(GOLDEN[1].1, GOLDEN[2].1);
    assert_eq!(GOLDEN[1].1, GOLDEN[3].1);
    assert_ne!(GOLDEN[0].1, GOLDEN[1].1);
    assert_ne!(GOLDEN[4].1, GOLDEN[1].1);
}

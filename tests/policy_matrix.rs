//! Systematic policy × workload invariant matrix: properties that must hold
//! for every combination, at reduced scale.

use tailguard_repro::policy::Policy;
use tailguard_repro::tailguard::{measure_at_load, scenarios, MaxLoadOptions, Scenario};
use tailguard_repro::workload::TailbenchWorkload;

fn opts() -> MaxLoadOptions {
    MaxLoadOptions {
        queries: 8_000,
        ..MaxLoadOptions::default()
    }
}

fn scenarios_under_test() -> Vec<Scenario> {
    let mut v = Vec::new();
    for w in TailbenchWorkload::ALL {
        v.push(scenarios::single_class(
            w,
            w.paper_stats().x99_k100 * 2.0,
            100,
        ));
    }
    let (hi, lo) = scenarios::fig6_slos(TailbenchWorkload::Masstree);
    v.push(scenarios::oldi_two_class(
        TailbenchWorkload::Masstree,
        hi,
        lo,
    ));
    v.push(scenarios::sas_testbed());
    v
}

#[test]
fn every_policy_completes_every_scenario() {
    for scenario in scenarios_under_test() {
        for policy in Policy::WITH_EXTENSIONS {
            let report = measure_at_load(&scenario, policy, 0.3, &opts());
            assert!(
                report.completed_queries > 0,
                "{policy} on {}: nothing completed",
                scenario.label
            );
            assert_eq!(
                report.rejected_queries, 0,
                "{policy} on {}: rejected without admission control",
                scenario.label
            );
            let load = report.accepted_load();
            assert!(
                (0.2..=0.45).contains(&load),
                "{policy} on {}: measured load {load:.3} far from offered 0.30",
                scenario.label
            );
        }
    }
}

#[test]
fn tails_monotone_in_load_for_every_policy() {
    let scenario = scenarios::single_class(TailbenchWorkload::Shore, 8.0, 100);
    for policy in Policy::WITH_EXTENSIONS {
        let mut low = measure_at_load(&scenario, policy, 0.2, &opts());
        let mut high = measure_at_load(&scenario, policy, 0.7, &opts());
        let t_low = low.class_tail(0, 0.95);
        let t_high = high.class_tail(0, 0.95);
        assert!(
            t_high >= t_low,
            "{policy}: p95 must grow with load ({t_low} -> {t_high})"
        );
    }
}

#[test]
fn miss_accounting_bounded_and_consistent() {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    for policy in Policy::ALL {
        for load in [0.2, 0.6] {
            let report = measure_at_load(&scenario, policy, load, &opts());
            let r = report.deadline_miss_ratio();
            assert!((0.0..=1.0).contains(&r), "{policy}@{load}: ratio {r}");
            assert_eq!(
                report.load.tasks_dispatched_count(),
                report.load.tasks_completed_count(),
                "{policy}@{load}: dispatched != completed"
            );
        }
    }
}

#[test]
fn paper_mix_type_population_matches_probabilities() {
    // P(1)=100/111, P(10)=10/111, P(100)=1/111 should show up in the
    // per-type reservoirs of any policy's report.
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.2, 100);
    let report = measure_at_load(&scenario, Policy::TfEdf, 0.3, &opts());
    let count_of = |fanout: u32| -> f64 {
        report
            .query_latency_by_type
            .iter()
            .find(|(k, _)| k.fanout == fanout)
            .map_or(0.0, |(_, r)| r.len() as f64)
    };
    let total = count_of(1) + count_of(10) + count_of(100);
    assert!((count_of(1) / total - 100.0 / 111.0).abs() < 0.02);
    assert!((count_of(10) / total - 10.0 / 111.0).abs() < 0.02);
    assert!((count_of(100) / total - 1.0 / 111.0).abs() < 0.01);
}

#[test]
fn deadline_policies_dominate_on_tight_minority_class() {
    // Any deadline-aware policy (T-EDFQ, TF-EDFQ) must serve a tight-SLO
    // class at least as well as FIFO at the same two-class load.
    let scenario = scenarios::two_class(
        TailbenchWorkload::Masstree,
        0.9,
        tailguard_repro::workload::ArrivalProcess::poisson(1.0),
    );
    let mut fifo = measure_at_load(&scenario, Policy::Fifo, 0.4, &opts());
    let fifo_tail = fifo.class_tail(0, 0.95).as_millis_f64();
    for policy in [Policy::TEdf, Policy::TfEdf] {
        let mut r = measure_at_load(&scenario, policy, 0.4, &opts());
        let tail = r.class_tail(0, 0.95).as_millis_f64();
        assert!(
            tail <= fifo_tail * 1.05,
            "{policy}: class-0 p95 {tail:.3} vs FIFO {fifo_tail:.3}"
        );
    }
}

//! Property-based invariants of the cluster simulator, checked against
//! randomized workloads and an independent analytical model.
//!
//! `proptest` here is the offline stand-in under `third_party/proptest`
//! (version `0.0.0-offline-stub`): inputs are still randomized
//! deterministically per seed, but shrinking is crude and case coverage is
//! well below upstream proptest's — treat these as randomized smoke tests
//! of the invariants, not exhaustive property checks. See
//! `third_party/README.md`.

use proptest::prelude::*;
use tailguard_repro::dist::Deterministic;
use tailguard_repro::policy::Policy;
use tailguard_repro::simcore::{SimDuration, SimTime};
use tailguard_repro::tailguard::{
    run_simulation, ClassSpec, ClusterSpec, QuerySpec, RequestInput, SimConfig, SimInput,
};

fn ms(v: f64) -> SimDuration {
    SimDuration::from_millis_f64(v)
}

/// Lindley's recursion for a single FIFO server with deterministic
/// service: the independent ground truth for the simulator.
fn lindley_fifo_latencies(arrivals_us: &[u64], service: SimDuration) -> Vec<SimDuration> {
    let mut free_at = SimTime::ZERO;
    let mut out = Vec::with_capacity(arrivals_us.len());
    for &a in arrivals_us {
        let arrival = SimTime::from_micros(a);
        let start = if free_at > arrival { free_at } else { arrival };
        let done = start + service;
        out.push(done.saturating_since(arrival));
        free_at = done;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-server FIFO latencies match Lindley's recursion exactly.
    #[test]
    fn fifo_matches_lindley(
        mut arrivals in proptest::collection::vec(0u64..50_000, 1..80),
        service_us in 100u64..5_000,
    ) {
        arrivals.sort_unstable();
        let service = SimDuration::from_micros(service_us);
        let cfg = SimConfig::new(
            ClusterSpec::homogeneous(1, Deterministic::new(service.as_millis_f64())),
            vec![ClassSpec::p99(ms(10_000.0))],
            Policy::Fifo,
        )
        .with_warmup(0);
        let input = SimInput {
            requests: arrivals
                .iter()
                .map(|&a| RequestInput {
                    arrival: SimTime::from_micros(a),
                    queries: vec![QuerySpec::new(0, 1)],
                })
                .collect(),
        };
        let mut report = run_simulation(&cfg, &input);
        let expected = lindley_fifo_latencies(&arrivals, service);
        let mut expected_sorted: Vec<u64> =
            expected.iter().map(|d| d.as_nanos()).collect();
        expected_sorted.sort_unstable();
        let got = report
            .query_latency_by_class
            .get_mut(&0)
            .expect("latencies recorded")
            .sorted_samples()
            .to_vec();
        prop_assert_eq!(got, expected_sorted);
    }

    /// Conservation: every admitted query completes, none twice.
    #[test]
    fn query_conservation(
        arrivals in proptest::collection::vec(0u64..20_000, 1..120),
        fanout in 1u32..8,
        policy_idx in 0usize..4,
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let n = arrivals.len() as u64;
        let cfg = SimConfig::new(
            ClusterSpec::homogeneous(8, Deterministic::new(0.7)),
            vec![ClassSpec::p99(ms(10_000.0))],
            Policy::ALL[policy_idx],
        )
        .with_warmup(0);
        let input = SimInput {
            requests: arrivals
                .iter()
                .map(|&a| RequestInput {
                    arrival: SimTime::from_micros(a),
                    queries: vec![QuerySpec::new(0, fanout)],
                })
                .collect(),
        };
        let report = run_simulation(&cfg, &input);
        prop_assert_eq!(report.completed_queries, n);
        prop_assert_eq!(report.rejected_queries, 0);
        prop_assert_eq!(report.load.tasks_dispatched_count(), n * u64::from(fanout));
        prop_assert_eq!(report.load.tasks_completed_count(), n * u64::from(fanout));
    }

    /// Busy time equals dispatched work exactly (work conservation), and
    /// utilization never exceeds 1.
    #[test]
    fn work_conservation(
        arrivals in proptest::collection::vec(0u64..30_000, 1..100),
        service_us in 50u64..2_000,
        servers in 1usize..6,
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let service_ms = service_us as f64 / 1_000.0;
        let cfg = SimConfig::new(
            ClusterSpec::homogeneous(servers, Deterministic::new(service_ms)),
            vec![ClassSpec::p99(ms(10_000.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);
        let fanout = 1u32.max(servers as u32 / 2);
        let input = SimInput {
            requests: arrivals
                .iter()
                .map(|&a| RequestInput {
                    arrival: SimTime::from_micros(a),
                    queries: vec![QuerySpec::new(0, fanout)],
                })
                .collect(),
        };
        let report = run_simulation(&cfg, &input);
        let busy_ms: f64 = report
            .busy_by_server
            .iter()
            .map(|d| d.as_millis_f64())
            .sum();
        let expected = arrivals.len() as f64 * f64::from(fanout) * service_ms;
        prop_assert!((busy_ms - expected).abs() < 1e-6);
        let load = report.accepted_load();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&load), "load {}", load);
    }

    /// Conservation under arbitrary fault plans and mitigation settings:
    /// every dispatched task attempt resolves exactly one way (wins its
    /// slot, is cancelled as a duplicate/straggler, or is lost to a
    /// fault), and every admitted query resolves exactly once (full,
    /// partial, or failed).
    #[test]
    fn fault_conservation(
        arrivals in proptest::collection::vec(0u64..20_000, 1..100),
        fanout in 1u32..8,
        n_episodes in 0usize..6,
        fault_seed in 0u64..1_000,
        mitigation_mode in 0usize..3,
        policy_idx in 0usize..4,
    ) {
        use tailguard_repro::tailguard::{FaultPlan, MitigationConfig};
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let n = arrivals.len() as u64;
        let plan = if n_episodes == 0 {
            FaultPlan::new() // normalised away: exercises the empty-plan path
        } else {
            FaultPlan::generate(fault_seed, 8, SimDuration::from_millis(30), n_episodes, 3.0)
        };
        let mut cfg = SimConfig::new(
            ClusterSpec::homogeneous(8, Deterministic::new(0.7)),
            vec![ClassSpec::p99(ms(10.0))],
            Policy::ALL[policy_idx],
        )
        .with_warmup(0)
        .with_faults(plan);
        cfg = match mitigation_mode {
            0 => cfg, // no mitigation: lost tasks stay lost
            1 => cfg.with_mitigation(MitigationConfig::new().with_hedge_after(0.5)),
            _ => cfg.with_mitigation(
                MitigationConfig::new()
                    .with_hedge_after(0.3)
                    .with_partial_quorum(0.75),
            ),
        };
        let input = SimInput {
            requests: arrivals
                .iter()
                .map(|&a| RequestInput {
                    arrival: SimTime::from_micros(a),
                    queries: vec![QuerySpec::new(0, fanout)],
                })
                .collect(),
        };
        let report = run_simulation(&cfg, &input);
        let r = &report.robustness;
        // Task-attempt conservation.
        prop_assert_eq!(
            r.task_wins + r.cancelled_tasks + r.tasks_lost_to_faults,
            report.load.tasks_dispatched_count()
        );
        // Query conservation: admitted = completed + partial + failed.
        prop_assert_eq!(
            report.completed_queries + r.partial_completions + r.failed_queries,
            n
        );
        prop_assert_eq!(report.rejected_queries, 0);
    }

    /// Conservation under crash/restart/duplicate-delivery storms with a
    /// lease armed: crashes swallow in-flight tasks *silently* (no loss
    /// notification), yet no admitted query is lost — the expired lease
    /// reclaims the task and re-enqueues it with its original deadline —
    /// and none is double-counted — redelivered results and zombie
    /// completions are fenced by token mismatch.
    #[test]
    fn crash_conservation(
        arrivals in proptest::collection::vec(0u64..20_000, 1..100),
        fanout in 1u32..8,
        n_episodes in 1usize..6,
        fault_seed in 0u64..1_000,
        lease_ms in 2u64..20,
        policy_idx in 0usize..4,
    ) {
        use tailguard_repro::tailguard::FaultPlan;
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let n = arrivals.len() as u64;
        let plan = FaultPlan::generate_crash_storm(
            fault_seed,
            8,
            SimDuration::from_millis(30),
            n_episodes,
            3.0,
        );
        let cfg = SimConfig::new(
            ClusterSpec::homogeneous(8, Deterministic::new(0.7)),
            vec![ClassSpec::p99(ms(10.0))],
            Policy::ALL[policy_idx],
        )
        .with_warmup(0)
        .with_faults(plan)
        .with_lease(SimDuration::from_millis(lease_ms));
        let input = SimInput {
            requests: arrivals
                .iter()
                .map(|&a| RequestInput {
                    arrival: SimTime::from_micros(a),
                    queries: vec![QuerySpec::new(0, fanout)],
                })
                .collect(),
        };
        let report = run_simulation(&cfg, &input);
        let r = &report.robustness;
        let lc = &report.lifecycle;
        // Query conservation: every admitted query resolves exactly once.
        prop_assert_eq!(
            report.completed_queries + r.partial_completions + r.failed_queries,
            n
        );
        prop_assert_eq!(report.rejected_queries, 0);
        // Nothing is left live in the state store at the end of the run.
        prop_assert_eq!(lc.queued + lc.leased + lc.running, 0);
        // Attempt conservation, unchanged by reclaims: every attempt ever
        // created reaches exactly one terminal outcome (win / cancel /
        // loss) no matter how many times its lease expired and the task
        // was re-enqueued in between.
        prop_assert_eq!(
            r.task_wins + r.cancelled_tasks + r.tasks_lost_to_faults,
            report.load.tasks_dispatched_count()
        );
        // Reclaims re-dequeue the same attempt, so the dequeue counter
        // exceeds the attempt counter by exactly the reclaim count.
        prop_assert_eq!(
            report.load.tasks_completed_count(),
            report.load.tasks_dispatched_count() + lc.reclaims
        );
    }

    /// Gray-failure resilience: under arbitrary degrade-ramp/flap drift
    /// plans, health-gated ejection with recovery probing (plus a capped
    /// hedge budget) conserves every query and every task attempt, and
    /// the tracker never shrinks the dispatchable pool below the
    /// partial-quorum hard floor.
    #[test]
    fn health_ejection_conserves_and_respects_floor(
        arrivals in proptest::collection::vec(0u64..20_000, 1..100),
        fanout in 1u32..8,
        n_episodes in 1usize..6,
        fault_seed in 0u64..1_000,
        frac_pct in 50u64..100,
        policy_idx in 0usize..4,
    ) {
        use tailguard_repro::tailguard::{FaultPlan, HealthConfig, MitigationConfig};
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let n = arrivals.len() as u64;
        let plan = FaultPlan::generate_drift(
            fault_seed,
            8,
            SimDuration::from_millis(30),
            n_episodes,
            3.0,
        );
        let frac = frac_pct as f64 / 100.0;
        let cfg = SimConfig::new(
            ClusterSpec::homogeneous(8, Deterministic::new(0.7)),
            vec![ClassSpec::p99(ms(10.0))],
            Policy::ALL[policy_idx],
        )
        .with_warmup(0)
        .with_faults(plan)
        .with_health(
            HealthConfig::new()
                .with_min_observations(5)
                .with_eval_every(8)
                .with_probe_every(3)
                .with_min_healthy_fraction(frac),
        )
        .with_mitigation(
            MitigationConfig::new()
                .with_hedge_after(0.5)
                .with_hedge_budget(2),
        );
        let input = SimInput {
            requests: arrivals
                .iter()
                .map(|&a| RequestInput {
                    arrival: SimTime::from_micros(a),
                    queries: vec![QuerySpec::new(0, fanout)],
                })
                .collect(),
        };
        let report = run_simulation(&cfg, &input);
        let r = &report.robustness;
        // Query conservation: diversion, probing, and budget-denied hedges
        // never lose or double-count a query.
        prop_assert_eq!(
            report.completed_queries + r.partial_completions + r.failed_queries,
            n
        );
        prop_assert_eq!(report.rejected_queries, 0);
        // Task-attempt conservation still holds with rerouting in the path.
        prop_assert_eq!(
            r.task_wins + r.cancelled_tasks + r.tasks_lost_to_faults,
            report.load.tasks_dispatched_count()
        );
        // Quorum floor: ejections minus readmissions is the number of
        // currently ejected servers, which may never push the healthy
        // count below ceil(frac × 8).
        let h = &report.health;
        prop_assert!(h.ejections >= h.readmissions);
        let min_healthy = (frac * 8.0).ceil() as u64;
        prop_assert!(
            8 - (h.ejections - h.readmissions) >= min_healthy,
            "floor violated: {} ejected with floor {}",
            h.ejections - h.readmissions,
            min_healthy
        );
        prop_assert_eq!(report.server_health.len(), 8);
    }

    /// The EDF policies never produce a *worse* tail than FIFO for the
    /// tightest-budget class when that class is a minority sharing with
    /// loose background traffic.
    #[test]
    fn edf_helps_urgent_minority(seed in 0u64..40) {
        use tailguard_repro::workload::{ArrivalProcess, FanoutDist, QueryMix, Trace, ClassShare};
        let mix = QueryMix::new(vec![
            ClassShare { class: 0, probability: 0.2, fanout: FanoutDist::fixed(4) },
            ClassShare { class: 1, probability: 0.8, fanout: FanoutDist::fixed(4) },
        ]);
        let trace = Trace::generate(
            "prop",
            &ArrivalProcess::poisson(1.4),
            &mix,
            3_000,
            seed,
        );
        let mk = |policy| {
            SimConfig::new(
                ClusterSpec::homogeneous(
                    8,
                    tailguard_repro::dist::Exponential::with_mean(1.0),
                ),
                vec![ClassSpec::p99(ms(4.0)), ClassSpec::p99(ms(40.0))],
                policy,
            )
            .with_warmup(100)
        };
        let input = SimInput::from_trace(&trace);
        let mut edf = run_simulation(&mk(Policy::TfEdf), &input);
        let mut fifo = run_simulation(&mk(Policy::Fifo), &input);
        let edf_tail = edf.class_tail(0, 0.95);
        let fifo_tail = fifo.class_tail(0, 0.95);
        // Allow 10% noise margin; the urgent class must not be hurt.
        prop_assert!(
            edf_tail.as_millis_f64() <= fifo_tail.as_millis_f64() * 1.10,
            "EDF {} vs FIFO {}", edf_tail, fifo_tail
        );
    }
}

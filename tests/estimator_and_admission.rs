//! Integration tests for the online estimator and admission control in
//! full simulation runs.

use tailguard_repro::policy::Policy;
use tailguard_repro::simcore::SimDuration;
use tailguard_repro::tailguard::{
    measure_at_load, run_simulation, scenarios, AdmissionConfig, EstimatorMode, MaxLoadOptions,
};
use tailguard_repro::workload::TailbenchWorkload;

fn opts() -> MaxLoadOptions {
    MaxLoadOptions {
        queries: 20_000,
        ..MaxLoadOptions::default()
    }
}

#[test]
fn online_estimator_matches_analytic_outcomes() {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let load = 0.3;
    let input = scenario.input(load, 20_000);

    let mut analytic = run_simulation(&scenario.config(Policy::TfEdf).with_warmup(1_000), &input);
    let mut online = run_simulation(
        &scenario
            .config(Policy::TfEdf)
            .with_estimator(EstimatorMode::Online {
                refresh_every: 10_000,
                offline_samples: 100_000,
            })
            .with_warmup(1_000),
        &input,
    );
    let a = analytic.class_tail(0, 0.99).as_millis_f64();
    let o = online.class_tail(0, 0.99).as_millis_f64();
    assert!(
        (a - o).abs() / a < 0.10,
        "online p99 {o:.3} vs analytic {a:.3}"
    );
    assert!(online.meets_all_slos());
}

#[test]
fn online_estimator_works_on_heterogeneous_sas_twin() {
    let scenario = scenarios::sas_testbed();
    let input = scenario.input(0.3, 8_000);
    let mut report = run_simulation(
        &scenario
            .config(Policy::TfEdf)
            .with_estimator(EstimatorMode::Online {
                refresh_every: 5_000,
                offline_samples: 50_000,
            })
            .with_warmup(400),
        &input,
    );
    assert!(
        report.meets_all_slos(),
        "online-estimated SaS twin at 30% load:\n{}",
        report.render_table()
    );
}

#[test]
fn sas_twin_reproduces_cluster_skew() {
    let scenario = scenarios::sas_testbed();
    let report = measure_at_load(&scenario, Policy::TfEdf, 0.35, &opts());
    // 80% of class-A load lands on the Server-room cluster (servers 0..8):
    // its utilization must exceed every other cluster's.
    let server_room = report.server_range_load(0..8);
    for (name, range) in [("Wet-lab", 8..16), ("Faculty", 16..24), ("GTA", 24..32)] {
        let other = report.server_range_load(range);
        assert!(
            server_room > other,
            "Server-room {server_room:.3} must exceed {name} {other:.3}"
        );
    }
}

#[test]
fn admission_keeps_accepted_queries_near_slo_under_overload() {
    let (hi, lo) = scenarios::fig6_slos(TailbenchWorkload::Masstree);
    let scenario = scenarios::oldi_two_class(TailbenchWorkload::Masstree, hi, lo);
    let o = opts();

    // 70% offered load is far past this system's capacity (~55%).
    let input = scenario.input(0.70, o.queries);
    let window = SimDuration::from_millis_f64(30.0 / scenario.rate_for_load(0.5));
    let mut with = run_simulation(
        &scenario
            .config(Policy::TfEdf)
            .with_admission(AdmissionConfig::new(window, 0.01).with_resume_threshold(0.003))
            .with_warmup(o.queries / 20),
        &input,
    );
    let mut without = run_simulation(
        &scenario.config(Policy::TfEdf).with_warmup(o.queries / 20),
        &input,
    );

    assert!(with.rejected_queries > 0, "controller must reject at 70%");
    let with_tail = with.class_tail(0, 0.99).as_millis_f64();
    let without_tail = without.class_tail(0, 0.99).as_millis_f64();
    assert!(
        with_tail < without_tail * 0.8,
        "admission must cut the tail: {with_tail:.2} vs {without_tail:.2}"
    );
    // Accepted tails stay near the SLO (within 25% at this reduced scale).
    assert!(
        with_tail < hi * 1.25,
        "accepted class-I tail {with_tail:.2} vs SLO {hi}"
    );
    // And the accepted load remains substantial, not a collapse.
    assert!(
        with.accepted_load() > 0.35,
        "accepted load collapsed to {:.3}",
        with.accepted_load()
    );
}

#[test]
fn admission_transparent_below_capacity() {
    let (hi, lo) = scenarios::fig6_slos(TailbenchWorkload::Masstree);
    let scenario = scenarios::oldi_two_class(TailbenchWorkload::Masstree, hi, lo);
    let o = opts();
    let input = scenario.input(0.35, o.queries);
    let window = SimDuration::from_millis_f64(30.0 / scenario.rate_for_load(0.5));
    let report = run_simulation(
        &scenario
            .config(Policy::TfEdf)
            .with_admission(AdmissionConfig::new(window, 0.02))
            .with_warmup(o.queries / 20),
        &input,
    );
    let reject_frac = report.rejected_queries as f64
        / (report.rejected_queries + report.completed_queries).max(1) as f64;
    assert!(
        reject_frac < 0.02,
        "controller should be idle at 35% load, rejected {reject_frac:.3}"
    );
}

//! Differential test: the discrete-event simulator and the tokio testbed
//! drive the *same* scheduling core (`tailguard_sched::QueryHandler`)
//! through the *same* workload plan (`scenarios::sas_testbed().input(...)`),
//! so their accounting must agree wherever timing does not intervene.
//!
//! What is exactly comparable: the class/fanout/placement sequence is the
//! identical `SimInput` on both sides, so with admission disabled the
//! per-class completed-query counts must match one for one. What is only
//! loosely comparable: latencies (the testbed measures emulated nodes under
//! a compressed tokio clock, the simulator draws service times directly),
//! so those get order-of-magnitude bounds only.

use tailguard_repro::policy::Policy;
use tailguard_repro::simcore::SimDuration;
use tailguard_repro::tailguard::{run_simulation, scenarios, AdmissionConfig};
use tailguard_repro::testbed::{run_testbed, TestbedConfig, TestbedMode};

const QUERIES: usize = 400;

fn testbed_config(load: f64, queries: usize) -> TestbedConfig {
    TestbedConfig {
        policy: Policy::TfEdf,
        queries,
        target_load: load,
        calibration_probes: 20,
        store_days: 35,
        mode: TestbedMode::PausedTime,
        ..TestbedConfig::default()
    }
}

#[test]
fn same_workload_same_counts_without_admission() {
    let load = 0.3;

    let mut tb = run_testbed(&testbed_config(load, QUERIES));
    assert_eq!(tb.completed_queries, QUERIES as u64);
    assert_eq!(tb.rejected_queries, 0);

    let scenario = scenarios::sas_testbed();
    let cfg = scenario.config(Policy::TfEdf).with_warmup(0);
    let input = scenario.input(load, QUERIES);
    let mut sim = run_simulation(&cfg, &input);
    assert_eq!(sim.completed_queries, QUERIES as u64);
    assert_eq!(sim.rejected_queries, 0);
    assert_eq!(
        sim.load.queries_offered_count(),
        sim.load.queries_accepted_count()
    );

    // The identical SimInput drives both runtimes, so each class completes
    // exactly the same number of queries on each side.
    for class in 0..3u8 {
        let s = sim
            .query_latency_by_class
            .get(&class)
            .map_or(0, tailguard_repro::metrics::LatencyReservoir::len);
        let t = tb
            .latency_by_class
            .get(&class)
            .map_or(0, tailguard_repro::metrics::LatencyReservoir::len);
        assert_eq!(s, t, "class {class}: sim completed {s}, testbed {t}");
        assert!(s > 0, "class {class} saw no traffic");
    }

    // Latency agreement is loose by design: same service distributions, but
    // the testbed adds record retrieval and clock-compression rounding.
    for class in 0..3u8 {
        let s = sim.class_tail(class, 0.99).as_millis_f64();
        let t = tb.class_p99_ms(class);
        assert!(
            s > 0.0 && t > 0.0 && s / t < 5.0 && t / s < 5.0,
            "class {class} p99 diverged: sim {s:.1} ms vs testbed {t:.1} ms"
        );
    }
}

#[test]
fn drifting_gray_failure_agrees_across_runtimes() {
    // Non-stationary differential: the same flash-crowd drift plan shapes
    // the workload on both sides (the testbed applies it to the scenario
    // before generating the load plan, so the query sequences are
    // identical), the same degrade-ramp turns two server-room nodes gray,
    // and the same health config ejects them. Counts must agree exactly;
    // the health machinery must engage on both runtimes.
    use tailguard_repro::faults::{FaultEpisode, FaultKind, FaultPlan};
    use tailguard_repro::simcore::SimTime;
    use tailguard_repro::tailguard::{AdaptiveWindow, DriftKind, DriftPlan, HealthConfig};

    let load = 0.3;
    let drift = DriftPlan::new(vec![DriftKind::FlashCrowd {
        start: SimTime::from_millis(2_000),
        end: SimTime::from_millis(10_000),
        factor: 1.5,
    }]);
    let mut faults = FaultPlan::new();
    for node in 0..2 {
        faults = faults.with_episode(FaultEpisode::new(
            node,
            SimTime::from_millis(500),
            SimTime::from_millis(100_000_000),
            FaultKind::DegradeRamp { peak: 15.0 },
        ));
    }
    let health = HealthConfig::new()
        .with_min_observations(5)
        .with_eval_every(16)
        .with_thresholds(2.5, 1.4);
    let adaptive = AdaptiveWindow::new(500, 0.5);

    let mut tb_cfg = testbed_config(load, QUERIES);
    tb_cfg.drift = Some(drift.clone());
    tb_cfg.faults = Some(faults.clone());
    tb_cfg.health = Some(health);
    tb_cfg.adaptive = Some(adaptive);
    let tb = run_testbed(&tb_cfg);
    assert_eq!(
        tb.completed_queries
            + tb.rejected_queries
            + tb.robustness.partial_completions
            + tb.robustness.failed_queries,
        QUERIES as u64,
        "testbed lost queries under drift + ejection"
    );
    assert!(tb.health.ejections > 0, "testbed never ejected a gray node");
    assert!(tb.health.rerouted_tasks > 0, "testbed never rerouted");
    assert_eq!(tb.server_health.len(), 32);

    let scenario = scenarios::sas_testbed().with_drift(drift);
    let cfg = scenario
        .config(Policy::TfEdf)
        .with_warmup(0)
        .with_faults(faults)
        .with_health(health)
        .with_adaptive(adaptive);
    let input = scenario.input(load, QUERIES);
    let sim = run_simulation(&cfg, &input);
    assert_eq!(
        sim.completed_queries
            + sim.rejected_queries
            + sim.robustness.partial_completions
            + sim.robustness.failed_queries,
        QUERIES as u64,
        "simulator lost queries under drift + ejection"
    );
    assert!(sim.health.ejections > 0, "simulator never ejected");
    assert!(sim.health.rerouted_tasks > 0, "simulator never rerouted");
    assert_eq!(sim.server_health.len(), 32);

    // The identical drifted SimInput drives both runtimes: per-class
    // completed counts agree one for one (placement may differ — diversion
    // reacts to each runtime's own observed times — but completion
    // accounting may not).
    for class in 0..3u8 {
        let s = sim
            .query_latency_by_class
            .get(&class)
            .map_or(0, tailguard_repro::metrics::LatencyReservoir::len);
        let t = tb
            .latency_by_class
            .get(&class)
            .map_or(0, tailguard_repro::metrics::LatencyReservoir::len);
        assert_eq!(s, t, "class {class}: sim completed {s}, testbed {t}");
    }
}

#[test]
fn same_admission_config_rejects_on_both_runtimes() {
    // One AdmissionConfig value flows to both drivers unchanged (the
    // testbed rescales only the window into its compressed clock): the
    // same time-window variant with the same thresholds must trip
    // rejection on both sides at 140 % offered load, and both sides must
    // conserve queries exactly.
    let load = 1.4;
    let admission = AdmissionConfig::new(SimDuration::from_millis(20_000), 0.02);

    let mut tb_cfg = testbed_config(load, QUERIES);
    tb_cfg.admission = Some(admission);
    let tb = run_testbed(&tb_cfg);
    assert!(tb.rejected_queries > 0, "testbed never rejected");
    assert_eq!(tb.completed_queries + tb.rejected_queries, QUERIES as u64);

    let scenario = scenarios::sas_testbed();
    let cfg = scenario
        .config(Policy::TfEdf)
        .with_warmup(0)
        .with_admission(admission);
    let input = scenario.input(load, QUERIES);
    let sim = run_simulation(&cfg, &input);
    assert!(sim.rejected_queries > 0, "simulator never rejected");
    assert_eq!(
        sim.completed_queries + sim.rejected_queries,
        QUERIES as u64,
        "simulator lost queries"
    );
    assert_eq!(
        sim.load.queries_offered_count(),
        sim.load.queries_accepted_count() + sim.rejected_queries
    );
    assert!(sim.rejected_load() > 0.0);
}

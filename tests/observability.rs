//! Observability guarantees at the workspace level.
//!
//! Four pins protect the PR-4/PR-9 invariants:
//!  1. Turning the flight recorder ON does not perturb the simulation —
//!     an observed run reproduces the exact golden values of
//!     `golden_report.rs` (the trace-disabled path is byte-identical by
//!     construction: no sink is installed and no snapshot events enter
//!     the heap).
//!  2. Recordings are deterministic under the parallel runner — both the
//!     raw binary ring contents and the decoded event streams of each
//!     cell are byte-identical for `--jobs 1` and `--jobs 8`.
//!  3. The Prometheus text exposition of a fixed-seed run matches a
//!     committed golden snapshot (set `TG_UPDATE_GOLDEN=1` to
//!     regenerate after a deliberate semantic change).
//!  4. The decoded trace of a fixed-seed run matches a committed JSONL
//!     golden — the binary codec round-trips every event the simulator
//!     emits, not just the variants unit tests construct by hand.

use tailguard_repro::obs::events_to_jsonl;
use tailguard_repro::policy::Policy;
use tailguard_repro::tailguard::{
    run_indexed, run_simulation, run_simulation_observed, scenarios, MaxLoadOptions, ObsOptions,
    SimInput, SimReport,
};
use tailguard_repro::workload::TailbenchWorkload;

/// The golden scenario of `golden_report.rs`: Masstree single-class,
/// N=100, offered load 0.40, 10k queries, default warmup.
fn golden_run(policy: Policy) -> (tailguard::SimConfig, SimInput) {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let opts = MaxLoadOptions {
        queries: 10_000,
        ..MaxLoadOptions::default()
    };
    let input = scenario.input(0.4, opts.queries);
    let warmup = (opts.queries as f64 * opts.warmup_fraction) as usize;
    (scenario.config(policy).with_warmup(warmup), input)
}

fn assert_reports_identical(observed: &mut SimReport, unobserved: &mut SimReport) {
    assert_eq!(observed.class_tail(0, 0.99), unobserved.class_tail(0, 0.99));
    assert_eq!(observed.completed_queries, unobserved.completed_queries);
    assert_eq!(observed.rejected_queries, unobserved.rejected_queries);
    assert_eq!(observed.elapsed, unobserved.elapsed);
    assert_eq!(
        observed.pre_dequeue.percentile(0.99),
        unobserved.pre_dequeue.percentile(0.99)
    );
    assert_eq!(
        observed.deadline_miss_ratio(),
        unobserved.deadline_miss_ratio()
    );
}

/// Invariant 1: the observed golden run reproduces the exact pins of
/// `golden_report.rs` — recording is a pure read-side tap.
#[test]
fn observed_golden_run_matches_seed_pins() {
    // Same table as golden_report.rs.
    const GOLDEN: [(&str, u64, u64, u64); 5] = [
        ("TailGuard", 764618, 9500, 493996),
        ("FIFO", 733903, 9500, 462686),
        ("PRIQ", 733903, 9500, 462686),
        ("T-EDFQ", 733903, 9500, 462686),
        ("SJF", 959037, 9500, 552100),
    ];
    for (policy, (name, p99_ns, completed, pre_p99_ns)) in
        Policy::WITH_EXTENSIONS.iter().zip(GOLDEN)
    {
        let (config, input) = golden_run(*policy);
        let run = run_simulation_observed(&config, &input, &ObsOptions::default());
        let mut observed = run.report;
        assert_eq!(
            observed.class_tail(0, 0.99).as_nanos(),
            p99_ns,
            "{name}: observed class-0 p99 drifted from the golden pin"
        );
        assert_eq!(observed.completed_queries, completed, "{name}");
        assert_eq!(
            observed.pre_dequeue.percentile(0.99).as_nanos(),
            pre_p99_ns,
            "{name}"
        );
        // And the full report agrees with an unobserved run of the same
        // config (only `events_processed` may differ — snapshot events).
        let mut unobserved = run_simulation(&config, &input);
        assert_reports_identical(&mut observed, &mut unobserved);
        assert!(observed.events_processed >= unobserved.events_processed);
        // Acceptance: every observed run emits at least one snapshot.
        assert!(!run.snapshots.is_empty(), "{name}: no snapshots emitted");
        assert!(run.recorder.total_recorded() > 0, "{name}: empty recording");
        // The online SLO monitor saw the run: its dequeue count matches
        // the lease counter exactly (leases are issued at dequeue, one
        // per dispatch, so the trace and the state store must agree).
        let slo_dequeues: u64 = run.slo.classes.iter().map(|c| c.dequeues).sum();
        assert_eq!(
            slo_dequeues, observed.lifecycle.leases_issued,
            "{name}: SLO monitor dequeues disagree with lifecycle stats"
        );
    }
}

/// Invariant 2: recorder contents are bit-identical whether the cells run
/// serially or under the parallel runner — at both layers: the raw
/// fixed-width binary stream and the decoded JSONL rendering.
#[test]
fn recorder_contents_identical_across_jobs() {
    let cells: Vec<(Policy, f64)> = [Policy::TfEdf, Policy::Fifo, Policy::Sjf]
        .into_iter()
        .flat_map(|p| [(p, 0.3), (p, 0.5)])
        .collect();
    let record = |jobs: usize| -> Vec<(Vec<u8>, String)> {
        run_indexed(&cells, jobs, |_, &(policy, load)| {
            let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
            let input = scenario.input(load, 2_000);
            let config = scenario.config(policy).with_warmup(100);
            let run = run_simulation_observed(&config, &input, &ObsOptions::default());
            (
                run.recorder.raw_bytes(),
                events_to_jsonl(&run.recorder.events()),
            )
        })
    };
    let serial = record(1);
    let parallel = record(8);
    assert_eq!(serial.len(), parallel.len());
    for (i, ((sb, sj), (pb, pj))) in serial.iter().zip(&parallel).enumerate() {
        assert!(!sb.is_empty(), "cell {i}: empty recording");
        assert_eq!(
            sb, pb,
            "cell {i}: raw binary recording differs between jobs=1 and jobs=8"
        );
        assert_eq!(
            sj, pj,
            "cell {i}: decoded recording differs between jobs=1 and jobs=8"
        );
    }
}

/// Invariant 4: the decoded trace of a small fixed-seed run is pinned to
/// a committed JSONL golden — exercising encode → ring → decode over the
/// full event mix a real simulation produces.
#[test]
fn decoded_trace_matches_committed_golden() {
    let (config, input) = golden_run(Policy::TfEdf);
    let input_small = SimInput {
        requests: input.requests.into_iter().take(300).collect(),
    };
    let run = run_simulation_observed(&config, &input_small, &ObsOptions::default());
    assert_eq!(
        run.recorder.dropped(),
        0,
        "ring evicted records; grow DEFAULT_RING_CAPACITY or shrink the run"
    );
    let jsonl = events_to_jsonl(&run.recorder.events());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/decoded_trace.jsonl"
    );
    if std::env::var("TG_UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &jsonl).expect("write golden decoded trace");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("missing tests/golden/decoded_trace.jsonl — run with TG_UPDATE_GOLDEN=1");
    assert_eq!(
        jsonl, golden,
        "decoded trace drifted from the committed golden snapshot; \
         if the change is deliberate, regenerate with TG_UPDATE_GOLDEN=1"
    );
}

/// Invariant 3: the Prometheus text exposition of a fixed-seed run is
/// pinned to a committed golden file.
#[test]
fn exposition_matches_committed_golden() {
    let (config, input) = golden_run(Policy::TfEdf);
    // Trim to 2k queries so the pin stays fast; determinism is what is
    // under test, not the workload itself.
    let input_small = SimInput {
        requests: input.requests.into_iter().take(2_000).collect(),
    };
    let run = run_simulation_observed(&config, &input_small, &ObsOptions::default());
    let text = run.registry.prometheus_text();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/metrics_exposition.txt"
    );
    if std::env::var("TG_UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &text).expect("write golden exposition");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("missing tests/golden/metrics_exposition.txt — run with TG_UPDATE_GOLDEN=1");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from the committed golden snapshot; \
         if the change is deliberate, regenerate with TG_UPDATE_GOLDEN=1"
    );
}

//! Shared helpers for the per-figure bench targets.
//!
//! Each bench target under `benches/` reproduces one table or figure of the
//! paper's evaluation (§IV) and prints the same rows/series the paper
//! reports, side by side with the paper's published values where the paper
//! gives numbers. Absolute latencies are not expected to match a 2018-era
//! testbed; the *shape* — which policy wins, by roughly what factor, where
//! crossovers fall — is the reproduction target.
//!
//! Set `TG_BENCH_SCALE` (a float, default `1.0`) to scale every run's query
//! count: `TG_BENCH_SCALE=0.2 cargo bench` for a quick smoke pass,
//! `TG_BENCH_SCALE=4` for publication-grade tails.
//!
//! Set `TG_JOBS` (an integer ≥ 1) to cap the worker threads the parallel
//! bench targets use; the default is the machine's available parallelism.
//! Results are bit-identical for any `TG_JOBS` value.

use tailguard::MaxLoadOptions;

/// Reads the `TG_BENCH_SCALE` multiplier (default 1.0, clamped to
/// `[0.01, 100]`).
pub fn bench_scale() -> f64 {
    std::env::var("TG_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|v| v.clamp(0.01, 100.0))
        .unwrap_or(1.0)
}

/// Scales a base query count by [`bench_scale`], never below 1 (a zero
/// query count would make a simulation run meaningless and can divide by
/// zero in warm-up arithmetic).
pub fn scaled(base: usize) -> usize {
    (((base as f64) * bench_scale()) as usize).max(1)
}

/// Worker-thread count for the parallel bench targets: `TG_JOBS` when set
/// (clamped to ≥ 1), else the machine's available parallelism.
pub fn jobs() -> usize {
    std::env::var("TG_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map(|v| v.max(1))
        .unwrap_or_else(tailguard::default_jobs)
}

/// Standard max-load options for paper-mix scenarios.
pub fn maxload_opts(base_queries: usize) -> MaxLoadOptions {
    MaxLoadOptions {
        queries: scaled(base_queries),
        tolerance: 0.01,
        ..MaxLoadOptions::default()
    }
}

/// Prints the standard bench header.
pub fn header(id: &str, paper_ref: &str, what: &str) {
    println!();
    println!("================================================================================");
    println!("{id} — {paper_ref}");
    println!("{what}");
    println!(
        "(TG_BENCH_SCALE={}, queries scale with it; shapes, not absolutes, are the target)",
        bench_scale()
    );
    println!("================================================================================");
}

/// Writes an experiment's data series as CSV under
/// `target/paper_figures/<name>.csv`, so the regenerated figures can be
/// re-plotted with any tool.
///
/// # Example
///
/// ```
/// let mut csv = tailguard_bench::FigureCsv::create("doctest_example", &["slo_ms", "maxload"]);
/// csv.row(&[0.8, 0.289]);
/// let path = csv.finish();
/// assert!(path.ends_with("doctest_example.csv"));
/// ```
#[derive(Debug)]
pub struct FigureCsv {
    path: std::path::PathBuf,
    content: String,
    columns: usize,
}

impl FigureCsv {
    /// Starts a CSV with the given header columns.
    ///
    /// # Panics
    ///
    /// Panics when `header` is empty.
    pub fn create(name: &str, header: &[&str]) -> FigureCsv {
        assert!(!header.is_empty(), "need at least one column");
        // Anchor on the cargo target dir so the files land in one place
        // regardless of the bench binary's working directory.
        let target = std::env::var("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| {
                // Benches run with CWD = the package dir; the workspace
                // target sits two levels up (crates/bench -> repo root).
                let cwd = std::env::current_dir().unwrap_or_default();
                let ws = cwd
                    .ancestors()
                    .find(|a| a.join("Cargo.toml").exists() && a.join("crates").exists())
                    .map(std::path::Path::to_path_buf)
                    .unwrap_or(cwd);
                ws.join("target")
            });
        let dir = target.join("paper_figures");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        }
        FigureCsv {
            path: dir.join(format!("{name}.csv")),
            content: format!("{}\n", header.join(",")),
            columns: header.len(),
        }
    }

    /// Appends one numeric row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.columns, "row width mismatch");
        let line: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
        self.content.push_str(&line.join(","));
        self.content.push('\n');
    }

    /// Appends one row with a leading string label.
    ///
    /// # Panics
    ///
    /// Panics when `1 + values.len()` differs from the header width.
    pub fn labeled_row(&mut self, label: &str, values: &[f64]) {
        assert_eq!(1 + values.len(), self.columns, "row width mismatch");
        let mut line = vec![label.replace(',', ";")];
        line.extend(values.iter().map(|v| format!("{v}")));
        self.content.push_str(&line.join(","));
        self.content.push('\n');
    }

    /// Writes the file and returns its path (also printed by callers).
    /// A failed write is reported on stderr — losing a figure's data
    /// silently would defeat the point of the bench run.
    pub fn finish(self) -> String {
        if let Err(e) = std::fs::write(&self.path, self.content) {
            eprintln!("warning: cannot write {}: {e}", self.path.display());
        }
        self.path.display().to_string()
    }
}

/// Formats a relative gain `new/old − 1` as a signed percentage.
pub fn gain_pct(new: f64, old: f64) -> String {
    if old <= 0.0 {
        return "   n/a".to_string();
    }
    format!("{:+6.1}%", (new / old - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_one() {
        // Do not set the env var here (tests run in parallel); just check
        // the clamping logic via scaled().
        let s = bench_scale();
        assert!((0.01..=100.0).contains(&s));
        assert_eq!(scaled(100), ((100.0 * s) as usize).max(1));
    }

    #[test]
    fn scaled_never_returns_zero() {
        // Even a tiny base times a small TG_BENCH_SCALE must keep at least
        // one query, or runs degenerate to empty simulations.
        assert_eq!(scaled(0), 1);
        assert!(scaled(1) >= 1);
    }

    #[test]
    fn figure_csv_roundtrip() {
        let mut csv = FigureCsv::create("unit_test_csv", &["policy", "load", "p99"]);
        csv.labeled_row("TailGuard", &[0.4, 0.95]);
        csv.labeled_row("FI,FO", &[0.4, 1.2]); // comma in label sanitized
        let path = csv.finish();
        let content = std::fs::read_to_string(&path).expect("written");
        assert!(content.starts_with("policy,load,p99"));
        assert!(content.contains("TailGuard,0.4,0.95"));
        assert!(content.contains("FI;FO"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn figure_csv_rejects_bad_width() {
        let mut csv = FigureCsv::create("unit_test_csv_bad", &["a", "b"]);
        csv.row(&[1.0]);
    }

    #[test]
    fn gain_formatting() {
        assert_eq!(gain_pct(1.4, 1.0), " +40.0%");
        assert_eq!(gain_pct(0.5, 1.0), " -50.0%");
        assert_eq!(gain_pct(1.0, 0.0), "   n/a");
    }
}

//! Crash recovery through lease-fenced task lifecycle: the data behind
//! `BENCH_recovery.json` at the repository root.
//!
//! The episode set is a *crash storm* (`FaultPlan::generate_crash_storm`):
//! crash, restart, and duplicate-delivery episodes scattered over the run.
//! A crashed node swallows in-flight work silently — no NACK, no loss
//! report — so without recovery the affected queries simply never resolve.
//! The cells measure that loss, then arm the lease-fenced state store at
//! several TTLs and show (a) conservation is restored — every admitted
//! query resolves exactly once, reclaimed attempts keep their original
//! Eq. 6 deadline — and (b) what the recovery costs in tail latency: a
//! crashed task is invisible until its lease expires, so the TTL is the
//! detection latency and the p99 pays for it.
//!
//! Run with `cargo bench --bench fault_recovery`. Knobs: `TG_BENCH_SCALE`
//! scales the query count, `TG_JOBS` caps the parallel worker count.
//! Results are bit-identical for any `TG_JOBS` value.

use tailguard::{run_indexed, run_simulation, scenarios, FaultPlan, MitigationConfig, Scenario};
use tailguard_bench::{header, jobs, scaled, FigureCsv};
use tailguard_policy::Policy;
use tailguard_simcore::SimDuration;
use tailguard_workload::{FanoutDist, QueryMix, TailbenchWorkload};

/// The headline SLO: class-0 p99 must stay under 5 ms.
const SLO_MS: f64 = 5.0;
const LOAD: f64 = 0.4;
const FANOUT: u32 = 10;
const STORM_SEED: u64 = 7;
const STORM_EPISODES: usize = 60;
const STORM_MEAN_LEN_MS: f64 = 10.0;
/// Lease TTLs swept, in ms. All exceed the masstree max service time
/// (0.70 ms), so a healthy attempt always commits before its lease can
/// expire — the reclaim path fires only for genuinely swallowed work.
const TTLS_MS: [f64; 3] = [1.0, 2.0, 5.0];

fn scenario() -> Scenario {
    let mut s = scenarios::single_class(TailbenchWorkload::Masstree, SLO_MS, 100);
    s.mix = QueryMix::single(FanoutDist::fixed(FANOUT));
    s
}

fn storm(queries: usize) -> FaultPlan {
    // ~23 queries/ms arrive at 40% load, so size the storm window to the
    // scaled run length instead of a fixed horizon.
    let horizon_ms = (queries as f64 / 22.0).max(100.0);
    FaultPlan::generate_crash_storm(
        STORM_SEED,
        100,
        SimDuration::from_millis_f64(horizon_ms),
        STORM_EPISODES,
        STORM_MEAN_LEN_MS,
    )
}

struct Cell {
    label: &'static str,
    lease_ttl_ms: f64,
    p99_ms: f64,
    accounted: u64,
    completed: u64,
    partial: u64,
    failed: u64,
    reclaims: u64,
    leases_issued: u64,
    dup_suppressed: u64,
    stale_rejected: u64,
}

fn repo_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_default();
    cwd.ancestors()
        .find(|a| a.join("Cargo.toml").exists() && a.join("crates").exists())
        .map(std::path::Path::to_path_buf)
        .unwrap_or(cwd)
}

fn main() {
    header(
        "fault_recovery",
        "durability (beyond-paper)",
        "query conservation and p99 under a crash storm: no recovery vs lease reclaim at several TTLs",
    );
    let queries = scaled(20_000);
    let scenario = scenario();
    // (label, faulted, lease TTL in ms (0 = lease off), hedged)
    let cells: Vec<(&'static str, bool, f64, bool)> = vec![
        ("healthy", false, 0.0, false),
        ("storm_unrecovered", true, 0.0, false),
        ("storm_lease_1ms", true, TTLS_MS[0], false),
        ("storm_lease_2ms", true, TTLS_MS[1], false),
        ("storm_lease_5ms", true, TTLS_MS[2], false),
        ("storm_lease_1ms_hedged", true, TTLS_MS[0], true),
    ];
    let results: Vec<Cell> = run_indexed(&cells, jobs(), |_, &(label, faulted, ttl_ms, hedged)| {
        let input = scenario.input(LOAD, queries);
        let mut config = scenario.config(Policy::TfEdf).with_warmup(queries / 20);
        if faulted {
            config = config.with_faults(storm(queries));
        }
        if ttl_ms > 0.0 {
            config = config.with_lease(SimDuration::from_millis_f64(ttl_ms));
        }
        if hedged {
            config = config.with_mitigation(MitigationConfig::new().with_hedge_after(0.5));
        }
        let mut report = run_simulation(&config, &input);
        let r = report.robustness.clone();
        let lc = report.lifecycle.clone();
        Cell {
            label,
            lease_ttl_ms: ttl_ms,
            p99_ms: report.class_tail(0, 0.99).as_millis_f64(),
            accounted: report.completed_queries
                + report.rejected_queries
                + r.partial_completions
                + r.failed_queries,
            completed: report.completed_queries,
            partial: r.partial_completions,
            failed: r.failed_queries,
            reclaims: lc.reclaims,
            leases_issued: lc.leases_issued,
            dup_suppressed: lc.duplicates_suppressed,
            stale_rejected: lc.stale_commits_rejected,
        }
    });

    let healthy_accounted = results[0].accounted;
    let healthy_p99 = results[0].p99_ms;
    let mut csv = FigureCsv::create(
        "bench_fault_recovery",
        &[
            "cell",
            "lease_ttl_ms",
            "p99_ms",
            "unresolved",
            "completed",
            "partial",
            "failed",
            "reclaims",
            "dup_suppressed",
            "stale_rejected",
        ],
    );
    println!(
        "{:<20} {:>8} {:>10} {:>11} {:>9}  (SLO p99 = {SLO_MS} ms at {}% load, {} queries/cell)",
        "cell",
        "ttl(ms)",
        "p99(ms)",
        "unresolved",
        "reclaims",
        LOAD * 100.0,
        queries
    );
    for c in &results {
        let unresolved = healthy_accounted - c.accounted;
        let verdict = if unresolved > 0 {
            "LOST"
        } else if c.p99_ms <= SLO_MS {
            "ok"
        } else {
            "VIOLATED"
        };
        println!(
            "{:<20} {:>8.1} {:>10.3} {:>11} {:>9}  {}",
            c.label, c.lease_ttl_ms, c.p99_ms, unresolved, c.reclaims, verdict
        );
        csv.labeled_row(
            c.label,
            &[
                c.lease_ttl_ms,
                c.p99_ms,
                unresolved as f64,
                c.completed as f64,
                c.partial as f64,
                c.failed as f64,
                c.reclaims as f64,
                c.dup_suppressed as f64,
                c.stale_rejected as f64,
            ],
        );
    }
    println!("csv: {}", csv.finish());

    let best = results[2..]
        .iter()
        .min_by(|a, b| a.p99_ms.total_cmp(&b.p99_ms))
        .expect("lease cells present");
    println!(
        "lease reclaim at {} ms TTL: p99 {:.3} ms vs {:.3} ms healthy (SLO {SLO_MS} ms), \
         {} reclaims, 0 queries lost",
        best.lease_ttl_ms, best.p99_ms, healthy_p99, best.reclaims
    );

    // Machine-readable record at the repo root.
    let mut rows = String::new();
    for c in &results {
        rows.push_str(&format!(
            "    {{\"cell\": \"{}\", \"lease_ttl_ms\": {}, \"p99_ms\": {:.6}, \"unresolved\": {}, \"completed\": {}, \"partial\": {}, \"failed\": {}, \"reclaims\": {}, \"leases_issued\": {}, \"duplicates_suppressed\": {}, \"stale_commits_rejected\": {}, \"conserved\": {}}},\n",
            c.label,
            c.lease_ttl_ms,
            c.p99_ms,
            healthy_accounted - c.accounted,
            c.completed,
            c.partial,
            c.failed,
            c.reclaims,
            c.leases_issued,
            c.dup_suppressed,
            c.stale_rejected,
            c.accounted == healthy_accounted
        ));
    }
    rows.pop();
    rows.pop(); // trailing ",\n"
    let unrecovered = &results[1];
    let json = format!(
        "{{\n  \"bench\": \"fault_recovery\",\n  \"scenario\": {{\"workload\": \"masstree\", \"servers\": 100, \"fanout\": {FANOUT}, \"slo_p99_ms\": {SLO_MS}, \"load\": {LOAD}}},\n  \"storm\": {{\"seed\": {STORM_SEED}, \"episodes\": {STORM_EPISODES}, \"mean_len_ms\": {STORM_MEAN_LEN_MS}, \"kinds\": [\"crash\", \"restart\", \"duplicate_delivery\"]}},\n  \"queries_per_cell\": {queries},\n  \"claim\": {{\"unrecovered_queries_lost\": {}, \"lease_queries_lost\": {}, \"all_lease_cells_conserved\": {}, \"best_ttl_ms\": {}, \"best_p99_ms\": {:.6}, \"healthy_p99_ms\": {:.6}, \"best_meets_slo\": {}}},\n  \"cells\": [\n{rows}\n  ]\n}}\n",
        healthy_accounted - unrecovered.accounted,
        healthy_accounted - best.accounted,
        results[2..].iter().all(|c| c.accounted == healthy_accounted),
        best.lease_ttl_ms,
        best.p99_ms,
        healthy_p99,
        best.p99_ms <= SLO_MS
    );
    let path = repo_root().join("BENCH_recovery.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

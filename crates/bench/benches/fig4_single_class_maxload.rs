//! Fig. 4: maximum load meeting a single-class 99th-percentile SLO,
//! TailGuard (TF-EDFQ) vs FIFO, for four SLO settings per workload.
//!
//! With one class, PRIQ and T-EDFQ degenerate to FIFO (§III.A), so the
//! paper compares these two only. Paper reference points (Fig. 4a,
//! Masstree): at x99=0.8 ms FIFO ≈ 20 % vs TailGuard ≈ 28 % (+40 %); the
//! gain shrinks as the SLO loosens.

use tailguard::{max_load, scenarios};
use tailguard_bench::{gain_pct, header, maxload_opts, FigureCsv};
use tailguard_policy::Policy;
use tailguard_workload::TailbenchWorkload;

fn slo_grid(w: TailbenchWorkload) -> [f64; 4] {
    // Chosen, like the paper's, so max loads land in the 20-60% band.
    match w {
        TailbenchWorkload::Masstree => [0.8, 1.0, 1.2, 1.4],
        TailbenchWorkload::Shore => [5.0, 6.0, 8.0, 10.0],
        TailbenchWorkload::Xapian => [7.0, 8.5, 10.0, 12.0],
    }
}

fn main() {
    header(
        "fig4_single_class_maxload",
        "Fig. 4 (a)(b)(c)",
        "Max load meeting the SLO: TailGuard vs FIFO, single class, fanouts {1,10,100}",
    );
    let opts = maxload_opts(120_000);
    let mut csv = FigureCsv::create(
        "fig4_single_class_maxload",
        &["workload", "slo_ms", "tailguard_maxload", "fifo_maxload"],
    );

    for w in TailbenchWorkload::ALL {
        println!("\n--- {w} (N=100, Poisson) ---");
        println!(
            "{:>12} {:>12} {:>10} {:>10}",
            "x99 SLO (ms)", "TailGuard", "FIFO", "gain"
        );
        for slo in slo_grid(w) {
            let scenario = scenarios::single_class(w, slo, 100);
            let tg = max_load(&scenario, Policy::TfEdf, &opts);
            let fifo = max_load(&scenario, Policy::Fifo, &opts);
            println!(
                "{:>12.1} {:>11.1}% {:>9.1}% {:>10}",
                slo,
                tg * 100.0,
                fifo * 100.0,
                gain_pct(tg, fifo)
            );
            csv.labeled_row(w.name(), &[slo, tg, fifo]);
        }
    }
    println!("\ncsv: {}", csv.finish());
    println!("\nShape check vs paper: TailGuard sustains higher load everywhere and the");
    println!("gain grows as the SLO tightens (paper: up to ~40% for Masstree at 0.8 ms).");
}

//! Fig. 5: maximum load with two service classes (SLO_low = 1.5 × SLO_high,
//! equal class probability), Masstree, all four policies, under Poisson and
//! Pareto arrivals.
//!
//! Paper reference: TailGuard beats FIFO by up to ~80 %, PRIQ by up to
//! ~40 %, and T-EDFQ by up to ~22 % (Poisson); Pareto arrivals cost every
//! policy ~2–6 % of load but preserve the ranking.

use tailguard::{max_load_many, scenarios};
use tailguard_bench::{gain_pct, header, jobs, maxload_opts};
use tailguard_policy::Policy;
use tailguard_workload::{ArrivalProcess, TailbenchWorkload};

fn main() {
    header(
        "fig5_two_class_maxload",
        "Fig. 5 (a)(b)",
        "Max load, two classes (1.5x SLO ratio), Masstree, 4 policies, Poisson & Pareto",
    );
    let opts = maxload_opts(120_000);
    let jobs = jobs();

    for arrival in [ArrivalProcess::poisson(1.0), ArrivalProcess::pareto(1.0)] {
        println!("\n--- {} arrivals ---", arrival.label());
        println!(
            "{:>14} {:>11} {:>8} {:>8} {:>8} | {:>9} {:>9} {:>9}",
            "high x99 (ms)", "TailGuard", "FIFO", "PRIQ", "T-EDFQ", "vs FIFO", "vs PRIQ", "vs TEDF"
        );
        for slo in [0.8, 1.0, 1.2, 1.4] {
            let scenario = scenarios::two_class(TailbenchWorkload::Masstree, slo, arrival.clone());
            // All four bisections run concurrently; result order follows
            // Policy::ALL regardless of completion order.
            let loads: Vec<f64> = max_load_many(&scenario, &Policy::ALL, &opts, jobs)
                .into_iter()
                .map(|(_, load)| load)
                .collect();
            let (tg, fifo, priq, tedf) = (loads[0], loads[1], loads[2], loads[3]);
            println!(
                "{:>14.1} {:>10.1}% {:>7.1}% {:>7.1}% {:>7.1}% | {:>9} {:>9} {:>9}",
                slo,
                tg * 100.0,
                fifo * 100.0,
                priq * 100.0,
                tedf * 100.0,
                gain_pct(tg, fifo),
                gain_pct(tg, priq),
                gain_pct(tg, tedf)
            );
        }
    }
    println!("\nShape check vs paper: ranking TailGuard > T-EDFQ > PRIQ > FIFO; gains");
    println!("grow with SLO tightness; Pareto shifts all max loads down a few points.");
}

//! Fig. 3: CDFs and unloaded 95th/99th percentile task tail latencies of
//! the three Tailbench workloads.
//!
//! The paper plots the measured Tailbench CDFs; we print our calibrated
//! models' CDF series (21 quantile points each) plus the p95/p99 markers,
//! and cross-validate against a sampled ECDF (the offline estimation
//! process).

use tailguard_bench::{header, scaled};
use tailguard_dist::{Cdf, Distribution, Ecdf};
use tailguard_simcore::SimRng;
use tailguard_workload::{fig3_markers, TailbenchWorkload};

fn main() {
    header(
        "fig3_workload_cdfs",
        "Fig. 3 (a)(b)(c)",
        "Task service-time CDFs + unloaded p95/p99 markers per workload",
    );

    let samples = scaled(500_000);
    for w in TailbenchWorkload::ALL {
        let d = w.service_dist();
        println!("\n--- {w} ---");
        println!("  CDF series (service time ms @ cumulative probability):");
        print!("   ");
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            print!(" {:.3}@{:.2}", d.quantile(p), p);
            if i % 7 == 6 {
                print!("\n   ");
            }
        }
        println!();
        let (p95, p99) = fig3_markers(w);
        println!("  markers: p95 = {p95:.3} ms, p99 = {p99:.3} ms (paper Fig. 3 circles/diamonds)");

        // Cross-check with a sampled empirical CDF.
        let mut rng = SimRng::seed(3);
        let ecdf: Ecdf = (0..samples).map(|_| d.sample(&mut rng)).collect();
        println!(
            "  sampled ECDF ({samples} draws): mean {:.3} ms (model {:.3}), p99 {:.3} ms (model {:.3})",
            ecdf.mean(),
            d.mean(),
            ecdf.quantile(0.99),
            d.quantile(0.99),
        );
    }
    println!("\nPaper shape check: Masstree tight (p99 ≈ 1.24×mean), Shore heavy-tailed");
    println!("(p99 ≈ 6×mean), Xapian broad (p99 ≈ 2.8×mean) — all three reproduced.");
}

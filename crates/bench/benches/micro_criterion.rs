//! Criterion micro-benchmarks backing the paper's "TailGuard is
//! lightweight" claim (§III.B.2): queue operations, deadline estimation,
//! and end-to-end simulator throughput.
//!
//! `criterion` here is the offline stand-in under `third_party/criterion`
//! (version `0.0.0-offline-stub`): it times closures with plain wall-clock
//! means — no outlier rejection or regression detection — so differences
//! under ~10 % are noise. See `third_party/README.md`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tailguard::{
    run_simulation, scenarios, ClassSpec, ClusterSpec, DeadlineEstimator, EstimatorMode,
};
use tailguard_policy::{Policy, QueuedTask, ServiceClass};
use tailguard_simcore::{SimDuration, SimRng, SimTime};
use tailguard_workload::TailbenchWorkload;

fn queue_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_push_pop");
    for policy in Policy::ALL {
        group.bench_function(policy.name(), |b| {
            let mut rng = SimRng::seed(1);
            // Pre-generate a batch of tasks with random deadlines/classes.
            let tasks: Vec<QueuedTask> = (0..1024)
                .map(|i| {
                    QueuedTask::new(
                        i,
                        ServiceClass((i % 4) as u8),
                        SimTime::from_nanos(rng.u64() % 1_000_000),
                        SimTime::ZERO,
                    )
                })
                .collect();
            b.iter_batched(
                || (policy.new_queue(), tasks.clone()),
                |(mut q, tasks)| {
                    for t in tasks {
                        q.push(t);
                    }
                    while let Some(t) = q.pop() {
                        black_box(t.task_id);
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn deadline_estimation(c: &mut Criterion) {
    let cluster = ClusterSpec::homogeneous(100, TailbenchWorkload::Masstree.service_dist());
    let classes = vec![
        ClassSpec::p99(SimDuration::from_millis_f64(1.0)),
        ClassSpec::p99(SimDuration::from_millis_f64(1.5)),
    ];

    c.bench_function("estimator_budget_cached", |b| {
        let mut est = DeadlineEstimator::new(&cluster, classes.clone(), EstimatorMode::Analytic);
        let _ = est.budget(0, 100, &[]); // warm the cache
        b.iter(|| black_box(est.budget(black_box(0), black_box(100), &[])));
    });

    c.bench_function("estimator_budget_cold", |b| {
        b.iter_batched(
            || DeadlineEstimator::new(&cluster, classes.clone(), EstimatorMode::Analytic),
            |mut est| black_box(est.budget(0, 100, &[])),
            BatchSize::SmallInput,
        );
    });

    c.bench_function("estimator_online_record", |b| {
        let mut est = DeadlineEstimator::new(
            &cluster,
            classes.clone(),
            EstimatorMode::Online {
                refresh_every: u64::MAX, // isolate the record cost
                offline_samples: 0,
            },
        );
        b.iter(|| est.record_post_queuing(7, SimDuration::from_micros(180)));
    });
}

fn simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let input = scenario.input(0.4, 20_000);
    for policy in [Policy::TfEdf, Policy::Fifo] {
        group.bench_function(format!("20k_queries_{}", policy.name()), |b| {
            let config = scenario.config(policy).with_warmup(1_000);
            b.iter(|| black_box(run_simulation(&config, &input).completed_queries));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    queue_ops,
    deadline_estimation,
    simulator_throughput
);
criterion_main!(benches);

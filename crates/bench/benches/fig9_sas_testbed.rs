//! Fig. 9: the heterogeneous Sensing-as-a-Service testbed — per-cluster
//! post-queuing CDught statistics (9a) and class A/B/C 99th-percentile
//! latency vs load for all four policies (9b–d), run on the tokio testbed
//! under the paused clock.
//!
//! Paper reference: cluster means 82/31/92/91 ms and p99s 300/136/306/304 ms
//! (Server-room/Wet-lab/Faculty/GTA); max loads ≈ 48/38/36/42 % for
//! TailGuard/FIFO/PRIQ/T-EDFQ, i.e. gains of 26/33/14 % — smaller than in
//! simulation because the skewed Server-room load mutes the fanout effect.

use tailguard_bench::{gain_pct, header, scaled};
use tailguard_policy::Policy;
use tailguard_testbed::{run_testbed, TestbedConfig, TestbedMode};

fn main() {
    header(
        "fig9_sas_testbed",
        "Fig. 9 (a)-(d)",
        "Tokio SaS testbed: per-cluster post-queuing stats + class p99 vs load, 4 policies",
    );
    let queries = scaled(4_000);

    // --- Fig. 9(a): unloaded-ish cluster statistics at light load. -------
    let probe = run_testbed(&TestbedConfig {
        policy: Policy::TfEdf,
        queries: queries.max(500),
        target_load: 0.15,
        mode: TestbedMode::PausedTime,
        ..TestbedConfig::default()
    });
    println!("\nFig 9(a) — task post-queuing times per cluster at 15% load:");
    println!(
        "{:<12} {:>10} {:>10} {:>10}   paper (mean/p95/p99)",
        "cluster", "mean (ms)", "p95 (ms)", "p99 (ms)"
    );
    let paper = [
        ("Server-room", 82.0, 235.0, 300.0),
        ("Wet-lab", 31.0, 112.0, 136.0),
        ("Faculty", 92.0, 226.0, 306.0),
        ("GTA", 91.0, 228.0, 304.0),
    ];
    for (obs, (pname, pm, p95, p99)) in probe.clusters.iter().zip(paper) {
        assert_eq!(obs.name, pname);
        println!(
            "{:<12} {:>10.0} {:>10.0} {:>10.0}   {:>4.0}/{:>4.0}/{:>4.0}",
            obs.name, obs.mean_ms, obs.p95_ms, obs.p99_ms, pm, p95, p99
        );
    }

    // --- Fig. 9(b)-(d): class p99 vs load per policy. ---------------------
    let loads = [0.20, 0.30, 0.36, 0.42, 0.48, 0.52, 0.55, 0.58];
    let slos = [800.0, 1300.0, 1800.0];
    let mut max_ok = std::collections::HashMap::new();
    for policy in Policy::ALL {
        println!("\n--- {policy} ---");
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>10}",
            "load (%)", "A p99 (ms)", "B p99 (ms)", "C p99 (ms)", "SLOs ok"
        );
        let mut best = 0.0_f64;
        for &load in &loads {
            let mut r = run_testbed(&TestbedConfig {
                policy,
                queries,
                target_load: load,
                mode: TestbedMode::PausedTime,
                ..TestbedConfig::default()
            });
            let ok = r.meets_all_slos();
            if ok {
                best = best.max(load);
            }
            println!(
                "{:>10.0} {:>12.0} {:>12.0} {:>12.0} {:>10}",
                load * 100.0,
                r.class_p99_ms(0),
                r.class_p99_ms(1),
                r.class_p99_ms(2),
                if ok { "yes" } else { "NO" }
            );
        }
        max_ok.insert(policy, best);
    }

    println!("\nMax load meeting all three SLOs (SLOs A/B/C = {slos:?} ms):");
    let tg = max_ok[&Policy::TfEdf];
    for policy in Policy::ALL {
        println!(
            "  {:<10} {:>5.0}%   TailGuard gain {}",
            policy.name(),
            max_ok[&policy] * 100.0,
            if policy == Policy::TfEdf {
                "    —".to_string()
            } else {
                gain_pct(tg, max_ok[&policy])
            }
        );
    }
    println!("\nShape check vs paper: TailGuard highest, T-EDFQ second, FIFO/PRIQ last;");
    println!("gains smaller than simulation because Server-room skew mutes fanout effects.");
}

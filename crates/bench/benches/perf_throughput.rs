//! Machine-readable performance baseline: simulator throughput in
//! events/sec and queries/sec, serial and with the parallel runner, written
//! to `BENCH_throughput.json` at the repository root.
//!
//! Run with `cargo bench --bench perf_throughput`. Knobs: `TG_BENCH_SCALE`
//! scales the query count, `TG_JOBS` caps the parallel worker count. The
//! JSON records the thread count alongside each measurement so numbers from
//! different machines stay comparable.
//!
//! All `queries_per_sec` rows use **completed** queries as the denominator
//! (offered counts are recorded separately as `queries_offered`), so serial
//! and sweep rows are directly comparable.
//!
//! If `BENCH_baseline_prechange.json` exists at the repo root (a committed
//! record of the same single-sim measurement taken at the pre-optimization
//! tree), the bench reports the single-thread improvement against it.

use std::time::Instant;
use tailguard::{run_simulation, scenarios, sweep_loads_parallel, MaxLoadOptions};
use tailguard_bench::{header, jobs, scaled};
use tailguard_policy::Policy;
use tailguard_workload::TailbenchWorkload;

struct Measurement {
    label: String,
    jobs: usize,
    wall_secs: f64,
    events: u64,
    queries_offered: u64,
    queries_completed: u64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }
    fn queries_per_sec(&self) -> f64 {
        self.queries_completed as f64 / self.wall_secs
    }
}

/// The single-thread hot-path measurement: one warm run, then the best
/// wall time of 5 timed repetitions (best-of-N filters scheduler noise on
/// small hosts). Parameters and methodology match the pre-change baseline
/// recorded in `BENCH_baseline_prechange.json` and reproduced by
/// `examples/hotpath_baseline.rs` — comparability is the point.
fn measure_serial(queries: usize) -> Measurement {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let input = scenario.input(0.5, queries);
    let config = scenario.config(Policy::TfEdf).with_warmup(queries / 20);
    let _ = run_simulation(&config, &input); // warm
    let mut best: Option<Measurement> = None;
    for _ in 0..5 {
        let start = Instant::now();
        let report = run_simulation(&config, &input);
        let wall_secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|b| wall_secs < b.wall_secs) {
            best = Some(Measurement {
                label: "single_sim_serial".to_string(),
                jobs: 1,
                wall_secs,
                events: report.events_processed,
                queries_offered: queries as u64,
                queries_completed: report.completed_queries,
            });
        }
    }
    best.expect("at least one repetition")
}

/// A load sweep fanned out over `jobs` workers, timed end to end.
fn measure_sweep(queries: usize, jobs: usize) -> Measurement {
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let loads: Vec<f64> = (2..=10).map(|i| i as f64 * 0.08).collect();
    let opts = MaxLoadOptions {
        queries,
        ..MaxLoadOptions::default()
    };
    let start = Instant::now();
    let points = sweep_loads_parallel(&scenario, Policy::TfEdf, &loads, &opts, jobs);
    let wall_secs = start.elapsed().as_secs_f64();
    Measurement {
        label: format!("sweep_9_loads_jobs{jobs}"),
        jobs,
        wall_secs,
        events: points.iter().map(|p| p.events_processed).sum(),
        queries_offered: (points.len() * queries) as u64,
        queries_completed: points.iter().map(|p| p.completed_queries).sum(),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Pulls a numeric field out of the (flat, trusted, committed) baseline
/// JSON without a full parser: finds `"<key>":` and reads the number.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn repo_root() -> std::path::PathBuf {
    // Same root-finding anchor as FigureCsv: walk up to the workspace root.
    let cwd = std::env::current_dir().unwrap_or_default();
    cwd.ancestors()
        .find(|a| a.join("Cargo.toml").exists() && a.join("crates").exists())
        .map(std::path::Path::to_path_buf)
        .unwrap_or(cwd)
}

fn main() {
    header(
        "perf_throughput",
        "perf baseline",
        "events/sec and queries/sec (completed-query denominator), serial vs parallel runner",
    );
    let queries = scaled(60_000);
    let par_jobs = jobs();

    let serial = measure_serial(queries);
    println!(
        "{:<24} {:>10.0} events/s {:>10.0} queries/s  ({:.2}s wall, {} events)",
        serial.label,
        serial.events_per_sec(),
        serial.queries_per_sec(),
        serial.wall_secs,
        serial.events
    );

    let sweep_serial = measure_sweep(queries / 4, 1);
    let sweep_parallel = measure_sweep(queries / 4, par_jobs);
    for m in [&sweep_serial, &sweep_parallel] {
        println!(
            "{:<24} {:>10.0} events/s {:>10.0} queries/s  ({:.2}s wall)",
            m.label,
            m.events_per_sec(),
            m.queries_per_sec(),
            m.wall_secs
        );
    }
    let speedup = sweep_serial.wall_secs / sweep_parallel.wall_secs;
    println!("parallel sweep speedup at jobs={par_jobs}: {speedup:.2}x");

    let root = repo_root();

    // Pre-change baseline, if one is committed: same single-sim measurement
    // taken at the tree *before* the hot-path optimizations.
    let baseline = std::fs::read_to_string(root.join("BENCH_baseline_prechange.json"))
        .ok()
        .as_deref()
        .and_then(|text| {
            let qps = json_number(text, "queries_per_sec")?;
            let q = json_number(text, "queries_offered")?;
            Some((qps, q as u64))
        });
    let improvement = baseline.and_then(|(base_qps, base_offered)| {
        if base_offered != serial.queries_offered {
            println!(
                "prechange baseline used {base_offered} offered queries (this run: {}); \
                 not comparable — skipping improvement figure",
                serial.queries_offered
            );
            return None;
        }
        let pct = (serial.queries_per_sec() / base_qps - 1.0) * 100.0;
        println!(
            "single-thread vs prechange baseline: {:.0} vs {base_qps:.0} queries/s ({pct:+.1}%)",
            serial.queries_per_sec()
        );
        Some(pct)
    });

    // Machine-readable record at the repo root.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut rows = String::new();
    for m in [&serial, &sweep_serial, &sweep_parallel] {
        rows.push_str(&format!(
            "    {{\"label\": \"{}\", \"jobs\": {}, \"wall_secs\": {:.4}, \"events\": {}, \"queries_offered\": {}, \"queries_completed\": {}, \"events_per_sec\": {:.0}, \"queries_per_sec\": {:.0}}},\n",
            json_escape(&m.label),
            m.jobs,
            m.wall_secs,
            m.events,
            m.queries_offered,
            m.queries_completed,
            m.events_per_sec(),
            m.queries_per_sec()
        ));
    }
    rows.pop();
    rows.pop(); // trailing ",\n"
    let note = if cores < 4 {
        "machine has fewer than 4 cores; parallel speedup is bounded by available_cores — re-run on a multi-core host for the scaling numbers"
    } else {
        "cells share no state, so sweep speedup should approach min(jobs, cells)"
    };
    let improvement_row = improvement
        .map(|pct| format!("  \"singlethread_improvement_pct\": {pct:.1},\n"))
        .unwrap_or_default();
    let json = format!(
        "{{\n  \"bench\": \"perf_throughput\",\n  \"hardware\": {{\"available_cores\": {cores}}},\n  \"queries_per_cell\": {queries},\n  \"parallel_jobs\": {par_jobs},\n  \"sweep_speedup\": {speedup:.3},\n{improvement_row}  \"notes\": \"{}\",\n  \"measurements\": [\n{rows}\n  ]\n}}\n",
        json_escape(note)
    );
    let path = root.join("BENCH_throughput.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

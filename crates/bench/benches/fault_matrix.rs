//! Robustness under a standard slowdown episode: every queuing policy runs
//! healthy, under the fault, and under the fault with deadline-aware
//! hedging — the data behind `BENCH_faults.json` at the repository root.
//!
//! The episode: 10 of 100 servers serve at 8× their calibrated service
//! time for the whole run (a degraded-rack scenario — at 40% offered load
//! the slowed servers saturate, so unmitigated tails explode). Mitigation
//! hedges a task to the least-loaded backup once half its Eq. 6 queuing
//! budget has elapsed and takes the first completion.
//!
//! Run with `cargo bench --bench fault_matrix`. Knobs: `TG_BENCH_SCALE`
//! scales the query count, `TG_JOBS` caps the parallel worker count.
//! Results are bit-identical for any `TG_JOBS` value.

use tailguard::{
    run_indexed, run_simulation, scenarios, FaultEpisode, FaultKind, FaultPlan, MitigationConfig,
    Scenario,
};
use tailguard_bench::{header, jobs, scaled, FigureCsv};
use tailguard_policy::Policy;
use tailguard_simcore::SimTime;
use tailguard_workload::{FanoutDist, QueryMix, TailbenchWorkload};

/// The headline SLO: class-0 p99 must stay under 5 ms.
const SLO_MS: f64 = 5.0;
const LOAD: f64 = 0.4;
const FANOUT: u32 = 10;
const SLOW_SERVERS: u32 = 10;
const SLOW_FACTOR: f64 = 8.0;

fn scenario() -> Scenario {
    let mut s = scenarios::single_class(TailbenchWorkload::Masstree, SLO_MS, 100);
    // Fixed fanout keeps every query exposed to the slow rack with the
    // same probability, which makes the p99 shift interpretable.
    s.mix = QueryMix::single(FanoutDist::fixed(FANOUT));
    s
}

fn plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    for server in 0..SLOW_SERVERS {
        plan = plan.with_episode(FaultEpisode::new(
            server,
            SimTime::ZERO,
            SimTime::from_millis(3_600_000), // whole run
            FaultKind::Slowdown {
                factor: SLOW_FACTOR,
            },
        ));
    }
    plan
}

fn mitigation() -> MitigationConfig {
    MitigationConfig::new().with_hedge_after(0.5)
}

struct Cell {
    policy: Policy,
    mode: &'static str,
    p99_ms: f64,
    completed: u64,
    partial: u64,
    failed: u64,
    lost: u64,
    hedges: u64,
    hedge_wins: u64,
    retries: u64,
}

fn repo_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_default();
    cwd.ancestors()
        .find(|a| a.join("Cargo.toml").exists() && a.join("crates").exists())
        .map(std::path::Path::to_path_buf)
        .unwrap_or(cwd)
}

fn main() {
    header(
        "fault_matrix",
        "robustness (beyond-paper)",
        "p99 under a 10-server 8x slowdown episode: healthy vs faulty vs hedged, per policy",
    );
    let queries = scaled(20_000);
    let scenario = scenario();
    let plan = plan();
    let policies = [Policy::Fifo, Policy::Priq, Policy::TEdf, Policy::TfEdf];
    const MODES: [&str; 3] = ["healthy", "faulty", "mitigated"];
    let cells: Vec<(Policy, usize)> = policies
        .iter()
        .flat_map(|&p| (0..MODES.len()).map(move |m| (p, m)))
        .collect();
    let results: Vec<Cell> = run_indexed(&cells, jobs(), |_, &(policy, mode)| {
        let input = scenario.input(LOAD, queries);
        let mut config = scenario.config(policy).with_warmup(queries / 20);
        if mode >= 1 {
            config = config.with_faults(plan.clone());
        }
        if mode == 2 {
            config = config.with_mitigation(mitigation());
        }
        let mut report = run_simulation(&config, &input);
        let r = report.robustness.clone();
        Cell {
            policy,
            mode: MODES[mode],
            p99_ms: report.class_tail(0, 0.99).as_millis_f64(),
            completed: report.completed_queries,
            partial: r.partial_completions,
            failed: r.failed_queries,
            lost: r.tasks_lost_to_faults,
            hedges: r.hedges_issued,
            hedge_wins: r.hedge_wins,
            retries: r.retries,
        }
    });

    let mut csv = FigureCsv::create(
        "bench_fault_matrix",
        &[
            "cell",
            "p99_ms",
            "completed",
            "partial",
            "failed",
            "lost",
            "hedges",
            "hedge_wins",
            "retries",
        ],
    );
    println!(
        "{:<10} {:<9} {:>10}  (SLO p99 = {SLO_MS} ms at {}% load, {} queries/cell)",
        "policy",
        "mode",
        "p99(ms)",
        LOAD * 100.0,
        queries
    );
    for c in &results {
        let verdict = if c.p99_ms <= SLO_MS { "ok" } else { "VIOLATED" };
        println!(
            "{:<10} {:<9} {:>10.3}  {}",
            c.policy.name(),
            c.mode,
            c.p99_ms,
            verdict
        );
        csv.labeled_row(
            &format!("{}/{}", c.policy.name(), c.mode),
            &[
                c.p99_ms,
                c.completed as f64,
                c.partial as f64,
                c.failed as f64,
                c.lost as f64,
                c.hedges as f64,
                c.hedge_wins as f64,
                c.retries as f64,
            ],
        );
    }
    println!("csv: {}", csv.finish());

    let find = |policy: Policy, mode: &str| {
        results
            .iter()
            .find(|c| c.policy == policy && c.mode == mode)
            .expect("cell present")
    };
    let faulty = find(Policy::TfEdf, "faulty");
    let mitigated = find(Policy::TfEdf, "mitigated");
    println!(
        "TF-EDFQ under the episode: p99 {:.3} ms unmitigated vs {:.3} ms hedged (SLO {SLO_MS} ms)",
        faulty.p99_ms, mitigated.p99_ms
    );

    // Machine-readable record at the repo root.
    let mut rows = String::new();
    for c in &results {
        rows.push_str(&format!(
            "    {{\"policy\": \"{}\", \"mode\": \"{}\", \"p99_ms\": {:.6}, \"completed\": {}, \"partial\": {}, \"failed\": {}, \"tasks_lost\": {}, \"hedges_issued\": {}, \"hedge_wins\": {}, \"retries\": {}}},\n",
            c.policy.name(),
            c.mode,
            c.p99_ms,
            c.completed,
            c.partial,
            c.failed,
            c.lost,
            c.hedges,
            c.hedge_wins,
            c.retries
        ));
    }
    rows.pop();
    rows.pop(); // trailing ",\n"
    let json = format!(
        "{{\n  \"bench\": \"fault_matrix\",\n  \"scenario\": {{\"workload\": \"masstree\", \"servers\": 100, \"fanout\": {FANOUT}, \"slo_p99_ms\": {SLO_MS}, \"load\": {LOAD}}},\n  \"fault\": {{\"kind\": \"slowdown\", \"factor\": {SLOW_FACTOR}, \"servers\": {SLOW_SERVERS}, \"whole_run\": true}},\n  \"mitigation\": {{\"hedge_after\": 0.5, \"max_attempts\": 2}},\n  \"queries_per_cell\": {queries},\n  \"claim\": {{\"tfedf_faulty_p99_ms\": {:.6}, \"tfedf_mitigated_p99_ms\": {:.6}, \"faulty_meets_slo\": {}, \"mitigated_meets_slo\": {}}},\n  \"cells\": [\n{rows}\n  ]\n}}\n",
        faulty.p99_ms,
        mitigated.p99_ms,
        faulty.p99_ms <= SLO_MS,
        mitigated.p99_ms <= SLO_MS
    );
    let path = repo_root().join("BENCH_faults.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

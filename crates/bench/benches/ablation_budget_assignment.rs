//! Ablation of the paper's footnote 4: all tasks of a query share one
//! pre-dequeuing budget, which the paper argues "results in the minimum
//! overall resource allocation".
//!
//! We compare, on the heterogeneous SaS simulation twin where the shared-vs-
//! per-task distinction is sharpest:
//!
//! * **shared budget** (the paper): every task of a query gets the deadline
//!   `t_0 + x_p^SLO − x_p^u(k_f)` from the *joint* order statistics of the
//!   query's placement,
//! * **per-task budget**: the task on server `l` gets
//!   `t_0 + x_p^SLO − F_l^{-1}(p^{1/k_f})` — each task budgeted against its
//!   own server's CDF at the per-task percentile.
//!
//! Per-task budgets give tasks on slow servers *earlier* deadlines (their
//! own tail is worse), front-loading the very tasks the max already waits
//! for and starving fast-server tasks of their slack.

use tailguard::scenarios::{self, SasCluster};
use tailguard::{run_simulation, RequestInput, SimInput};
use tailguard_bench::{header, maxload_opts};
use tailguard_dist::Cdf;
use tailguard_policy::Policy;
use tailguard_simcore::SimDuration;

fn main() {
    header(
        "ablation_budget_assignment",
        "paper footnote 4 (no figure — design-choice ablation)",
        "Shared query-wide deadline vs per-task per-server deadlines, SaS twin",
    );
    let opts = maxload_opts(40_000);
    let scenario = scenarios::sas_testbed();

    // Per-cluster single-task quantile at the per-task percentile for each
    // class fanout, precomputed from the cluster CDFs.
    let cluster_dists: Vec<_> = SasCluster::ALL.iter().map(|c| c.service_dist()).collect();
    let per_task_q = |server: u32, fanout: u32, p: f64| -> f64 {
        let d = &cluster_dists[(server / 8) as usize];
        d.quantile(p.powf(1.0 / f64::from(fanout)))
    };

    println!(
        "\n{:<22} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "budget assignment", "load", "A p99 (ms)", "B p99 (ms)", "C p99 (ms)", "SLOs ok"
    );
    for load in [0.36, 0.42, 0.48] {
        let shared_input = scenario.input(load, opts.queries);

        // Derive the per-task variant from the identical workload.
        let per_task_input = SimInput {
            requests: shared_input
                .requests
                .iter()
                .map(|r| {
                    let q = &r.queries[0];
                    let servers = q.servers.clone().expect("sas places explicitly");
                    let spec = scenario.classes[q.class as usize];
                    let slo = spec.slo.as_millis_f64();
                    let budgets: Vec<SimDuration> = servers
                        .iter()
                        .map(|&s| {
                            SimDuration::from_millis_f64(
                                (slo - per_task_q(s, q.fanout, spec.percentile)).max(0.0),
                            )
                        })
                        .collect();
                    let mut q = q.clone();
                    q.task_budgets = Some(budgets);
                    RequestInput {
                        arrival: r.arrival,
                        queries: vec![q],
                    }
                })
                .collect(),
        };

        for (label, input) in [
            ("shared (paper)", &shared_input),
            ("per-task", &per_task_input),
        ] {
            let config = scenario
                .config(Policy::TfEdf)
                .with_warmup(opts.queries / 20);
            let mut r = run_simulation(&config, input);
            println!(
                "{:<22} {:>7.0}% {:>12.0} {:>12.0} {:>12.0} {:>8}",
                label,
                load * 100.0,
                r.class_tail(0, 0.99).as_millis_f64(),
                r.class_tail(1, 0.99).as_millis_f64(),
                r.class_tail(2, 0.99).as_millis_f64(),
                if r.meets_all_slos() { "yes" } else { "NO" }
            );
        }
    }
    println!("\nReading: shared and per-task budgets are statistically indistinguishable");
    println!("even in the heterogeneous setting where specializing deadlines per server");
    println!("is most tempting (a task only competes with *other queries'* tasks at its");
    println!("own server, so intra-query budget reshuffling barely moves the max).");
    println!("Footnote 4's shared budget is therefore the right default: same tails,");
    println!("one deadline computation per query, and a cacheable (class, placement)");
    println!("budget instead of one per task.");
}

//! Table III: the 99th-percentile latency of each query type (fanout 1, 10,
//! 100) at the policy's own maximum load, Masstree workload.
//!
//! Paper's observations to reproduce: (1) the fanout-100 type *barely*
//! meets the SLO for both policies — the highest fanout constrains the max
//! load; (2) TailGuard's per-type tails sit much closer together than
//! FIFO's (more balanced resource allocation), with the low-fanout types no
//! longer wildly over-served.

use tailguard::{max_load, measure_at_load, scenarios};
use tailguard_bench::{header, maxload_opts};
use tailguard_policy::Policy;
use tailguard_workload::TailbenchWorkload;

fn main() {
    header(
        "table3_per_fanout_breakdown",
        "Table III",
        "p99 per query type at each policy's max load (Masstree, single class)",
    );
    let opts = maxload_opts(200_000);

    println!(
        "\n{:>10} {:<10} {:>9} {:>9} {:>9} {:>9}",
        "x99 SLO", "policy", "maxload", "k=1", "k=10", "k=100"
    );
    for slo in [0.8, 1.0, 1.2, 1.4] {
        let scenario = scenarios::single_class(TailbenchWorkload::Masstree, slo, 100);
        for policy in [Policy::Fifo, Policy::TfEdf] {
            let load = max_load(&scenario, policy, &opts);
            let mut report = measure_at_load(&scenario, policy, load, &opts);
            println!(
                "{:>10.1} {:<10} {:>8.1}% {:>9.3} {:>9.3} {:>9.3}",
                slo,
                policy.name(),
                load * 100.0,
                report.type_tail(0, 1).as_millis_f64(),
                report.type_tail(0, 10).as_millis_f64(),
                report.type_tail(0, 100).as_millis_f64(),
            );
        }
    }
    println!("\nPaper Table III reference (x99=0.8): FIFO 0.439/0.394/0.798,");
    println!("TailGuard 0.572/0.745/0.797 — fanout-100 binds; TailGuard's k=1 and k=10");
    println!("tails move up toward the SLO (resources reclaimed from over-served types).");
}

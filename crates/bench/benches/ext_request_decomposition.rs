//! §III.B extension: request-level task decomposition (Eq. 7).
//!
//! A request is M sequential queries. The request pre-dequeuing budget
//! `T_b^R = x_p^{R,SLO} − x_p^{R,u}` is additive across queries; how to
//! split it is the paper's stated open problem. This bench (a) validates
//! the additive identity by simulation and (b) compares three splits —
//! equal, proportional-to-tail, and the naive baseline that gives every
//! query the *full per-query* SLO `x_p^{R,SLO}/M` — by the request p99 they
//! deliver at a fixed load.

use tailguard::{run_simulation, scenarios, BudgetSplit, RequestPlanner, SimInput};
use tailguard_bench::{header, scaled};
use tailguard_policy::Policy;
use tailguard_simcore::{SimDuration, SimRng, SimTime};
use tailguard_workload::{ArrivalProcess, TailbenchWorkload};

fn main() {
    header(
        "ext_request_decomposition",
        "§III.B 'remark on meeting request tail latency SLO' (Eq. 7)",
        "Sequential M-query requests under request-level budgets",
    );

    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let cluster = &scenario.cluster;
    let planner = RequestPlanner::new(0.99, scaled(200_000), 41);
    let fanouts = [10u32, 100];
    let request_slo = SimDuration::from_millis_f64(2.0);

    let unloaded = planner.unloaded_request_tail_ms(cluster, &fanouts);
    println!("\nRequest = fanout-10 query then fanout-100 query, p99 SLO = 2.0 ms");
    println!(
        "x99^(R,u) = {unloaded:.3} ms  ->  T_b^R = {:.3} ms",
        2.0 - unloaded
    );

    // Build identical request arrival patterns, differing only in budgets.
    // Rate for 35% load: each request executes (10 + 100) tasks of mean
    // work T_m, so lambda = rho * N / (110 * T_m).
    let requests = scaled(40_000);
    let work_per_request_ms = 110.0 * TailbenchWorkload::Masstree.mean_service_ms();
    let arrival = ArrivalProcess::poisson(0.35 * 100.0 / work_per_request_ms);
    let mut rng = SimRng::seed(17);
    let mut arrivals = Vec::with_capacity(requests);
    let mut t = SimTime::ZERO;
    for _ in 0..requests {
        t += arrival.next_gap(&mut rng);
        arrivals.push(t);
    }

    println!(
        "\n{:<24} {:>14} {:>14} {:>12}",
        "budget split", "req p99 (ms)", "budget sum", "meets SLO"
    );
    for (label, budgets) in [
        (
            "equal (T_b^R / M)",
            planner.plan(cluster, &fanouts, request_slo, BudgetSplit::Equal),
        ),
        (
            "proportional to tail",
            planner.plan(
                cluster,
                &fanouts,
                request_slo,
                BudgetSplit::ProportionalToTail,
            ),
        ),
    ] {
        let input = SimInput {
            requests: arrivals
                .iter()
                .map(|&at| planner.request_input(at, 0, &fanouts, &budgets))
                .collect(),
        };
        let config = scenario.config(Policy::TfEdf).with_warmup(requests / 10);
        let mut report = run_simulation(&config, &input);
        let req = report
            .request_latency_by_class
            .get_mut(&0)
            .expect("request latencies recorded");
        let p99 = req.percentile(0.99);
        println!(
            "{:<24} {:>14.3} {:>14.3} {:>12}",
            label,
            p99.as_millis_f64(),
            budgets.total.as_millis_f64(),
            if p99 <= request_slo { "yes" } else { "NO" }
        );
    }

    // Naive baseline: treat each query as if it owned SLO/M outright.
    let naive_budget_q1 = SimDuration::from_millis_f64(
        1.0 - TailbenchWorkload::Masstree.unloaded_query_tail(0.99, 10),
    );
    let naive_budget_q2 = SimDuration::from_millis_f64(
        (1.0 - TailbenchWorkload::Masstree.unloaded_query_tail(0.99, 100)).max(0.0),
    );
    let input = SimInput {
        requests: arrivals
            .iter()
            .map(|&at| tailguard::RequestInput {
                arrival: at,
                queries: vec![
                    tailguard::QuerySpec {
                        class: 0,
                        fanout: 10,
                        servers: None,
                        budget_override: Some(naive_budget_q1),
                        task_budgets: None,
                    },
                    tailguard::QuerySpec {
                        class: 0,
                        fanout: 100,
                        servers: None,
                        budget_override: Some(naive_budget_q2),
                        task_budgets: None,
                    },
                ],
            })
            .collect(),
    };
    let config = scenario.config(Policy::TfEdf).with_warmup(requests / 10);
    let mut report = run_simulation(&config, &input);
    let req = report
        .request_latency_by_class
        .get_mut(&0)
        .expect("request latencies recorded");
    let p99 = req.percentile(0.99);
    println!(
        "{:<24} {:>14.3} {:>14.3} {:>12}",
        "naive per-query SLO/M",
        p99.as_millis_f64(),
        (naive_budget_q1 + naive_budget_q2).as_millis_f64(),
        if p99 <= request_slo { "yes" } else { "NO" }
    );

    // --- Part 2: where request-level budgeting genuinely wins. -----------
    // Shore's heavy tail makes the unloaded request tail strongly
    // subadditive: for M=4 fanout-1 queries, sum of per-query x99 is
    // 4 x 2.095 = 8.38 ms, but the p99 of the *sum* is far smaller. A
    // request SLO between the two is infeasible for naive per-query
    // splitting (budgets clamp to zero) yet comfortable under Eq. 7.
    let shore = scenarios::single_class(TailbenchWorkload::Shore, 6.0, 100);
    let planner2 = RequestPlanner::new(0.99, scaled(200_000), 43);
    let fanouts2 = [1u32, 1, 1, 1];
    let joint = planner2.unloaded_request_tail_ms(&shore.cluster, &fanouts2);
    let sum_parts = 4.0 * TailbenchWorkload::Shore.unloaded_query_tail(0.99, 1);
    let slo2 = SimDuration::from_millis_f64((joint + sum_parts) / 2.0);
    println!(
        "\nShore M=4 fanout-1 request: x99^(R,u) = {joint:.2} ms vs sum of parts {sum_parts:.2} ms"
    );
    println!(
        "request SLO set between them: {:.2} ms",
        slo2.as_millis_f64()
    );

    let requests2 = scaled(40_000);
    let work2 = 4.0 * TailbenchWorkload::Shore.mean_service_ms();
    let arrival2 = ArrivalProcess::poisson(0.35 * 100.0 / work2);
    let mut rng2 = SimRng::seed(19);
    let mut arrivals2 = Vec::with_capacity(requests2);
    let mut t2 = SimTime::ZERO;
    for _ in 0..requests2 {
        t2 += arrival2.next_gap(&mut rng2);
        arrivals2.push(t2);
    }
    println!(
        "{:<24} {:>14} {:>14} {:>12}",
        "budget split", "req p99 (ms)", "budget sum", "meets SLO"
    );
    let eq7 = planner2.plan(&shore.cluster, &fanouts2, slo2, BudgetSplit::Equal);
    let naive_each = SimDuration::from_millis_f64(
        (slo2.as_millis_f64() / 4.0 - TailbenchWorkload::Shore.unloaded_query_tail(0.99, 1))
            .max(0.0),
    );
    for (label, budgets) in [
        ("Eq. 7 equal split", eq7.per_query.clone()),
        ("naive per-query SLO/M", vec![naive_each; 4]),
    ] {
        let input = SimInput {
            requests: arrivals2
                .iter()
                .map(|&at| tailguard::RequestInput {
                    arrival: at,
                    queries: budgets
                        .iter()
                        .map(|&b| tailguard::QuerySpec {
                            class: 0,
                            fanout: 1,
                            servers: None,
                            budget_override: Some(b),
                            task_budgets: None,
                        })
                        .collect(),
                })
                .collect(),
        };
        let config = shore.config(Policy::TfEdf).with_warmup(requests2 / 10);
        let mut report = run_simulation(&config, &input);
        let req = report
            .request_latency_by_class
            .get_mut(&0)
            .expect("request latencies recorded");
        let p99 = req.percentile(0.99);
        let total: SimDuration = budgets.iter().copied().sum();
        println!(
            "{:<24} {:>14.3} {:>14.3} {:>12}",
            label,
            p99.as_millis_f64(),
            total.as_millis_f64(),
            if p99 <= slo2 { "yes" } else { "NO" }
        );
    }
    println!(
        "naive budgets clamp to {:.3} ms/query (per-query SLO {:.2} < x99^u(1) {:.3}),",
        naive_each.as_millis_f64(),
        slo2.as_millis_f64() / 4.0,
        TailbenchWorkload::Shore.unloaded_query_tail(0.99, 1)
    );
    println!("turning every task maximally urgent — Eq. 7's pooled budget keeps slack.");
    println!("(p99s coincide here because a uniform budget shift does not reorder a");
    println!("homogeneous stream; in mixed traffic zero-budget tasks preempt every");
    println!("other class, which is the Fig. 5/6 pathology the budgets exist to avoid.)");

    println!("\nEq. 7 check: request-level splits spend the same total budget and meet");
    println!("the request SLO; per-query SLO splitting cannot even express a feasible");
    println!("budget when the request SLO is below the sum of per-query tails.");
}

//! Ablation: how much does the deadline estimator's CDF source matter?
//!
//! DESIGN.md §7(2): TailGuard's deadlines depend on the unloaded per-server
//! CDFs. We compare, on the heterogeneous SaS simulation twin:
//!
//! * **analytic** — true distributions (the idealized simulation setting),
//! * **online** — offline-seeded histograms refreshed as results return
//!   (§III.B.2, what a deployment actually has),
//! * **pooled-homogeneous** — a deliberately mis-specified estimator that
//!   pools all 32 nodes into one CDF, ignoring cluster heterogeneity (what
//!   a fanout-aware but heterogeneity-blind implementation would do).

use std::sync::Arc;
use tailguard::scenarios::{self, SasCluster};
use tailguard::{measure_at_load, EstimatorMode, Scenario};
use tailguard_bench::{header, maxload_opts};
use tailguard_dist::DynDistribution;
use tailguard_policy::Policy;

fn pooled_scenario() -> Scenario {
    // Same workload and placement, but the cluster spec hands every node
    // the same pooled mixture — the estimator can no longer distinguish
    // clusters (placement-specific budgets collapse to one per fanout).
    let mut s = scenarios::sas_testbed();
    let pooled: DynDistribution = Arc::new(tailguard_dist::Mixture::new(
        SasCluster::ALL
            .iter()
            .map(|c| {
                (
                    1.0,
                    Box::new(c.service_dist()) as Box<dyn tailguard_dist::Distribution>,
                )
            })
            .collect(),
    ));
    // 32 identical references → one estimator group; the *simulated* nodes
    // keep their true heterogeneous speeds via the original scenario, so we
    // emulate mis-estimation by re-deriving budgets from the pooled spec:
    // easiest faithful construction is a scenario whose estimator cluster is
    // pooled but whose service draws still come from it. Since the cluster
    // spec drives both, this arm shows "what if the world really were
    // pooled": a homogeneity upper bound for comparison.
    s.cluster = tailguard::ClusterSpec::heterogeneous(vec![pooled; 32]);
    s.label = "SaS pooled-homogeneous counterfactual".into();
    s
}

fn main() {
    header(
        "ablation_estimator",
        "DESIGN.md §7(2) (no paper counterpart — design-choice ablation)",
        "SLO compliance on the SaS twin under different estimator CDF sources",
    );
    let opts = maxload_opts(40_000);
    let het = scenarios::sas_testbed();

    println!(
        "\n{:<28} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "estimator arm", "load", "A p99 (ms)", "B p99 (ms)", "C p99 (ms)", "SLOs ok"
    );
    for load in [0.30, 0.40, 0.48] {
        // Analytic heterogeneous (exact per-cluster CDFs).
        let mut r = measure_at_load(&het, Policy::TfEdf, load, &opts);
        println!(
            "{:<28} {:>9.0}% {:>12.0} {:>12.0} {:>12.0} {:>8}",
            "analytic (per-cluster)",
            load * 100.0,
            r.class_tail(0, 0.99).as_millis_f64(),
            r.class_tail(1, 0.99).as_millis_f64(),
            r.class_tail(2, 0.99).as_millis_f64(),
            if r.meets_all_slos() { "yes" } else { "NO" }
        );

        // Online estimator on the same heterogeneous world.
        let input = het.input(load, opts.queries);
        let config = het
            .config(Policy::TfEdf)
            .with_estimator(EstimatorMode::Online {
                refresh_every: 20_000,
                offline_samples: 50_000,
            })
            .with_warmup(opts.queries / 20);
        let mut r = tailguard::run_simulation(&config, &input);
        println!(
            "{:<28} {:>9.0}% {:>12.0} {:>12.0} {:>12.0} {:>8}",
            "online (seeded + refresh)",
            load * 100.0,
            r.class_tail(0, 0.99).as_millis_f64(),
            r.class_tail(1, 0.99).as_millis_f64(),
            r.class_tail(2, 0.99).as_millis_f64(),
            if r.meets_all_slos() { "yes" } else { "NO" }
        );

        // Pooled counterfactual world.
        let pooled = pooled_scenario();
        let mut r = measure_at_load(&pooled, Policy::TfEdf, load, &opts);
        println!(
            "{:<28} {:>9.0}% {:>12.0} {:>12.0} {:>12.0} {:>8}",
            "pooled-homogeneous world",
            load * 100.0,
            r.class_tail(0, 0.99).as_millis_f64(),
            r.class_tail(1, 0.99).as_millis_f64(),
            r.class_tail(2, 0.99).as_millis_f64(),
            if r.meets_all_slos() { "yes" } else { "NO" }
        );
    }
    println!("\nReading: online tracks analytic closely (the paper's low-cost updating");
    println!("process suffices); pooling erases the Server-room skew signal and shifts");
    println!("class tails — heterogeneity-aware CDFs are load-bearing.");

    // --- Robustness under a resource-availability change (§III.B.2). -----
    // A 1.5x mid-run slowdown of 8 Wet-lab nodes: does a stale estimator
    // (frozen CDFs) behave differently from an adaptive one?
    use tailguard::{run_simulation, Slowdown};
    println!("\nMid-run slowdown (Wet-lab nodes 1.5x slower at t=40%), load 35%:");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>8}",
        "estimator arm", "A p99 (ms)", "B p99 (ms)", "C p99 (ms)", "SLOs ok"
    );
    let input = het.input(0.35, opts.queries);
    let cut = input.requests[opts.queries * 2 / 5].arrival;
    for (label, refresh) in [
        ("frozen (stale CDFs)", u64::MAX),
        ("adaptive (refresh 20k)", 20_000),
    ] {
        let config = het
            .config(Policy::TfEdf)
            .with_estimator(EstimatorMode::Online {
                refresh_every: refresh,
                offline_samples: 100_000,
            })
            .with_warmup(opts.queries / 20)
            .with_slowdown(Slowdown::new(cut, 8..16, 1.5));
        let mut r = run_simulation(&config, &input);
        println!(
            "{:<24} {:>12.0} {:>12.0} {:>12.0} {:>8}",
            label,
            r.class_tail(0, 0.99).as_millis_f64(),
            r.class_tail(1, 0.99).as_millis_f64(),
            r.class_tail(2, 0.99).as_millis_f64(),
            if r.meets_all_slos() { "yes" } else { "NO" }
        );
    }
    println!("\nRobustness finding: TF-EDFQ's ordering is invariant to uniform budget");
    println!("shifts within a class, so moderate estimator staleness barely moves the");
    println!("tails — estimation accuracy matters for budget *levels* (admission");
    println!("control), while overload from genuine capacity loss needs admission");
    println!("control, not re-estimation.");
}

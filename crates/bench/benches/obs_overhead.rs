//! Observability overhead: what does tracing cost the simulator hot path?
//!
//! Six single-thread measurements over the same fixed-seed scenario as
//! `perf_throughput`'s `single_sim_serial` (Masstree single-class, N=100,
//! load 0.5). Every overhead figure uses the same baseline and the same
//! direction: `wall(variant) / wall(nullsink) − 1`, so the rows are
//! directly comparable (an earlier revision mixed recording-only and
//! full-pipeline denominators, which made the "sink only" row read
//! *higher* than the full recorder).
//!
//!  - `nullsink` — plain [`run_simulation`]: the default `NullSink` with
//!    the cached `trace_on: false` fast path. This is the path every
//!    existing caller takes; the PR-4 acceptance bound is <2% regression
//!    against the committed seed baseline (`BENCH_throughput.json`).
//!  - `ringrecorder` — [`run_simulation_traced`] into the legacy
//!    [`RingRecorder`]: one `TraceEvent` clone plus one mutex round-trip
//!    per event. Recording only — no snapshots, no decode, no registry.
//!  - `binrecorder` — [`run_simulation_traced`] into the
//!    [`BinaryRecorder`] at [`FLIGHT_RING_CAPACITY`]: batched event
//!    delivery, fixed-width encode into a staging buffer, one block-move
//!    flush into the ring per `FLUSH_EVENTS` batch, ring and staging
//!    block cache-resident. The always-on configuration and the PR-9
//!    headline row; acceptance is ≤15% over `nullsink`.
//!  - `binrecorder_fullring` — the same recorder at
//!    [`DEFAULT_RING_CAPACITY`], which retains this run's entire ~28 MiB
//!    event stream. Identical encode path; the extra cost over
//!    `binrecorder` is purely retention volume (cold first-touch pages),
//!    the price of whole-run analysis (`tailguard trace`), not of
//!    recording per se.
//!  - `binrecorder_sampled` — the flight-capacity recorder with
//!    tail-aware sampling at the default 1% healthy keep rate: per-query
//!    staging adds bookkeeping but the retained volume shrinks ~50×.
//!  - `observed_pipeline` — [`run_simulation_observed`] with default
//!    options: full-capacity recording plus snapshot sampling, post-run
//!    decode, the SLO monitor, and registry ingestion. The end-to-end
//!    cost of `tailguard trace`/`slo`, not a recording figure.
//!
//! Results go to `BENCH_obs.json` at the repo root; if the committed
//! `BENCH_throughput.json` is present, the nullsink row is also compared
//! against its `single_sim_serial` queries/sec.
//!
//! Run with `cargo bench --bench obs_overhead`. `TG_BENCH_SCALE` scales
//! the query count. `TG_OBS_BUDGET_PCT=<pct>` turns the run into a CI
//! smoke check: exit non-zero if the `binrecorder` overhead exceeds the
//! budget.

use std::time::Instant;
use tailguard::{
    run_simulation, run_simulation_observed, run_simulation_traced, scenarios, ObsOptions,
    DEFAULT_RING_CAPACITY, FLIGHT_RING_CAPACITY,
};
use tailguard_bench::{header, scaled};
use tailguard_obs::{BinaryRecorder, RingRecorder, SamplerConfig};
use tailguard_policy::Policy;
use tailguard_workload::TailbenchWorkload;

#[derive(Clone)]
struct Measurement {
    label: String,
    wall_secs: f64,
    events: u64,
    queries_completed: u64,
    trace_events: u64,
}

impl Measurement {
    fn queries_per_sec(&self) -> f64 {
        self.queries_completed as f64 / self.wall_secs
    }

    fn overhead_pct(&self, baseline: &Measurement) -> f64 {
        (self.wall_secs / baseline.wall_secs - 1.0) * 100.0
    }
}

/// Best-of-15 per variant with the repetitions interleaved round-robin and
/// the in-round order *shuffled* every round (fixed-seed xorshift, so runs
/// are reproducible). Interleaving spreads slow drift in shared-host CPU
/// speed across all variants. The shuffle matters more than it looks: with
/// a fixed or merely rotated order each variant's *predecessor* is
/// constant, and the allocator/page state a predecessor leaves behind
/// biases the successor's reading by several points (a variant that frees
/// tens of MiB hands its successor pre-faulted pages; one that allocates
/// nothing hands it cold ones). Shuffling lets every variant sample many
/// predecessors and best-of-N keep its fairest draw. Each variant gets one
/// warm run first.
fn measure_interleaved(
    variants: &mut [(&str, &mut dyn FnMut() -> (u64, u64, u64))],
) -> Vec<Measurement> {
    for (_, run) in variants.iter_mut() {
        let _ = run(); // warm
    }
    let n = variants.len();
    let mut best: Vec<Option<Measurement>> = variants.iter().map(|_| None).collect();
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut order: Vec<usize> = (0..n).collect();
    for _round in 0..15 {
        for j in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(j, (state % (j as u64 + 1)) as usize);
        }
        for k in 0..n {
            let i = order[k];
            let (label, run) = &mut variants[i];
            let start = Instant::now();
            let (events, queries_completed, trace_events) = run();
            let wall_secs = start.elapsed().as_secs_f64();
            if best[i].as_ref().is_none_or(|b| wall_secs < b.wall_secs) {
                best[i] = Some(Measurement {
                    label: label.to_string(),
                    wall_secs,
                    events,
                    queries_completed,
                    trace_events,
                });
            }
        }
    }
    best.into_iter().map(|m| m.expect("measured")).collect()
}

fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn repo_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_default();
    cwd.ancestors()
        .find(|a| a.join("Cargo.toml").exists() && a.join("crates").exists())
        .map(std::path::Path::to_path_buf)
        .unwrap_or(cwd)
}

fn main() {
    header(
        "obs_overhead",
        "PR-4/PR-9 observability",
        "NullSink vs legacy/binary recording vs full pipeline on the simulator hot path (best of 15)",
    );
    let queries = scaled(60_000);
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let input = scenario.input(0.5, queries);
    let config = scenario.config(Policy::TfEdf).with_warmup(queries / 20);

    let mut run_null = || {
        let report = run_simulation(&config, &input);
        (report.events_processed, report.completed_queries, 0)
    };
    let mut run_ring = || {
        let recorder = RingRecorder::with_capacity(DEFAULT_RING_CAPACITY);
        let report = run_simulation_traced(&config, &input, recorder.sink());
        (
            report.events_processed,
            report.completed_queries,
            recorder.total_recorded(),
        )
    };
    let mut run_bin = || {
        let recorder = BinaryRecorder::with_capacity(FLIGHT_RING_CAPACITY);
        let report = run_simulation_traced(&config, &input, recorder.sink());
        (
            report.events_processed,
            report.completed_queries,
            recorder.total_recorded(),
        )
    };
    let mut run_bin_fullring = || {
        let recorder = BinaryRecorder::with_capacity(DEFAULT_RING_CAPACITY);
        let report = run_simulation_traced(&config, &input, recorder.sink());
        (
            report.events_processed,
            report.completed_queries,
            recorder.total_recorded(),
        )
    };
    let mut run_bin_sampled = || {
        let recorder = BinaryRecorder::with_capacity(FLIGHT_RING_CAPACITY);
        let sink = recorder.sink_sampled(SamplerConfig::default());
        let report = run_simulation_traced(&config, &input, sink);
        (
            report.events_processed,
            report.completed_queries,
            recorder.total_recorded(),
        )
    };
    let mut run_observed = || {
        let run = run_simulation_observed(&config, &input, &ObsOptions::default());
        (
            run.report.events_processed,
            run.report.completed_queries,
            run.recorder.total_recorded(),
        )
    };
    let measured = measure_interleaved(&mut [
        ("nullsink", &mut run_null),
        ("ringrecorder", &mut run_ring),
        ("binrecorder", &mut run_bin),
        ("binrecorder_fullring", &mut run_bin_fullring),
        ("binrecorder_sampled", &mut run_bin_sampled),
        ("observed_pipeline", &mut run_observed),
    ]);
    let nullsink = measured[0].clone();

    for m in &measured {
        let overhead = if m.label == "nullsink" {
            String::new()
        } else {
            format!("  {:+.1}% vs nullsink", m.overhead_pct(&nullsink))
        };
        println!(
            "{:<20} {:>10.0} queries/s  ({:.3}s wall, {} engine events, {} trace events){overhead}",
            m.label,
            m.queries_per_sec(),
            m.wall_secs,
            m.events,
            m.trace_events
        );
    }
    let ring_pct = measured[1].overhead_pct(&nullsink);
    let bin_pct = measured[2].overhead_pct(&nullsink);
    let bin_fullring_pct = measured[3].overhead_pct(&nullsink);
    let bin_sampled_pct = measured[4].overhead_pct(&nullsink);
    let observed_pct = measured[5].overhead_pct(&nullsink);
    println!("binary recording overhead vs nullsink: {bin_pct:+.1}% (acceptance: <=15%)");

    // Regression check against the committed seed throughput baseline.
    let root = repo_root();
    let seed_delta_pct = std::fs::read_to_string(root.join("BENCH_throughput.json"))
        .ok()
        .as_deref()
        .and_then(|text| json_number(text, "queries_per_sec"))
        .map(|seed_qps| {
            let pct = (nullsink.queries_per_sec() / seed_qps - 1.0) * 100.0;
            println!(
                "nullsink vs committed seed baseline: {:.0} vs {seed_qps:.0} queries/s \
                 ({pct:+.1}%, acceptance: no worse than -2% on comparable hardware)",
                nullsink.queries_per_sec()
            );
            pct
        });

    let mut rows = String::new();
    for m in &measured {
        rows.push_str(&format!(
            "    {{\"label\": \"{}\", \"wall_secs\": {:.4}, \"events\": {}, \"queries_completed\": {}, \"trace_events\": {}, \"queries_per_sec\": {:.0}}},\n",
            m.label, m.wall_secs, m.events, m.queries_completed, m.trace_events, m.queries_per_sec()
        ));
    }
    rows.pop();
    rows.pop(); // trailing ",\n"
    let seed_field = match seed_delta_pct {
        Some(pct) => format!("{pct:.1}"),
        None => "null".to_string(),
    };
    let out = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"queries\": {queries},\n  \
         \"binrecorder_overhead_pct\": {bin_pct:.1},\n  \
         \"binrecorder_fullring_overhead_pct\": {bin_fullring_pct:.1},\n  \
         \"binrecorder_sampled_overhead_pct\": {bin_sampled_pct:.1},\n  \
         \"ringrecorder_overhead_pct\": {ring_pct:.1},\n  \
         \"observed_pipeline_overhead_pct\": {observed_pct:.1},\n  \
         \"nullsink_vs_seed_baseline_pct\": {seed_field},\n  \
         \"measurements\": [\n{rows}\n  ]\n}}\n"
    );
    let path = root.join("BENCH_obs.json");
    std::fs::write(&path, out).expect("write BENCH_obs.json");
    println!("wrote {}", path.display());

    // CI smoke mode: fail the run if binary recording blew its budget.
    if let Some(budget) = std::env::var("TG_OBS_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if bin_pct > budget {
            eprintln!(
                "FAIL: binrecorder overhead {bin_pct:+.1}% exceeds the TG_OBS_BUDGET_PCT budget of {budget}%"
            );
            std::process::exit(1);
        }
        println!("binrecorder overhead {bin_pct:+.1}% within the {budget}% budget");
    }
}

//! Observability overhead: what does tracing cost the simulator hot path?
//!
//! Three single-thread measurements over the same fixed-seed scenario as
//! `perf_throughput`'s `single_sim_serial` (Masstree single-class, N=100,
//! load 0.5):
//!
//!  - `nullsink` — plain [`run_simulation`]: the default `NullSink` with
//!    the cached `trace_on: false` fast path. This is the path every
//!    existing caller takes; the PR-4 acceptance bound is <2% regression
//!    against the committed seed baseline (`BENCH_throughput.json`).
//!  - `ringrecorder` — [`run_simulation_observed`] with default options:
//!    every lifecycle event through the `RingRecorder`'s mutex, plus
//!    virtual-time snapshot sampling and post-run registry ingestion.
//!  - `ringrecorder_no_snapshots` — the recorder with snapshot sampling
//!    effectively disabled (one-hour virtual cadence), isolating the
//!    sink cost from the sampling cost.
//!
//! On the <10% RingRecorder target: it holds for runtimes that do real
//! work per event (the tokio testbed's per-result path is µs-scale). The
//! pure simulator processes an engine event in ~100ns and fans each out
//! to ~2.5 lifecycle events, so event construction, one mutex lock per
//! event, and the post-run ingest pass are measured against almost zero
//! baseline work — DESIGN.md §12 documents the measured figure and the
//! breakdown. Recording stays opt-in (`tailguard trace`, `--json`,
//! `faults`) for exactly this reason; the default `NullSink` path is the
//! one every throughput-sensitive caller takes.
//!
//! Results go to `BENCH_obs.json` at the repo root; if the committed
//! `BENCH_throughput.json` is present, the nullsink row is also compared
//! against its `single_sim_serial` queries/sec.
//!
//! Run with `cargo bench --bench obs_overhead`. `TG_BENCH_SCALE` scales
//! the query count.

use std::time::Instant;
use tailguard::{run_simulation, run_simulation_observed, scenarios, ObsOptions};
use tailguard_bench::{header, scaled};
use tailguard_policy::Policy;
use tailguard_simcore::SimDuration;
use tailguard_workload::TailbenchWorkload;

#[derive(Clone)]
struct Measurement {
    label: String,
    wall_secs: f64,
    events: u64,
    queries_completed: u64,
    trace_events: u64,
}

impl Measurement {
    fn queries_per_sec(&self) -> f64 {
        self.queries_completed as f64 / self.wall_secs
    }
}

/// Best-of-5 per variant with the repetitions interleaved round-robin
/// (null, rec, rec_ns, null, rec, …), so slow drift in shared-host CPU
/// speed hits every variant equally and the *ratios* stay trustworthy
/// even when absolutes wobble. Each variant gets one warm run first.
fn measure_interleaved(
    variants: &mut [(&str, &mut dyn FnMut() -> (u64, u64, u64))],
) -> Vec<Measurement> {
    for (_, run) in variants.iter_mut() {
        let _ = run(); // warm
    }
    let mut best: Vec<Option<Measurement>> = variants.iter().map(|_| None).collect();
    for _ in 0..5 {
        for (i, (label, run)) in variants.iter_mut().enumerate() {
            let start = Instant::now();
            let (events, queries_completed, trace_events) = run();
            let wall_secs = start.elapsed().as_secs_f64();
            if best[i].as_ref().is_none_or(|b| wall_secs < b.wall_secs) {
                best[i] = Some(Measurement {
                    label: label.to_string(),
                    wall_secs,
                    events,
                    queries_completed,
                    trace_events,
                });
            }
        }
    }
    best.into_iter().map(|m| m.expect("measured")).collect()
}

fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn repo_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_default();
    cwd.ancestors()
        .find(|a| a.join("Cargo.toml").exists() && a.join("crates").exists())
        .map(std::path::Path::to_path_buf)
        .unwrap_or(cwd)
}

fn main() {
    header(
        "obs_overhead",
        "PR-4 observability",
        "NullSink vs RingRecorder cost on the simulator hot path (best of 5)",
    );
    let queries = scaled(60_000);
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let input = scenario.input(0.5, queries);
    let config = scenario.config(Policy::TfEdf).with_warmup(queries / 20);

    let no_snap_opts = ObsOptions {
        snapshot_every: Some(SimDuration::from_millis(3_600_000)),
        ..ObsOptions::default()
    };
    let mut run_null = || {
        let report = run_simulation(&config, &input);
        (report.events_processed, report.completed_queries, 0)
    };
    let mut run_rec = || {
        let run = run_simulation_observed(&config, &input, &ObsOptions::default());
        (
            run.report.events_processed,
            run.report.completed_queries,
            run.recorder.total_recorded(),
        )
    };
    let mut run_rec_ns = || {
        let run = run_simulation_observed(&config, &input, &no_snap_opts);
        (
            run.report.events_processed,
            run.report.completed_queries,
            run.recorder.total_recorded(),
        )
    };
    let measured = measure_interleaved(&mut [
        ("nullsink", &mut run_null),
        ("ringrecorder", &mut run_rec),
        ("ringrecorder_no_snapshots", &mut run_rec_ns),
    ]);
    let (nullsink, recorder, recorder_no_snap) = match &measured[..] {
        [a, b, c] => (a.clone(), b.clone(), c.clone()),
        _ => unreachable!("three variants measured"),
    };

    for m in [&nullsink, &recorder, &recorder_no_snap] {
        println!(
            "{:<26} {:>10.0} queries/s  ({:.3}s wall, {} engine events, {} trace events)",
            m.label,
            m.queries_per_sec(),
            m.wall_secs,
            m.events,
            m.trace_events
        );
    }
    let rec_overhead_pct = (nullsink.queries_per_sec() / recorder.queries_per_sec() - 1.0) * 100.0;
    let sink_overhead_pct =
        (nullsink.queries_per_sec() / recorder_no_snap.queries_per_sec() - 1.0) * 100.0;
    println!("ringrecorder overhead vs nullsink: {rec_overhead_pct:+.1}% (target <10%)");
    println!("  of which sink-only (snapshots off): {sink_overhead_pct:+.1}%");

    // Regression check against the committed seed throughput baseline.
    let root = repo_root();
    let seed_delta_pct = std::fs::read_to_string(root.join("BENCH_throughput.json"))
        .ok()
        .as_deref()
        .and_then(|text| json_number(text, "queries_per_sec"))
        .map(|seed_qps| {
            let pct = (nullsink.queries_per_sec() / seed_qps - 1.0) * 100.0;
            println!(
                "nullsink vs committed seed baseline: {:.0} vs {seed_qps:.0} queries/s \
                 ({pct:+.1}%, acceptance: no worse than -2% on comparable hardware)",
                nullsink.queries_per_sec()
            );
            pct
        });

    let mut rows = String::new();
    for m in [&nullsink, &recorder, &recorder_no_snap] {
        rows.push_str(&format!(
            "    {{\"label\": \"{}\", \"wall_secs\": {:.4}, \"events\": {}, \"queries_completed\": {}, \"trace_events\": {}, \"queries_per_sec\": {:.0}}},\n",
            m.label, m.wall_secs, m.events, m.queries_completed, m.trace_events, m.queries_per_sec()
        ));
    }
    rows.pop();
    rows.pop(); // trailing ",\n"
    let seed_field = match seed_delta_pct {
        Some(pct) => format!("{pct:.1}"),
        None => "null".to_string(),
    };
    let out = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"queries\": {queries},\n  \
         \"ringrecorder_overhead_pct\": {rec_overhead_pct:.1},\n  \
         \"sink_only_overhead_pct\": {sink_overhead_pct:.1},\n  \
         \"nullsink_vs_seed_baseline_pct\": {seed_field},\n  \
         \"measurements\": [\n{rows}\n  ]\n}}\n"
    );
    let path = root.join("BENCH_obs.json");
    std::fs::write(&path, out).expect("write BENCH_obs.json");
    println!("wrote {}", path.display());
}

//! Fig. 7: TailGuard with query admission control (Masstree OLDI,
//! two classes).
//!
//! Procedure, as in §IV.D: first run without admission control to find the
//! maximum acceptable load and the task deadline-violation ratio `R_th` at
//! that load (the paper finds ≈54 % and 1.7 %); then enable admission
//! control with that threshold and sweep offered load past saturation. The
//! paper's findings to reproduce: (a) both classes keep meeting their SLOs
//! at *all* offered loads; (b) the accepted load tracks the maximum
//! acceptable load (within a few percent, dipping ~6 % deep into overload).

use tailguard::run_simulation;
use tailguard::{max_load, measure_at_load, run_indexed, scenarios, AdmissionConfig, SimConfig};
use tailguard_bench::{header, jobs, maxload_opts, scaled};
use tailguard_policy::Policy;
use tailguard_workload::TailbenchWorkload;

fn main() {
    header(
        "fig7_admission_control",
        "Fig. 7 (a)(b)",
        "Accepted/rejected load and per-class p99 vs offered load, with admission control",
    );
    let opts = maxload_opts(40_000);
    let (hi, lo) = scenarios::fig6_slos(TailbenchWorkload::Masstree);
    let scenario = scenarios::oldi_two_class(TailbenchWorkload::Masstree, hi, lo);

    // Step 1: calibrate R_th at the no-admission maximum acceptable load.
    let max_acceptable = max_load(&scenario, Policy::TfEdf, &opts) * 0.95;
    let report = measure_at_load(&scenario, Policy::TfEdf, max_acceptable, &opts);
    // A conservative threshold (80% of the miss ratio at the boundary)
    // absorbs controller reaction lag, like the paper's hand-tuned 1.7%.
    let r_th = (report.deadline_miss_ratio()
        * std::env::var("TG_RTH_FACTOR")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.8))
    .max(0.001);
    println!(
        "\nmax acceptable load = {:.1}%  ->  R_th = {:.2}% (paper: ~54%, 1.7%)",
        max_acceptable * 100.0,
        r_th * 100.0
    );

    // Step 2: sweep offered load with admission control enabled.
    // Moving time window = 1000 queries' worth of time at the maximum
    // acceptable load (the paper's window for the Masstree OLDI case).
    // A short reaction window (~30 queries' worth of time) keeps the
    // bang-bang controller's duty cycle tight; the paper's 1000-query
    // accounting window is the SLO measurement window, not the reaction
    // window.
    let window_ms = std::env::var("TG_ADM_WINDOW_Q")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0)
        / scenario.rate_for_load(max_acceptable);
    let admission = AdmissionConfig::new(
        tailguard_simcore::SimDuration::from_millis_f64(window_ms),
        r_th,
    )
    .with_resume_threshold(r_th * 0.3);
    println!(
        "admission: window = {window_ms:.1} ms (~1000 queries), R_th = {:.2}%",
        r_th * 100.0
    );
    println!(
        "\n{:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "offered (%)", "accepted (%)", "rejected (%)", "I p99 (ms)", "II p99 (ms)", "SLOs ok"
    );
    // Every offered-load cell is independent: run them concurrently and
    // print rows in offered-load order (run_indexed preserves input order).
    let offered_loads = [0.45, 0.50, 0.54, 0.58, 0.62, 0.66, 0.70];
    let rows = run_indexed(&offered_loads, jobs(), |_, &offered| {
        let input = scenario.input(offered, scaled(40_000));
        let config: SimConfig = scenario
            .config(Policy::TfEdf)
            .with_admission(admission)
            .with_warmup(scaled(40_000) / 20);
        let mut r = run_simulation(&config, &input);
        (
            offered,
            r.accepted_load(),
            r.rejected_load(),
            r.class_tail(0, 0.99).as_millis_f64(),
            r.class_tail(1, 0.99).as_millis_f64(),
            r.meets_all_slos(),
        )
    });
    for (offered, accepted, rejected, p99_hi, p99_lo, ok) in rows {
        println!(
            "{:>12.1} {:>12.1} {:>12.1} {:>12.3} {:>12.3} {:>8}",
            offered * 100.0,
            accepted * 100.0,
            rejected * 100.0,
            p99_hi,
            p99_lo,
            if ok { "yes" } else { "NO" }
        );
    }
    println!("\nShape check vs paper: SLOs guaranteed at every offered load; accepted");
    println!("load plateaus near the maximum acceptable load instead of collapsing.");
}

//! Fig. 6: 99th-percentile latency vs load for the OLDI case (every query
//! fans out to all 100 servers), two classes, three workloads, three
//! policies (T-EDFQ equals TailGuard here because the fanout is constant).
//!
//! Paper reference max loads meeting both SLOs:
//! FIFO 45/36/49 %, PRIQ 48/45/45 %, TailGuard 54/51/58 % for
//! Masstree/Shore/Xapian; TailGuard's two classes saturate within ~5 % of
//! each other (balanced allocation).

use tailguard::{scenarios, sweep_loads_parallel};
use tailguard_bench::{header, jobs, maxload_opts, FigureCsv};
use tailguard_policy::Policy;
use tailguard_workload::TailbenchWorkload;

fn main() {
    header(
        "fig6_oldi_load_sweep",
        "Fig. 6 (a)-(f)",
        "p99 vs load per class; OLDI fanout 100; FIFO vs PRIQ vs TailGuard",
    );
    let opts = maxload_opts(40_000);
    let jobs = jobs();
    let loads: Vec<f64> = (4..=12).map(|i| i as f64 * 0.05).collect(); // 20%..60%
    let mut csv = FigureCsv::create(
        "fig6_oldi_load_sweep",
        &["series", "load", "class1_p99_ms", "class2_p99_ms"],
    );

    for w in TailbenchWorkload::ALL {
        let (hi, lo) = scenarios::fig6_slos(w);
        let scenario = scenarios::oldi_two_class(w, hi, lo);
        println!("\n--- {w}: SLOs {hi}/{lo} ms (class I/II) ---");
        for policy in [Policy::TfEdf, Policy::Fifo, Policy::Priq] {
            let pts = sweep_loads_parallel(&scenario, policy, &loads, &opts, jobs);
            for p in &pts {
                csv.labeled_row(
                    &format!("{w}/{}", policy.name()),
                    &[
                        p.load,
                        p.tails_by_class[&0].as_millis_f64(),
                        p.tails_by_class[&1].as_millis_f64(),
                    ],
                );
            }
            print!("{:<10} class I  p99(ms):", policy.name());
            for p in &pts {
                print!(" {:>6.2}", p.tails_by_class[&0].as_millis_f64());
            }
            println!();
            print!("{:<10} class II p99(ms):", "");
            for p in &pts {
                print!(" {:>6.2}", p.tails_by_class[&1].as_millis_f64());
            }
            println!();
            // The "arrow" of the paper's figure: the last load meeting both.
            let max_ok = pts
                .iter()
                .filter(|p| p.meets)
                .map(|p| p.load)
                .fold(0.0_f64, f64::max);
            println!(
                "{:<10} -> max load meeting both SLOs: {:.0}%",
                "",
                max_ok * 100.0
            );
        }
        print!("{:<10} loads (%):          ", "");
        for l in &loads {
            print!(" {:>6.0}", l * 100.0);
        }
        println!();
    }
    println!("\ncsv: {}", csv.finish());
    println!("\nShape check vs paper: FIFO limited by class I; PRIQ starves class II;");
    println!("TailGuard's two classes hit their SLOs at nearly the same (highest) load.");
}

//! Extension baseline: task-size-aware reordering (SJF with a perfect
//! oracle) vs TailGuard.
//!
//! The paper's related work (§II.B) argues that "task reordering solutions
//! solely based on task sizes" are inadequate for the design objective
//! because size ignores both the SLO and the fanout. We give that baseline
//! its absolute best case — a *perfect* service-time oracle — and measure:
//!
//! 1. mean / p50 task-level latency (where SJF should shine), and
//! 2. SLO-constrained max load (where it should lose to TF-EDFQ).

use tailguard::{max_load, measure_at_load, scenarios};
use tailguard_bench::{gain_pct, header, maxload_opts};
use tailguard_policy::Policy;
use tailguard_workload::TailbenchWorkload;

fn main() {
    header(
        "ext_sjf_baseline",
        "§II.B related-work claim (no paper figure — extension)",
        "Oracle SJF vs TailGuard vs FIFO: mean latency vs SLO-constrained max load",
    );
    let opts = maxload_opts(120_000);

    // Shore has the heavy tail that makes size-aware reordering attractive.
    for w in [TailbenchWorkload::Shore, TailbenchWorkload::Masstree] {
        let slo = match w {
            TailbenchWorkload::Shore => 6.0,
            _ => 1.0,
        };
        let scenario = scenarios::single_class(w, slo, 100);
        println!("\n--- {w} (x99 SLO {slo} ms, single class, fanouts {{1,10,100}}) ---");

        // Latency profile at a common mid load.
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            "policy", "mean (ms)", "p50 (ms)", "p99 (ms)", "k=100 p99"
        );
        for policy in [Policy::Sjf, Policy::Fifo, Policy::TfEdf] {
            let mut r = measure_at_load(&scenario, policy, 0.4, &opts);
            let res = r
                .query_latency_by_class
                .get_mut(&0)
                .expect("class 0 present");
            let (mean, p50, p99) = (
                res.mean().as_millis_f64(),
                res.percentile(0.5).as_millis_f64(),
                res.percentile(0.99).as_millis_f64(),
            );
            let k100 = r.type_tail(0, 100).as_millis_f64();
            println!(
                "{:<10} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
                policy.name(),
                mean,
                p50,
                p99,
                k100
            );
        }

        // SLO-constrained max load.
        let tg = max_load(&scenario, Policy::TfEdf, &opts);
        let sjf = max_load(&scenario, Policy::Sjf, &opts);
        let fifo = max_load(&scenario, Policy::Fifo, &opts);
        println!(
            "max load meeting SLO: TailGuard {:.1}%  SJF {:.1}%  FIFO {:.1}%  (TailGuard vs SJF: {})",
            tg * 100.0,
            sjf * 100.0,
            fifo * 100.0,
            gain_pct(tg, sjf)
        );
    }
    println!("\nReading: oracle SJF improves mean/median latency (its design goal) but a");
    println!("size-only order cannot protect high-fanout queries, so its SLO-constrained");
    println!("max load trails TailGuard — the paper's §II.B inadequacy claim, quantified.");
}

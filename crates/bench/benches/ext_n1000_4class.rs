//! §IV.D extension: the paper states that results for cluster size N=1000
//! and for four service classes "are consistent with the ones above" but
//! omits them for space. This bench regenerates both.

use tailguard::{max_load, scenarios};
use tailguard_bench::{gain_pct, header, maxload_opts};
use tailguard_policy::Policy;
use tailguard_workload::TailbenchWorkload;

fn main() {
    header(
        "ext_n1000_4class",
        "§IV.D closing remark (results omitted in the paper)",
        "N=1000 single-class max loads; four-class max loads, all policies",
    );

    // --- N = 1000, fanouts {1, 100, 1000}, single class. ------------------
    let opts = maxload_opts(60_000);
    println!("\n--- N=1000, Masstree, fanouts {{1,100,1000}}, P(k) ∝ 1/k ---");
    println!(
        "{:>12} {:>12} {:>10} {:>10}",
        "x99 SLO (ms)", "TailGuard", "FIFO", "gain"
    );
    for slo in [0.9, 1.1, 1.3] {
        let s = scenarios::n1000_single_class(TailbenchWorkload::Masstree, slo);
        let tg = max_load(&s, Policy::TfEdf, &opts);
        let fifo = max_load(&s, Policy::Fifo, &opts);
        println!(
            "{:>12.1} {:>11.1}% {:>9.1}% {:>10}",
            slo,
            tg * 100.0,
            fifo * 100.0,
            gain_pct(tg, fifo)
        );
    }

    // --- Four classes, OLDI fanout 100. -----------------------------------
    let opts4 = maxload_opts(30_000);
    println!("\n--- Four classes (SLO ladder base × {{1, 1.5, 2, 3}}), OLDI fanout 100 ---");
    println!(
        "{:>12} {:>11} {:>8} {:>8} {:>8}",
        "base (ms)", "TailGuard", "FIFO", "PRIQ", "T-EDFQ"
    );
    for base in [1.0, 1.2] {
        let s = scenarios::four_class(TailbenchWorkload::Masstree, base);
        let loads: Vec<f64> = Policy::ALL
            .iter()
            .map(|&p| max_load(&s, p, &opts4))
            .collect();
        println!(
            "{:>12.1} {:>10.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            base,
            loads[0] * 100.0,
            loads[1] * 100.0,
            loads[2] * 100.0,
            loads[3] * 100.0
        );
    }
    println!("\nConsistency check: the single-class fanout gain survives at N=1000, and");
    println!("with four classes the policy ranking matches the two-class case (Fig. 5).");
}

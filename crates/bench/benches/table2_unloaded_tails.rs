//! Table II: mean task service time `T_m` and unloaded 99th-percentile
//! query tail latency `x99^u(k)` at fanouts 1/10/100, paper vs measured.

use tailguard_bench::{header, scaled};
use tailguard_dist::{order_stats, Distribution, Ecdf};
use tailguard_simcore::SimRng;
use tailguard_workload::TailbenchWorkload;

fn main() {
    header(
        "table2_unloaded_tails",
        "Table II",
        "T_m and x99^u(1/10/100) per workload — paper vs analytic model vs sampled ECDF",
    );

    let samples = scaled(1_000_000);
    println!(
        "\n{:<10} {:>10} {:>10} {:>10} {:>10}   source",
        "Bench", "T_m (ms)", "x99(1)", "x99(10)", "x99(100)"
    );
    for w in TailbenchWorkload::ALL {
        let paper = w.paper_stats();
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}   paper",
            w.name(),
            paper.mean,
            paper.x99_k1,
            paper.x99_k10,
            paper.x99_k100
        );
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}   model (Eqs. 1-2, analytic)",
            "",
            w.mean_service_ms(),
            w.unloaded_query_tail(0.99, 1),
            w.unloaded_query_tail(0.99, 10),
            w.unloaded_query_tail(0.99, 100)
        );
        let d = w.service_dist();
        let mut rng = SimRng::seed(2);
        let e: Ecdf = (0..samples).map(|_| d.sample(&mut rng)).collect();
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}   sampled ECDF ({samples} draws)",
            "",
            e.mean(),
            order_stats::homogeneous_quantile(&e, 0.99, 1),
            order_stats::homogeneous_quantile(&e, 0.99, 10),
            order_stats::homogeneous_quantile(&e, 0.99, 100)
        );
    }
    println!("\nModel rows must match the paper rows to <0.5% (asserted by unit tests);");
    println!("ECDF rows show what the offline estimation process would recover.");
}

//! Gray-failure resilience under non-stationary load: the data behind
//! `BENCH_drift.json` at the repository root.
//!
//! The scenario is the paper's single-class Masstree cluster with a
//! diurnal load curve on top, except a tenth of the servers *degrade
//! gradually* partway through the run — a `DegradeRamp` episode ramps
//! their service times toward a peak slowdown, then a persistent
//! `Slowdown` holds them there (the classic gray failure: no crash, no
//! NACK, just creeping latency). Each degraded server's utilization
//! crosses 1, so its queue grows without bound and the class p99 blows
//! through the SLO.
//!
//! The cells compare the three responses, measured strictly *after* the
//! degradation is in full effect (warm-up discards the first half of the
//! run):
//!
//! * `static` — the online estimator keeps its cumulative CDFs: stamped
//!   budgets still reflect the healthy cluster, and tasks keep landing on
//!   the degraded servers.
//! * `adaptive` — windowed/decayed CDFs re-converge on the degraded
//!   service times, so deadlines become honest again — but placement is
//!   unchanged, so the degraded queues still diverge.
//! * `adaptive_ejection` — health-tracked ejection diverts arrivals off
//!   the outlier servers (recovery probes keep checking on them), and the
//!   adaptive estimator re-converges on the healthy remainder: the class
//!   re-attains its SLO.
//!
//! Run with `cargo bench --bench drift_resilience`. Knobs:
//! `TG_BENCH_SCALE` scales the query count, `TG_JOBS` caps the parallel
//! worker count. Results are bit-identical for any `TG_JOBS` value.

use tailguard::{
    run_indexed, run_simulation, scenarios, AdaptiveWindow, DriftKind, DriftPlan, EstimatorMode,
    FaultEpisode, FaultKind, FaultPlan, HealthConfig, Scenario,
};
use tailguard_bench::{header, jobs, scaled, FigureCsv};
use tailguard_policy::Policy;
use tailguard_simcore::{SimDuration, SimTime};
use tailguard_workload::{FanoutDist, QueryMix, TailbenchWorkload};

/// The headline SLO: class-0 p99 must stay under 5 ms.
const SLO_MS: f64 = 5.0;
const LOAD: f64 = 0.4;
const FANOUT: u32 = 10;
const SERVERS: usize = 100;
/// Servers that turn gray.
const DEGRADED: u32 = 10;
/// Peak service-time multiplier of the degraded servers. At 40% load a
/// degraded server runs at 0.4 × 8 = 3.2 offered utilization — its queue
/// diverges unless arrivals are diverted elsewhere.
const PEAK: f64 = 8.0;

fn scenario() -> Scenario {
    let mut s = scenarios::single_class(TailbenchWorkload::Masstree, SLO_MS, SERVERS);
    s.mix = QueryMix::single(FanoutDist::fixed(FANOUT));
    s
}

/// ~22 queries/ms arrive at 40% load (see `fault_recovery`), so size all
/// drift/fault windows to the scaled run length.
fn horizon_ms(queries: usize) -> f64 {
    (queries as f64 / 22.0).max(200.0)
}

/// The gray failure: servers `0..DEGRADED` ramp from healthy to `PEAK`×
/// over `[0.25, 0.40)` of the horizon, then hold `PEAK`× for the rest of
/// the run.
fn gray_failure(queries: usize) -> FaultPlan {
    let h = horizon_ms(queries);
    let ramp_start = SimTime::from_millis_f64(h * 0.25);
    let ramp_end = SimTime::from_millis_f64(h * 0.40);
    let far = SimTime::from_millis_f64(h * 100.0);
    let mut plan = FaultPlan::new();
    for server in 0..DEGRADED {
        plan = plan
            .with_episode(FaultEpisode::new(
                server,
                ramp_start,
                ramp_end,
                FaultKind::DegradeRamp { peak: PEAK },
            ))
            .with_episode(FaultEpisode::new(
                server,
                ramp_end,
                far,
                FaultKind::Slowdown { factor: PEAK },
            ));
    }
    plan
}

/// A mild diurnal load curve shared by every cell, so the comparison runs
/// under non-stationary arrivals rather than a convenient constant rate.
fn diurnal(queries: usize) -> DriftPlan {
    DriftPlan::new(vec![DriftKind::Diurnal {
        period: SimDuration::from_millis_f64(horizon_ms(queries) / 2.0),
        amplitude: 0.25,
    }])
}

struct Cell {
    label: &'static str,
    p99_ms: f64,
    completed: u64,
    ejections: u64,
    readmissions: u64,
    probes: u64,
    rerouted: u64,
    window_rolls: u64,
}

fn repo_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_default();
    cwd.ancestors()
        .find(|a| a.join("Cargo.toml").exists() && a.join("crates").exists())
        .map(std::path::Path::to_path_buf)
        .unwrap_or(cwd)
}

fn main() {
    header(
        "drift_resilience",
        "gray failures (beyond-paper)",
        "post-onset p99 vs SLO when a tenth of the cluster degrades: static vs adaptive vs adaptive + health ejection",
    );
    let queries = scaled(20_000);
    let scenario = scenario().with_drift(diurnal(queries));
    let adaptive = AdaptiveWindow::new(20_000, 0.25);
    // (label, faulted, adaptive estimator, health ejection)
    let cells: Vec<(&'static str, bool, bool, bool)> = vec![
        ("healthy", false, false, false),
        ("static", true, false, false),
        ("adaptive", true, true, false),
        ("adaptive_ejection", true, true, true),
    ];
    let results: Vec<Cell> = run_indexed(&cells, jobs(), |_, &(label, faulted, adapt, eject)| {
        let input = scenario.input(LOAD, queries);
        // Measure strictly post-onset: the first half of the run (the
        // healthy prefix, the ramp, and the adaptation transient) is
        // warm-up; recorded latencies come from the degraded steady state.
        let mut config = scenario
            .config(Policy::TfEdf)
            .with_warmup(queries / 2)
            .with_estimator(EstimatorMode::Online {
                refresh_every: 2_000,
                offline_samples: 2_000,
            });
        if faulted {
            config = config.with_faults(gray_failure(queries));
        }
        if adapt {
            config = config.with_adaptive(adaptive);
        }
        if eject {
            config = config.with_health(HealthConfig::new());
        }
        let mut report = run_simulation(&config, &input);
        Cell {
            label,
            p99_ms: report.class_tail(0, 0.99).as_millis_f64(),
            completed: report.completed_queries,
            ejections: report.health.ejections,
            readmissions: report.health.readmissions,
            probes: report.health.probes,
            rerouted: report.health.rerouted_tasks,
            window_rolls: report.estimator_window_rolls,
        }
    });

    let mut csv = FigureCsv::create(
        "bench_drift_resilience",
        &[
            "cell",
            "p99_ms",
            "completed",
            "ejections",
            "readmissions",
            "probes",
            "rerouted",
            "window_rolls",
        ],
    );
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>9} {:>9}  (SLO p99 = {SLO_MS} ms post-onset, {} queries/cell)",
        "cell", "p99(ms)", "completed", "ejections", "rerouted", "rolls", queries
    );
    for c in &results {
        let verdict = if c.p99_ms <= SLO_MS { "ok" } else { "VIOLATED" };
        println!(
            "{:<20} {:>10.3} {:>10} {:>10} {:>9} {:>9}  {}",
            c.label, c.p99_ms, c.completed, c.ejections, c.rerouted, c.window_rolls, verdict
        );
        csv.labeled_row(
            c.label,
            &[
                c.p99_ms,
                c.completed as f64,
                c.ejections as f64,
                c.readmissions as f64,
                c.probes as f64,
                c.rerouted as f64,
                c.window_rolls as f64,
            ],
        );
    }
    println!("csv: {}", csv.finish());

    let (healthy, stat, adapt, eject) = (&results[0], &results[1], &results[2], &results[3]);
    println!(
        "gray failure of {DEGRADED}/{SERVERS} servers at {PEAK}x: static p99 {:.3} ms vs \
         adaptive+ejection {:.3} ms (healthy {:.3} ms, SLO {SLO_MS} ms); \
         {} ejections, {} probes, {} window rolls",
        stat.p99_ms,
        eject.p99_ms,
        healthy.p99_ms,
        eject.ejections,
        eject.probes,
        eject.window_rolls
    );

    // Machine-readable record at the repo root.
    let mut rows = String::new();
    for c in &results {
        rows.push_str(&format!(
            "    {{\"cell\": \"{}\", \"p99_ms\": {:.6}, \"meets_slo\": {}, \"completed\": {}, \"ejections\": {}, \"readmissions\": {}, \"probes\": {}, \"rerouted_tasks\": {}, \"window_rolls\": {}}},\n",
            c.label,
            c.p99_ms,
            c.p99_ms <= SLO_MS,
            c.completed,
            c.ejections,
            c.readmissions,
            c.probes,
            c.rerouted,
            c.window_rolls
        ));
    }
    rows.pop();
    rows.pop(); // trailing ",\n"
    let json = format!(
        "{{\n  \"bench\": \"drift_resilience\",\n  \"scenario\": {{\"workload\": \"masstree\", \"servers\": {SERVERS}, \"fanout\": {FANOUT}, \"slo_p99_ms\": {SLO_MS}, \"load\": {LOAD}, \"diurnal_amplitude\": 0.25}},\n  \"gray_failure\": {{\"degraded_servers\": {DEGRADED}, \"peak_slowdown\": {PEAK}, \"onset_frac\": 0.25, \"full_effect_frac\": 0.40}},\n  \"queries_per_cell\": {queries},\n  \"claim\": {{\"static_p99_ms\": {:.6}, \"static_meets_slo\": {}, \"adaptive_p99_ms\": {:.6}, \"ejection_p99_ms\": {:.6}, \"ejection_meets_slo\": {}, \"healthy_p99_ms\": {:.6}, \"ejections\": {}, \"recovery_probes\": {}}},\n  \"cells\": [\n{rows}\n  ]\n}}\n",
        stat.p99_ms,
        stat.p99_ms <= SLO_MS,
        adapt.p99_ms,
        eject.p99_ms,
        eject.p99_ms <= SLO_MS,
        healthy.p99_ms,
        eject.ejections,
        eject.probes
    );
    let path = repo_root().join("BENCH_drift.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

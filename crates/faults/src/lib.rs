//! Deterministic, seed-driven fault injection shared by both runtimes.
//!
//! TailGuard's budget `T_b = x_p^SLO − x_p^u(k_f)` (Eq. 6) is computed from
//! *unloaded* per-server CDFs, so a single degraded or blacked-out task
//! server silently invalidates the deadline math and blows the query tail.
//! This crate describes misbehaving servers as data: a [`FaultPlan`] is a
//! set of per-server [`FaultEpisode`]s — service-time inflation over an
//! interval, transient stalls (tasks held but not served), and blackouts
//! that drop tasks outright — that both drivers consume identically. The
//! discrete-event simulator queries the plan in virtual time
//! (`crates/core/src/cluster.rs`); the tokio testbed compresses the same
//! plan onto its wall clock (`crates/testbed/src/node.rs`), so a shared
//! plan produces comparable fault counters on both runtimes.
//!
//! Everything here is pure data + arithmetic: no clock, no I/O, and the
//! only randomness is the caller-seeded [`SimRng`] behind
//! [`FaultPlan::generate`], keeping runs bit-reproducible across `--jobs`.

use tailguard_simcore::{SimDuration, SimRng, SimTime};

/// What a fault episode does to the tasks its server handles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Service times of tasks dispatched during the episode are multiplied
    /// by `factor` (interference / thermal throttling / noisy neighbor).
    Slowdown {
        /// Multiplicative service-time inflation (must be finite and > 0).
        factor: f64,
    },
    /// The server freezes: tasks dispatched during the episode are held and
    /// only begin service when the episode ends (transient crash with the
    /// queue preserved — a fail/recover cycle).
    Stall,
    /// Blackout: tasks dispatched during the episode — and results that
    /// would land inside it — are lost and must be retried elsewhere.
    Drop,
    /// The server process dies over the episode: tasks dispatched during it
    /// and in-flight work the crash interrupts are *silently swallowed* —
    /// unlike [`FaultKind::Drop`], no loss notification reaches the
    /// scheduler, so the only recovery path is lease expiry and reclaim.
    Crash,
    /// The server restarts: tasks dispatched during the episode are held
    /// until it ends (like a stall), but results that would land inside it
    /// are lost *with* a notification — the in-memory work of the dying
    /// process is gone, while the supervisor still reports the failure.
    Restart,
    /// The delivery path misbehaves: results completing during the episode
    /// are delivered twice (at-least-once delivery made visible). The
    /// second copy must be suppressed idempotently by the lifecycle store.
    DuplicateDelivery,
    /// Gray failure: the service-time multiplier ramps *linearly* from 1 at
    /// the episode start to `peak` at the episode end — a server that decays
    /// slowly (leaking memory, filling disk, thermal creep) instead of
    /// failing cleanly. Unlike [`FaultKind::Slowdown`]'s step, the onset is
    /// gradual, so threshold-based detectors see no sharp edge.
    DegradeRamp {
        /// The multiplier reached at the episode end (finite, > 0).
        peak: f64,
    },
    /// Gray failure: the server oscillates between degraded (service times
    /// multiplied by `factor`) and healthy phases, each lasting `period`,
    /// starting degraded at the episode start. Flapping servers defeat
    /// naive eject-on-first-slow logic: any ejection decision must survive
    /// the server *looking* healthy half the time.
    Flap {
        /// Multiplicative service-time inflation in degraded phases
        /// (finite, > 0).
        factor: f64,
        /// Length of each degraded / healthy phase (non-zero).
        period: SimDuration,
    },
}

/// One contiguous fault on one server over `[start, end)`.
///
/// Episodes are finite by construction: an unbounded stall would hold
/// tasks forever and no simulation (or testbed run) could terminate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEpisode {
    /// The afflicted server.
    pub server: u32,
    /// Episode start (inclusive).
    pub start: SimTime,
    /// Episode end (exclusive).
    pub end: SimTime,
    /// What the episode does.
    pub kind: FaultKind,
}

impl FaultEpisode {
    /// Creates an episode, validating its interval and parameters.
    ///
    /// # Panics
    ///
    /// Panics when `start >= end`, a slowdown/ramp/flap factor is not
    /// finite and positive, or a flap period is zero.
    /// `start` is virtual time (nanosecond domain).
    pub fn new(server: u32, start: SimTime, end: SimTime, kind: FaultKind) -> Self {
        assert!(start < end, "fault episode needs start < end");
        match kind {
            FaultKind::Slowdown { factor } => {
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "slowdown factor must be finite and positive, got {factor}"
                );
            }
            FaultKind::DegradeRamp { peak } => {
                assert!(
                    peak.is_finite() && peak > 0.0,
                    "degrade ramp peak must be finite and positive, got {peak}"
                );
            }
            FaultKind::Flap { factor, period } => {
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "flap factor must be finite and positive, got {factor}"
                );
                assert!(!period.is_zero(), "flap period must be non-zero");
            }
            _ => {}
        }
        FaultEpisode {
            server,
            start,
            end,
            kind,
        }
    }

    /// Whether the episode is active at `now` (`start <= now < end`).
    pub fn active_at(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end
    }
}

/// A deterministic schedule of fault episodes across the cluster.
///
/// The plan is plain data: drivers query it (`drops`, `slowdown_factor`,
/// `completion_delay`) at dispatch/completion time. Episodes affect tasks
/// *dispatched during* them — a deliberate approximation that keeps both
/// drivers' semantics identical (the testbed cannot retroactively inflate
/// a sleep already underway).
///
/// # Example
///
/// ```
/// use tailguard_faults::{FaultEpisode, FaultKind, FaultPlan};
/// use tailguard_simcore::{SimDuration, SimTime};
///
/// let plan = FaultPlan::new().with_episode(FaultEpisode::new(
///     0,
///     SimTime::from_millis(10),
///     SimTime::from_millis(20),
///     FaultKind::Slowdown { factor: 4.0 },
/// ));
/// let svc = SimDuration::from_millis(2);
/// assert_eq!(plan.completion_delay(0, SimTime::from_millis(5), svc), svc);
/// assert_eq!(
///     plan.completion_delay(0, SimTime::from_millis(12), svc),
///     SimDuration::from_millis(8)
/// );
/// assert!(!plan.drops(0, SimTime::from_millis(12)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    episodes: Vec<FaultEpisode>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; drivers treat it like no plan).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an episode, keeping the episode list sorted by start time.
    pub fn with_episode(mut self, episode: FaultEpisode) -> Self {
        let at = self.episodes.partition_point(|e| e.start <= episode.start);
        self.episodes.insert(at, episode);
        self
    }

    /// Generates a seed-driven plan of fail/recover cycles: `n_episodes`
    /// episodes of mean length `mean_len_ms`, uniformly placed over
    /// `[0, horizon)` on uniformly drawn servers from `0..servers`, cycling
    /// through slowdown (factor 2–10×), stall, and drop kinds.
    ///
    /// The same `(seed, servers, horizon, n_episodes, mean_len_ms)` always
    /// yields the same plan.
    ///
    /// # Panics
    ///
    /// Panics when `servers` is zero, `horizon` is zero, or `mean_len_ms`
    /// is not finite and positive.
    /// `horizon` is a virtual-time duration (nanosecond domain).
    pub fn generate(
        seed: u64,
        servers: u32,
        horizon: SimDuration,
        n_episodes: usize,
        mean_len_ms: f64,
    ) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(!horizon.is_zero(), "horizon must be positive");
        assert!(
            mean_len_ms.is_finite() && mean_len_ms > 0.0,
            "mean episode length must be finite and positive"
        );
        let mut rng = SimRng::seed(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..n_episodes {
            // tg-lint: allow(lossy-cast) -- in range by construction: `rng.index(servers)` is below the u32 server count, and horizon/period scaling multiplies u64 nanoseconds by a [0,1) or validated-positive factor — truncation is the intended draw
            let server = rng.index(servers as usize) as u32;
            // Length ~ Exp(mean) truncated below at 10% of the mean so an
            // episode is never degenerate; start uniform over the horizon.
            let len_ms = (mean_len_ms * -rng.open01().ln()).max(mean_len_ms * 0.1);
            // tg-lint: allow(lossy-cast) -- in range by construction: `rng.index(servers)` is below the u32 server count, and horizon/period scaling multiplies u64 nanoseconds by a [0,1) or validated-positive factor — truncation is the intended draw
            let start_ns = (horizon.as_nanos() as f64 * rng.f64()) as u64;
            let start = SimTime::from_nanos(start_ns);
            let end = start + SimDuration::from_millis_f64(len_ms);
            let kind = match rng.index(3) {
                0 => FaultKind::Slowdown {
                    factor: 2.0 + rng.f64() * 8.0,
                },
                1 => FaultKind::Stall,
                _ => FaultKind::Drop,
            };
            plan = plan.with_episode(FaultEpisode::new(server, start, end, kind));
        }
        plan
    }

    /// Generates a seed-driven crash storm: `n_episodes` episodes of mean
    /// length `mean_len_ms`, uniformly placed over `[0, horizon)` on
    /// uniformly drawn servers from `0..servers`, cycling through the
    /// lifecycle fault kinds — [`FaultKind::Crash`], [`FaultKind::Restart`],
    /// and [`FaultKind::DuplicateDelivery`].
    ///
    /// A separate generator (rather than extending [`FaultPlan::generate`]'s
    /// three-kind cycle) so existing seeded plans stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics when `servers` is zero, `horizon` is zero, or `mean_len_ms`
    /// is not finite and positive.
    pub fn generate_crash_storm(
        seed: u64,
        servers: u32,
        horizon: SimDuration,
        n_episodes: usize,
        mean_len_ms: f64,
    ) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(!horizon.is_zero(), "horizon must be positive");
        assert!(
            mean_len_ms.is_finite() && mean_len_ms > 0.0,
            "mean episode length must be finite and positive"
        );
        let mut rng = SimRng::seed(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..n_episodes {
            // tg-lint: allow(lossy-cast) -- in range by construction: `rng.index(servers)` is below the u32 server count, and horizon/period scaling multiplies u64 nanoseconds by a [0,1) or validated-positive factor — truncation is the intended draw
            let server = rng.index(servers as usize) as u32;
            let len_ms = (mean_len_ms * -rng.open01().ln()).max(mean_len_ms * 0.1);
            // tg-lint: allow(lossy-cast) -- in range by construction: `rng.index(servers)` is below the u32 server count, and horizon/period scaling multiplies u64 nanoseconds by a [0,1) or validated-positive factor — truncation is the intended draw
            let start_ns = (horizon.as_nanos() as f64 * rng.f64()) as u64;
            let start = SimTime::from_nanos(start_ns);
            let end = start + SimDuration::from_millis_f64(len_ms);
            let kind = match rng.index(3) {
                0 => FaultKind::Crash,
                1 => FaultKind::Restart,
                _ => FaultKind::DuplicateDelivery,
            };
            plan = plan.with_episode(FaultEpisode::new(server, start, end, kind));
        }
        plan
    }

    /// Generates a seed-driven *gray-failure* plan: `n_episodes` episodes
    /// of mean length `mean_len_ms`, uniformly placed over `[0, horizon)`
    /// on uniformly drawn servers from `0..servers`, alternating between
    /// [`FaultKind::DegradeRamp`] (peak 2–10×) and [`FaultKind::Flap`]
    /// (factor 2–10×, period one tenth of the episode length) — the
    /// non-stationary degradations the health layer must detect.
    ///
    /// A separate generator (rather than extending [`FaultPlan::generate`]'s
    /// three-kind cycle) so existing seeded plans stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics when `servers` is zero, `horizon` is zero, or `mean_len_ms`
    /// is not finite and positive.
    pub fn generate_drift(
        seed: u64,
        servers: u32,
        horizon: SimDuration,
        n_episodes: usize,
        mean_len_ms: f64,
    ) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(!horizon.is_zero(), "horizon must be positive");
        assert!(
            mean_len_ms.is_finite() && mean_len_ms > 0.0,
            "mean episode length must be finite and positive"
        );
        let mut rng = SimRng::seed(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..n_episodes {
            // tg-lint: allow(lossy-cast) -- in range by construction: `rng.index(servers)` is below the u32 server count, and horizon/period scaling multiplies u64 nanoseconds by a [0,1) or validated-positive factor — truncation is the intended draw
            let server = rng.index(servers as usize) as u32;
            let len_ms = (mean_len_ms * -rng.open01().ln()).max(mean_len_ms * 0.1);
            // tg-lint: allow(lossy-cast) -- in range by construction: `rng.index(servers)` is below the u32 server count, and horizon/period scaling multiplies u64 nanoseconds by a [0,1) or validated-positive factor — truncation is the intended draw
            let start_ns = (horizon.as_nanos() as f64 * rng.f64()) as u64;
            let start = SimTime::from_nanos(start_ns);
            let end = start + SimDuration::from_millis_f64(len_ms);
            let magnitude = 2.0 + rng.f64() * 8.0;
            let kind = match rng.index(2) {
                0 => FaultKind::DegradeRamp { peak: magnitude },
                _ => FaultKind::Flap {
                    factor: magnitude,
                    period: SimDuration::from_millis_f64((len_ms / 10.0).max(0.1)),
                },
            };
            plan = plan.with_episode(FaultEpisode::new(server, start, end, kind));
        }
        plan
    }

    /// Whether a task dispatched to (or completing at) `server` at `now`
    /// is lost to an active [`FaultKind::Drop`] episode.
    /// `now` is virtual time (nanosecond domain).
    pub fn drops(&self, server: u32, now: SimTime) -> bool {
        self.episodes
            .iter()
            .any(|e| e.server == server && e.active_at(now) && e.kind == FaultKind::Drop)
    }

    /// Whether `server` is dead to an active [`FaultKind::Crash`] episode
    /// at `now` — work sent to it is silently swallowed.
    /// `now` is virtual time (nanosecond domain).
    pub fn crashed(&self, server: u32, now: SimTime) -> bool {
        self.episodes
            .iter()
            .any(|e| e.server == server && e.active_at(now) && e.kind == FaultKind::Crash)
    }

    /// Whether a [`FaultKind::Crash`] episode *began* on `server` strictly
    /// after `from` and at or before `to` — i.e. the crash interrupted work
    /// dispatched at `from` that would have completed at `to`. The result
    /// of such work is silently swallowed even though the server may
    /// already be back up at `to`.
    /// `from` is virtual time (nanosecond domain).
    pub fn crash_started_within(&self, server: u32, from: SimTime, to: SimTime) -> bool {
        self.episodes.iter().any(|e| {
            e.server == server && e.kind == FaultKind::Crash && from < e.start && e.start <= to
        })
    }

    /// Whether a result landing at `server` at `now` is lost (with a
    /// notification) to an active [`FaultKind::Restart`] episode.
    /// `now` is virtual time (nanosecond domain).
    pub fn restart_loses(&self, server: u32, now: SimTime) -> bool {
        self.episodes
            .iter()
            .any(|e| e.server == server && e.active_at(now) && e.kind == FaultKind::Restart)
    }

    /// Whether a result completing at `server` at `now` is delivered twice
    /// by an active [`FaultKind::DuplicateDelivery`] episode.
    /// `now` is virtual time (nanosecond domain).
    pub fn duplicates(&self, server: u32, now: SimTime) -> bool {
        self.episodes.iter().any(|e| {
            e.server == server && e.active_at(now) && e.kind == FaultKind::DuplicateDelivery
        })
    }

    /// Product of all service-time multipliers active on `server` at `now`
    /// (overlapping episodes compose multiplicatively; 1.0 when healthy).
    ///
    /// [`FaultKind::Slowdown`] contributes its constant factor;
    /// [`FaultKind::DegradeRamp`] contributes `1 + (peak − 1)·φ` where `φ`
    /// is the episode's elapsed fraction at `now`; [`FaultKind::Flap`]
    /// contributes its factor in degraded phases (the first phase after
    /// the episode start, then every other `period`) and 1.0 in healthy
    /// phases.
    pub fn slowdown_factor(&self, server: u32, now: SimTime) -> f64 {
        self.episodes
            .iter()
            .filter(|e| e.server == server && e.active_at(now))
            .fold(1.0, |acc, e| match e.kind {
                FaultKind::Slowdown { factor } => acc * factor,
                FaultKind::DegradeRamp { peak } => {
                    let span = e.end.saturating_since(e.start).as_nanos() as f64;
                    let phase = now.saturating_since(e.start).as_nanos() as f64 / span;
                    acc * (1.0 + (peak - 1.0) * phase)
                }
                FaultKind::Flap { factor, period } => {
                    // tg-lint: allow(panic-surface) -- flap period is asserted non-zero at episode construction
                    let cycle = now.saturating_since(e.start).as_nanos() / period.as_nanos();
                    if cycle.is_multiple_of(2) {
                        acc * factor
                    } else {
                        acc
                    }
                }
                _ => acc,
            })
    }

    /// Total dispatch→completion delay for a task of nominal service time
    /// `service` dispatched to `server` at `now`.
    ///
    /// Active [`FaultKind::Stall`] and [`FaultKind::Restart`] episodes push
    /// the service start to the episode end (chained holds compose: if
    /// another hold is active at that instant, it pushes further); the
    /// service itself is then inflated by the slowdown factors active at
    /// the (possibly deferred) start instant.
    /// `now` is virtual time (nanosecond domain).
    pub fn completion_delay(&self, server: u32, now: SimTime, service: SimDuration) -> SimDuration {
        let mut start = now;
        loop {
            let stalled_until = self
                .episodes
                .iter()
                .filter(|e| {
                    e.server == server
                        && e.active_at(start)
                        && matches!(e.kind, FaultKind::Stall | FaultKind::Restart)
                })
                .map(|e| e.end)
                .max();
            match stalled_until {
                Some(end) if end > start => start = end,
                _ => break,
            }
        }
        let factor = self.slowdown_factor(server, start);
        start.saturating_since(now) + service.mul_f64(factor)
    }

    /// Returns the plan with every episode's times divided by `scale` —
    /// the testbed maps Pi-scale plans onto its compressed wall clock.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not finite and positive.
    pub fn compressed(&self, scale: f64) -> FaultPlan {
        assert!(
            scale.is_finite() && scale > 0.0,
            "time scale must be finite and positive"
        );
        FaultPlan {
            episodes: self
                .episodes
                .iter()
                .map(|e| FaultEpisode {
                    server: e.server,
                    // tg-lint: allow(lossy-cast) -- in range by construction: `rng.index(servers)` is below the u32 server count, and horizon/period scaling multiplies u64 nanoseconds by a [0,1) or validated-positive factor — truncation is the intended draw
                    start: SimTime::from_nanos((e.start.as_nanos() as f64 / scale) as u64),
                    end: SimTime::from_nanos(
                        // tg-lint: allow(lossy-cast) -- in range by construction: `rng.index(servers)` is below the u32 server count, and horizon/period scaling multiplies u64 nanoseconds by a [0,1) or validated-positive factor — truncation is the intended draw
                        ((e.end.as_nanos() as f64 / scale) as u64)
                            // tg-lint: allow(lossy-cast) -- in range by construction: `rng.index(servers)` is below the u32 server count, and horizon/period scaling multiplies u64 nanoseconds by a [0,1) or validated-positive factor — truncation is the intended draw
                            .max((e.start.as_nanos() as f64 / scale) as u64 + 1),
                    ),
                    // Flap phases live on the same clock as the episode
                    // interval, so the period compresses with it.
                    kind: match e.kind {
                        FaultKind::Flap { factor, period } => FaultKind::Flap {
                            factor,
                            period: SimDuration::from_nanos(
                                // tg-lint: allow(lossy-cast) -- in range by construction: `rng.index(servers)` is below the u32 server count, and horizon/period scaling multiplies u64 nanoseconds by a [0,1) or validated-positive factor — truncation is the intended draw
                                ((period.as_nanos() as f64 / scale) as u64).max(1),
                            ),
                        },
                        kind => kind,
                    },
                })
                .collect(),
        }
    }

    /// The episodes, sorted by start time.
    pub fn episodes(&self) -> &[FaultEpisode] {
        &self.episodes
    }

    /// Number of episodes in the plan.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// The plan's start/end transitions in time order — the form event-loop
    /// consumers (CLI display, tests) iterate.
    pub fn schedule(&self) -> FaultSchedule {
        let mut transitions: Vec<FaultTransition> = self
            .episodes
            .iter()
            .flat_map(|&e| {
                [
                    FaultTransition {
                        at: e.start,
                        episode: e,
                        edge: FaultEdge::Start,
                    },
                    FaultTransition {
                        at: e.end,
                        episode: e,
                        edge: FaultEdge::End,
                    },
                ]
            })
            .collect();
        // tg-lint: allow(lossy-cast) -- C-like enum discriminant (0/1) used as a deterministic sort key
        transitions.sort_by_key(|t| (t.at, t.edge as u8, t.episode.server));
        FaultSchedule {
            transitions,
            next: 0,
        }
    }
}

/// Whether a transition begins or ends its episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEdge {
    /// The episode becomes active.
    Start,
    /// The episode ends (the server recovers from it).
    End,
}

/// One edge of one episode, as yielded by [`FaultSchedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultTransition {
    /// When the transition happens.
    pub at: SimTime,
    /// The episode transitioning.
    pub episode: FaultEpisode,
    /// Start or end.
    pub edge: FaultEdge,
}

/// Time-ordered iterator over a plan's episode start/end transitions.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    transitions: Vec<FaultTransition>,
    next: usize,
}

impl Iterator for FaultSchedule {
    type Item = FaultTransition;

    fn next(&mut self) -> Option<FaultTransition> {
        let t = self.transitions.get(self.next).copied()?;
        self.next += 1;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn healthy_server_passes_through() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.drops(0, ms(0)));
        assert_eq!(plan.slowdown_factor(0, ms(0)), 1.0);
        assert_eq!(plan.completion_delay(0, ms(0), dms(3)), dms(3));
    }

    #[test]
    fn slowdown_inflates_only_inside_interval() {
        let plan = FaultPlan::new().with_episode(FaultEpisode::new(
            1,
            ms(10),
            ms(20),
            FaultKind::Slowdown { factor: 3.0 },
        ));
        assert_eq!(plan.completion_delay(1, ms(9), dms(2)), dms(2));
        assert_eq!(plan.completion_delay(1, ms(10), dms(2)), dms(6));
        assert_eq!(plan.completion_delay(1, ms(19), dms(2)), dms(6));
        assert_eq!(plan.completion_delay(1, ms(20), dms(2)), dms(2));
        // Other servers are unaffected.
        assert_eq!(plan.completion_delay(0, ms(12), dms(2)), dms(2));
    }

    #[test]
    fn overlapping_slowdowns_compose() {
        let plan = FaultPlan::new()
            .with_episode(FaultEpisode::new(
                0,
                ms(0),
                ms(100),
                FaultKind::Slowdown { factor: 2.0 },
            ))
            .with_episode(FaultEpisode::new(
                0,
                ms(50),
                ms(100),
                FaultKind::Slowdown { factor: 3.0 },
            ));
        assert_eq!(plan.slowdown_factor(0, ms(10)), 2.0);
        assert_eq!(plan.slowdown_factor(0, ms(60)), 6.0);
    }

    #[test]
    fn stall_defers_service_to_episode_end() {
        let plan =
            FaultPlan::new().with_episode(FaultEpisode::new(0, ms(10), ms(30), FaultKind::Stall));
        // Dispatched mid-stall at t=15: waits 15ms, then serves 2ms.
        assert_eq!(plan.completion_delay(0, ms(15), dms(2)), dms(17));
        assert_eq!(plan.completion_delay(0, ms(30), dms(2)), dms(2));
    }

    #[test]
    fn chained_stalls_and_slowdown_at_deferred_start() {
        let plan = FaultPlan::new()
            .with_episode(FaultEpisode::new(0, ms(0), ms(10), FaultKind::Stall))
            .with_episode(FaultEpisode::new(0, ms(5), ms(20), FaultKind::Stall))
            .with_episode(FaultEpisode::new(
                0,
                ms(20),
                ms(40),
                FaultKind::Slowdown { factor: 5.0 },
            ));
        // Dispatched at t=2: first stall pushes to 10, second to 20, where
        // the slowdown is active: 18ms wait + 5×2ms service.
        assert_eq!(plan.completion_delay(0, ms(2), dms(2)), dms(28));
    }

    #[test]
    fn drop_is_scoped_to_server_and_interval() {
        let plan =
            FaultPlan::new().with_episode(FaultEpisode::new(2, ms(5), ms(8), FaultKind::Drop));
        assert!(!plan.drops(2, ms(4)));
        assert!(plan.drops(2, ms(5)));
        assert!(plan.drops(2, ms(7)));
        assert!(!plan.drops(2, ms(8)), "end is exclusive");
        assert!(!plan.drops(1, ms(6)));
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let a = FaultPlan::generate(7, 16, dms(10_000), 12, 50.0);
        let b = FaultPlan::generate(7, 16, dms(10_000), 12, 50.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.episodes().iter().all(|e| e.server < 16));
        assert!(a.episodes().iter().all(|e| e.start < e.end));
        assert!(a
            .episodes()
            .iter()
            .all(|e| e.start < SimTime::ZERO + dms(10_000)));
        let c = FaultPlan::generate(8, 16, dms(10_000), 12, 50.0);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn compressed_divides_times() {
        let plan =
            FaultPlan::new().with_episode(FaultEpisode::new(0, ms(100), ms(300), FaultKind::Stall));
        let c = plan.compressed(10.0);
        assert_eq!(c.episodes()[0].start, ms(10));
        assert_eq!(c.episodes()[0].end, ms(30));
    }

    #[test]
    fn schedule_yields_time_ordered_transitions() {
        let plan = FaultPlan::new()
            .with_episode(FaultEpisode::new(0, ms(10), ms(30), FaultKind::Stall))
            .with_episode(FaultEpisode::new(1, ms(5), ms(15), FaultKind::Drop));
        let times: Vec<u64> = plan
            .schedule()
            .map(|t| t.at.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(times, vec![5, 10, 15, 30]);
        let edges: Vec<FaultEdge> = plan.schedule().map(|t| t.edge).collect();
        assert_eq!(
            edges,
            vec![
                FaultEdge::Start,
                FaultEdge::Start,
                FaultEdge::End,
                FaultEdge::End
            ]
        );
    }

    #[test]
    fn crash_is_silent_and_scoped() {
        let plan =
            FaultPlan::new().with_episode(FaultEpisode::new(1, ms(10), ms(20), FaultKind::Crash));
        assert!(!plan.crashed(1, ms(9)));
        assert!(plan.crashed(1, ms(10)));
        assert!(plan.crashed(1, ms(19)));
        assert!(!plan.crashed(1, ms(20)), "end is exclusive");
        assert!(!plan.crashed(0, ms(15)));
        // A crash never triggers the notified-loss predicates.
        assert!(!plan.drops(1, ms(15)));
        assert!(!plan.restart_loses(1, ms(15)));
    }

    #[test]
    fn crash_interrupts_in_flight_work() {
        let plan =
            FaultPlan::new().with_episode(FaultEpisode::new(0, ms(10), ms(20), FaultKind::Crash));
        // Dispatched at 5, would complete at 12: the crash at 10 interrupts.
        assert!(plan.crash_started_within(0, ms(5), ms(12)));
        // Completing exactly at the crash start is still swallowed.
        assert!(plan.crash_started_within(0, ms(5), ms(10)));
        // Work fully before or dispatched at/after the crash start is not.
        assert!(!plan.crash_started_within(0, ms(2), ms(9)));
        assert!(
            !plan.crash_started_within(0, ms(10), ms(30)),
            "dispatch at crash start is caught by `crashed`, not this"
        );
        assert!(!plan.crash_started_within(1, ms(5), ms(12)));
    }

    #[test]
    fn restart_holds_dispatches_and_loses_landing_results() {
        let plan =
            FaultPlan::new().with_episode(FaultEpisode::new(0, ms(10), ms(30), FaultKind::Restart));
        // Dispatched mid-restart at t=15: held 15ms, then serves 2ms.
        assert_eq!(plan.completion_delay(0, ms(15), dms(2)), dms(17));
        // A result landing inside the episode is lost with a notification.
        assert!(plan.restart_loses(0, ms(15)));
        assert!(!plan.restart_loses(0, ms(30)));
        assert!(!plan.drops(0, ms(15)), "restart is not a blackout");
    }

    #[test]
    fn duplicate_delivery_is_scoped() {
        let plan = FaultPlan::new().with_episode(FaultEpisode::new(
            2,
            ms(5),
            ms(8),
            FaultKind::DuplicateDelivery,
        ));
        assert!(plan.duplicates(2, ms(6)));
        assert!(!plan.duplicates(2, ms(8)));
        assert!(!plan.duplicates(0, ms(6)));
        // Duplicate delivery affects nothing else.
        assert_eq!(plan.completion_delay(2, ms(6), dms(2)), dms(2));
        assert!(!plan.drops(2, ms(6)));
    }

    #[test]
    fn crash_storm_is_deterministic_and_lifecycle_only() {
        let a = FaultPlan::generate_crash_storm(7, 16, dms(10_000), 12, 50.0);
        let b = FaultPlan::generate_crash_storm(7, 16, dms(10_000), 12, 50.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.episodes().iter().all(|e| matches!(
            e.kind,
            FaultKind::Crash | FaultKind::Restart | FaultKind::DuplicateDelivery
        )));
        assert!(a.episodes().iter().any(|e| e.kind == FaultKind::Crash));
        // The legacy generator's stream is untouched: same seed, different
        // plans.
        let legacy = FaultPlan::generate(7, 16, dms(10_000), 12, 50.0);
        assert!(legacy.episodes().iter().all(|e| matches!(
            e.kind,
            FaultKind::Slowdown { .. } | FaultKind::Stall | FaultKind::Drop
        )));
    }

    #[test]
    fn degrade_ramp_interpolates_linearly() {
        let plan = FaultPlan::new().with_episode(FaultEpisode::new(
            0,
            ms(10),
            ms(30),
            FaultKind::DegradeRamp { peak: 5.0 },
        ));
        assert_eq!(plan.slowdown_factor(0, ms(9)), 1.0);
        assert_eq!(plan.slowdown_factor(0, ms(10)), 1.0, "ramp starts at 1×");
        assert!(
            (plan.slowdown_factor(0, ms(20)) - 3.0).abs() < 1e-9,
            "midpoint"
        );
        assert!((plan.slowdown_factor(0, ms(29)) - 4.8).abs() < 1e-9);
        assert_eq!(plan.slowdown_factor(0, ms(30)), 1.0, "end is exclusive");
        assert_eq!(plan.slowdown_factor(1, ms(20)), 1.0);
        // The ramp rides through completion_delay like any multiplier.
        assert_eq!(plan.completion_delay(0, ms(20), dms(2)), dms(6));
    }

    #[test]
    fn flap_alternates_degraded_and_healthy_phases() {
        let plan = FaultPlan::new().with_episode(FaultEpisode::new(
            0,
            ms(10),
            ms(50),
            FaultKind::Flap {
                factor: 4.0,
                period: dms(5),
            },
        ));
        // Starts degraded, flips every 5 ms.
        assert_eq!(plan.slowdown_factor(0, ms(12)), 4.0);
        assert_eq!(plan.slowdown_factor(0, ms(17)), 1.0);
        assert_eq!(plan.slowdown_factor(0, ms(22)), 4.0);
        assert_eq!(plan.slowdown_factor(0, ms(27)), 1.0);
        assert_eq!(plan.slowdown_factor(0, ms(9)), 1.0, "before episode");
        assert_eq!(plan.slowdown_factor(0, ms(50)), 1.0, "end is exclusive");
    }

    #[test]
    fn gray_kinds_compose_with_step_slowdowns() {
        let plan = FaultPlan::new()
            .with_episode(FaultEpisode::new(
                0,
                ms(0),
                ms(100),
                FaultKind::Slowdown { factor: 2.0 },
            ))
            .with_episode(FaultEpisode::new(
                0,
                ms(0),
                ms(100),
                FaultKind::Flap {
                    factor: 3.0,
                    period: dms(50),
                },
            ));
        assert_eq!(plan.slowdown_factor(0, ms(10)), 6.0);
        assert_eq!(plan.slowdown_factor(0, ms(60)), 2.0);
    }

    #[test]
    fn compressed_scales_flap_period() {
        let plan = FaultPlan::new().with_episode(FaultEpisode::new(
            0,
            ms(100),
            ms(300),
            FaultKind::Flap {
                factor: 4.0,
                period: dms(50),
            },
        ));
        let c = plan.compressed(10.0);
        assert_eq!(c.episodes()[0].start, ms(10));
        assert_eq!(c.episodes()[0].end, ms(30));
        assert_eq!(
            c.episodes()[0].kind,
            FaultKind::Flap {
                factor: 4.0,
                period: dms(5),
            }
        );
        // Phase structure is preserved under compression.
        assert_eq!(
            plan.slowdown_factor(0, ms(160)),
            c.slowdown_factor(0, ms(16))
        );
        assert_eq!(
            plan.slowdown_factor(0, ms(110)),
            c.slowdown_factor(0, ms(11))
        );
    }

    #[test]
    fn drift_plan_is_deterministic_and_gray_only() {
        let a = FaultPlan::generate_drift(7, 16, dms(10_000), 12, 50.0);
        let b = FaultPlan::generate_drift(7, 16, dms(10_000), 12, 50.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.episodes().iter().all(|e| matches!(
            e.kind,
            FaultKind::DegradeRamp { .. } | FaultKind::Flap { .. }
        )));
        assert!(a
            .episodes()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::DegradeRamp { .. })));
        assert!(a
            .episodes()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Flap { .. })));
        // The legacy generators' streams are untouched.
        let legacy = FaultPlan::generate(7, 16, dms(10_000), 12, 50.0);
        assert!(legacy.episodes().iter().all(|e| matches!(
            e.kind,
            FaultKind::Slowdown { .. } | FaultKind::Stall | FaultKind::Drop
        )));
        let c = FaultPlan::generate_drift(8, 16, dms(10_000), 12, 50.0);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    #[should_panic(expected = "ramp peak")]
    fn non_positive_ramp_peak_panics() {
        let _ = FaultEpisode::new(0, ms(0), ms(1), FaultKind::DegradeRamp { peak: 0.0 });
    }

    #[test]
    #[should_panic(expected = "flap period")]
    fn zero_flap_period_panics() {
        let _ = FaultEpisode::new(
            0,
            ms(0),
            ms(1),
            FaultKind::Flap {
                factor: 2.0,
                period: SimDuration::ZERO,
            },
        );
    }

    #[test]
    #[should_panic(expected = "start < end")]
    fn inverted_interval_panics() {
        let _ = FaultEpisode::new(0, ms(10), ms(10), FaultKind::Stall);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_factor_panics() {
        let _ = FaultEpisode::new(0, ms(0), ms(1), FaultKind::Slowdown { factor: 0.0 });
    }
}

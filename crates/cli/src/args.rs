//! A small, dependency-free command-line argument parser.
//!
//! Supports `--key value`, `--key=value` and boolean `--flag` forms, plus
//! positional arguments, with typed accessors that produce friendly errors.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or validation failure, printed to stderr by `main`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

fn err(msg: impl Into<String>) -> ArgError {
    ArgError(msg.into())
}

/// Parsed command-line arguments: positionals plus `--key` options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses a raw argument list (without the program name).
    ///
    /// An option is `--key value` or `--key=value`; a flag is a `--key`
    /// followed by another option or the end of input.
    pub fn parse<I, S>(raw: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(stripped) = tok.strip_prefix("--") {
                if stripped.is_empty() {
                    return Err(err("unexpected bare `--`"));
                }
                if let Some((k, v)) = stripped.split_once('=') {
                    args.options.insert(k.to_string(), v.to_string());
                } else if iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false)
                {
                    let v = iter.next().expect("peeked");
                    args.options.insert(stripped.to_string(), v);
                } else {
                    args.flags.push(stripped.to_string());
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string option, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// True when `--key` appeared as a bare flag (or as `--key=true`).
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key) || self.get(key) == Some("true")
    }

    /// A float option with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{key}: `{v}` is not a number"))),
        }
    }

    /// An integer option with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{key}: `{v}` is not an integer"))),
        }
    }

    /// A u64 option with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{key}: `{v}` is not an integer"))),
        }
    }

    /// A comma-separated list of floats.
    pub fn f64_list(&self, key: &str) -> Result<Option<Vec<f64>>, ArgError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse()
                        .map_err(|_| err(format!("--{key}: `{x}` is not a number")))
                })
                .collect::<Result<Vec<f64>, _>>()
                .map(Some),
        }
    }

    /// Rejects unknown option keys (catches typos early).
    pub fn check_known(&self, known: &[&str]) -> Result<(), ArgError> {
        for k in self.options.keys().chain(self.flags.iter()) {
            if !known.contains(&k.as_str()) {
                return Err(err(format!(
                    "unknown option --{k} (expected one of: {})",
                    known
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().copied()).expect("parse")
    }

    #[test]
    fn key_value_both_forms() {
        let a = parse(&["--load", "0.4", "--policy=fifo"]);
        assert_eq!(a.get("load"), Some("0.4"));
        assert_eq!(a.get("policy"), Some("fifo"));
    }

    #[test]
    fn flags_vs_options() {
        let a = parse(&["--json", "--queries", "100", "--realtime"]);
        assert!(a.flag("json"));
        assert!(a.flag("realtime"));
        assert!(!a.flag("queries"));
        assert_eq!(a.usize_or("queries", 0).unwrap(), 100);
    }

    #[test]
    fn positionals_collected_in_order() {
        let a = parse(&["sim", "--load", "0.3", "extra"]);
        assert_eq!(a.positional(), &["sim".to_string(), "extra".to_string()]);
    }

    #[test]
    fn typed_accessors() {
        let a = parse(&["--x", "2.5", "--n", "7"]);
        assert_eq!(a.f64_or("x", 0.0).unwrap(), 2.5);
        assert_eq!(a.f64_or("missing", 1.5).unwrap(), 1.5);
        assert_eq!(a.usize_or("n", 0).unwrap(), 7);
        assert!(a.f64_or("n", 0.0).is_ok());
    }

    #[test]
    fn bad_number_reports_key() {
        let a = parse(&["--load", "abc"]);
        let e = a.f64_or("load", 0.0).unwrap_err();
        assert!(e.0.contains("--load"));
        assert!(e.0.contains("abc"));
    }

    #[test]
    fn list_parsing() {
        let a = parse(&["--slos", "1.0, 1.5,2"]);
        assert_eq!(a.f64_list("slos").unwrap(), Some(vec![1.0, 1.5, 2.0]));
        assert_eq!(a.f64_list("missing").unwrap(), None);
    }

    #[test]
    fn unknown_options_rejected() {
        let a = parse(&["--laod", "0.4"]);
        let e = a.check_known(&["load"]).unwrap_err();
        assert!(e.0.contains("--laod"));
    }

    #[test]
    fn flag_as_value_true() {
        let a = parse(&["--json=true"]);
        assert!(a.flag("json"));
    }
}

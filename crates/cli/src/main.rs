//! `tailguard` — the command-line interface to the TailGuard reproduction.
//!
//! ```text
//! tailguard sim       run one cluster simulation
//! tailguard maxload   bisect for the max load meeting all SLOs
//! tailguard sweep     per-class p99 across a list of loads
//! tailguard faults    fault matrix × policy sweep with mitigation
//! tailguard testbed   run the tokio Sensing-as-a-Service testbed
//! tailguard trace     flight-record a run and summarize/export the trace
//! tailguard slo       run the online SLO monitor and report burn rates
//! tailguard gentrace  generate a JSON query trace on stdout
//! tailguard workloads print the calibrated Table II statistics
//! tailguard budgets   show Eq. 6 pre-dequeuing budgets
//! tailguard scenarios list built-in paper scenarios
//! ```

// Printing reports to stdout is the CLI's job.
#![allow(clippy::print_stdout)]
mod args;
mod chart;
mod commands;

use args::Args;
use std::process::ExitCode;

const HELP: &str = "\
tailguard — TailGuard (ICDCS 2023) reproduction CLI

USAGE:
    tailguard <command> [options]

COMMANDS:
    sim        Run one cluster simulation and print per-type tails
               --workload masstree|shore|xapian  --policy fifo|priq|tedf|tfedf|sjf
               --load <frac>  --queries <n>  --slos <ms,...>
               --fanout paper|oldi|facebook|fixed:<k>  --servers <n>
               --arrival poisson|pareto  --admission <window_ms>:<threshold>
               --online  --warmup <n>  --seed <n>  --json
    maxload    Bisect for the maximum load meeting all SLOs
               --policies all|<p,p,...> plus the sim workload options
               --tolerance <frac>  --jobs <n> (policies in parallel)
    sweep      Per-class p99 at each load in --loads <f,f,...>
               --jobs <n> (load points in parallel; default: all cores)
    faults     Fault matrix: each policy healthy / faulty / mitigated
               --fault slowdown|stall|drop|crash|restart|dup|random
               --factor <x>  --fault-servers <n>
               --fault-from <ms>  --fault-to <ms>  --episodes <n> (random)
               --lease-ms <ms> (crash-recovery lease TTL; crash/restart
               default to the widest class SLO)  --hedge <frac>
               --attempts <n>  --quorum <frac>  --policies ...
               --jobs <n>  --json
    testbed    Run the tokio SaS testbed (32 nodes, 4 clusters)
               --policy ... --load ... --queries ... --scale <x>
               --probes <n> --store-days <n> --realtime
    trace      Flight-record one simulation: per-query timelines, slack
               histograms, miss-ratio timeline, Prometheus/JSON metrics
               sim options plus --top <k>  --query <id>  --bin <ms>
               --snapshot-every <ms>  --ring <events>
               --sample <permille> --slow-after <ms> (tail-aware sampling)
               --export jsonl|csv  --metrics  --json
    slo        Run one simulation under the online SLO attainment monitor:
               per-class attainment, multi-window burn rates, alerts
               sim options plus --target <frac>  --bucket <ms>
               --slow-buckets <n>  --burn <x>  --json
    gentrace   Generate a JSON query trace on stdout
               --rate <q/ms> --queries <n> --classes <n> --fanout ...
    workloads  Print the calibrated Tailbench statistics (Table II)
    calibrate  Fit a service-time model to measured latencies
               --samples <path> [--anchors <p,...>] [--fanouts <k,...>] [--json]
    budgets    Print Eq. 6 task budgets  --workload ... --slos ... --fanouts ...
    scenarios  List built-in paper scenarios

EXAMPLES:
    tailguard sim --workload masstree --policy tfedf --load 0.38
    tailguard faults --fault slowdown --factor 8 --policies tfedf,fifo
    tailguard maxload --workload xapian --slos 10,15 --fanout oldi --policies all
    tailguard testbed --policy tfedf --load 0.42
    tailguard trace --policy tfedf --load 0.4 --top 5
    tailguard slo --policy tfedf --load 0.5 --burn 2
    tailguard trace --export jsonl --queries 5000 > events.jsonl
    tailguard gentrace --rate 2 --queries 100000 > trace.json
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "-h" || raw[0] == "help" {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    let command = raw[0].clone();
    let parsed = match Args::parse(raw.into_iter().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(stray) = parsed.positional().first() {
        eprintln!("error: unexpected positional argument `{stray}`");
        return ExitCode::FAILURE;
    }
    let result = match command.as_str() {
        "sim" => commands::cmd_sim(&parsed),
        "maxload" => commands::cmd_maxload(&parsed),
        "sweep" => commands::cmd_sweep(&parsed),
        "faults" => commands::cmd_faults(&parsed),
        "testbed" => commands::cmd_testbed(&parsed),
        "trace" => commands::cmd_trace(&parsed),
        "slo" => commands::cmd_slo(&parsed),
        "gentrace" => commands::cmd_gentrace(&parsed),
        "workloads" => commands::cmd_workloads(&parsed),
        "budgets" => commands::cmd_budgets(&parsed),
        "scenarios" => commands::cmd_scenarios(&parsed),
        "calibrate" => commands::cmd_calibrate(&parsed),
        other => Err(args::ArgError(format!(
            "unknown command `{other}` — run `tailguard --help`"
        ))),
    };
    match result {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

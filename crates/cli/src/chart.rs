//! Minimal ASCII charting for terminal output.
//!
//! Renders the Fig. 6-style "p99 vs load" curves directly in the terminal so
//! `tailguard sweep` output can be eyeballed without exporting CSV.

/// Renders one or more named series as an ASCII line chart.
///
/// All series share the x axis (indices of `xs`) and the y axis is scaled to
/// the global value range. An optional horizontal `threshold` line (e.g. the
/// SLO) is drawn with `-`.
///
/// # Example
///
/// ```ignore
/// let chart = ascii_chart(
///     &[20.0, 40.0, 60.0],
///     &[("p99", vec![0.5, 0.9, 2.0])],
///     Some(1.0),
///     8,
/// );
/// assert!(chart.contains("p99"));
/// ```
pub fn ascii_chart(
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
    threshold: Option<f64>,
    height: usize,
) -> String {
    if xs.is_empty() || series.is_empty() || height < 2 {
        return String::new();
    }
    let width = xs.len();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, ys) in series {
        for &y in ys {
            lo = lo.min(y);
            hi = hi.max(y);
        }
    }
    if let Some(t) = threshold {
        lo = lo.min(t);
        hi = hi.max(t);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return String::new();
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0;
    }
    let row_of = |y: f64| -> usize {
        let frac = (y - lo) / (hi - lo);
        ((1.0 - frac) * (height - 1) as f64).round() as usize
    };

    // Canvas of spaces; series marked with their index glyph.
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];
    let mut canvas = vec![vec![' '; width]; height];
    if let Some(t) = threshold {
        let r = row_of(t);
        for cell in &mut canvas[r] {
            *cell = '-';
        }
    }
    for (si, (_, ys)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for (xi, &y) in ys.iter().enumerate().take(width) {
            let r = row_of(y);
            canvas[r][xi] = g;
        }
    }

    let mut out = String::new();
    for (ri, row) in canvas.iter().enumerate() {
        let label = if ri == 0 {
            format!("{hi:>8.2} |")
        } else if ri == height - 1 {
            format!("{lo:>8.2} |")
        } else {
            format!("{:>8} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>8} +{}\n{:>8}  {:<8.0}{:>width$.0}\n",
        "",
        "-".repeat(width),
        "",
        xs[0],
        xs[width - 1],
        width = width.saturating_sub(8).max(1)
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, (name, _))| format!("{} {name}", glyphs[si % glyphs.len()]))
        .collect();
    out.push_str(&format!(
        "{:>10}{}{}\n",
        "",
        legend.join("   "),
        threshold
            .map(|t| format!("   - SLO {t:.2}"))
            .unwrap_or_default()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_series_and_threshold() {
        let chart = ascii_chart(
            &[20.0, 30.0, 40.0, 50.0],
            &[
                ("classI", vec![0.5, 0.7, 0.9, 1.3]),
                ("classII", vec![0.6, 0.9, 1.2, 1.8]),
            ],
            Some(1.0),
            10,
        );
        assert!(chart.contains('*'), "{chart}");
        assert!(chart.contains('o'), "{chart}");
        assert!(chart.contains('-'), "{chart}");
        assert!(chart.contains("classI"));
        assert!(chart.contains("SLO 1.00"));
        assert_eq!(chart.lines().count(), 13); // 10 rows + axis + labels + legend
    }

    #[test]
    fn empty_inputs_yield_empty_chart() {
        assert_eq!(ascii_chart(&[], &[("a", vec![])], None, 8), "");
        assert_eq!(ascii_chart(&[1.0], &[], None, 8), "");
        assert_eq!(ascii_chart(&[1.0], &[("a", vec![1.0])], None, 1), "");
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let chart = ascii_chart(&[1.0, 2.0], &[("flat", vec![5.0, 5.0])], None, 4);
        assert!(chart.contains('*'));
    }

    #[test]
    fn extremes_land_on_first_and_last_rows() {
        let chart = ascii_chart(&[0.0, 1.0], &[("s", vec![0.0, 10.0])], None, 5);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains('*'), "max on top row: {chart}");
        assert!(lines[4].contains('*'), "min on bottom row: {chart}");
    }
}

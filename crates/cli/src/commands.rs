//! CLI subcommand implementations.
//!
//! Every command is a pure function from parsed [`Args`] to a printable
//! `String`, so the full surface is unit-testable without spawning
//! processes.

use crate::args::{ArgError, Args};
use serde::Serialize;
use std::collections::BTreeMap;
use tailguard::{
    default_jobs, max_load_many, run_indexed, run_simulation, run_simulation_observed, scenarios,
    sweep_loads_parallel, AdmissionConfig, ClassSpec, ClusterSpec, DriftKind, DriftPlan,
    EstimatorMode, FaultEpisode, FaultKind, FaultPlan, MaxLoadOptions, MitigationConfig,
    ObsOptions, Scenario, SimReport,
};
use tailguard_dist::{Cdf, LogHistogram};
use tailguard_obs::{
    build_timelines, events_to_csv, events_to_jsonl, miss_ratio_timeline, server_transitions,
    slack_by_type, slowest_queries, QueryTimeline, Registry, SloSnapshot,
};
use tailguard_policy::Policy;
use tailguard_simcore::{SimDuration, SimTime};
use tailguard_testbed::{run_testbed, TestbedConfig, TestbedMode};
use tailguard_workload::{ArrivalProcess, FanoutDist, QueryMix, TailbenchWorkload, Trace};

fn err(msg: impl Into<String>) -> ArgError {
    ArgError(msg.into())
}

/// Worker-thread count for parallel commands: `--jobs N`, defaulting to the
/// machine's available parallelism. `--jobs 1` forces the serial path
/// (results are bit-identical either way).
fn jobs_from(args: &Args) -> Result<usize, ArgError> {
    let jobs = args.usize_or("jobs", default_jobs())?;
    if jobs == 0 {
        return Err(err("--jobs must be at least 1"));
    }
    Ok(jobs)
}

pub(crate) fn workload_from(name: &str) -> Result<TailbenchWorkload, ArgError> {
    match name.to_ascii_lowercase().as_str() {
        "masstree" => Ok(TailbenchWorkload::Masstree),
        "shore" => Ok(TailbenchWorkload::Shore),
        "xapian" => Ok(TailbenchWorkload::Xapian),
        other => Err(err(format!(
            "unknown workload `{other}` (expected masstree|shore|xapian)"
        ))),
    }
}

pub(crate) fn policy_from(name: &str) -> Result<Policy, ArgError> {
    match name.to_ascii_lowercase().as_str() {
        "fifo" => Ok(Policy::Fifo),
        "priq" => Ok(Policy::Priq),
        "tedf" | "t-edf" | "t-edfq" => Ok(Policy::TEdf),
        "tfedf" | "tf-edf" | "tf-edfq" | "tailguard" => Ok(Policy::TfEdf),
        "sjf" => Ok(Policy::Sjf),
        other => Err(err(format!(
            "unknown policy `{other}` (expected fifo|priq|tedf|tfedf|sjf)"
        ))),
    }
}

fn policies_from(arg: Option<&str>) -> Result<Vec<Policy>, ArgError> {
    match arg {
        None | Some("all") => Ok(Policy::ALL.to_vec()),
        Some(list) => list.split(',').map(|p| policy_from(p.trim())).collect(),
    }
}

fn fanout_from(arg: Option<&str>, servers: u32) -> Result<FanoutDist, ArgError> {
    match arg.unwrap_or("paper") {
        "paper" => Ok(FanoutDist::paper_mix()),
        "oldi" => Ok(FanoutDist::fixed(servers)),
        "facebook" => Ok(FanoutDist::facebook_like(servers.min(300))),
        other => {
            if let Some(k) = other.strip_prefix("fixed:") {
                let k: u32 = k
                    .parse()
                    .map_err(|_| err(format!("--fanout fixed:{k}: not an integer")))?;
                Ok(FanoutDist::fixed(k))
            } else {
                Err(err(format!(
                    "unknown fanout model `{other}` (expected paper|oldi|facebook|fixed:<k>)"
                )))
            }
        }
    }
}

fn admission_from(arg: Option<&str>) -> Result<Option<AdmissionConfig>, ArgError> {
    match arg {
        None => Ok(None),
        Some(spec) => {
            let (w, t) = spec.split_once(':').ok_or_else(|| {
                err("--admission expects `<window_ms>:<threshold>`, e.g. 10:0.017")
            })?;
            let window: f64 = w
                .parse()
                .map_err(|_| err(format!("--admission window `{w}` is not a number")))?;
            let threshold: f64 = t
                .parse()
                .map_err(|_| err(format!("--admission threshold `{t}` is not a number")))?;
            if window <= 0.0 || !(0.0..1.0).contains(&threshold) || threshold == 0.0 {
                return Err(err("--admission needs window > 0 and threshold in (0,1)"));
            }
            Ok(Some(
                AdmissionConfig::new(SimDuration::from_millis_f64(window), threshold)
                    .with_resume_threshold(threshold * 0.3),
            ))
        }
    }
}

/// Builds a [`Scenario`] from common options (`sim`, `maxload`, `sweep`).
fn scenario_from(args: &Args) -> Result<Scenario, ArgError> {
    let workload = workload_from(args.get("workload").unwrap_or("masstree"))?;
    let servers = args.usize_or("servers", 100)?;
    if servers == 0 {
        return Err(err("--servers must be positive"));
    }
    let slos = args
        .f64_list("slos")?
        .unwrap_or_else(|| vec![args.f64_or("slo", 1.0).unwrap_or(1.0)]);
    if slos.is_empty() || slos.iter().any(|&s| s <= 0.0) {
        return Err(err("--slos must be positive, e.g. --slos 1.0,1.5"));
    }
    let classes: Vec<ClassSpec> = slos
        .iter()
        .map(|&ms| ClassSpec::p99(SimDuration::from_millis_f64(ms)))
        .collect();
    let fanout = fanout_from(args.get("fanout"), servers as u32)?;
    if fanout.max_fanout() as usize > servers {
        return Err(err(format!(
            "fanout {} exceeds --servers {servers}",
            fanout.max_fanout()
        )));
    }
    let arrival = match args.get("arrival").unwrap_or("poisson") {
        "poisson" => ArrivalProcess::poisson(1.0),
        "pareto" => ArrivalProcess::pareto(1.0),
        other => return Err(err(format!("unknown arrival `{other}` (poisson|pareto)"))),
    };
    let service = workload.service_dist();
    let mean = workload.mean_service_ms();
    Ok(Scenario {
        label: format!("{workload} via CLI"),
        cluster: ClusterSpec::homogeneous(servers, service),
        classes: classes.clone(),
        mix: QueryMix::equiprobable(classes.len() as u8, fanout),
        arrival,
        mean_task_work_ms: mean,
        placement: None,
        seed: args.u64_or("seed", 1)?,
        drift: None,
    })
}

const SIM_KEYS: &[&str] = &[
    "workload",
    "policy",
    "load",
    "queries",
    "slo",
    "slos",
    "fanout",
    "servers",
    "arrival",
    "seed",
    "warmup",
    "admission",
    "online",
    "drift",
    "drift-period",
    "drift-amplitude",
    "drift-from",
    "drift-to",
    "drift-factor",
    "json",
];

/// Builds the optional workload drift plan from `--drift diurnal|flashcrowd`.
///
/// `diurnal` modulates the arrival rate by `1 + a·sin(2πt/p)` with period
/// `--drift-period` (ms, default 5000) and amplitude `--drift-amplitude`
/// (default 0.25); `flashcrowd` multiplies the rate by `--drift-factor`
/// (default 2) inside [`--drift-from`, `--drift-to`) (ms, default
/// [1000, 5000)). Omitting `--drift` leaves the trace bit-identical to a
/// drift-free run.
fn drift_plan_from(args: &Args) -> Result<Option<DriftPlan>, ArgError> {
    let Some(kind) = args.get("drift") else {
        return Ok(None);
    };
    let component = match kind {
        "diurnal" => {
            let period_ms = args.f64_or("drift-period", 5_000.0)?;
            if !period_ms.is_finite() || period_ms <= 0.0 {
                return Err(err("--drift-period must be a positive duration (ms)"));
            }
            let amplitude = args.f64_or("drift-amplitude", 0.25)?;
            if !(0.0..1.0).contains(&amplitude) {
                return Err(err("--drift-amplitude must lie in [0, 1)"));
            }
            DriftKind::Diurnal {
                period: SimDuration::from_millis_f64(period_ms),
                amplitude,
            }
        }
        "flashcrowd" => {
            let from_ms = args.f64_or("drift-from", 1_000.0)?;
            let to_ms = args.f64_or("drift-to", 5_000.0)?;
            if from_ms < 0.0 || to_ms <= from_ms {
                return Err(err("--drift-from/--drift-to need 0 <= from < to (ms)"));
            }
            let factor = args.f64_or("drift-factor", 2.0)?;
            if !factor.is_finite() || factor <= 0.0 {
                return Err(err("--drift-factor must be a finite positive multiplier"));
            }
            DriftKind::FlashCrowd {
                start: SimTime::from_millis_f64(from_ms),
                end: SimTime::from_millis_f64(to_ms),
                factor,
            }
        }
        other => {
            return Err(err(format!(
                "unknown drift `{other}` (expected diurnal|flashcrowd)"
            )))
        }
    };
    Ok(Some(DriftPlan::new(vec![component])))
}

#[derive(Serialize)]
struct SimSummary {
    policy: String,
    offered_load: f64,
    measured_load: f64,
    rejected_load: f64,
    deadline_miss_ratio: f64,
    completed_queries: u64,
    rejected_queries: u64,
    meets_all_slos: bool,
    class_p99_ms: Vec<f64>,
    /// Uniformly named observability metrics — the same `tailguard_*`
    /// names the testbed serves on `/metrics` (counters as integers,
    /// gauges as floats); DESIGN.md §12 documents the naming scheme.
    /// Includes the estimator counters (`tailguard_estimator_*`) and the
    /// mitigation counters (`tailguard_mitigation_*`).
    metrics: BTreeMap<String, serde_json::Value>,
    /// The SLO monitor's sealed state (attainment, burn rates, alerts)
    /// when the run was observed; absent on unobserved paths.
    slo: Option<SloSnapshot>,
}

fn summarize(report: &mut SimReport, offered: f64) -> SimSummary {
    let class_p99_ms = (0..report.classes.len() as u8)
        .map(|c| report.class_tail(c, 0.99).as_millis_f64())
        .collect();
    SimSummary {
        policy: report.policy.name().to_string(),
        offered_load: offered,
        measured_load: report.accepted_load(),
        rejected_load: report.rejected_load(),
        deadline_miss_ratio: report.deadline_miss_ratio(),
        completed_queries: report.completed_queries,
        rejected_queries: report.rejected_queries,
        meets_all_slos: report.meets_all_slos(),
        class_p99_ms,
        metrics: BTreeMap::new(),
        slo: None,
    }
}

/// Flattens a registry's counters and gauges into one `name -> value`
/// map under the exact names `/metrics` exposes, so JSON consumers and
/// Prometheus scrapers read the same schema.
fn uniform_metrics(registry: &Registry) -> BTreeMap<String, serde_json::Value> {
    let snap = registry.snapshot();
    let mut map = BTreeMap::new();
    for c in snap.counters {
        map.insert(c.name, serde_json::Value::U64(c.value));
    }
    for g in snap.gauges {
        map.insert(g.name, serde_json::Value::F64(g.value));
    }
    map
}

/// `tailguard sim` — run one simulation and report per-type tails.
pub fn cmd_sim(args: &Args) -> Result<String, ArgError> {
    args.check_known(SIM_KEYS)?;
    let mut scenario = scenario_from(args)?;
    if let Some(drift) = drift_plan_from(args)? {
        scenario = scenario.with_drift(drift);
    }
    let policy = policy_from(args.get("policy").unwrap_or("tfedf"))?;
    let load = args.f64_or("load", 0.4)?;
    if !(0.0..=1.5).contains(&load) || load <= 0.0 {
        return Err(err("--load must lie in (0, 1.5]"));
    }
    let queries = args.usize_or("queries", 100_000)?;
    let warmup = args.usize_or("warmup", queries / 20)?;
    let input = scenario.input(load, queries);
    let mut config = scenario.config(policy).with_warmup(warmup);
    if let Some(adm) = admission_from(args.get("admission"))? {
        config = config.with_admission(adm);
    }
    if args.flag("online") {
        config = config.with_estimator(EstimatorMode::online_default());
    }
    if args.flag("json") {
        // Observed run: same report (snapshot sampling only adds engine
        // events), plus the registry whose counters/gauges fill the
        // uniformly named `metrics` object.
        let run = run_simulation_observed(&config, &input, &ObsOptions::default());
        let mut report = run.report;
        let mut summary = summarize(&mut report, load);
        summary.metrics = uniform_metrics(&run.registry);
        summary.slo = Some(run.slo);
        serde_json::to_string_pretty(&summary).map_err(|e| err(e.to_string()))
    } else {
        let mut report = run_simulation(&config, &input);
        Ok(format!(
            "{} @ offered load {:.1}%\n{}",
            scenario.label,
            load * 100.0,
            report.render_table()
        ))
    }
}

const MAXLOAD_KEYS: &[&str] = &[
    "workload",
    "policies",
    "queries",
    "slo",
    "slos",
    "fanout",
    "servers",
    "arrival",
    "seed",
    "tolerance",
    "jobs",
    "json",
];

/// `tailguard maxload` — bisect for the max load meeting all SLOs.
///
/// With `--jobs N` (default: available parallelism) the per-policy
/// bisections run concurrently; results are identical to `--jobs 1`.
pub fn cmd_maxload(args: &Args) -> Result<String, ArgError> {
    args.check_known(MAXLOAD_KEYS)?;
    let scenario = scenario_from(args)?;
    let policies = policies_from(args.get("policies"))?;
    let jobs = jobs_from(args)?;
    let opts = MaxLoadOptions {
        queries: args.usize_or("queries", 100_000)?,
        tolerance: args.f64_or("tolerance", 0.01)?,
        ..MaxLoadOptions::default()
    };
    let rows: Vec<(String, f64)> = max_load_many(&scenario, &policies, &opts, jobs)
        .into_iter()
        .map(|(policy, load)| (policy.name().to_string(), load))
        .collect();
    if args.flag("json") {
        let map: std::collections::BTreeMap<_, _> = rows.into_iter().collect();
        serde_json::to_string_pretty(&map).map_err(|e| err(e.to_string()))
    } else {
        let mut out = format!("{} — max load meeting all SLOs:\n", scenario.label);
        for (name, load) in rows {
            out.push_str(&format!("  {name:<10} {:>5.1}%\n", load * 100.0));
        }
        Ok(out)
    }
}

const SWEEP_KEYS: &[&str] = &[
    "workload", "policy", "loads", "queries", "slo", "slos", "fanout", "servers", "arrival",
    "seed", "jobs",
];

/// `tailguard sweep` — per-class p99 at a list of loads (Fig. 6 style),
/// with an ASCII chart of the curves against the tightest SLO.
///
/// With `--jobs N` (default: available parallelism) the load points run
/// concurrently; output is identical to `--jobs 1`.
pub fn cmd_sweep(args: &Args) -> Result<String, ArgError> {
    args.check_known(SWEEP_KEYS)?;
    let scenario = scenario_from(args)?;
    let policy = policy_from(args.get("policy").unwrap_or("tfedf"))?;
    let jobs = jobs_from(args)?;
    let loads = args
        .f64_list("loads")?
        .unwrap_or_else(|| (4..=12).map(|i| i as f64 * 0.05).collect());
    let opts = MaxLoadOptions {
        queries: args.usize_or("queries", 40_000)?,
        ..MaxLoadOptions::default()
    };
    let points = sweep_loads_parallel(&scenario, policy, &loads, &opts, jobs);
    let mut out = format!("{} under {policy}\n{:>8}", scenario.label, "load");
    for c in 0..scenario.classes.len() {
        out.push_str(&format!(" {:>14}", format!("class{c} p99(ms)")));
    }
    out.push_str("   SLOs\n");
    let mut per_class_series: Vec<Vec<f64>> = vec![Vec::new(); scenario.classes.len()];
    for point in &points {
        out.push_str(&format!("{:>7.0}%", point.load * 100.0));
        for c in 0..scenario.classes.len() as u8 {
            out.push_str(&format!(
                " {:>14.3}",
                point.tails_by_class[&c].as_millis_f64()
            ));
        }
        out.push_str(&format!(
            "   {}\n",
            if point.meets { "ok" } else { "VIOLATED" }
        ));
        per_class_series
            .iter_mut()
            .zip(0..scenario.classes.len() as u8)
            .for_each(|(series, c)| {
                series.push(point.tails_by_class[&c].as_millis_f64());
            });
    }
    let named: Vec<(String, Vec<f64>)> = per_class_series
        .into_iter()
        .enumerate()
        .map(|(c, ys)| (format!("class{c}"), ys))
        .collect();
    let named_refs: Vec<(&str, Vec<f64>)> = named
        .iter()
        .map(|(n, ys)| (n.as_str(), ys.clone()))
        .collect();
    let tightest_slo = scenario
        .classes
        .iter()
        .map(|c| c.slo.as_millis_f64())
        .fold(f64::INFINITY, f64::min);
    let xs: Vec<f64> = loads.iter().map(|l| l * 100.0).collect();
    out.push('\n');
    out.push_str(&crate::chart::ascii_chart(
        &xs,
        &named_refs,
        Some(tightest_slo),
        12,
    ));
    Ok(out)
}

const TESTBED_KEYS: &[&str] = &[
    "policy",
    "load",
    "queries",
    "scale",
    "probes",
    "seed",
    "realtime",
    "store-days",
    "json",
];

/// `tailguard testbed` — run the tokio SaS testbed.
pub fn cmd_testbed(args: &Args) -> Result<String, ArgError> {
    args.check_known(TESTBED_KEYS)?;
    let cfg = TestbedConfig {
        policy: policy_from(args.get("policy").unwrap_or("tfedf"))?,
        queries: args.usize_or("queries", 2_000)?,
        target_load: args.f64_or("load", 0.4)?,
        time_scale: args.f64_or("scale", 25.0)?,
        calibration_probes: args.usize_or("probes", 40)?,
        seed: args.u64_or("seed", 0x5A5_7E57)?,
        store_days: args.usize_or("store-days", 90)? as u32,
        mode: if args.flag("realtime") {
            TestbedMode::RealTime
        } else {
            TestbedMode::PausedTime
        },
        ..TestbedConfig::default()
    };
    let mut report = run_testbed(&cfg);
    let mut out = format!(
        "SaS testbed, {} @ {:.0}% target load ({} queries)\n",
        report.policy,
        cfg.target_load * 100.0,
        report.completed_queries
    );
    out.push_str("per-cluster post-queuing (mean/p95/p99 ms, load):\n");
    for c in &report.clusters {
        out.push_str(&format!(
            "  {:<12} {:>6.0} {:>6.0} {:>6.0}  {:>5.1}%\n",
            c.name,
            c.mean_ms,
            c.p95_ms,
            c.p99_ms,
            c.load * 100.0
        ));
    }
    let slos = report.slos.clone();
    for class in 0..3u8 {
        out.push_str(&format!(
            "  class {} p99 {:>6.0} ms (SLO {:>5.0} ms)\n",
            (b'A' + class) as char,
            report.class_p99_ms(class),
            slos[class as usize].as_millis_f64()
        ));
    }
    Ok(out)
}

const FAULTS_KEYS: &[&str] = &[
    "workload",
    "policies",
    "load",
    "queries",
    "slo",
    "slos",
    "fanout",
    "servers",
    "arrival",
    "seed",
    "fault",
    "factor",
    "fault-servers",
    "fault-from",
    "fault-to",
    "flap-period",
    "episodes",
    "lease-ms",
    "hedge",
    "attempts",
    "quorum",
    "jobs",
    "json",
];

/// One `(policy, fault mode)` cell of the fault matrix.
#[derive(Serialize)]
struct FaultCell {
    policy: String,
    mode: &'static str,
    p99_ms: f64,
    miss_ratio: f64,
    /// Median of the dequeue-slack histogram (on-time attempts, ms),
    /// from the cell's flight recording.
    slack_p50_ms: f64,
    /// 99th percentile of the same histogram (ms).
    slack_p99_ms: f64,
    completed: u64,
    rejected: u64,
    partial: u64,
    failed: u64,
    tasks_lost: u64,
    hedges_issued: u64,
    hedge_wins: u64,
    retries: u64,
    /// Expired leases reclaimed (tasks re-enqueued after a crash swallowed
    /// them); zero unless the cell armed a lease.
    reclaims: u64,
    /// Redelivered results suppressed idempotently.
    dup_suppressed: u64,
}

/// Builds the injected fault plan from `--fault`/`--factor`/
/// `--fault-servers`/`--fault-from`/`--fault-to` (ms) or, for
/// `--fault random`, from `FaultPlan::generate` with `--episodes`.
/// The gray-failure kinds take extra knobs: `--fault ramp` ramps toward
/// `--factor`× across the episode, `--fault flap` alternates degraded
/// and healthy phases each lasting `--flap-period` (ms).
fn fault_plan_from(args: &Args, servers: usize) -> Result<FaultPlan, ArgError> {
    let from_ms = args.f64_or("fault-from", 0.0)?;
    let to_ms = args.f64_or("fault-to", 3_600_000.0)?;
    if from_ms < 0.0 || to_ms <= from_ms {
        return Err(err("--fault-from/--fault-to need 0 <= from < to (ms)"));
    }
    let kind_name = args.get("fault").unwrap_or("slowdown");
    if kind_name == "random" {
        let episodes = args.usize_or("episodes", 10)?;
        if episodes == 0 {
            return Err(err("--episodes must be positive"));
        }
        let mean_len = ((to_ms - from_ms) / episodes as f64).max(1.0);
        return Ok(FaultPlan::generate(
            args.u64_or("seed", 1)? ^ 0xFA17,
            servers as u32,
            SimDuration::from_millis_f64(to_ms),
            episodes,
            mean_len,
        ));
    }
    let factor = args.f64_or("factor", 8.0)?;
    if !factor.is_finite() || factor <= 1.0 {
        return Err(err("--factor must be a finite slowdown factor > 1"));
    }
    let affected = args.usize_or("fault-servers", (servers / 10).max(1))?;
    if affected == 0 || affected > servers {
        return Err(err(format!(
            "--fault-servers must lie in 1..={servers} for --servers {servers}"
        )));
    }
    let kind = match kind_name {
        "slowdown" => FaultKind::Slowdown { factor },
        "stall" => FaultKind::Stall,
        "drop" => FaultKind::Drop,
        "crash" => FaultKind::Crash,
        "restart" => FaultKind::Restart,
        "dup" => FaultKind::DuplicateDelivery,
        // Gray failures: service times creep up toward `--factor`×
        // across the episode instead of jumping — the classic fail-slow.
        "ramp" => FaultKind::DegradeRamp { peak: factor },
        // Intermittent gray failure: the server alternates degraded
        // (`--factor`×) and healthy every `--flap-period` ms.
        "flap" => {
            let period_ms = args.f64_or("flap-period", 200.0)?;
            if !period_ms.is_finite() || period_ms <= 0.0 {
                return Err(err("--flap-period must be a positive duration (ms)"));
            }
            FaultKind::Flap {
                factor,
                period: SimDuration::from_millis_f64(period_ms),
            }
        }
        other => {
            return Err(err(format!(
            "unknown fault kind `{other}` (expected slowdown|stall|drop|crash|restart|dup|ramp|flap|random)"
        )))
        }
    };
    let start = SimTime::from_millis_f64(from_ms);
    let end = SimTime::from_millis_f64(to_ms);
    let mut plan = FaultPlan::new();
    for server in 0..affected as u32 {
        plan = plan.with_episode(FaultEpisode::new(server, start, end, kind));
    }
    Ok(plan)
}

/// `tailguard faults` — fault matrix × policy sweep: each policy runs
/// healthy, under the injected faults, and under faults + mitigation
/// (hedging/retry/optional partial quorum). Cells run `--jobs`-parallel;
/// output is bit-identical for any `--jobs` value. Also writes a
/// `FigureCsv` (`target/paper_figures/fault_matrix_cli.csv`).
pub fn cmd_faults(args: &Args) -> Result<String, ArgError> {
    args.check_known(FAULTS_KEYS)?;
    let scenario = scenario_from(args)?;
    let servers = args.usize_or("servers", 100)?;
    let policies = policies_from(args.get("policies"))?;
    let jobs = jobs_from(args)?;
    let load = args.f64_or("load", 0.4)?;
    if !(0.0..=1.5).contains(&load) || load <= 0.0 {
        return Err(err("--load must lie in (0, 1.5]"));
    }
    let queries = args.usize_or("queries", 10_000)?;
    let plan = fault_plan_from(args, servers)?;
    // Crash/restart episodes swallow in-flight work silently (crash) or
    // lose it on landing (restart) — only a lease notices the former. The
    // faulty and mitigated cells arm one automatically for those kinds;
    // `--lease-ms` overrides the default TTL (the widest class SLO: past
    // it the query has missed anyway, so reclaiming is free).
    let lease_ms = args.f64_or("lease-ms", 0.0)?;
    if lease_ms < 0.0 || !lease_ms.is_finite() {
        return Err(err("--lease-ms must be a finite non-negative duration"));
    }
    let crashy = plan
        .episodes()
        .iter()
        .any(|e| matches!(e.kind, FaultKind::Crash | FaultKind::Restart));
    let lease_ttl = if lease_ms > 0.0 {
        Some(SimDuration::from_millis_f64(lease_ms))
    } else if crashy {
        scenario.classes.iter().map(|c| c.slo).max()
    } else {
        None
    };
    let hedge = args.f64_or("hedge", 0.5)?;
    if !hedge.is_finite() || hedge <= 0.0 {
        return Err(err("--hedge must be a positive budget fraction"));
    }
    let attempts = args.usize_or("attempts", 2)?;
    if attempts == 0 {
        return Err(err("--attempts must be at least 1"));
    }
    let mut mitigation = MitigationConfig::new()
        .with_hedge_after(hedge)
        .with_max_attempts(attempts as u32);
    if let Some(q) = args.get("quorum") {
        let q: f64 = q
            .parse()
            .map_err(|_| err(format!("--quorum `{q}` is not a number")))?;
        if !(q > 0.0 && q <= 1.0) {
            return Err(err("--quorum must lie in (0, 1]"));
        }
        mitigation = mitigation.with_partial_quorum(q);
    }

    const MODES: [&str; 3] = ["healthy", "faulty", "mitigated"];
    let cells: Vec<(Policy, usize)> = policies
        .iter()
        .flat_map(|&p| (0..MODES.len()).map(move |m| (p, m)))
        .collect();
    let warmup = queries / 20;
    let results: Vec<FaultCell> = run_indexed(&cells, jobs, |_, &(policy, mode)| {
        let input = scenario.input(load, queries);
        let mut config = scenario.config(policy).with_warmup(warmup);
        if mode >= 1 {
            config = config.with_faults(plan.clone());
            if let Some(ttl) = lease_ttl {
                config = config.with_lease(ttl);
            }
        }
        if mode == 2 {
            config = config.with_mitigation(mitigation);
        }
        // Observed run: the report is identical to an unobserved one
        // (only `events_processed` differs), and the registry's per-class
        // `tailguard_dequeue_slack_ms` histograms feed the slack column.
        let run = run_simulation_observed(&config, &input, &ObsOptions::default());
        let mut report = run.report;
        let p99_ms = report.class_tail(0, 0.99).as_millis_f64();
        let mut slack = LogHistogram::new();
        for c in 0..report.classes.len() as u8 {
            if let Some(h) = run
                .registry
                .histogram(&format!("tailguard_dequeue_slack_ms{{class=\"{c}\"}}"))
            {
                slack.merge(h);
            }
        }
        let (slack_p50_ms, slack_p99_ms) = if slack.is_empty() {
            (0.0, 0.0)
        } else {
            (slack.quantile(0.50), slack.quantile(0.99))
        };
        let r = &report.robustness;
        FaultCell {
            policy: policy.name().to_string(),
            mode: MODES[mode],
            p99_ms,
            miss_ratio: report.deadline_miss_ratio(),
            slack_p50_ms,
            slack_p99_ms,
            completed: report.completed_queries,
            rejected: report.rejected_queries,
            partial: r.partial_completions,
            failed: r.failed_queries,
            tasks_lost: r.tasks_lost_to_faults,
            hedges_issued: r.hedges_issued,
            hedge_wins: r.hedge_wins,
            retries: r.retries,
            reclaims: report.lifecycle.reclaims,
            dup_suppressed: report.lifecycle.duplicates_suppressed,
        }
    });
    if args.flag("json") {
        return serde_json::to_string_pretty(&results).map_err(|e| err(e.to_string()));
    }
    let mut csv = tailguard_bench::FigureCsv::create(
        "fault_matrix_cli",
        &[
            "cell",
            "p99_ms",
            "miss_pct",
            "slack_p50_ms",
            "slack_p99_ms",
            "completed",
            "partial",
            "failed",
            "lost_tasks",
            "hedges",
            "hedge_wins",
            "retries",
            "reclaims",
            "dups",
        ],
    );
    let mut out = format!(
        "{} @ load {:.0}% — fault matrix ({} × healthy/faulty/mitigated)\n",
        scenario.label,
        load * 100.0,
        policies.len()
    );
    out.push_str(&format!(
        "{:<10} {:<9} {:>10} {:>7} {:>15} {:>9} {:>8} {:>7} {:>6} {:>7} {:>6} {:>8} {:>8} {:>6}\n",
        "policy",
        "mode",
        "p99(ms)",
        "miss%",
        "slack p50/p99",
        "completed",
        "partial",
        "failed",
        "lost",
        "hedges",
        "wins",
        "retries",
        "reclaims",
        "dups"
    ));
    for c in &results {
        out.push_str(&format!(
            "{:<10} {:<9} {:>10.3} {:>6.2}% {:>15} {:>9} {:>8} {:>7} {:>6} {:>7} {:>6} {:>8} {:>8} {:>6}\n",
            c.policy,
            c.mode,
            c.p99_ms,
            c.miss_ratio * 100.0,
            format!("{:.2}/{:.2}", c.slack_p50_ms, c.slack_p99_ms),
            c.completed,
            c.partial,
            c.failed,
            c.tasks_lost,
            c.hedges_issued,
            c.hedge_wins,
            c.retries,
            c.reclaims,
            c.dup_suppressed
        ));
        csv.labeled_row(
            &format!("{}/{}", c.policy, c.mode),
            &[
                c.p99_ms,
                c.miss_ratio * 100.0,
                c.slack_p50_ms,
                c.slack_p99_ms,
                c.completed as f64,
                c.partial as f64,
                c.failed as f64,
                c.tasks_lost as f64,
                c.hedges_issued as f64,
                c.hedge_wins as f64,
                c.retries as f64,
                c.reclaims as f64,
                c.dup_suppressed as f64,
            ],
        );
    }
    out.push_str(&format!("\ncsv: {}\n", csv.finish()));
    Ok(out)
}

const TRACE_KEYS: &[&str] = &[
    "workload",
    "policy",
    "load",
    "queries",
    "slo",
    "slos",
    "fanout",
    "servers",
    "arrival",
    "seed",
    "warmup",
    "admission",
    "online",
    "top",
    "query",
    "bin",
    "ring",
    "snapshot-every",
    "sample",
    "slow-after",
    "export",
    "metrics",
    "json",
];

/// `tailguard trace` — flight-record one simulation and summarize the
/// recording: top-`k` slowest queries with their full per-task timelines,
/// the dequeue-slack histogram per `(class, fanout)` query type, and the
/// miss-ratio timeline. `--query <id>` reconstructs one query's timeline,
/// `--export jsonl|csv` dumps the raw event stream, `--metrics` prints
/// the Prometheus text exposition, and `--json` emits the registry
/// snapshot plus the virtual-time snapshot series.
pub fn cmd_trace(args: &Args) -> Result<String, ArgError> {
    args.check_known(TRACE_KEYS)?;
    let scenario = scenario_from(args)?;
    let policy = policy_from(args.get("policy").unwrap_or("tfedf"))?;
    let load = args.f64_or("load", 0.4)?;
    if !(0.0..=1.5).contains(&load) || load <= 0.0 {
        return Err(err("--load must lie in (0, 1.5]"));
    }
    let queries = args.usize_or("queries", 20_000)?;
    let warmup = args.usize_or("warmup", queries / 20)?;
    let input = scenario.input(load, queries);
    let mut config = scenario.config(policy).with_warmup(warmup);
    if let Some(adm) = admission_from(args.get("admission"))? {
        config = config.with_admission(adm);
    }
    if args.flag("online") {
        config = config.with_estimator(EstimatorMode::online_default());
    }
    let mut opts = ObsOptions {
        ring_capacity: args.usize_or("ring", tailguard::DEFAULT_RING_CAPACITY)?,
        ..ObsOptions::default()
    };
    if opts.ring_capacity == 0 {
        return Err(err("--ring must be positive (events)"));
    }
    if args.get("snapshot-every").is_some() {
        let every = args.f64_or("snapshot-every", 10.0)?;
        if every <= 0.0 {
            return Err(err("--snapshot-every must be positive (ms)"));
        }
        opts.snapshot_every = Some(SimDuration::from_millis_f64(every));
    }
    if args.get("sample").is_some() || args.get("slow-after").is_some() {
        let keep = args.usize_or("sample", 10)?;
        if keep > 1000 {
            return Err(err("--sample is a per-mille keep rate (0..=1000)"));
        }
        let slow_ms = args.f64_or("slow-after", 20.0)?;
        if slow_ms <= 0.0 {
            return Err(err("--slow-after must be positive (ms)"));
        }
        opts.sampler = Some(tailguard_obs::SamplerConfig {
            keep_permille: keep as u16,
            slow_after: SimDuration::from_millis_f64(slow_ms),
        });
    }

    let run = run_simulation_observed(&config, &input, &opts);
    let events = run.recorder.events();

    match args.get("export") {
        Some("jsonl") => return Ok(events_to_jsonl(&events)),
        Some("csv") => return Ok(events_to_csv(&events)),
        Some(other) => return Err(err(format!("unknown --export `{other}` (jsonl|csv)"))),
        None => {}
    }
    if args.flag("metrics") {
        return Ok(run.registry.prometheus_text());
    }
    if args.flag("json") {
        use serde::Serialize as _;
        let doc = serde_json::Value::Map(vec![
            (
                "events_recorded".to_string(),
                serde_json::Value::U64(run.recorder.total_recorded()),
            ),
            (
                "events_retained".to_string(),
                serde_json::Value::U64(run.recorder.len() as u64),
            ),
            (
                "events_dropped".to_string(),
                serde_json::Value::U64(run.recorder.dropped()),
            ),
            (
                "events_sampled_out".to_string(),
                serde_json::Value::U64(run.recorder.sampled_out()),
            ),
            ("registry".to_string(), run.registry.snapshot().to_node()),
            ("snapshots".to_string(), run.snapshots.to_node()),
            ("slo".to_string(), run.slo.to_node()),
        ]);
        return serde_json::to_string_pretty(&doc).map_err(|e| err(e.to_string()));
    }

    let timelines = build_timelines(&events);
    if let Some(raw) = args.get("query") {
        let qid: u32 = raw
            .parse()
            .map_err(|_| err(format!("--query `{raw}` is not a query id")))?;
        let tl = timelines.get(&qid).ok_or_else(|| {
            err(format!(
                "query {qid} is not in the recording ({} queries recorded; \
                 a larger --ring retains more of the run)",
                timelines.len()
            ))
        })?;
        return Ok(render_timeline(tl));
    }

    let mut out = format!(
        "{} under {} @ offered load {:.1}% — flight recording\n",
        scenario.label,
        policy.name(),
        load * 100.0
    );
    out.push_str(&format!(
        "events: {} recorded, {} retained ({} dropped, {} sampled out); snapshots: {}\n",
        run.recorder.total_recorded(),
        run.recorder.len(),
        run.recorder.dropped(),
        run.recorder.sampled_out(),
        run.snapshots.len()
    ));
    let complete = timelines.values().filter(|t| t.is_complete()).count();
    out.push_str(&format!(
        "queries: {} in recording, {} with complete timelines\n",
        timelines.len(),
        complete
    ));
    if run.recorder.dropped() > 0 {
        out.push_str(
            "warning: ring capacity exceeded — this summary covers a suffix of the run \
             (raise --ring to retain everything)\n",
        );
    }

    let top = args.usize_or("top", 5)?;
    let slowest = slowest_queries(&timelines, top);
    out.push_str(&format!("\ntop {} slowest queries:\n", slowest.len()));
    for tl in slowest {
        for line in render_timeline(tl).lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }

    out.push_str("\ndequeue slack by query type (class, fanout):\n");
    out.push_str(&format!(
        "{:>6} {:>7} {:>9} {:>7} {:>13} {:>13} {:>12}\n",
        "class", "fanout", "dequeues", "miss%", "slack p50(ms)", "slack p99(ms)", "late p99(ms)"
    ));
    for ((class, fanout), s) in slack_by_type(&timelines) {
        let (p50, p99) = if s.slack.is_empty() {
            (0.0, 0.0)
        } else {
            (s.slack.quantile(0.50), s.slack.quantile(0.99))
        };
        let late_p99 = if s.lateness.is_empty() {
            0.0
        } else {
            s.lateness.quantile(0.99)
        };
        out.push_str(&format!(
            "{class:>6} {fanout:>7} {:>9} {:>6.2}% {p50:>13.3} {p99:>13.3} {late_p99:>12.3}\n",
            s.dequeues,
            s.miss_ratio() * 100.0
        ));
    }

    let bin_ms = args.f64_or("bin", 50.0)?;
    if bin_ms <= 0.0 {
        return Err(err("--bin must be positive (ms)"));
    }
    let bins = miss_ratio_timeline(&events, SimDuration::from_millis_f64(bin_ms));
    // Coarsen long timelines so the chart stays readable.
    let group = bins.len().div_ceil(60).max(1);
    out.push_str(&format!(
        "\nmiss-ratio timeline (bin {:.0} ms):\n",
        bin_ms * group as f64
    ));
    for chunk in bins.chunks(group) {
        let start = chunk[0].start;
        let dequeues: u64 = chunk.iter().map(|b| b.dequeues).sum();
        let misses: u64 = chunk.iter().map(|b| b.misses).sum();
        let ratio = if dequeues == 0 {
            0.0
        } else {
            misses as f64 / dequeues as f64
        };
        let bar = "#".repeat((ratio * 40.0).round() as usize);
        out.push_str(&format!(
            "  +{:>8.0} ms {:>7.2}% (n={dequeues:<6}) {bar}\n",
            start.as_millis_f64(),
            ratio * 100.0
        ));
    }

    let transitions = server_transitions(&events);
    if !transitions.is_empty() {
        out.push_str("\ncluster events (health tracker):\n");
        for t in &transitions {
            out.push_str(&format!(
                "  {:>10.3} ms server {:>3} {}\n",
                t.at.as_millis_f64(),
                t.server,
                if t.ejected { "ejected" } else { "readmitted" }
            ));
        }
    }

    out.push_str(&render_slo(&run.slo));
    Ok(out)
}

/// Renders the SLO monitor's sealed state: the per-class attainment and
/// burn-rate table, then every multi-window burn alert in time order.
fn render_slo(slo: &SloSnapshot) -> String {
    let mut out = format!(
        "\nSLO attainment (target {:.2}%, bucket {:.0} ms, slow window {} buckets, burn alert ≥ {:.1}x):\n",
        slo.target * 100.0,
        slo.bucket_ns as f64 / 1e6,
        slo.slow_buckets,
        slo.burn_threshold
    );
    if slo.classes.is_empty() {
        out.push_str("  (no dequeues observed)\n");
        return out;
    }
    out.push_str(&format!(
        "{:>6} {:>9} {:>7} {:>11} {:>5} {:>9} {:>9} {:>7} {:>12} {:>12}\n",
        "class",
        "dequeues",
        "misses",
        "attainment",
        "met",
        "burn_fast",
        "burn_slow",
        "alerts",
        "slack p50",
        "slack p99"
    ));
    for c in &slo.classes {
        out.push_str(&format!(
            "{:>6} {:>9} {:>7} {:>10.3}% {:>5} {:>9.2} {:>9.2} {:>7} {:>9.3} ms {:>9.3} ms\n",
            c.class,
            c.dequeues,
            c.misses,
            c.attainment * 100.0,
            if c.met { "yes" } else { "NO" },
            c.fast_burn,
            c.slow_burn,
            c.alerts,
            c.slack_p50_ms,
            c.slack_p99_ms
        ));
    }
    if !slo.alerts.is_empty() {
        out.push_str("\nburn-rate alerts:\n");
        for a in &slo.alerts {
            out.push_str(&format!(
                "  {:>10.3} ms class {} fast {:.1}x slow {:.1}x\n",
                a.at_ns as f64 / 1e6,
                a.class,
                a.fast_burn,
                a.slow_burn
            ));
        }
    }
    out
}

const SLO_KEYS: &[&str] = &[
    "workload",
    "policy",
    "load",
    "queries",
    "slo",
    "slos",
    "fanout",
    "servers",
    "arrival",
    "seed",
    "warmup",
    "admission",
    "online",
    "target",
    "bucket",
    "slow-buckets",
    "burn",
    "json",
];

/// `tailguard slo` — run one simulation under the online SLO monitor and
/// report per-class attainment, multi-window burn rates, windowed slack
/// percentiles, and every burn-rate alert. `--target` overrides the
/// attainment target (default: the strictest class percentile),
/// `--bucket`/`--slow-buckets` set the fast/slow windows, `--burn` the
/// alert threshold, and `--json` emits the full monitor snapshot.
pub fn cmd_slo(args: &Args) -> Result<String, ArgError> {
    args.check_known(SLO_KEYS)?;
    let scenario = scenario_from(args)?;
    let policy = policy_from(args.get("policy").unwrap_or("tfedf"))?;
    let load = args.f64_or("load", 0.4)?;
    if !(0.0..=1.5).contains(&load) || load <= 0.0 {
        return Err(err("--load must lie in (0, 1.5]"));
    }
    let queries = args.usize_or("queries", 20_000)?;
    let warmup = args.usize_or("warmup", queries / 20)?;
    let input = scenario.input(load, queries);
    let mut config = scenario.config(policy).with_warmup(warmup);
    if let Some(adm) = admission_from(args.get("admission"))? {
        config = config.with_admission(adm);
    }
    if args.flag("online") {
        config = config.with_estimator(EstimatorMode::online_default());
    }
    let mut slo_config = tailguard_obs::SloConfig::default();
    let strictest = config
        .classes
        .iter()
        .map(|c| c.percentile)
        .fold(f64::NAN, f64::min);
    if !strictest.is_nan() {
        slo_config.target = strictest;
    }
    if args.get("target").is_some() {
        let target = args.f64_or("target", 0.99)?;
        if !(0.0..1.0).contains(&target) || target <= 0.0 {
            return Err(err("--target must lie in (0, 1)"));
        }
        slo_config.target = target;
    }
    if args.get("bucket").is_some() {
        let bucket_ms = args.f64_or("bucket", 100.0)?;
        if bucket_ms <= 0.0 {
            return Err(err("--bucket must be positive (ms)"));
        }
        slo_config.bucket = SimDuration::from_millis_f64(bucket_ms);
    }
    if args.get("slow-buckets").is_some() {
        let n = args.usize_or("slow-buckets", 10)?;
        if n == 0 {
            return Err(err("--slow-buckets must be at least 1"));
        }
        slo_config.slow_buckets = n;
    }
    if args.get("burn").is_some() {
        let burn = args.f64_or("burn", 2.0)?;
        if !burn.is_finite() || burn <= 0.0 {
            return Err(err("--burn must be a positive multiplier"));
        }
        slo_config.burn_threshold = burn;
    }
    let run = run_simulation_observed(
        &config,
        &input,
        &ObsOptions {
            slo: Some(slo_config),
            ..ObsOptions::default()
        },
    );
    if args.flag("json") {
        return serde_json::to_string_pretty(&run.slo).map_err(|e| err(e.to_string()));
    }
    let mut out = format!(
        "{} under {} @ offered load {:.1}% — SLO monitor\n",
        scenario.label,
        policy.name(),
        load * 100.0
    );
    out.push_str(&render_slo(&run.slo));
    Ok(out)
}

/// Renders one reconstructed query timeline: the admission/deadline line
/// followed by every attempt's enqueue → dequeue (with signed slack) →
/// completion/cancellation/loss, all relative to admission time `t_0`.
fn render_timeline(tl: &QueryTimeline) -> String {
    let t0 = tl.admitted_at;
    let rel = |t: SimTime| t.saturating_since(t0).as_millis_f64();
    let mut out = format!(
        "query {} class {} fanout {}: admitted t0={:.3} ms, deadline t_D=+{:.3} ms{}\n",
        tl.query,
        tl.class,
        tl.fanout,
        tl.admitted_at.as_millis_f64(),
        rel(tl.deadline),
        match tl.latency() {
            Some(l) => format!(", completed +{:.3} ms", l.as_millis_f64()),
            None => ", incomplete".to_string(),
        }
    );
    if tl.duplicate_attempts() > 0 {
        out.push_str(&format!(
            "  ({} hedge/retry copies issued)\n",
            tl.duplicate_attempts()
        ));
    }
    if tl.budget_denials > 0 {
        out.push_str(&format!(
            "  ({} hedge/retry copies denied: class budget exhausted)\n",
            tl.budget_denials
        ));
    }
    for a in &tl.attempts {
        out.push_str(&format!(
            "  task {:>6} srv {:>3} {:<8} enq +{:.3}",
            a.task,
            a.server,
            a.kind.name(),
            rel(a.enqueued_at)
        ));
        if let (Some(d), Some(slack_ns)) = (a.dequeued_at, a.slack_ns) {
            out.push_str(&format!(
                "  deq +{:.3} (slack {:+.3} ms{})",
                rel(d),
                slack_ns as f64 / 1e6,
                if a.missed_deadline { " MISS" } else { "" }
            ));
        }
        if let (Some(done), Some(busy)) = (a.completed_at, a.busy) {
            out.push_str(&format!(
                "  done +{:.3} (busy {:.3} ms){}",
                rel(done),
                busy.as_millis_f64(),
                if a.won { "" } else { " lost-race" }
            ));
        }
        if let Some(c) = a.cancelled_at {
            out.push_str(&format!("  cancelled +{:.3}", rel(c)));
        }
        if let Some(l) = a.lost_at {
            out.push_str(&format!("  LOST +{:.3}", rel(l)));
        }
        out.push('\n');
    }
    out
}

const GENTRACE_KEYS: &[&str] = &[
    "workload", "rate", "queries", "classes", "fanout", "servers", "seed", "arrival", "format",
];

/// `tailguard gentrace` — generate a JSON query trace on stdout.
pub fn cmd_gentrace(args: &Args) -> Result<String, ArgError> {
    args.check_known(GENTRACE_KEYS)?;
    let servers = args.usize_or("servers", 100)? as u32;
    let fanout = fanout_from(args.get("fanout"), servers)?;
    let classes = args.usize_or("classes", 1)? as u8;
    if classes == 0 {
        return Err(err("--classes must be positive"));
    }
    let rate = args.f64_or("rate", 1.0)?;
    if rate <= 0.0 {
        return Err(err("--rate must be positive (queries per ms)"));
    }
    let arrival = match args.get("arrival").unwrap_or("poisson") {
        "poisson" => ArrivalProcess::poisson(rate),
        "pareto" => ArrivalProcess::pareto(rate),
        other => return Err(err(format!("unknown arrival `{other}`"))),
    };
    let trace = Trace::generate(
        "cli",
        &arrival,
        &QueryMix::equiprobable(classes, fanout),
        args.usize_or("queries", 10_000)?,
        args.u64_or("seed", 1)?,
    );
    match args.get("format").unwrap_or("json") {
        "json" => trace.to_json().map_err(|e| err(e.to_string())),
        "csv" => Ok(trace.to_csv()),
        other => Err(err(format!("unknown --format `{other}` (json|csv)"))),
    }
}

/// `tailguard workloads` — the calibrated Table II statistics.
pub fn cmd_workloads(args: &Args) -> Result<String, ArgError> {
    args.check_known(&["json"])?;
    #[derive(Serialize)]
    struct Row {
        name: String,
        mean_ms: f64,
        x99_k1_ms: f64,
        x99_k10_ms: f64,
        x99_k100_ms: f64,
    }
    let rows: Vec<Row> = TailbenchWorkload::ALL
        .iter()
        .map(|w| Row {
            name: w.name().to_string(),
            mean_ms: w.mean_service_ms(),
            x99_k1_ms: w.unloaded_query_tail(0.99, 1),
            x99_k10_ms: w.unloaded_query_tail(0.99, 10),
            x99_k100_ms: w.unloaded_query_tail(0.99, 100),
        })
        .collect();
    if args.flag("json") {
        return serde_json::to_string_pretty(&rows).map_err(|e| err(e.to_string()));
    }
    let mut out = format!(
        "{:<10} {:>9} {:>9} {:>9} {:>9}   (paper Table II, reproduced)\n",
        "workload", "T_m", "x99(1)", "x99(10)", "x99(100)"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
            r.name, r.mean_ms, r.x99_k1_ms, r.x99_k10_ms, r.x99_k100_ms
        ));
    }
    Ok(out)
}

/// `tailguard budgets` — show Eq. 6 pre-dequeuing budgets for a workload.
pub fn cmd_budgets(args: &Args) -> Result<String, ArgError> {
    args.check_known(&["workload", "slos", "slo", "fanouts"])?;
    let workload = workload_from(args.get("workload").unwrap_or("masstree"))?;
    let slos = args
        .f64_list("slos")?
        .unwrap_or_else(|| vec![args.f64_or("slo", 1.0).unwrap_or(1.0)]);
    let fanouts: Vec<u32> = match args.f64_list("fanouts")? {
        Some(v) => v.into_iter().map(|f| f as u32).collect(),
        None => vec![1, 10, 100],
    };
    if fanouts.contains(&0) {
        return Err(err("--fanouts must be positive"));
    }
    let cluster = ClusterSpec::homogeneous(
        *fanouts.iter().max().expect("non-empty") as usize,
        workload.service_dist(),
    );
    let classes: Vec<ClassSpec> = slos
        .iter()
        .map(|&ms| ClassSpec::p99(SimDuration::from_millis_f64(ms)))
        .collect();
    let mut est = tailguard::DeadlineEstimator::new(&cluster, classes, EstimatorMode::Analytic);
    let mut out = format!(
        "{workload}: task pre-dequeuing budgets T_b = x99_SLO − x99_u(k)  (Eq. 6, ms)\n{:>10}",
        "fanout"
    );
    for slo in &slos {
        out.push_str(&format!(" {:>12}", format!("SLO {slo}ms")));
    }
    out.push('\n');
    for &k in &fanouts {
        out.push_str(&format!("{k:>10}"));
        for class in 0..slos.len() as u8 {
            out.push_str(&format!(
                " {:>12.3}",
                est.budget(class, k, &[]).as_millis_f64()
            ));
        }
        out.push('\n');
    }
    Ok(out)
}

const CALIBRATE_KEYS: &[&str] = &["samples", "anchors", "fanouts", "json"];

/// `tailguard calibrate` — fit a service-time model to measured latencies.
///
/// Reads newline-separated latencies in milliseconds from `--samples
/// <path>` (the paper's offline estimation process, productized) and prints
/// the fitted piecewise-quantile control points plus the Table-II-style
/// statistics TailGuard consumes.
pub fn cmd_calibrate(args: &Args) -> Result<String, ArgError> {
    args.check_known(CALIBRATE_KEYS)?;
    let path = args
        .get("samples")
        .ok_or_else(|| err("missing required option --samples <path>"))?;
    let raw = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read --samples {path}: {e}")))?;
    let mut samples = Vec::new();
    for (lineno, line) in raw.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v: f64 = line
            .parse()
            .map_err(|_| err(format!("{path}:{}: `{line}` is not a number", lineno + 1)))?;
        samples.push(v);
    }
    let anchors = args
        .f64_list("anchors")?
        .unwrap_or_else(|| tailguard_dist::PiecewiseQuantile::DEFAULT_ANCHORS.to_vec());
    let model = tailguard_dist::PiecewiseQuantile::fit(&samples, &anchors)
        .map_err(|e| err(format!("calibration failed: {e}")))?;
    let fanouts: Vec<u32> = match args.f64_list("fanouts")? {
        Some(v) => v.into_iter().map(|f| f as u32).collect(),
        None => vec![1, 10, 100],
    };
    if args.flag("json") {
        return serde_json::to_string_pretty(&model).map_err(|e| err(e.to_string()));
    }
    use tailguard_dist::{order_stats, Distribution};
    let mut out = format!(
        "fitted {} samples from {path}
control points (p, ms):
",
        samples.len()
    );
    for (p, x) in model.points() {
        out.push_str(&format!(
            "  ({p:.4}, {x:.4})
"
        ));
    }
    out.push_str(&format!(
        "mean T_m = {:.4} ms
",
        model.mean()
    ));
    for k in fanouts {
        if k == 0 {
            return Err(err("--fanouts must be positive"));
        }
        out.push_str(&format!(
            "x99^u({k}) = {:.4} ms
",
            order_stats::homogeneous_quantile(&model, 0.99, k)
        ));
    }
    Ok(out)
}

/// `tailguard scenarios` — list built-in paper scenarios.
pub fn cmd_scenarios(args: &Args) -> Result<String, ArgError> {
    args.check_known(&[])?;
    let presets = [
        scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100).label,
        scenarios::two_class(
            TailbenchWorkload::Masstree,
            1.0,
            ArrivalProcess::poisson(1.0),
        )
        .label,
        scenarios::oldi_two_class(TailbenchWorkload::Masstree, 1.0, 1.5).label,
        scenarios::n1000_single_class(TailbenchWorkload::Masstree, 1.0).label,
        scenarios::four_class(TailbenchWorkload::Masstree, 1.0).label,
        scenarios::sas_testbed().label,
    ];
    let mut out = String::from("built-in paper scenarios (see `tailguard::scenarios`):\n");
    for p in presets {
        out.push_str(&format!("  - {p}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().copied()).expect("parse")
    }

    #[test]
    fn workload_and_policy_parsing() {
        assert_eq!(workload_from("Shore").unwrap(), TailbenchWorkload::Shore);
        assert!(workload_from("nope").is_err());
        assert_eq!(policy_from("tailguard").unwrap(), Policy::TfEdf);
        assert_eq!(policy_from("T-EDFQ").unwrap(), Policy::TEdf);
        assert_eq!(policy_from("sjf").unwrap(), Policy::Sjf);
        assert!(policy_from("lifo").is_err());
    }

    #[test]
    fn sim_runs_small() {
        let out = cmd_sim(&args(&[
            "--workload",
            "masstree",
            "--policy",
            "tfedf",
            "--load",
            "0.3",
            "--queries",
            "3000",
        ]))
        .expect("sim");
        assert!(out.contains("TailGuard"));
        assert!(out.contains("class 0"));
    }

    #[test]
    fn sim_json_summary_parses() {
        let out = cmd_sim(&args(&["--queries", "2000", "--load", "0.2", "--json"])).expect("sim");
        let v: serde_json::Value = serde_json::from_str(&out).expect("json");
        assert_eq!(v["policy"], "TailGuard");
        assert!(v["measured_load"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn sim_rejects_unknown_option() {
        let e = cmd_sim(&args(&["--polcy", "fifo"])).unwrap_err();
        assert!(e.0.contains("--polcy"));
    }

    #[test]
    fn sim_rejects_oversized_fanout() {
        let e = cmd_sim(&args(&["--fanout", "fixed:200", "--servers", "100"])).unwrap_err();
        assert!(e.0.contains("exceeds"));
    }

    #[test]
    fn sim_drift_runs_and_conserves() {
        for drift in ["diurnal", "flashcrowd"] {
            let out = cmd_sim(&args(&[
                "--queries",
                "2000",
                "--load",
                "0.2",
                "--drift",
                drift,
                "--json",
            ]))
            .expect("sim --drift");
            let v: serde_json::Value = serde_json::from_str(&out).expect("json");
            // 2000 offered minus the queries/20 = 100 warm-up discards.
            assert_eq!(v["completed_queries"].as_u64(), Some(1900), "{drift}");
        }
    }

    #[test]
    fn sim_drift_changes_trace_and_rejects_bad_specs() {
        let base = &["--queries", "2000", "--load", "0.2", "--json"];
        let plain = cmd_sim(&args(base)).expect("plain");
        // 2000 queries at 20% load span ~50 ms, so pin the spike window
        // inside the run (the [1000, 5000) ms default would miss it).
        let drifted = cmd_sim(&args(
            &[
                base as &[&str],
                &[
                    "--drift",
                    "flashcrowd",
                    "--drift-from",
                    "0",
                    "--drift-to",
                    "40",
                    "--drift-factor",
                    "3",
                ],
            ]
            .concat(),
        ))
        .expect("drifted");
        assert_ne!(plain, drifted, "flash crowd left the run unchanged");

        assert!(cmd_sim(&args(&["--drift", "eclipse"]))
            .unwrap_err()
            .0
            .contains("eclipse"));
        assert!(
            cmd_sim(&args(&["--drift", "diurnal", "--drift-amplitude", "1.5"]))
                .unwrap_err()
                .0
                .contains("--drift-amplitude")
        );
        assert!(
            cmd_sim(&args(&["--drift", "flashcrowd", "--drift-to", "0"]))
                .unwrap_err()
                .0
                .contains("--drift-to")
        );
    }

    #[test]
    fn maxload_two_policies() {
        let out = cmd_maxload(&args(&[
            "--policies",
            "tfedf,fifo",
            "--queries",
            "4000",
            "--tolerance",
            "0.1",
        ]))
        .expect("maxload");
        assert!(out.contains("TailGuard"));
        assert!(out.contains("FIFO"));
    }

    #[test]
    fn sweep_prints_rows() {
        let out = cmd_sweep(&args(&[
            "--loads",
            "0.2,0.4",
            "--queries",
            "3000",
            "--slos",
            "1.0,1.5",
        ]))
        .expect("sweep");
        assert!(out.contains("20%"));
        assert!(out.contains("40%"));
        assert!(out.contains("class1 p99"));
    }

    #[test]
    fn sweep_jobs_output_is_identical_to_serial() {
        let base = &[
            "--loads",
            "0.2,0.4,0.6",
            "--queries",
            "2000",
            "--slos",
            "1.0,1.5",
        ];
        let serial = cmd_sweep(&args(&[base as &[&str], &["--jobs", "1"]].concat())).expect("j1");
        let parallel = cmd_sweep(&args(&[base as &[&str], &["--jobs", "4"]].concat())).expect("j4");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn maxload_jobs_output_is_identical_to_serial() {
        let base = &[
            "--policies",
            "tfedf,fifo",
            "--queries",
            "3000",
            "--tolerance",
            "0.1",
        ];
        let serial = cmd_maxload(&args(&[base as &[&str], &["--jobs", "1"]].concat())).expect("j1");
        let parallel =
            cmd_maxload(&args(&[base as &[&str], &["--jobs", "3"]].concat())).expect("j3");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn jobs_zero_is_rejected() {
        let e = cmd_sweep(&args(&["--jobs", "0", "--queries", "1000"])).unwrap_err();
        assert!(e.0.contains("--jobs"));
    }

    #[test]
    fn faults_matrix_runs_and_counts_are_consistent() {
        let out = cmd_faults(&args(&[
            "--policies",
            "tfedf",
            "--queries",
            "3000",
            "--fault",
            "drop",
            "--fault-servers",
            "5",
            "--json",
        ]))
        .expect("faults");
        let cells: serde_json::Value = serde_json::from_str(&out).expect("json");
        let cells = cells.as_array().unwrap();
        assert_eq!(cells.len(), 3); // healthy / faulty / mitigated
        let healthy = &cells[0];
        let faulty = &cells[1];
        let mitigated = &cells[2];
        assert_eq!(healthy["tasks_lost"].as_u64(), Some(0));
        assert_eq!(healthy["hedges_issued"].as_u64(), Some(0));
        assert!(faulty["tasks_lost"].as_u64().unwrap() > 0);
        assert!(mitigated["retries"].as_u64().unwrap() > 0);
        // The deadline-slack histogram column is populated from each
        // cell's flight recording.
        assert!(healthy["slack_p50_ms"].as_f64().unwrap() > 0.0);
        assert!(
            healthy["slack_p99_ms"].as_f64().unwrap() >= healthy["slack_p50_ms"].as_f64().unwrap()
        );
    }

    #[test]
    fn faults_jobs_output_is_identical_to_serial() {
        let base = &[
            "--policies",
            "tfedf,fifo",
            "--queries",
            "2000",
            "--fault",
            "slowdown",
            "--factor",
            "6",
        ];
        let serial = cmd_faults(&args(&[base as &[&str], &["--jobs", "1"]].concat())).expect("j1");
        let parallel =
            cmd_faults(&args(&[base as &[&str], &["--jobs", "8"]].concat())).expect("j8");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn faults_rejects_bad_specs() {
        assert!(cmd_faults(&args(&["--fault", "meteor"]))
            .unwrap_err()
            .0
            .contains("meteor"));
        assert!(cmd_faults(&args(&["--factor", "0.5"]))
            .unwrap_err()
            .0
            .contains("--factor"));
        assert!(cmd_faults(&args(&["--fault-servers", "500"]))
            .unwrap_err()
            .0
            .contains("--fault-servers"));
        assert!(cmd_faults(&args(&["--fault-to", "0"]))
            .unwrap_err()
            .0
            .contains("--fault-to"));
        assert!(cmd_faults(&args(&["--quorum", "1.5"]))
            .unwrap_err()
            .0
            .contains("--quorum"));
        assert!(
            cmd_faults(&args(&["--fault", "flap", "--flap-period", "0"]))
                .unwrap_err()
                .0
                .contains("--flap-period")
        );
    }

    #[test]
    fn faults_gray_kinds_degrade_the_faulty_cell() {
        // Ramp and flap inflate service times without losing tasks: the
        // faulty cell's tail worsens but conservation matches healthy.
        for (kind, extra) in [("ramp", &[][..]), ("flap", &["--flap-period", "5"][..])] {
            let out = cmd_faults(&args(
                &[
                    &[
                        "--policies",
                        "tfedf",
                        "--queries",
                        "3000",
                        "--fault",
                        kind,
                        "--factor",
                        "30",
                        "--fault-servers",
                        "10",
                        "--fault-to",
                        "200",
                        "--json",
                    ] as &[&str],
                    extra,
                ]
                .concat(),
            ))
            .expect(kind);
            let cells: serde_json::Value = serde_json::from_str(&out).expect("json");
            let cells = cells.as_array().unwrap();
            assert_eq!(cells.len(), 3, "{kind}");
            let (healthy, faulty) = (&cells[0], &cells[1]);
            assert_eq!(faulty["tasks_lost"].as_u64(), Some(0), "{kind}");
            assert_eq!(
                faulty["completed"].as_u64(),
                healthy["completed"].as_u64(),
                "{kind}"
            );
            assert!(
                faulty["p99_ms"].as_f64().unwrap() > healthy["p99_ms"].as_f64().unwrap(),
                "{kind}: gray failure left the tail unchanged"
            );
        }
    }

    #[test]
    fn faults_crash_arms_lease_and_reclaims() {
        let out = cmd_faults(&args(&[
            "--policies",
            "tfedf",
            "--queries",
            "3000",
            "--fault",
            "crash",
            "--fault-servers",
            "5",
            "--fault-to",
            "3000",
            "--json",
        ]))
        .expect("faults");
        let cells: serde_json::Value = serde_json::from_str(&out).expect("json");
        let cells = cells.as_array().unwrap();
        let healthy = &cells[0];
        let faulty = &cells[1];
        // The healthy cell runs without a lease: bit-identical to the
        // pre-lifecycle baseline, nothing reclaimed.
        assert_eq!(healthy["reclaims"].as_u64(), Some(0));
        // Crashes swallow tasks silently; only the (SLO-default) lease
        // gets them back, and conservation must hold afterwards: the
        // faulty cell resolves exactly as many recorded queries as the
        // healthy one (reclaim keeps retrying until the node recovers).
        assert!(faulty["reclaims"].as_u64().unwrap() > 0, "{faulty:?}");
        let accounted = |cell: &serde_json::Value| {
            cell["completed"].as_u64().unwrap()
                + cell["rejected"].as_u64().unwrap()
                + cell["partial"].as_u64().unwrap()
                + cell["failed"].as_u64().unwrap()
        };
        assert_eq!(accounted(faulty), accounted(healthy), "{faulty:?}");
    }

    #[test]
    fn faults_dup_suppresses_duplicates() {
        let out = cmd_faults(&args(&[
            "--policies",
            "tfedf",
            "--queries",
            "2000",
            "--fault",
            "dup",
            "--fault-servers",
            "10",
            "--json",
        ]))
        .expect("faults");
        let cells: serde_json::Value = serde_json::from_str(&out).expect("json");
        let cells = cells.as_array().unwrap();
        let faulty = &cells[1];
        assert!(faulty["dup_suppressed"].as_u64().unwrap() > 0, "{faulty:?}");
        // Duplicate delivery changes no outcome: every query completes.
        assert_eq!(faulty["completed"].as_u64(), cells[0]["completed"].as_u64());
    }

    #[test]
    fn faults_random_plan_runs() {
        let out = cmd_faults(&args(&[
            "--policies",
            "tfedf",
            "--queries",
            "2000",
            "--fault",
            "random",
            "--episodes",
            "6",
            "--fault-to",
            "2000",
        ]))
        .expect("faults");
        assert!(out.contains("healthy"));
        assert!(out.contains("mitigated"));
        assert!(out.contains("csv:"));
    }

    #[test]
    fn gentrace_emits_valid_csv() {
        let out = cmd_gentrace(&args(&["--queries", "20", "--format", "csv"])).expect("gentrace");
        let trace = Trace::from_csv(&out).expect("roundtrip");
        assert_eq!(trace.len(), 20);
        let e = cmd_gentrace(&args(&["--format", "yaml"])).unwrap_err();
        assert!(e.0.contains("yaml"));
    }

    #[test]
    fn gentrace_emits_valid_json() {
        let out = cmd_gentrace(&args(&["--queries", "50", "--rate", "2.0"])).expect("gentrace");
        let trace = Trace::from_json(&out).expect("roundtrip");
        assert_eq!(trace.len(), 50);
    }

    #[test]
    fn trace_summarizes_flight_recording() {
        let out = cmd_trace(&args(&[
            "--queries",
            "2000",
            "--load",
            "0.5",
            "--top",
            "3",
            "--servers",
            "20",
            "--fanout",
            "fixed:4",
        ]))
        .expect("trace");
        assert!(out.contains("flight recording"));
        assert!(out.contains("slowest queries"));
        assert!(out.contains("dequeue slack by query type"));
        assert!(out.contains("miss-ratio timeline"));
        assert!(out.contains("deadline t_D=+"));
    }

    #[test]
    fn trace_reconstructs_any_query_timeline() {
        // Admission is off and warmup queries are recorded too, so every
        // offered query id is reconstructable.
        for qid in ["0", "7", "499"] {
            let out = cmd_trace(&args(&[
                "--queries",
                "500",
                "--servers",
                "20",
                "--fanout",
                "fixed:4",
                "--warmup",
                "0",
                "--query",
                qid,
            ]))
            .expect("trace --query");
            assert!(out.contains(&format!("query {qid} class")));
            assert!(out.contains("task"));
            assert!(out.contains("deq +"));
        }
        let e = cmd_trace(&args(&[
            "--queries",
            "10",
            "--servers",
            "20",
            "--fanout",
            "fixed:4",
            "--query",
            "999999",
        ]))
        .unwrap_err();
        assert!(e.0.contains("not in the recording"));
    }

    #[test]
    fn trace_exports_jsonl_and_csv() {
        let jsonl = cmd_trace(&args(&[
            "--queries",
            "200",
            "--servers",
            "20",
            "--fanout",
            "fixed:4",
            "--export",
            "jsonl",
        ]))
        .expect("jsonl");
        for line in jsonl.lines().take(10) {
            let v: serde_json::Value = serde_json::from_str(line).expect("json line");
            assert!(v.get("event").is_some());
        }
        let csv = cmd_trace(&args(&[
            "--queries",
            "200",
            "--servers",
            "20",
            "--fanout",
            "fixed:4",
            "--export",
            "csv",
        ]))
        .expect("csv");
        assert!(csv.starts_with(tailguard_obs::CSV_HEADER));
        let e = cmd_trace(&args(&["--export", "parquet"])).unwrap_err();
        assert!(e.0.contains("parquet"));
    }

    #[test]
    fn trace_metrics_and_json_outputs() {
        let text = cmd_trace(&args(&[
            "--queries",
            "500",
            "--servers",
            "20",
            "--fanout",
            "fixed:4",
            "--metrics",
        ]))
        .expect("metrics");
        assert!(text.contains("# TYPE tailguard_queries_admitted_total counter"));
        assert!(text.contains("# TYPE tailguard_queue_wait_ms histogram"));
        let json = cmd_trace(&args(&[
            "--queries",
            "500",
            "--servers",
            "20",
            "--fanout",
            "fixed:4",
            "--snapshot-every",
            "5",
            "--json",
        ]))
        .expect("json");
        let v: serde_json::Value = serde_json::from_str(&json).expect("parse");
        assert!(v["events_recorded"].as_u64().unwrap() > 0);
        assert!(!v["snapshots"].as_array().unwrap().is_empty());
        assert!(v["registry"]["counters"].as_array().is_some());
    }

    #[test]
    fn sim_json_exposes_uniform_metrics() {
        let json = cmd_sim(&args(&[
            "--queries",
            "2000",
            "--servers",
            "20",
            "--fanout",
            "fixed:4",
            "--json",
        ]))
        .expect("sim --json");
        let v: serde_json::Value = serde_json::from_str(&json).expect("parse");
        let metrics = &v["metrics"];
        assert!(metrics.is_object());
        for name in [
            "tailguard_estimator_budget_lookups_total",
            "tailguard_mitigation_hedges_issued_total",
            "tailguard_queries_admitted_total",
            "tailguard_run_deadline_miss_ratio",
        ] {
            assert!(metrics.get(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn workloads_table() {
        let out = cmd_workloads(&args(&[])).expect("workloads");
        assert!(out.contains("Masstree"));
        assert!(out.contains("0.473"));
        let json = cmd_workloads(&args(&["--json"])).expect("json");
        let v: serde_json::Value = serde_json::from_str(&json).expect("parse");
        assert_eq!(v.as_array().unwrap().len(), 3);
    }

    #[test]
    fn budgets_decrease_with_fanout() {
        let out = cmd_budgets(&args(&["--workload", "masstree", "--slo", "1.0"])).expect("b");
        assert!(out.contains("Eq. 6"));
        // Rows for fanouts 1, 10, 100 present.
        assert!(out.contains("\n         1"));
        assert!(out.contains("\n       100"));
    }

    #[test]
    fn testbed_small_run() {
        let out = cmd_testbed(&args(&[
            "--queries",
            "150",
            "--load",
            "0.2",
            "--probes",
            "10",
            "--store-days",
            "35",
        ]))
        .expect("testbed");
        assert!(out.contains("Server-room"));
        assert!(out.contains("class A"));
    }

    #[test]
    fn admission_spec_parsing() {
        assert!(admission_from(Some("10:0.017")).unwrap().is_some());
        assert!(admission_from(Some("banana")).is_err());
        assert!(admission_from(Some("10:2.0")).is_err());
        assert!(admission_from(None).unwrap().is_none());
    }

    #[test]
    fn calibrate_fits_sample_file() {
        use tailguard_dist::Distribution;
        use tailguard_simcore::SimRng;
        let dir = std::env::temp_dir().join("tailguard-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("samples.txt");
        let d = TailbenchWorkload::Masstree.service_dist();
        let mut rng = SimRng::seed(5);
        let mut body = String::from(
            "# masstree-like samples
",
        );
        for _ in 0..100_000 {
            body.push_str(&format!(
                "{}
",
                d.sample(&mut rng)
            ));
        }
        std::fs::write(&path, body).unwrap();
        let out = cmd_calibrate(&args(&["--samples", path.to_str().unwrap()])).expect("fit");
        assert!(out.contains("mean T_m = 0.17"), "{out}");
        assert!(out.contains("x99^u(100)"), "{out}");
        let json =
            cmd_calibrate(&args(&["--samples", path.to_str().unwrap(), "--json"])).expect("fit");
        let _: serde_json::Value = serde_json::from_str(&json).expect("json");
    }

    #[test]
    fn calibrate_reports_bad_file() {
        let e = cmd_calibrate(&args(&["--samples", "/nonexistent/x.txt"])).unwrap_err();
        assert!(e.0.contains("cannot read"));
    }

    #[test]
    fn scenarios_listing() {
        let out = cmd_scenarios(&args(&[])).expect("scenarios");
        assert!(out.contains("SaS testbed twin"));
    }
}

//! End-to-end tests of the compiled `tailguard` binary: real process
//! spawns, real stdout/stderr, real exit codes.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tailguard"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn help_lists_all_commands() {
    let o = run(&["--help"]);
    assert!(o.status.success());
    let out = stdout(&o);
    for cmd in [
        "sim",
        "maxload",
        "sweep",
        "testbed",
        "trace",
        "gentrace",
        "workloads",
        "budgets",
        "calibrate",
        "scenarios",
    ] {
        assert!(out.contains(cmd), "help missing `{cmd}`");
    }
    // Bare invocation prints the same help.
    let bare = run(&[]);
    assert!(bare.status.success());
    assert_eq!(stdout(&bare), out);
}

#[test]
fn workloads_prints_table2() {
    let o = run(&["workloads"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("Masstree"));
    assert!(out.contains("0.473"));
}

#[test]
fn budgets_match_paper_worked_example() {
    let o = run(&["budgets", "--workload", "masstree", "--slos", "1.0,1.5"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("0.527"), "class-I fanout-100 budget:\n{out}");
    assert!(out.contains("1.027"), "class-II fanout-100 budget:\n{out}");
}

#[test]
fn sim_small_run_reports_types() {
    let o = run(&[
        "sim",
        "--queries",
        "3000",
        "--load",
        "0.3",
        "--policy",
        "tailguard",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("policy=TailGuard"));
    assert!(out.contains("fanout  100"));
}

#[test]
fn gentrace_pipes_json_and_csv() {
    let json = run(&["gentrace", "--queries", "30", "--seed", "9"]);
    assert!(json.status.success());
    assert!(stdout(&json).trim_start().starts_with('{'));

    let csv = run(&[
        "gentrace",
        "--queries",
        "30",
        "--seed",
        "9",
        "--format",
        "csv",
    ]);
    assert!(csv.status.success());
    assert!(stdout(&csv).starts_with("arrival_ns,class,fanout"));
    assert_eq!(stdout(&csv).trim().lines().count(), 31); // header + 30 rows
}

#[test]
fn trace_smoke_summarizes_a_tiny_scenario() {
    let o = run(&[
        "trace",
        "--queries",
        "300",
        "--servers",
        "10",
        "--fanout",
        "fixed:2",
        "--top",
        "2",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("flight recording"), "{out}");
    assert!(out.contains("slowest queries"), "{out}");
    assert!(out.contains("miss-ratio timeline"), "{out}");
}

#[test]
fn unknown_command_fails_with_message() {
    let o = run(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("frobnicate"));
}

#[test]
fn typo_option_fails_with_suggestion_list() {
    let o = run(&["sim", "--laod", "0.4"]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains("--laod"), "{err}");
    assert!(err.contains("--load"), "{err}");
}

#[test]
fn stray_positional_rejected() {
    let o = run(&["sim", "extra-arg"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("extra-arg"));
}

#[test]
fn json_output_is_machine_readable() {
    let o = run(&["sim", "--queries", "2000", "--load", "0.25", "--json"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let v: serde_json::Value = serde_json::from_str(stdout(&o).trim()).expect("valid json");
    assert_eq!(v["policy"], "TailGuard");
    assert!(v["meets_all_slos"].is_boolean());
}

//! Constant-memory streaming histogram with logarithmic buckets.

use crate::Cdf;
use serde::{Deserialize, Serialize};

/// A log-bucketed streaming histogram over positive values (ms).
///
/// This is the data structure behind the paper's *online updating process*
/// (§III.B.2): as task results return to the query handler, their
/// post-queuing times are recorded here, and the deadline estimator reads the
/// updated quantiles. Buckets grow geometrically, so relative quantile error
/// is bounded by the configured `growth` factor (default 1 %) using constant
/// memory regardless of sample count.
///
/// Counts are `f64` so the histogram supports exponential decay
/// ([`LogHistogram::decay`]), letting estimates track drifting servers — the
/// heterogeneity-capture mechanism the paper relies on.
///
/// # Example
///
/// ```
/// use tailguard_dist::{Cdf, LogHistogram};
///
/// let mut h = LogHistogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64 / 100.0); // 0.01 .. 10.0 ms
/// }
/// let q = h.quantile(0.99);
/// assert!((q - 9.9).abs() / 9.9 < 0.02);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    min_value: f64,
    log_growth: f64,
    counts: Vec<f64>,
    underflow: f64,
    total: f64,
    sum: f64,
}

impl LogHistogram {
    /// Default lowest resolvable value: 0.1 µs.
    pub const DEFAULT_MIN: f64 = 1e-4;
    /// Default highest resolvable value: 100 s.
    pub const DEFAULT_MAX: f64 = 1e5;
    /// Default bucket growth factor: 1 % relative resolution.
    pub const DEFAULT_GROWTH: f64 = 1.01;

    /// Creates a histogram with default range (0.1 µs – 100 s) and 1 %
    /// relative resolution.
    pub fn new() -> Self {
        Self::with_range(Self::DEFAULT_MIN, Self::DEFAULT_MAX, Self::DEFAULT_GROWTH)
    }

    /// Creates a histogram covering `[min_value, max_value]` with the given
    /// geometric bucket `growth` factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_value < max_value` and `growth > 1`.
    pub fn with_range(min_value: f64, max_value: f64, growth: f64) -> Self {
        assert!(
            min_value > 0.0 && min_value < max_value,
            "require 0 < min < max"
        );
        assert!(growth > 1.0, "growth must exceed 1");
        let log_growth = growth.ln();
        // tg-lint: allow(lossy-cast) -- log-ratio of validated positive bounds: `as` maps negatives to 0 and the result is min-clamped to the bucket range right after
        let buckets = ((max_value / min_value).ln() / log_growth).ceil() as usize + 1;
        LogHistogram {
            min_value,
            log_growth,
            counts: vec![0.0; buckets],
            underflow: 0.0,
            total: 0.0,
            sum: 0.0,
        }
    }

    fn bucket_of(&self, x: f64) -> Option<usize> {
        if x < self.min_value {
            return None;
        }
        // tg-lint: allow(lossy-cast) -- log-ratio of validated positive bounds: `as` maps negatives to 0 and the result is min-clamped to the bucket range right after
        let idx = ((x / self.min_value).ln() / self.log_growth) as usize;
        // tg-lint: allow(panic-surface) -- bucket tables hold at least one entry by construction and indices are min-clamped to the last bucket
        Some(idx.min(self.counts.len() - 1))
    }

    /// The representative value (geometric bucket midpoint) of bucket `idx`.
    fn bucket_value(&self, idx: usize) -> f64 {
        self.min_value * ((idx as f64 + 0.5) * self.log_growth).exp()
    }

    /// Records one observation. Non-finite or negative values are ignored;
    /// values below the histogram floor land in an underflow bucket that
    /// reports as the floor.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < 0.0 {
            return;
        }
        match self.bucket_of(x) {
            Some(i) => self.counts[i] += 1.0,
            None => self.underflow += 1.0,
        }
        self.total += 1.0;
        self.sum += x;
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, x: f64, n: u64) {
        if !x.is_finite() || x < 0.0 || n == 0 {
            return;
        }
        let w = n as f64;
        match self.bucket_of(x) {
            Some(i) => self.counts[i] += w,
            None => self.underflow += w,
        }
        self.total += w;
        self.sum += x * w;
    }

    /// Total (possibly decayed) observation weight.
    pub fn count(&self) -> f64 {
        self.total
    }

    /// True when nothing has been recorded (or everything decayed away).
    pub fn is_empty(&self) -> bool {
        self.total <= 0.0
    }

    /// Mean of recorded values (weighted by decay).
    pub fn mean(&self) -> f64 {
        if self.total > 0.0 {
            self.sum / self.total
        } else {
            0.0
        }
    }

    /// Multiplies all counts by `factor ∈ [0, 1]`, implementing exponential
    /// forgetting of old observations.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` lies in `[0, 1]`.
    pub fn decay(&mut self, factor: f64) {
        assert!((0.0..=1.0).contains(&factor), "factor must be in [0,1]");
        for c in &mut self.counts {
            *c *= factor;
        }
        self.underflow *= factor;
        self.total *= factor;
        self.sum *= factor;
    }

    /// Adds all observations of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics when the histograms have different bucket layouts.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket layouts differ"
        );
        assert!(
            (self.min_value - other.min_value).abs() < f64::EPSILON
                && (self.log_growth - other.log_growth).abs() < f64::EPSILON,
            "bucket layouts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Clears all observations.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0.0);
        self.underflow = 0.0;
        self.total = 0.0;
        self.sum = 0.0;
    }

    /// Freezes the current contents into an immutable [`CdfSnapshot`] with
    /// `O(log B)` `cdf`/`quantile` queries (B = bucket count).
    ///
    /// The deadline estimator rebuilds snapshots periodically (the paper's
    /// background recomputation of `x_p^u(k_f)`, §III.B.2) rather than
    /// scanning the live histogram on every query.
    pub fn snapshot(&self) -> CdfSnapshot {
        let mut values = Vec::with_capacity(self.counts.len() + 1);
        let mut cumprob = Vec::with_capacity(self.counts.len() + 1);
        if self.total > 0.0 {
            let mut acc = self.underflow;
            if self.underflow > 0.0 {
                values.push(self.min_value);
                cumprob.push(acc / self.total);
            }
            for (i, c) in self.counts.iter().enumerate() {
                if *c > 0.0 {
                    acc += c;
                    values.push(self.bucket_value(i));
                    cumprob.push((acc / self.total).min(1.0));
                }
            }
            if let Some(last) = cumprob.last_mut() {
                *last = 1.0;
            }
        }
        CdfSnapshot { values, cumprob }
    }
}

/// An immutable, binary-searchable freeze of a [`LogHistogram`].
///
/// # Example
///
/// ```
/// use tailguard_dist::{Cdf, LogHistogram};
///
/// let mut h = LogHistogram::new();
/// for i in 1..=100 { h.record(i as f64); }
/// let snap = h.snapshot();
/// assert!((snap.quantile(0.5) - 50.0).abs() / 50.0 < 0.02);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CdfSnapshot {
    values: Vec<f64>,  // ascending representative values
    cumprob: Vec<f64>, // matching cumulative probabilities, last == 1
}

impl CdfSnapshot {
    /// True when the source histogram held no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of distinct populated buckets.
    pub fn len(&self) -> usize {
        self.values.len()
    }
}

impl Cdf for CdfSnapshot {
    fn cdf(&self, x: f64) -> f64 {
        if self.values.is_empty() || x < self.values[0] {
            return 0.0;
        }
        let idx = self.values.partition_point(|&v| v <= x);
        // tg-lint: allow(panic-surface) -- bucket tables hold at least one entry by construction and indices are min-clamped to the last bucket
        self.cumprob[idx - 1]
    }

    fn quantile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        let idx = self.cumprob.partition_point(|&c| c < p);
        // tg-lint: allow(panic-surface) -- bucket tables hold at least one entry by construction and indices are min-clamped to the last bucket
        self.values[idx.min(self.values.len() - 1)]
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Cdf for LogHistogram {
    fn cdf(&self, x: f64) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        if x < 0.0 {
            return 0.0;
        }
        let mut acc = self.underflow;
        if let Some(limit) = self.bucket_of(x) {
            for (i, c) in self.counts.iter().enumerate() {
                if i > limit {
                    break;
                }
                acc += c;
            }
        } else if x < self.min_value {
            // below the floor: only underflow mass counts (approximately).
            return (self.underflow / self.total).min(1.0);
        }
        (acc / self.total).min(1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if self.total <= 0.0 {
            return 0.0;
        }
        let target = p * self.total;
        let mut acc = self.underflow;
        if acc >= target && self.underflow > 0.0 {
            return self.min_value;
        }
        for (i, c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bucket_value(i);
            }
        }
        // All mass sits below p due to rounding; return the top bucket value.
        // tg-lint: allow(panic-surface) -- bucket tables hold at least one entry by construction and indices are min-clamped to the last bucket
        self.bucket_value(self.counts.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distribution, Exponential, LogNormal};
    use tailguard_simcore::SimRng;

    #[test]
    fn quantiles_track_analytic_distribution() {
        let d = LogNormal::new(0.0, 0.8);
        let mut rng = SimRng::seed(1);
        let mut h = LogHistogram::new();
        for _ in 0..300_000 {
            h.record(d.sample(&mut rng));
        }
        for &p in &[0.5, 0.9, 0.99, 0.999] {
            let rel = (h.quantile(p) - d.quantile(p)).abs() / d.quantile(p);
            assert!(rel < 0.05, "p={p} rel={rel}");
        }
    }

    #[test]
    fn mean_tracks() {
        let d = Exponential::with_mean(2.0);
        let mut rng = SimRng::seed(2);
        let mut h = LogHistogram::new();
        for _ in 0..100_000 {
            h.record(d.sample(&mut rng));
        }
        assert!((h.mean() - 2.0).abs() < 0.05);
    }

    #[test]
    fn cdf_quantile_consistency() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000 {
            h.record(i as f64 / 100.0);
        }
        for &p in &[0.1, 0.5, 0.9, 0.99] {
            let q = h.quantile(p);
            assert!(h.cdf(q) >= p - 1e-9, "p={p} q={q} cdf={}", h.cdf(q));
        }
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.cdf(1.0), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn ignores_garbage_values() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(f64::INFINITY);
        assert!(h.is_empty());
    }

    #[test]
    fn underflow_values_report_floor() {
        let mut h = LogHistogram::new();
        h.record(1e-7); // below the 1e-4 floor
        assert_eq!(h.count(), 1.0);
        assert_eq!(h.quantile(0.5), LogHistogram::DEFAULT_MIN);
    }

    #[test]
    fn overflow_values_clamp_to_top_bucket() {
        let mut h = LogHistogram::with_range(0.001, 10.0, 1.05);
        h.record(1e9);
        assert!(h.quantile(1.0) >= 10.0 * 0.9);
    }

    #[test]
    fn decay_forgets_old_mode() {
        let mut h = LogHistogram::new();
        for _ in 0..1000 {
            h.record(1.0);
        }
        // New mode at 10ms; decay old mass hard each batch.
        for _ in 0..200 {
            h.decay(0.9);
            for _ in 0..10 {
                h.record(10.0);
            }
        }
        let med = h.quantile(0.5);
        assert!((med - 10.0).abs() / 10.0 < 0.05, "median {med}");
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(3.0, 5);
        for _ in 0..5 {
            b.record(3.0);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn merge_combines_mass() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for _ in 0..100 {
            a.record(1.0);
            b.record(100.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200.0);
        let med = a.quantile(0.499);
        assert!((med - 1.0).abs() < 0.05, "median {med}");
        let p75 = a.quantile(0.75);
        assert!((p75 - 100.0).abs() / 100.0 < 0.05, "p75 {p75}");
    }

    #[test]
    #[should_panic(expected = "bucket layouts differ")]
    fn merge_rejects_mismatched_layout() {
        let mut a = LogHistogram::with_range(0.001, 10.0, 1.05);
        let b = LogHistogram::new();
        a.merge(&b);
    }

    #[test]
    fn reset_clears() {
        let mut h = LogHistogram::new();
        h.record(1.0);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.cdf(2.0), 0.0);
    }

    #[test]
    fn snapshot_matches_live_histogram() {
        let d = LogNormal::new(0.0, 0.6);
        let mut rng = SimRng::seed(21);
        let mut h = LogHistogram::new();
        for _ in 0..100_000 {
            h.record(d.sample(&mut rng));
        }
        let snap = h.snapshot();
        for &p in &[0.1, 0.5, 0.9, 0.99, 0.999] {
            let a = h.quantile(p);
            let b = snap.quantile(p);
            assert!((a - b).abs() / a < 1e-9, "p={p} live={a} snap={b}");
        }
        for &x in &[0.3, 1.0, 2.5, 6.0] {
            assert!((h.cdf(x) - snap.cdf(x)).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn empty_snapshot_benign() {
        let snap = LogHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.len(), 0);
        assert_eq!(snap.cdf(1.0), 0.0);
        assert_eq!(snap.quantile(0.99), 0.0);
    }

    #[test]
    fn snapshot_cdf_monotone() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 10.0);
        }
        let snap = h.snapshot();
        let mut last = 0.0;
        let mut x = 0.05;
        while x < 120.0 {
            let c = snap.cdf(x);
            assert!(c >= last);
            last = c;
            x *= 1.1;
        }
        assert_eq!(snap.cdf(1e6), 1.0);
    }

    #[test]
    fn relative_resolution_bound() {
        // Every recorded value must be reproduced within one growth factor.
        let mut rng = SimRng::seed(3);
        for _ in 0..200 {
            let x = 10f64.powf(rng.f64() * 8.0 - 4.0); // 1e-4 .. 1e4
            let mut h = LogHistogram::new();
            h.record(x);
            let q = h.quantile(1.0);
            assert!(
                (q / x).ln().abs() <= LogHistogram::DEFAULT_GROWTH.ln(),
                "x={x} q={q}"
            );
        }
    }
}

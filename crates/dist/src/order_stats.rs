//! Fanout order statistics — Eqs. (1) and (2) of the paper.
//!
//! A query with fanout `k_f` completes when its **slowest** task completes.
//! If task `k` is served by server `n(k)` whose unloaded task response time
//! has CDF `F_{n(k)}^u`, the unloaded query latency CDF is the product
//!
//! ```text
//! F_Q^u(t; k_f) = Π_{k=1..k_f} F_{n(k)}^u(t)          (Eq. 1)
//! ```
//!
//! and the unloaded `p`-th percentile query tail latency is
//!
//! ```text
//! x_p^u(k_f) = F_Q^{u,-1}(p/100)                      (Eq. 2)
//! ```
//!
//! For a homogeneous cluster (`F_l = F` for all `l`) the inverse has the
//! closed form `x_p^u(k) = F^{-1}(p^{1/k})`; for heterogeneous clusters we
//! solve the product equation by bisection.

use crate::Cdf;

/// The per-task percentile a single task must meet so that the max of `k`
/// i.i.d. tasks meets percentile `p`: `p^(1/k)`.
///
/// This is the "1 % task tail becomes a 63.4 % query tail at fanout 100"
/// arithmetic from the paper's introduction, inverted.
///
/// # Example
///
/// ```
/// let q = tailguard_dist::order_stats::per_task_percentile(0.99, 100);
/// assert!((q - 0.9999).abs() < 1e-6);
/// ```
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1]` and `k >= 1`.
pub fn per_task_percentile(p: f64, k: u32) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must lie in (0,1]");
    assert!(k >= 1, "fanout must be at least 1");
    p.powf(1.0 / f64::from(k))
}

/// Eq. (1): the unloaded query-latency CDF at `t` for tasks dispatched to
/// servers with the given CDFs (one entry per task; repeat a server's CDF if
/// it receives several tasks).
pub fn unloaded_query_cdf<C: Cdf + ?Sized>(server_cdfs: &[&C], t: f64) -> f64 {
    server_cdfs.iter().map(|c| c.cdf(t)).product()
}

/// Eq. (2), homogeneous case: the unloaded `p`-quantile of the slowest of
/// `k` i.i.d. tasks with common CDF `cdf`: `F^{-1}(p^{1/k})`.
///
/// # Example
///
/// ```
/// use tailguard_dist::{Exponential, order_stats};
///
/// let f = Exponential::with_mean(1.0);
/// let x1 = order_stats::homogeneous_quantile(&f, 0.99, 1);
/// let x100 = order_stats::homogeneous_quantile(&f, 0.99, 100);
/// assert!(x100 > x1); // larger fanout needs a larger latency allowance
/// ```
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1]` and `k >= 1`.
pub fn homogeneous_quantile<C: Cdf + ?Sized>(cdf: &C, p: f64, k: u32) -> f64 {
    cdf.quantile(per_task_percentile(p, k))
}

/// Eq. (2), heterogeneous case: solves `Π_i F_i(t) = p` for `t` by bisection.
///
/// `server_cdfs` holds one CDF reference per task of the query (the paper's
/// mapping `n(k)`).
///
/// Returns the smallest `t` (within `tol` relative error) whose product CDF
/// reaches `p`.
///
/// # Example
///
/// ```
/// use tailguard_dist::{Cdf, Exponential, order_stats};
///
/// let fast = Exponential::with_mean(0.5);
/// let slow = Exponential::with_mean(2.0);
/// let cdfs: Vec<&dyn Cdf> = vec![&fast, &slow];
/// let x = order_stats::heterogeneous_quantile(&cdfs, 0.99);
/// // Dominated by the slow server but strictly above its solo p99.
/// assert!(x > slow.quantile(0.99));
/// ```
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1]` and at least one CDF is supplied.
pub fn heterogeneous_quantile<C: Cdf + ?Sized>(server_cdfs: &[&C], p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must lie in (0,1]");
    assert!(!server_cdfs.is_empty(), "need at least one server CDF");

    // Fast path: identical quantile bound gives a bracket start. Upper bound:
    // every marginal must individually reach p^(1/k) at the answer, so the
    // max of per-server quantiles at p^(1/k) is an upper bound.
    // tg-lint: allow(lossy-cast) -- server/fanout counts are far below 2^31; powi exponents stay exact
    let per_task = per_task_percentile(p, server_cdfs.len() as u32);
    let mut hi = server_cdfs
        .iter()
        .map(|c| c.quantile(per_task))
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    // Guard against quantile under-reporting on discrete CDFs.
    let mut guard = 0;
    while unloaded_query_cdf(server_cdfs, hi) < p {
        hi *= 2.0;
        guard += 1;
        if guard > 100 {
            return hi;
        }
    }
    let mut lo = 0.0_f64;
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if unloaded_query_cdf(server_cdfs, mid) >= p {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo <= 1e-9 * hi.max(1.0) {
            break;
        }
    }
    hi
}

/// Eq. (2) over a *multiset* of server CDFs: solves
/// `Π_i F_i(t)^{c_i} = p` for `t` by bisection, where `c_i` is the number of
/// the query's tasks dispatched to servers sharing CDF `F_i`.
///
/// This is the form the deadline estimator actually evaluates: servers in a
/// cluster share a CDF (exactly, in the homogeneous simulations; per
/// heterogeneous cluster group in the SaS testbed), so a fanout-100 query is
/// `F(t)^100` rather than a 100-element product.
///
/// # Example
///
/// ```
/// use tailguard_dist::{Cdf, Exponential, order_stats};
///
/// let f = Exponential::with_mean(1.0);
/// let grouped = order_stats::grouped_quantile(&[(&f, 100)], 0.99);
/// let hom = order_stats::homogeneous_quantile(&f, 0.99, 100);
/// assert!((grouped - hom).abs() / hom < 1e-9);
/// ```
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1]`, at least one group is supplied, and all
/// counts are positive.
pub fn grouped_quantile<C: Cdf + ?Sized>(groups: &[(&C, u32)], p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must lie in (0,1]");
    assert!(!groups.is_empty(), "need at least one server group");
    assert!(
        groups.iter().all(|&(_, c)| c > 0),
        "group counts must be positive"
    );
    let total: u32 = groups.iter().map(|&(_, c)| c).sum();
    let product = |t: f64| -> f64 {
        groups
            .iter()
            // tg-lint: allow(lossy-cast) -- server/fanout counts are far below 2^31; powi exponents stay exact
            .map(|&(c, n)| c.cdf(t).powi(n as i32))
            .product()
    };
    let per_task = per_task_percentile(p, total);
    let mut hi = groups
        .iter()
        .map(|&(c, _)| c.quantile(per_task))
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let mut guard = 0;
    while product(hi) < p {
        hi *= 2.0;
        guard += 1;
        if guard > 100 {
            return hi;
        }
    }
    let mut lo = 0.0_f64;
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if product(mid) >= p {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo <= 1e-9 * hi.max(1.0) {
            break;
        }
    }
    hi
}

/// The probability that the slowest of `k` i.i.d. tasks exceeds `t`, given
/// the single-task exceedance probability `q = P(task > t)`:
/// `1 - (1 - q)^k`.
///
/// This is the paper's introduction example: `q = 0.01, k = 100` gives
/// ≈ 0.634.
///
/// # Example
///
/// ```
/// let p = tailguard_dist::order_stats::query_violation_probability(0.01, 100);
/// assert!((p - 0.634).abs() < 0.001);
/// ```
///
/// # Panics
///
/// Panics unless `q ∈ [0, 1]` and `k >= 1`.
pub fn query_violation_probability(q: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must lie in [0,1]");
    assert!(k >= 1, "fanout must be at least 1");
    // tg-lint: allow(lossy-cast) -- server/fanout counts are far below 2^31; powi exponents stay exact
    1.0 - (1.0 - q).powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distribution, Ecdf, Exponential, LogNormal};
    use tailguard_simcore::SimRng;

    #[test]
    fn paper_intro_example() {
        // 1% task violation at k=1 stays 1%; at k=100 it becomes 63.4%.
        assert!((query_violation_probability(0.01, 1) - 0.01).abs() < 1e-12);
        assert!((query_violation_probability(0.01, 100) - 0.634).abs() < 1e-3);
        // And the budget to bring k=100 back to 1%: per-task 0.9999.
        assert!((per_task_percentile(0.99, 100) - 0.9999).abs() < 1e-6);
        assert!((query_violation_probability(1.0 - 0.9999, 100) - 0.01).abs() < 1e-4);
    }

    #[test]
    fn homogeneous_quantile_monotone_in_fanout() {
        let f = LogNormal::new(-1.0, 0.4);
        let x1 = homogeneous_quantile(&f, 0.99, 1);
        let x10 = homogeneous_quantile(&f, 0.99, 10);
        let x100 = homogeneous_quantile(&f, 0.99, 100);
        assert!(x1 < x10 && x10 < x100);
    }

    #[test]
    fn heterogeneous_reduces_to_homogeneous() {
        let f = Exponential::with_mean(1.0);
        for k in [1usize, 5, 50] {
            let cdfs: Vec<&Exponential> = std::iter::repeat_n(&f, k).collect();
            let het = heterogeneous_quantile(&cdfs, 0.99);
            let hom = homogeneous_quantile(&f, 0.99, k as u32);
            assert!((het - hom).abs() / hom < 1e-6, "k={k} het={het} hom={hom}");
        }
    }

    #[test]
    fn heterogeneous_dominated_by_slowest() {
        let fast = Exponential::with_mean(0.1);
        let slow = Exponential::with_mean(5.0);
        let cdfs: Vec<&Exponential> = vec![&fast, &slow];
        let x = heterogeneous_quantile(&cdfs, 0.99);
        assert!(x > slow.quantile(0.99));
        assert!(x < slow.quantile(0.999));
    }

    #[test]
    fn product_cdf_matches_monte_carlo() {
        let a = Exponential::with_mean(1.0);
        let b = LogNormal::new(0.0, 0.5);
        let mut rng = SimRng::seed(10);
        let n = 200_000;
        let t = 2.5;
        let hits = (0..n)
            .filter(|_| a.sample(&mut rng).max(b.sample(&mut rng)) <= t)
            .count();
        let mc = hits as f64 / n as f64;
        let cdfs: Vec<&dyn crate::Cdf> = vec![&a, &b];
        let analytic = unloaded_query_cdf(&cdfs, t);
        assert!((mc - analytic).abs() < 0.005, "mc={mc} analytic={analytic}");
    }

    #[test]
    fn works_with_ecdfs() {
        let d = Exponential::with_mean(1.0);
        let mut rng = SimRng::seed(11);
        let e: Ecdf = (0..300_000).map(|_| d.sample(&mut rng)).collect();
        let hom = homogeneous_quantile(&e, 0.99, 10);
        let analytic = homogeneous_quantile(&d, 0.99, 10);
        assert!(
            (hom - analytic).abs() / analytic < 0.1,
            "ecdf={hom} analytic={analytic}"
        );
    }

    #[test]
    fn quantile_at_k1_is_marginal_quantile() {
        let f = Exponential::with_mean(1.0);
        assert!((homogeneous_quantile(&f, 0.95, 1) - f.quantile(0.95)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p must lie in (0,1]")]
    fn rejects_zero_percentile() {
        let f = Exponential::with_mean(1.0);
        let _ = homogeneous_quantile(&f, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "need at least one server CDF")]
    fn rejects_empty_server_list() {
        let cdfs: Vec<&Exponential> = vec![];
        let _ = heterogeneous_quantile(&cdfs, 0.99);
    }

    #[test]
    fn grouped_matches_flat_heterogeneous() {
        let fast = Exponential::with_mean(0.2);
        let slow = Exponential::with_mean(2.0);
        let grouped = grouped_quantile(&[(&fast, 3), (&slow, 2)], 0.99);
        let flat: Vec<&Exponential> = vec![&fast, &fast, &fast, &slow, &slow];
        let het = heterogeneous_quantile(&flat, 0.99);
        assert!((grouped - het).abs() / het < 1e-6);
    }

    #[test]
    fn grouped_single_group_is_homogeneous() {
        let f = LogNormal::new(-1.0, 0.3);
        for k in [1u32, 10, 100, 1000] {
            let g = grouped_quantile(&[(&f, k)], 0.99);
            let h = homogeneous_quantile(&f, 0.99, k);
            assert!((g - h).abs() / h < 1e-6, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "group counts must be positive")]
    fn grouped_rejects_zero_count() {
        let f = Exponential::with_mean(1.0);
        let _ = grouped_quantile(&[(&f, 0)], 0.99);
    }

    #[test]
    fn violation_probability_monotone_in_k() {
        let mut last = 0.0;
        for k in [1, 2, 5, 10, 100, 1000] {
            let v = query_violation_probability(0.001, k);
            assert!(v >= last);
            last = v;
        }
    }
}

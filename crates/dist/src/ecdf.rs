//! Empirical cumulative distribution functions.

use crate::Cdf;
use serde::{Deserialize, Serialize};

/// An empirical CDF built from a finite sample (ms).
///
/// This is the paper's *offline estimation process* (§III.B.2): a workload
/// trace is replayed on a single unloaded server, the task post-queuing times
/// are collected, and the resulting `Ecdf` serves as the initial
/// `F_l(t)` for every server `l`.
///
/// `quantile(p)` returns the smallest sample `x` with `cdf(x) >= p`
/// (the standard right-continuous inverse), so that the order-statistics math
/// in [`crate::order_stats`] never extrapolates past observed data.
///
/// # Example
///
/// ```
/// use tailguard_dist::{Cdf, Ecdf};
///
/// let e = Ecdf::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(e.len(), 4);
/// assert_eq!(e.cdf(2.0), 0.5);
/// assert_eq!(e.quantile(0.5), 2.0);
/// assert_eq!(e.min(), 1.0);
/// assert_eq!(e.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
    mean: f64,
}

impl Ecdf {
    /// Builds an ECDF from samples. Non-finite samples are dropped.
    ///
    /// # Panics
    ///
    /// Panics when no finite samples remain.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        assert!(!samples.is_empty(), "ecdf needs at least one finite sample");
        samples.sort_by(f64::total_cmp);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Ecdf {
            sorted: samples,
            mean,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction requires at least one sample.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observed sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observed sample.
    pub fn max(&self) -> f64 {
        // tg-lint: allow(unwrap-in-lib) -- from_samples asserts at least one finite sample
        *self.sorted.last().expect("non-empty")
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Merges two ECDFs into one over the union of their samples.
    pub fn merge(&self, other: &Ecdf) -> Ecdf {
        let mut all = Vec::with_capacity(self.len() + other.len());
        all.extend_from_slice(&self.sorted);
        all.extend_from_slice(&other.sorted);
        Ecdf::from_samples(all)
    }
}

impl Cdf for Ecdf {
    /// Fraction of samples `<= x`.
    fn cdf(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x via strict
        // comparison on the sorted vector.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The smallest sample `q` with `cdf(q) >= p`.
    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let n = self.sorted.len();
        // tg-lint: allow(float-eq) -- exact sentinel after clamp(0, 1): p = 0 means the minimum sample
        if p == 0.0 {
            return self.sorted[0];
        }
        // Rank ceil(p * n), 1-based; index rank-1.
        // tg-lint: allow(lossy-cast) -- rank of a [0,1]-clamped percentile over n samples: ceil result is in 0..=n, clamped before use
        let rank = (p * n as f64).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        // tg-lint: allow(panic-surface) -- guarded: `rank` is clamped to 1..=n and the empty case returns early above
        self.sorted[idx]
    }
}

impl FromIterator<f64> for Ecdf {
    /// # Panics
    ///
    /// Panics when the iterator yields no finite samples.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Ecdf::from_samples(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_step_function() {
        let e = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn quantile_is_right_continuous_inverse() {
        let e = Ecdf::from_samples(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.2), 10.0);
        assert_eq!(e.quantile(0.2001), 20.0);
        assert_eq!(e.quantile(1.0), 50.0);
        // quantile(cdf(x)) == x for sample points
        for &x in e.samples() {
            assert_eq!(e.quantile(e.cdf(x)), x);
        }
    }

    #[test]
    fn mean_min_max() {
        let e = Ecdf::from_samples(vec![2.0, 4.0, 6.0]);
        assert_eq!(e.mean(), 4.0);
        assert_eq!(e.min(), 2.0);
        assert_eq!(e.max(), 6.0);
    }

    #[test]
    fn drops_non_finite() {
        let e = Ecdf::from_samples(vec![1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one finite sample")]
    fn empty_panics() {
        let _ = Ecdf::from_samples(vec![f64::NAN]);
    }

    #[test]
    fn merge_unions_samples() {
        let a = Ecdf::from_samples(vec![1.0, 3.0]);
        let b = Ecdf::from_samples(vec![2.0, 4.0]);
        let m = a.merge(&b);
        assert_eq!(m.samples(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.mean(), 2.5);
    }

    #[test]
    fn from_iterator() {
        let e: Ecdf = (1..=100).map(|i| i as f64).collect();
        assert_eq!(e.len(), 100);
        assert_eq!(e.quantile(0.99), 99.0);
        assert_eq!(e.quantile(0.991), 100.0);
    }

    #[test]
    fn large_sample_quantile_close_to_analytic() {
        use crate::{Distribution, Exponential};
        use tailguard_simcore::SimRng;
        let d = Exponential::with_mean(1.0);
        let mut rng = SimRng::seed(42);
        let e: Ecdf = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        for &p in &[0.5, 0.9, 0.99] {
            let rel = (e.quantile(p) - d.quantile(p)).abs() / d.quantile(p);
            assert!(rel < 0.05, "p={p} rel={rel}");
        }
    }
}

//! Probability toolkit for the TailGuard reproduction.
//!
//! TailGuard's task-decomposition step (paper §III.B) turns a query tail
//! latency SLO into a per-task queuing deadline using the *unloaded* task
//! response-time distributions of the task servers:
//!
//! * Eq. (1): `F_Q^u(t; k_f) = Π_k F_{n(k)}^u(t)` — the CDF of the slowest of
//!   `k_f` parallel tasks is the product of the per-server CDFs,
//! * Eq. (2): `x_p^u(k_f) = F_Q^{u,-1}(p/100)` — the unloaded query tail
//!   percentile is the inverse of that product CDF.
//!
//! This crate supplies everything those equations need:
//!
//! * [`Distribution`] — analytic service-time distributions (exponential,
//!   log-normal, Pareto, uniform, deterministic, shifted, mixtures) with
//!   exact `cdf`/`quantile`,
//! * [`Ecdf`] — empirical CDFs built from samples (the paper's offline
//!   estimation process),
//! * [`LogHistogram`] — a constant-memory streaming histogram used for the
//!   paper's *online updating process* (§III.B.2),
//! * [`order_stats`] — the fanout order-statistics solver for Eqs. (1)–(2),
//!   for both homogeneous and heterogeneous server populations.
//!
//! All values are in **milliseconds** unless stated otherwise; conversion to
//! [`tailguard_simcore::SimDuration`] happens at the workload boundary.

mod continuous;
mod ecdf;
mod histogram;
pub mod order_stats;
mod piecewise;

pub use continuous::{
    Deterministic, Distribution, DynDistribution, Exponential, LogNormal, Mixture, Pareto, Scaled,
    Shifted, Uniform, Weibull,
};
pub use ecdf::Ecdf;
pub use histogram::{CdfSnapshot, LogHistogram};
pub use piecewise::{PiecewiseError, PiecewiseQuantile};

/// A cumulative distribution function over non-negative values (ms).
///
/// Implemented by every analytic [`Distribution`], by [`Ecdf`], and by
/// [`LogHistogram`], so that the order-statistics solver in [`order_stats`]
/// can combine offline estimates with online-updated ones transparently.
pub trait Cdf {
    /// `P(X <= x)`. Must be non-decreasing in `x`, `0` for `x < 0` and tend
    /// to `1` as `x → ∞`.
    fn cdf(&self, x: f64) -> f64;

    /// The smallest `x` with `cdf(x) >= p`, for `p ∈ [0, 1]`.
    ///
    /// The default implementation bisects over `cdf`; implementors with an
    /// analytic inverse should override it.
    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        // tg-lint: allow(float-eq) -- exact sentinel after clamp(0, 1); a tolerance would shift quantiles
        if p == 0.0 {
            return 0.0;
        }
        // Find an upper bracket, then bisect.
        let mut hi = 1.0_f64;
        let mut iter = 0;
        while self.cdf(hi) < p {
            hi *= 2.0;
            iter += 1;
            if iter > 200 {
                return hi; // distribution never reaches p within f64 range
            }
        }
        let mut lo = 0.0_f64;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) >= p {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo <= f64::EPSILON * hi.max(1.0) {
                break;
            }
        }
        hi
    }
}

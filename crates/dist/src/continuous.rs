//! Analytic service-time distributions.

use crate::Cdf;
use core::fmt;
use std::sync::Arc;
use tailguard_simcore::SimRng;

/// A continuous, non-negative distribution of task service times (ms).
///
/// All implementors provide exact sampling via inverse-transform (so a single
/// `f64` uniform draw produces one sample, keeping simulations cheap and
/// reproducible), plus analytic `cdf`, `quantile` and `mean` where they
/// exist.
///
/// # Example
///
/// ```
/// use tailguard_dist::{Cdf, Distribution, Exponential};
/// use tailguard_simcore::SimRng;
///
/// let d = Exponential::with_mean(2.0);
/// let mut rng = SimRng::seed(1);
/// let x = d.sample(&mut rng);
/// assert!(x >= 0.0);
/// assert!((d.cdf(d.quantile(0.99)) - 0.99).abs() < 1e-9);
/// ```
pub trait Distribution: Cdf + fmt::Debug + Send + Sync {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution mean.
    fn mean(&self) -> f64;
}

/// A shared, dynamically typed distribution handle.
pub type DynDistribution = Arc<dyn Distribution>;

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

/// The exponential distribution, parameterized by its mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean (ms).
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is finite and positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Exponential { mean }
    }
}

impl Cdf for Exponential {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-x / self.mean).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            f64::INFINITY
        } else {
            -self.mean * (1.0 - p).ln()
        }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -self.mean * rng.open01().ln()
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

// ---------------------------------------------------------------------------
// LogNormal
// ---------------------------------------------------------------------------

/// The log-normal distribution: `ln X ~ N(mu, sigma^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of the underlying normal.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma` is finite and positive and `mu` is finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "mu must be finite");
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal with the given mean and a given `p`-quantile
    /// (both in ms) — the calibration form used to fit Tailbench workloads
    /// to the paper's Table II statistics.
    ///
    /// Solves `exp(mu + sigma^2/2) = mean` and
    /// `exp(mu + z_p * sigma) = quantile` for `(mu, sigma)`.
    ///
    /// # Panics
    ///
    /// Panics when the pair is infeasible (requires `quantile > mean` for
    /// `p > 0.5`) or inputs are not positive.
    pub fn from_mean_and_quantile(mean: f64, p: f64, quantile: f64) -> Self {
        assert!(mean > 0.0 && quantile > 0.0, "values must be positive");
        assert!((0.5..1.0).contains(&p), "p must lie in [0.5, 1)");
        let z = inverse_normal_cdf(p);
        // mu + sigma^2/2 = ln mean ; mu + z sigma = ln q
        // => z sigma - sigma^2/2 = ln q - ln mean =: d  (d > 0 required)
        let d = quantile.ln() - mean.ln();
        assert!(d > 0.0, "quantile must exceed mean for upper-tail p");
        // sigma^2/2 - z sigma + d = 0  => sigma = z - sqrt(z^2 - 2d)
        let disc = z * z - 2.0 * d;
        assert!(disc >= 0.0, "infeasible mean/quantile pair");
        let sigma = z - disc.sqrt();
        let mu = mean.ln() - sigma * sigma / 2.0;
        LogNormal::new(mu, sigma)
    }

    /// The `mu` parameter of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The `sigma` parameter of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Cdf for LogNormal {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            standard_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        // tg-lint: allow(float-eq) -- exact sentinel after clamp(0, 1); a tolerance would shift quantiles
        if p == 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return f64::INFINITY;
        }
        (self.mu + self.sigma * inverse_normal_cdf(p)).exp()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.quantile(rng.open01())
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

// ---------------------------------------------------------------------------
// Pareto
// ---------------------------------------------------------------------------

/// The Pareto (type I) distribution with scale `x_m` and shape `alpha`.
///
/// Used by the paper (§IV.B) as a burstier alternative to Poisson
/// inter-arrival times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and positive.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        assert!(shape.is_finite() && shape > 0.0, "shape must be positive");
        Pareto { scale, shape }
    }

    /// Creates a Pareto distribution with the given mean and shape
    /// `alpha > 1` (mean exists only then).
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `shape > 1`.
    pub fn with_mean(mean: f64, shape: f64) -> Self {
        assert!(shape > 1.0, "mean finite only for shape > 1");
        assert!(mean > 0.0, "mean must be positive");
        Pareto::new(mean * (shape - 1.0) / shape, shape)
    }

    /// The scale parameter `x_m` (the distribution minimum).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The shape parameter `alpha`.
    pub fn shape(&self) -> f64 {
        self.shape
    }
}

impl Cdf for Pareto {
    fn cdf(&self, x: f64) -> f64 {
        if x <= self.scale {
            0.0
        } else {
            1.0 - (self.scale / x).powf(self.shape)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return f64::INFINITY;
        }
        self.scale * (1.0 - p).powf(-1.0 / self.shape)
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.scale * rng.open01().powf(-1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        if self.shape <= 1.0 {
            f64::INFINITY
        } else {
            self.shape * self.scale / (self.shape - 1.0)
        }
    }
}

// ---------------------------------------------------------------------------
// Weibull
// ---------------------------------------------------------------------------

/// The Weibull distribution with scale `lambda` and shape `k` — a standard
/// latency model interpolating between heavy (k < 1) and light (k > 1)
/// tails; `k = 1` recovers the exponential.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    scale: f64,
    shape: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and positive.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        assert!(shape.is_finite() && shape > 0.0, "shape must be positive");
        Weibull { scale, shape }
    }

    /// The scale parameter λ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }
}

impl Cdf for Weibull {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return f64::INFINITY;
        }
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.scale * (-rng.open01().ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

/// Lanczos approximation of the Gamma function (|error| < 2e-10 over the
/// range used here).
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        core::f64::consts::PI / ((core::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * core::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

// ---------------------------------------------------------------------------
// Scaled
// ---------------------------------------------------------------------------

/// A distribution divided by a positive factor — used by the testbed to
/// compress "Pi time" into wall time while preserving the shape exactly.
#[derive(Debug, Clone)]
pub struct Scaled<D> {
    inner: D,
    divisor: f64,
}

impl<D: Distribution> Scaled<D> {
    /// Wraps `inner`, dividing every sample (and quantile, and mean) by
    /// `divisor`.
    ///
    /// # Panics
    ///
    /// Panics unless `divisor` is finite and positive.
    pub fn new(inner: D, divisor: f64) -> Self {
        assert!(
            divisor.is_finite() && divisor > 0.0,
            "divisor must be positive"
        );
        Scaled { inner, divisor }
    }
}

impl<D: Distribution> Cdf for Scaled<D> {
    fn cdf(&self, x: f64) -> f64 {
        self.inner.cdf(x * self.divisor)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.inner.quantile(p) / self.divisor
    }
}

impl<D: Distribution> Distribution for Scaled<D> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.inner.sample(rng) / self.divisor
    }

    fn mean(&self) -> f64 {
        self.inner.mean() / self.divisor
    }
}

// ---------------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------------

/// The continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo >= 0.0 && lo < hi, "require 0 <= lo < hi");
        Uniform { lo, hi }
    }
}

impl Cdf for Uniform {
    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.lo + (self.hi - self.lo) * p.clamp(0.0, 1.0)
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.f64()
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

// ---------------------------------------------------------------------------
// Deterministic
// ---------------------------------------------------------------------------

/// A point mass: every sample equals `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value` (ms).
    ///
    /// # Panics
    ///
    /// Panics unless `value` is finite and non-negative.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "value must be non-negative"
        );
        Deterministic { value }
    }
}

impl Cdf for Deterministic {
    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn quantile(&self, _p: f64) -> f64 {
        self.value
    }
}

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }
}

// ---------------------------------------------------------------------------
// Shifted
// ---------------------------------------------------------------------------

/// A distribution translated right by a constant offset — models a fixed
/// component (e.g. network round-trip) on top of a random service time.
#[derive(Debug, Clone)]
pub struct Shifted<D> {
    offset: f64,
    inner: D,
}

impl<D: Distribution> Shifted<D> {
    /// Wraps `inner`, adding `offset` ms to every sample.
    ///
    /// # Panics
    ///
    /// Panics unless `offset` is finite and non-negative.
    pub fn new(offset: f64, inner: D) -> Self {
        assert!(
            offset.is_finite() && offset >= 0.0,
            "offset must be non-negative"
        );
        Shifted { offset, inner }
    }
}

impl<D: Distribution> Cdf for Shifted<D> {
    fn cdf(&self, x: f64) -> f64 {
        self.inner.cdf(x - self.offset)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.offset + self.inner.quantile(p)
    }
}

impl<D: Distribution> Distribution for Shifted<D> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.offset + self.inner.sample(rng)
    }

    fn mean(&self) -> f64 {
        self.offset + self.inner.mean()
    }
}

// ---------------------------------------------------------------------------
// Mixture
// ---------------------------------------------------------------------------

/// A finite mixture of distributions — the calibration workhorse for the
/// bimodal Tailbench workloads (fast common path + slow tail mode).
///
/// # Example
///
/// ```
/// use tailguard_dist::{Distribution, LogNormal, Mixture};
///
/// // 97% fast requests, 3% slow outliers.
/// let m = Mixture::new(vec![
///     (0.97, Box::new(LogNormal::new(-1.5, 0.3)) as Box<dyn Distribution>),
///     (0.03, Box::new(LogNormal::new(0.7, 0.1))),
/// ]);
/// assert!(m.mean() > 0.0);
/// ```
#[derive(Debug)]
pub struct Mixture {
    weights: Vec<f64>,
    cumulative: Vec<f64>,
    components: Vec<Box<dyn Distribution>>,
}

impl Mixture {
    /// Creates a mixture from `(weight, component)` pairs. Weights are
    /// normalized to sum to one.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or any weight is negative/non-finite or
    /// all weights are zero.
    pub fn new(parts: Vec<(f64, Box<dyn Distribution>)>) -> Self {
        assert!(!parts.is_empty(), "mixture needs at least one component");
        let total: f64 = parts.iter().map(|(w, _)| *w).sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weights must sum to a positive value"
        );
        assert!(
            parts.iter().all(|(w, _)| w.is_finite() && *w >= 0.0),
            "weights must be non-negative"
        );
        let mut weights = Vec::with_capacity(parts.len());
        let mut cumulative = Vec::with_capacity(parts.len());
        let mut components = Vec::with_capacity(parts.len());
        let mut acc = 0.0;
        for (w, c) in parts {
            let w = w / total;
            acc += w;
            weights.push(w);
            cumulative.push(acc);
            components.push(c);
        }
        // Guard against accumulated rounding.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Mixture {
            weights,
            cumulative,
            components,
        }
    }

    /// Number of mixture components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the mixture has no components (never: construction forbids
    /// it), provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The normalized component weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Cdf for Mixture {
    fn cdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.cdf(x))
            .sum()
    }
    // quantile: default bisection from the Cdf trait (no closed form).
}

impl Distribution for Mixture {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.f64();
        let idx = match self.cumulative.iter().position(|&c| u < c) {
            Some(i) => i,
            // tg-lint: allow(panic-surface) -- mixture components are validated non-empty at construction
            None => self.components.len() - 1,
        };
        // tg-lint: allow(panic-surface) -- mixture components are validated non-empty at construction
        self.components[idx].sample(rng)
    }

    fn mean(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.mean())
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Normal helpers
// ---------------------------------------------------------------------------

/// The standard normal CDF, accurate to ~1e-7 (Abramowitz & Stegun 7.1.26).
pub(crate) fn standard_normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / core::f64::consts::SQRT_2);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-(x * x) / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + erf)
    } else {
        0.5 * (1.0 - erf)
    }
}

/// The inverse standard normal CDF (Acklam's algorithm, ~1e-9 relative
/// error), refined with one Halley step against [`standard_normal_cdf`].
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1)`.
pub(crate) fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must lie strictly in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = standard_normal_cdf(x) - p;
    let u = e * (2.0 * core::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &dyn Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_and_quantile() {
        let d = Exponential::with_mean(2.0);
        assert!((sample_mean(&d, 200_000, 1) - 2.0).abs() < 0.02);
        assert!((d.quantile(0.5) - 2.0 * core::f64::consts::LN_2).abs() < 1e-12);
        assert!((d.cdf(d.quantile(0.99)) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn lognormal_mean_matches() {
        let d = LogNormal::new(-1.0, 0.5);
        let analytic = (-1.0f64 + 0.125).exp();
        assert!((d.mean() - analytic).abs() < 1e-12);
        assert!((sample_mean(&d, 200_000, 2) - analytic).abs() < 0.01 * analytic);
    }

    #[test]
    fn lognormal_calibration_hits_targets() {
        let d = LogNormal::from_mean_and_quantile(0.176, 0.99, 0.219);
        assert!((d.mean() - 0.176).abs() < 1e-9);
        assert!((d.quantile(0.99) - 0.219).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "quantile must exceed mean")]
    fn lognormal_calibration_rejects_infeasible() {
        let _ = LogNormal::from_mean_and_quantile(1.0, 0.99, 0.5);
    }

    #[test]
    fn pareto_mean_and_tail() {
        let d = Pareto::with_mean(1.0, 1.5);
        assert!((d.mean() - 1.0).abs() < 1e-12);
        // Pareto is heavy-tailed: p99.9 much larger than mean.
        assert!(d.quantile(0.999) > 20.0);
        let sm = sample_mean(&d, 2_000_000, 3);
        assert!((sm - 1.0).abs() < 0.2, "heavy tail sample mean {sm}");
    }

    #[test]
    fn pareto_cdf_quantile_roundtrip() {
        let d = Pareto::new(0.5, 2.5);
        for &p in &[0.1, 0.5, 0.9, 0.99, 0.9999] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn weibull_exponential_special_case() {
        // k = 1 is Exp(mean = scale).
        let w = Weibull::new(2.0, 1.0);
        let e = Exponential::with_mean(2.0);
        for &p in &[0.1, 0.5, 0.9, 0.99] {
            assert!((w.quantile(p) - e.quantile(p)).abs() < 1e-9, "p={p}");
        }
        assert!((w.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weibull_cdf_quantile_roundtrip_and_mean() {
        let w = Weibull::new(1.5, 0.7); // heavy-ish tail
        for &p in &[0.05, 0.5, 0.95, 0.999] {
            assert!((w.cdf(w.quantile(p)) - p).abs() < 1e-10, "p={p}");
        }
        // Gamma(1 + 1/0.7) = Gamma(2.42857); sample-check the mean.
        let sm = sample_mean(&w, 500_000, 77);
        assert!(
            (sm - w.mean()).abs() / w.mean() < 0.02,
            "{sm} vs {}",
            w.mean()
        );
    }

    #[test]
    fn gamma_reference_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - core::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn scaled_divides_consistently() {
        let s = Scaled::new(Exponential::with_mean(10.0), 4.0);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.quantile(0.9) - Exponential::with_mean(10.0).quantile(0.9) / 4.0).abs() < 1e-12);
        assert!((s.cdf(2.5) - Exponential::with_mean(10.0).cdf(10.0)).abs() < 1e-12);
        let mut rng = SimRng::seed(9);
        let m = (0..100_000).map(|_| s.sample(&mut rng)).sum::<f64>() / 100_000.0;
        assert!((m - 2.5).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "divisor must be positive")]
    fn scaled_rejects_zero() {
        let _ = Scaled::new(Exponential::with_mean(1.0), 0.0);
    }

    #[test]
    fn uniform_basics() {
        let d = Uniform::new(1.0, 3.0);
        assert_eq!(d.mean(), 2.0);
        assert_eq!(d.quantile(0.25), 1.5);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(5.0), 1.0);
        let mut rng = SimRng::seed(4);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1.0..3.0).contains(&x));
        }
    }

    #[test]
    fn deterministic_is_a_point_mass() {
        let d = Deterministic::new(1.5);
        let mut rng = SimRng::seed(5);
        assert_eq!(d.sample(&mut rng), 1.5);
        assert_eq!(d.quantile(0.01), 1.5);
        assert_eq!(d.quantile(0.99), 1.5);
        assert_eq!(d.cdf(1.4), 0.0);
        assert_eq!(d.cdf(1.5), 1.0);
    }

    #[test]
    fn shifted_adds_offset_everywhere() {
        let d = Shifted::new(1.0, Exponential::with_mean(2.0));
        assert!((d.mean() - 3.0).abs() < 1e-12);
        assert!((d.quantile(0.5) - (1.0 + 2.0 * core::f64::consts::LN_2)).abs() < 1e-12);
        assert_eq!(d.cdf(0.5), 0.0);
        let mut rng = SimRng::seed(6);
        assert!(d.sample(&mut rng) >= 1.0);
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let m = Mixture::new(vec![
            (
                3.0,
                Box::new(Deterministic::new(1.0)) as Box<dyn Distribution>,
            ),
            (1.0, Box::new(Deterministic::new(5.0))),
        ]);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.len(), 2);
        assert!((m.weights()[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mixture_cdf_and_default_quantile_agree() {
        let m = Mixture::new(vec![
            (
                0.9,
                Box::new(LogNormal::new(-1.7, 0.1)) as Box<dyn Distribution>,
            ),
            (0.1, Box::new(LogNormal::new(0.5, 0.2))),
        ]);
        for &p in &[0.1, 0.5, 0.9, 0.99, 0.9999] {
            let q = m.quantile(p);
            assert!(
                (m.cdf(q) - p).abs() < 1e-6,
                "p={p}, q={q}, cdf={}",
                m.cdf(q)
            );
        }
    }

    #[test]
    fn mixture_sampling_matches_weights() {
        let m = Mixture::new(vec![
            (
                0.8,
                Box::new(Deterministic::new(1.0)) as Box<dyn Distribution>,
            ),
            (0.2, Box::new(Deterministic::new(2.0))),
        ]);
        let mut rng = SimRng::seed(7);
        let n = 100_000;
        let ones = (0..n).filter(|_| m.sample(&mut rng) == 1.0).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.01, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mixture_panics() {
        let _ = Mixture::new(vec![]);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((standard_normal_cdf(1.0) - 0.8413447461).abs() < 1e-6);
        assert!((standard_normal_cdf(-1.96) - 0.0249979).abs() < 1e-5);
        assert!((standard_normal_cdf(2.326347874) - 0.99).abs() < 1e-6);
    }

    #[test]
    fn inverse_normal_roundtrip() {
        for &p in &[0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 0.9999] {
            let x = inverse_normal_cdf(p);
            assert!(
                (standard_normal_cdf(x) - p).abs() < 1e-7,
                "p={p} x={x} cdf={}",
                standard_normal_cdf(x)
            );
        }
    }

    #[test]
    fn cdf_default_quantile_bisection_works() {
        // Use a type whose quantile comes from the trait default.
        struct Weird;
        impl fmt::Debug for Weird {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "Weird")
            }
        }
        impl Cdf for Weird {
            fn cdf(&self, x: f64) -> f64 {
                // CDF of Exp(mean=3) computed oddly.
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-x / 3.0).exp()
                }
            }
        }
        let w = Weird;
        let exact = Exponential::with_mean(3.0);
        for &p in &[0.1, 0.5, 0.99] {
            assert!((w.quantile(p) - exact.quantile(p)).abs() < 1e-9);
        }
        assert_eq!(w.quantile(0.0), 0.0);
    }
}

//! Piecewise-linear quantile-function distributions.

use crate::{Cdf, Distribution};
use serde::{Deserialize, Serialize};
use tailguard_simcore::SimRng;

/// A distribution defined directly by control points of its quantile
/// function `Q(p)`, linearly interpolated between them.
///
/// This is the calibration vehicle for the Tailbench workload models: the
/// paper's Table II pins down the mean task service time and the unloaded
/// 99th/99.9th/99.99th percentile tail values, and a piecewise quantile
/// function reproduces those *exactly by construction* while the remaining
/// control points shape the CDF body to match Fig. 3.
///
/// For a piecewise-linear `Q`, the mean has the closed form
/// `E[X] = ∫₀¹ Q(p) dp = Σ (p_{i+1}-p_i)·(x_i+x_{i+1})/2`, which
/// [`PiecewiseQuantile::calibrate_mean`] exploits to hit a target mean
/// analytically by moving one interior control point.
///
/// # Example
///
/// ```
/// use tailguard_dist::{Cdf, Distribution, PiecewiseQuantile};
///
/// let d = PiecewiseQuantile::new(vec![
///     (0.0, 0.1),
///     (0.5, 0.2),
///     (0.99, 0.5),
///     (1.0, 1.0),
/// ]).unwrap();
/// assert_eq!(d.quantile(0.99), 0.5);
/// assert!((d.cdf(0.5) - 0.99).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseQuantile {
    points: Vec<(f64, f64)>,
}

/// Error building a [`PiecewiseQuantile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PiecewiseError {
    /// Fewer than two control points were supplied.
    TooFewPoints,
    /// The first point must have `p = 0` and the last `p = 1`.
    BadEndpoints,
    /// Probabilities must be strictly increasing.
    ProbabilitiesNotIncreasing,
    /// Values must be non-negative and non-decreasing.
    ValuesNotMonotone,
    /// A value was NaN or infinite.
    NonFiniteValue,
}

impl std::fmt::Display for PiecewiseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            PiecewiseError::TooFewPoints => "need at least two control points",
            PiecewiseError::BadEndpoints => "first point must be p=0 and last p=1",
            PiecewiseError::ProbabilitiesNotIncreasing => {
                "probabilities must be strictly increasing"
            }
            PiecewiseError::ValuesNotMonotone => "values must be non-negative and non-decreasing",
            PiecewiseError::NonFiniteValue => "control points must be finite",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for PiecewiseError {}

impl PiecewiseQuantile {
    /// Builds a distribution from `(p, x)` control points.
    ///
    /// # Errors
    ///
    /// Returns a [`PiecewiseError`] when the points are not a valid quantile
    /// function: at least two points, `p` strictly increasing from exactly 0
    /// to exactly 1, `x` finite, non-negative and non-decreasing.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, PiecewiseError> {
        if points.len() < 2 {
            return Err(PiecewiseError::TooFewPoints);
        }
        // tg-lint: allow(float-eq) -- the endpoints are exactly 0 and 1 by documented contract
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        if points[0].0 != 0.0 || points[points.len() - 1].0 != 1.0 {
            return Err(PiecewiseError::BadEndpoints);
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(PiecewiseError::ProbabilitiesNotIncreasing);
            }
        }
        for &(p, x) in &points {
            if !p.is_finite() || !x.is_finite() {
                return Err(PiecewiseError::NonFiniteValue);
            }
        }
        if points[0].1 < 0.0 || points.windows(2).any(|w| w[1].1 < w[0].1) {
            return Err(PiecewiseError::ValuesNotMonotone);
        }
        Ok(PiecewiseQuantile { points })
    }

    /// The control points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Exact mean: `Σ (p_{i+1}-p_i)(x_i+x_{i+1})/2`.
    fn exact_mean(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0)
            .sum()
    }

    /// Moves the `x` value of the interior control point at `adjust_idx` so
    /// that the distribution mean equals `target_mean` exactly, solving the
    /// (linear) mean equation in closed form.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the required value when it would violate
    /// monotonicity against the neighboring control points (i.e. the target
    /// mean is not reachable by moving this point alone).
    ///
    /// # Panics
    ///
    /// Panics when `adjust_idx` is not an interior index.
    pub fn calibrate_mean(mut self, adjust_idx: usize, target_mean: f64) -> Result<Self, f64> {
        assert!(
            // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
            adjust_idx > 0 && adjust_idx < self.points.len() - 1,
            "adjust_idx must be interior"
        );
        // mean = C + x_k * (p_{k+1} - p_{k-1}) / 2, linear in x_k.
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        let (p_prev, x_prev) = self.points[adjust_idx - 1];
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        let (_, _) = self.points[adjust_idx];
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        let (p_next, x_next) = self.points[adjust_idx + 1];
        let weight = (p_next - p_prev) / 2.0;
        let current = self.exact_mean();
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        let x_k = self.points[adjust_idx].1;
        let needed = x_k + (target_mean - current) / weight;
        if needed < x_prev || needed > x_next {
            return Err(needed);
        }
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        self.points[adjust_idx].1 = needed;
        Ok(self)
    }
}

impl PiecewiseQuantile {
    /// The anchor probabilities used by [`PiecewiseQuantile::fit`] when none
    /// are supplied: body + the tail points the TailGuard math consumes
    /// (`p^{1/k}` for k = 1, 10, 100 at p = 0.99).
    pub const DEFAULT_ANCHORS: [f64; 8] = [0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999, 1.0];

    /// Fits a piecewise-quantile model to measured latency samples: the
    /// empirical quantiles at `anchors` become the control points (plus the
    /// sample minimum at `p = 0`).
    ///
    /// This is the calibration path for users replacing the built-in
    /// Tailbench models with their own measurements (the paper's offline
    /// estimation process, productized).
    ///
    /// # Errors
    ///
    /// Returns a [`PiecewiseError`] when no finite samples are provided or
    /// the anchors are not strictly increasing within `(0, 1]` ending at 1.
    pub fn fit(samples: &[f64], anchors: &[f64]) -> Result<Self, PiecewiseError> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        if sorted.is_empty() {
            return Err(PiecewiseError::TooFewPoints);
        }
        sorted.sort_by(f64::total_cmp);
        if anchors.is_empty()
            || anchors.windows(2).any(|w| w[1] <= w[0])
            || anchors[0] <= 0.0
            // tg-lint: allow(unwrap-in-lib, float-eq) -- is_empty is checked first in this chain; the 1.0 endpoint is exact by contract
            || *anchors.last().expect("non-empty") != 1.0
        {
            return Err(PiecewiseError::ProbabilitiesNotIncreasing);
        }
        let n = sorted.len();
        let mut points = Vec::with_capacity(anchors.len() + 1);
        points.push((0.0, sorted[0]));
        let mut last_x = sorted[0];
        for &p in anchors {
            // tg-lint: allow(lossy-cast) -- rank is ceil'd then clamped to 1.0..=n before truncation
            let rank = (p * n as f64).ceil().clamp(1.0, n as f64) as usize;
            // Enforce monotone values (duplicate empirical quantiles are
            // nudged by keeping the running max).
            // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
            let x = sorted[rank - 1].max(last_x);
            last_x = x;
            points.push((p, x));
        }
        PiecewiseQuantile::new(points)
    }
}

impl Cdf for PiecewiseQuantile {
    fn cdf(&self, x: f64) -> f64 {
        let first = self.points[0].1;
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        let last = self.points[self.points.len() - 1].1;
        if x < first {
            return 0.0;
        }
        if x >= last {
            return 1.0;
        }
        // Find the last segment whose left value is <= x.
        let mut i = self
            .points
            .partition_point(|&(_, v)| v <= x)
            .saturating_sub(1);
        // Skip flat runs: pick the right-most point with this x to keep the
        // CDF right-continuous.
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        while i + 1 < self.points.len() && self.points[i + 1].1 <= x {
            i += 1;
        }
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        let (p0, x0) = self.points[i];
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        let (p1, x1) = self.points[i + 1];
        if x1 == x0 {
            p1
        } else {
            p0 + (p1 - p0) * (x - x0) / (x1 - x0)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let i = self
            .points
            .partition_point(|&(pp, _)| pp <= p)
            // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
            .clamp(1, self.points.len() - 1);
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        let (p0, x0) = self.points[i - 1];
        // tg-lint: allow(panic-surface) -- control points are validated at construction (>= 2 points, endpoints pinned at p=0 and p=1) and indices are guarded/clamped by the surrounding branch
        let (p1, x1) = self.points[i];
        if p1 == p0 {
            x1
        } else {
            x0 + (x1 - x0) * (p - p0) / (p1 - p0)
        }
    }
}

impl Distribution for PiecewiseQuantile {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.quantile(rng.f64())
    }

    fn mean(&self) -> f64 {
        self.exact_mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> PiecewiseQuantile {
        PiecewiseQuantile::new(vec![(0.0, 1.0), (0.5, 2.0), (1.0, 4.0)]).unwrap()
    }

    #[test]
    fn quantile_interpolates() {
        let d = simple();
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(0.25), 1.5);
        assert_eq!(d.quantile(0.5), 2.0);
        assert_eq!(d.quantile(0.75), 3.0);
        assert_eq!(d.quantile(1.0), 4.0);
    }

    #[test]
    fn cdf_inverts_quantile() {
        let d = simple();
        for &p in &[0.0, 0.1, 0.3, 0.5, 0.77, 0.999] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12, "p={p}");
        }
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(4.0), 1.0);
        assert_eq!(d.cdf(100.0), 1.0);
    }

    #[test]
    fn mean_closed_form() {
        let d = simple();
        // segments: [0,0.5] avg 1.5 -> 0.75 ; [0.5,1] avg 3 -> 1.5 ; total 2.25
        assert!((d.mean() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn sample_mean_matches() {
        use tailguard_simcore::SimRng;
        let d = simple();
        let mut rng = SimRng::seed(1);
        let n = 200_000;
        let m: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - 2.25).abs() < 0.01);
    }

    #[test]
    fn calibrate_mean_exact() {
        let d = simple().calibrate_mean(1, 2.4).unwrap();
        assert!((d.mean() - 2.4).abs() < 1e-12);
        // quantile targets at other points untouched
        assert_eq!(d.quantile(1.0), 4.0);
        assert_eq!(d.quantile(0.0), 1.0);
    }

    #[test]
    fn calibrate_mean_infeasible_reports_needed_value() {
        let err = simple().calibrate_mean(1, 10.0).unwrap_err();
        assert!(err > 4.0);
    }

    #[test]
    fn flat_segment_cdf_right_continuous() {
        let d =
            PiecewiseQuantile::new(vec![(0.0, 1.0), (0.3, 2.0), (0.7, 2.0), (1.0, 3.0)]).unwrap();
        // Atom of mass 0.4 at x=2: cdf(2) must jump to 0.7.
        assert!((d.cdf(2.0) - 0.7).abs() < 1e-12);
        assert!((d.cdf(1.9999) - 0.3).abs() < 1e-3);
        assert_eq!(d.quantile(0.5), 2.0);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            PiecewiseQuantile::new(vec![(0.0, 1.0)]).unwrap_err(),
            PiecewiseError::TooFewPoints
        );
        assert_eq!(
            PiecewiseQuantile::new(vec![(0.1, 1.0), (1.0, 2.0)]).unwrap_err(),
            PiecewiseError::BadEndpoints
        );
        assert_eq!(
            PiecewiseQuantile::new(vec![(0.0, 1.0), (0.5, 2.0), (0.5, 3.0), (1.0, 4.0)])
                .unwrap_err(),
            PiecewiseError::ProbabilitiesNotIncreasing
        );
        assert_eq!(
            PiecewiseQuantile::new(vec![(0.0, 2.0), (1.0, 1.0)]).unwrap_err(),
            PiecewiseError::ValuesNotMonotone
        );
        assert_eq!(
            PiecewiseQuantile::new(vec![(0.0, f64::NAN), (1.0, 1.0)]).unwrap_err(),
            PiecewiseError::NonFiniteValue
        );
    }

    #[test]
    fn fit_recovers_known_distribution() {
        use crate::Distribution;
        use tailguard_simcore::SimRng;
        let truth = PiecewiseQuantile::new(vec![
            (0.0, 0.1),
            (0.5, 0.2),
            (0.9, 0.4),
            (0.99, 0.9),
            (1.0, 1.5),
        ])
        .unwrap();
        let mut rng = SimRng::seed(8);
        let samples: Vec<f64> = (0..400_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted =
            PiecewiseQuantile::fit(&samples, &PiecewiseQuantile::DEFAULT_ANCHORS).expect("fit");
        for &p in &[0.5, 0.9, 0.99] {
            let rel = (fitted.quantile(p) - truth.quantile(p)).abs() / truth.quantile(p);
            assert!(rel < 0.02, "p={p} rel={rel}");
        }
        assert!((fitted.mean() - truth.mean()).abs() / truth.mean() < 0.05);
    }

    #[test]
    fn fit_validates_inputs() {
        assert!(PiecewiseQuantile::fit(&[], &[0.5, 1.0]).is_err());
        assert!(PiecewiseQuantile::fit(&[f64::NAN], &[0.5, 1.0]).is_err());
        assert!(PiecewiseQuantile::fit(&[1.0, 2.0], &[0.9, 0.5, 1.0]).is_err());
        assert!(PiecewiseQuantile::fit(&[1.0, 2.0], &[0.5, 0.9]).is_err()); // no 1.0
        assert!(PiecewiseQuantile::fit(&[1.0, 2.0], &[]).is_err());
    }

    #[test]
    fn fit_handles_constant_samples() {
        let fitted =
            PiecewiseQuantile::fit(&[3.0; 100], &PiecewiseQuantile::DEFAULT_ANCHORS).expect("fit");
        assert_eq!(fitted.quantile(0.5), 3.0);
        assert_eq!(fitted.quantile(0.9999), 3.0);
        assert!((fitted.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tail_points_are_exact() {
        // The Table II calibration property: tail control points reproduce
        // exactly through quantile().
        let d = PiecewiseQuantile::new(vec![
            (0.0, 0.10),
            (0.5, 0.17),
            (0.99, 0.219),
            (0.999, 0.247),
            (0.9999, 0.473),
            (1.0, 0.70),
        ])
        .unwrap();
        assert_eq!(d.quantile(0.99), 0.219);
        assert_eq!(d.quantile(0.999), 0.247);
        assert_eq!(d.quantile(0.9999), 0.473);
    }
}

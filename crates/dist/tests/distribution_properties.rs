//! Property-based contracts every distribution in the crate must satisfy:
//! monotone CDFs, inverse consistency, support containment, and agreement
//! between sampling and the analytic forms.
//!
//! `proptest` here is the offline stand-in under `third_party/proptest`
//! (version `0.0.0-offline-stub`): weaker shrinking and far fewer cases
//! per run than upstream — randomized smoke coverage of the contracts, not
//! an exhaustive property search. See `third_party/README.md`.

use proptest::prelude::*;
use tailguard_dist::{
    order_stats, Cdf, Deterministic, Distribution, Exponential, LogNormal, Pareto,
    PiecewiseQuantile, Scaled, Shifted, Uniform, Weibull,
};
use tailguard_simcore::SimRng;

fn check_cdf_quantile_contract(d: &dyn Distribution, label: &str) -> Result<(), TestCaseError> {
    // CDF is monotone non-decreasing over a value sweep.
    let hi = d.quantile(0.999).max(1.0);
    let mut last = 0.0;
    let mut x = hi / 1000.0;
    while x < hi {
        let c = d.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c), "{label}: cdf({x}) = {c}");
        prop_assert!(c >= last - 1e-12, "{label}: cdf not monotone at {x}");
        last = c;
        x *= 1.3;
    }
    // Quantile is monotone and (approximately) a right inverse of the CDF.
    let mut lastq = 0.0;
    for i in 1..40 {
        let p = i as f64 / 40.0;
        let q = d.quantile(p);
        prop_assert!(q >= lastq - 1e-12, "{label}: quantile not monotone at {p}");
        lastq = q;
        let c = d.cdf(q);
        prop_assert!(c >= p - 1e-6, "{label}: cdf(quantile({p})) = {c} < p");
    }
    // Samples land inside [quantile(0), quantile(1)] and their mean tracks.
    let mut rng = SimRng::seed(0xD157);
    let n = 40_000;
    let mut sum = 0.0;
    for _ in 0..n {
        let s = d.sample(&mut rng);
        prop_assert!(s.is_finite() && s >= 0.0, "{label}: sample {s}");
        sum += s;
    }
    let mean = sum / n as f64;
    let analytic = d.mean();
    if analytic.is_finite() && analytic > 0.0 {
        prop_assert!(
            (mean - analytic).abs() / analytic < 0.25,
            "{label}: sample mean {mean} vs analytic {analytic}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exponential_contract(mean in 0.01f64..100.0) {
        check_cdf_quantile_contract(&Exponential::with_mean(mean), "exponential")?;
    }

    #[test]
    fn lognormal_contract(mu in -2.0f64..2.0, sigma in 0.05f64..1.2) {
        check_cdf_quantile_contract(&LogNormal::new(mu, sigma), "lognormal")?;
    }

    #[test]
    fn pareto_contract(scale in 0.01f64..10.0, shape in 1.2f64..5.0) {
        check_cdf_quantile_contract(&Pareto::new(scale, shape), "pareto")?;
    }

    #[test]
    fn weibull_contract(scale in 0.05f64..10.0, shape in 0.5f64..4.0) {
        check_cdf_quantile_contract(&Weibull::new(scale, shape), "weibull")?;
    }

    #[test]
    fn uniform_contract(lo in 0.0f64..5.0, width in 0.1f64..10.0) {
        check_cdf_quantile_contract(&Uniform::new(lo, lo + width), "uniform")?;
    }

    #[test]
    fn shifted_scaled_contract(
        offset in 0.0f64..5.0,
        mean in 0.05f64..10.0,
        divisor in 0.5f64..50.0,
    ) {
        check_cdf_quantile_contract(
            &Shifted::new(offset, Exponential::with_mean(mean)),
            "shifted",
        )?;
        check_cdf_quantile_contract(
            &Scaled::new(Exponential::with_mean(mean), divisor),
            "scaled",
        )?;
    }

    #[test]
    fn piecewise_contract(
        x0 in 0.01f64..1.0,
        d1 in 0.01f64..2.0,
        d2 in 0.01f64..2.0,
        d3 in 0.01f64..2.0,
    ) {
        let d = PiecewiseQuantile::new(vec![
            (0.0, x0),
            (0.5, x0 + d1),
            (0.99, x0 + d1 + d2),
            (1.0, x0 + d1 + d2 + d3),
        ]).expect("monotone by construction");
        check_cdf_quantile_contract(&d, "piecewise")?;
    }

    /// Order statistics: for any distribution and fanout, the grouped
    /// quantile equals the homogeneous closed form, and the quantile is
    /// monotone in the fanout.
    #[test]
    fn order_stats_consistency(mean in 0.05f64..5.0, k in 1u32..200) {
        let d = Exponential::with_mean(mean);
        let hom = order_stats::homogeneous_quantile(&d, 0.99, k);
        let grouped = order_stats::grouped_quantile(&[(&d, k)], 0.99);
        prop_assert!((hom - grouped).abs() / hom < 1e-6);
        if k > 1 {
            let smaller = order_stats::homogeneous_quantile(&d, 0.99, k - 1);
            prop_assert!(hom >= smaller - 1e-12);
        }
    }

    /// A point mass behaves as the degenerate case everywhere.
    #[test]
    fn deterministic_contract(v in 0.0f64..100.0) {
        let d = Deterministic::new(v);
        prop_assert_eq!(d.quantile(0.37), v);
        prop_assert_eq!(d.mean(), v);
        prop_assert_eq!(d.cdf(v), 1.0);
        if v > 0.0 {
            prop_assert_eq!(d.cdf(v * 0.999), 0.0);
        }
        // Max of k point masses is the point mass.
        prop_assert_eq!(order_stats::homogeneous_quantile(&d, 0.99, 50), v);
    }
}

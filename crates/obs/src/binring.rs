//! The binary flight recorder: per-handler staging, batched flushes.
//!
//! [`RingRecorder`](crate::RingRecorder) takes one mutex lock and one
//! 72-byte enum copy per event — measured at roughly a doubling of the
//! pure-sim hot path. [`BinaryRecorder`] restructures recording around
//! the runner's actual concurrency model: parallelism is *across*
//! experiment cells, each handler is single-threaded, so each installed
//! [`BinarySink`] owns a private staging buffer it appends encoded
//! records to without any synchronization, and only touches the shared
//! ring once per [`FLUSH_EVENTS`]-event batch (and once at drop). The
//! hot-path cost per event is a stack-buffer encode plus a `Vec` append;
//! the lock amortizes to under 1/1000th of a lock per event.
//!
//! Records are the [`codec`](crate::codec) fixed-width layout, decoded
//! back into [`TraceEvent`]s only at analysis time ([`BinaryRecorder::events`]).
//! The ring bounds memory by *event count* and evicts whole oldest
//! records, counting evictions, exactly like the legacy recorder.

use crate::codec::{decode, encode_append, EVENT_BYTES};
use crate::sampler::{SamplerConfig, TailSampler};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use tailguard_sched::{TraceEvent, TraceSink};

/// Staged events per sink before a flush into the shared ring. At 51
/// bytes per record this stages ~6.4 KiB — small enough that the staging
/// block never evicts the scheduler's L1 working set (a 52 KiB stage
/// measurably slowed the hot path), large enough to amortize the ring
/// lock to under 1/128th of a lock per event.
pub const FLUSH_EVENTS: usize = 128;

struct BinRing {
    /// Flushed staging blocks, oldest first. Each is a non-empty multiple
    /// of [`EVENT_BYTES`]; blocks move in whole (a flush is a `Vec` move,
    /// not a per-record copy — the difference between ~35% and ~10%
    /// recording overhead on the pure-sim hot path).
    blocks: VecDeque<Vec<u8>>,
    /// Byte offset of the oldest *retained* record in the front block;
    /// eviction advances it record by record and pops the block when it
    /// reaches the end, keeping per-event eviction semantics on top of
    /// block-granular memory management.
    head: usize,
    /// Events currently retained (`blocks` bytes past `head`, in records).
    retained: usize,
    capacity: usize,
    /// Events that reached the ring over its lifetime (retained + evicted).
    total: u64,
    /// Events evicted to honor the capacity bound.
    dropped: u64,
    /// Events discarded upstream by tail-aware sampling (never reached
    /// the ring; accounted separately from capacity eviction).
    sampled_out: u64,
}

impl BinRing {
    /// Takes ownership of one staged block and evicts oldest records
    /// until the capacity bound holds again. A fully evicted block is
    /// handed back (cleared, capacity intact) for the caller to stage
    /// into next, so a sink at steady state recycles the same few
    /// buffers instead of churning the allocator once per flush.
    fn push_block(&mut self, block: Vec<u8>) -> Option<Vec<u8>> {
        debug_assert!(!block.is_empty() && block.len().is_multiple_of(EVENT_BYTES));
        let events = block.len() / EVENT_BYTES;
        self.total += events as u64;
        self.retained += events;
        self.blocks.push_back(block);
        let mut recycled = None;
        while self.retained > self.capacity {
            self.head += EVENT_BYTES;
            self.retained = self.retained.saturating_sub(1);
            self.dropped += 1;
            if self.head == self.blocks[0].len() {
                if let Some(mut freed) = self.blocks.pop_front() {
                    freed.clear();
                    recycled = Some(freed);
                }
                self.head = 0;
            }
        }
        recycled
    }

    /// The retained records, oldest first, as (up to two) contiguous byte
    /// runs: the front block past `head`, then every later block whole.
    fn byte_runs(&self) -> impl Iterator<Item = &[u8]> {
        self.blocks
            .iter()
            .enumerate()
            // tg-lint: allow(panic-surface) -- `head` always lands on a record boundary inside block 0: the eviction loop above advances it by whole records and resets it at block ends
            .map(|(i, b)| if i == 0 { &b[self.head..] } else { &b[..] })
            .filter(|run| !run.is_empty())
    }
}

/// A bounded binary flight recorder, shared as a cheap-to-clone handle.
///
/// The driver keeps one handle and installs per-handler [`BinarySink`]s
/// via [`BinaryRecorder::sink`] (or [`BinaryRecorder::sink_sampled`] for
/// tail-aware sampling). Sinks batch privately and flush on a fixed
/// event cadence and on drop, so the recording is complete once the
/// handler (and with it the sink) is dropped.
#[derive(Clone)]
pub struct BinaryRecorder {
    inner: Arc<Mutex<BinRing>>,
}

impl std::fmt::Debug for BinaryRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.ring();
        f.debug_struct("BinaryRecorder")
            .field("capacity", &ring.capacity)
            .field("len", &ring.retained)
            .field("total", &ring.total)
            .field("dropped", &ring.dropped)
            .field("sampled_out", &ring.sampled_out)
            .finish()
    }
}

impl BinaryRecorder {
    /// Locks the ring, recovering from a poisoned mutex: the ring holds
    /// plain counters and fixed-width byte records, so state left by a
    /// thread that panicked mid-flush is still internally consistent and
    /// the recording (a diagnostic aid) should outlive the panic.
    fn ring(&self) -> std::sync::MutexGuard<'_, BinRing> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A recorder keeping the most recent `capacity` events (at least 1).
    /// The buffer grows on demand up to the bound rather than
    /// preallocating, so a generous default costs nothing on short runs.
    pub fn with_capacity(capacity: usize) -> Self {
        BinaryRecorder {
            inner: Arc::new(Mutex::new(BinRing {
                blocks: VecDeque::new(),
                head: 0,
                retained: 0,
                capacity: capacity.max(1),
                total: 0,
                dropped: 0,
                sampled_out: 0,
            })),
        }
    }

    /// A boxed per-handler sink recording every event, ready for
    /// [`QueryHandler::with_trace_sink`](tailguard_sched::QueryHandler::with_trace_sink).
    pub fn sink(&self) -> Box<dyn TraceSink> {
        Box::new(BinarySink {
            ring: Arc::clone(&self.inner),
            staged: Vec::new(),
            sampler: None,
            sampled_out: 0,
        })
    }

    /// A boxed per-handler sink with tail-aware sampling in front of the
    /// ring: interesting queries retained whole, healthy ones kept at the
    /// configured per-mille rate.
    pub fn sink_sampled(&self, config: SamplerConfig) -> Box<dyn TraceSink> {
        Box::new(BinarySink {
            ring: Arc::clone(&self.inner),
            staged: Vec::new(),
            sampler: Some(TailSampler::new(config)),
            sampled_out: 0,
        })
    }

    /// The retained events decoded back to [`TraceEvent`]s, oldest first.
    /// Undecodable records (corruption — not expected in-process) are
    /// skipped.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring();
        let mut out = Vec::with_capacity(ring.retained);
        for run in ring.byte_runs() {
            for chunk in run.chunks_exact(EVENT_BYTES) {
                // tg-lint: allow(unwrap-in-lib) -- chunks_exact yields EVENT_BYTES slices
                let rec: &[u8; EVENT_BYTES] = chunk.try_into().unwrap();
                if let Some(ev) = decode(rec) {
                    out.push(ev);
                }
            }
        }
        out
    }

    /// The retained records as one contiguous byte string, oldest first —
    /// the unit the determinism tests compare byte-for-byte across
    /// `--jobs` levels. Decode with [`decode_stream`](crate::codec::decode_stream).
    pub fn raw_bytes(&self) -> Vec<u8> {
        let ring = self.ring();
        let mut out = Vec::with_capacity(ring.retained * EVENT_BYTES);
        for run in ring.byte_runs() {
            out.extend_from_slice(run);
        }
        out
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring().retained
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events recorded into the ring over its lifetime (retained +
    /// evicted; excludes sampled-out events, which never reached it).
    pub fn total_recorded(&self) -> u64 {
        self.ring().total
    }

    /// Events evicted to honor the capacity bound. When non-zero,
    /// summaries built from [`BinaryRecorder::events`] describe a suffix
    /// of the run — callers should surface that instead of calling the
    /// recording complete.
    pub fn dropped(&self) -> u64 {
        self.ring().dropped
    }

    /// Events discarded by tail-aware sampling before reaching the ring.
    /// Zero unless a [`BinaryRecorder::sink_sampled`] sink fed the ring.
    pub fn sampled_out(&self) -> u64 {
        self.ring().sampled_out
    }

    /// The configured capacity bound, in events.
    pub fn capacity(&self) -> usize {
        self.ring().capacity
    }

    /// Discards the retained records and resets all counters.
    pub fn clear(&self) {
        let mut ring = self.ring();
        ring.blocks.clear();
        ring.head = 0;
        ring.retained = 0;
        ring.total = 0;
        ring.dropped = 0;
        ring.sampled_out = 0;
    }
}

/// A per-handler recording sink: encodes into a private staging buffer,
/// flushes to the shared [`BinaryRecorder`] ring in batches and on drop.
///
/// Not a clonable handle — each installed sink owns its stage. A handler
/// is single-threaded, so the stage needs no synchronization; `Send`
/// (required by [`TraceSink`]) holds because ownership moves with the
/// handler across the parallel runner's worker threads.
pub struct BinarySink {
    ring: Arc<Mutex<BinRing>>,
    staged: Vec<u8>,
    sampler: Option<TailSampler>,
    /// Healthy-sampled-away events not yet reported to the ring.
    sampled_out: u64,
}

impl BinarySink {
    fn flush(&mut self) {
        if self.staged.is_empty() && self.sampled_out == 0 {
            return;
        }
        // Hand the whole staged block to the ring by move; the next batch
        // stages into whatever block the ring just evicted (same capacity,
        // already faulted in), or a fresh buffer while the ring is still
        // filling.
        let block = std::mem::take(&mut self.staged);
        let recycled = {
            let mut ring = self
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            ring.sampled_out += self.sampled_out;
            self.sampled_out = 0;
            if block.is_empty() {
                None
            } else {
                ring.push_block(block)
            }
        };
        self.staged = recycled.unwrap_or_else(|| Vec::with_capacity(FLUSH_EVENTS * EVENT_BYTES));
    }

    #[inline]
    fn flush_if_full(&mut self) {
        if self.staged.len() >= FLUSH_EVENTS * EVENT_BYTES {
            self.flush();
        }
    }
}

impl TraceSink for BinarySink {
    // tg-lint: hot(record)
    fn record(&mut self, event: &TraceEvent) {
        match &mut self.sampler {
            Some(sampler) => {
                self.sampled_out += sampler.offer(event, &mut self.staged);
            }
            None => encode_append(event, &mut self.staged),
        }
        self.flush_if_full();
    }
    // tg-lint: endhot

    /// Matches the emitter's stage to [`FLUSH_EVENTS`], so one virtual
    /// call delivers exactly one flush-worth of records. The sampled
    /// configuration keeps per-event delivery: the sampler's per-query
    /// staging wants events as they happen, and its bookkeeping dwarfs
    /// the dispatch cost anyway.
    fn batch_hint(&self) -> usize {
        if self.sampler.is_some() {
            1
        } else {
            FLUSH_EVENTS
        }
    }

    fn record_batch(&mut self, events: &[TraceEvent]) {
        for event in events {
            encode_append(event, &mut self.staged);
        }
        self.flush_if_full();
    }
}

impl Drop for BinarySink {
    fn drop(&mut self) {
        if let Some(mut sampler) = self.sampler.take() {
            self.sampled_out += sampler.finish(&mut self.staged);
        }
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_stream;
    use tailguard_simcore::SimTime;

    fn pause(n: u64) -> TraceEvent {
        TraceEvent::AdmissionPause {
            at: SimTime::from_nanos(n),
        }
    }

    #[test]
    fn events_visible_after_sink_drop() {
        let rec = BinaryRecorder::with_capacity(1024);
        {
            let mut sink = rec.sink();
            for n in 0..5 {
                sink.record(&pause(n));
            }
            // Below the flush threshold: nothing in the ring yet.
            assert_eq!(rec.len(), 0);
        }
        assert_eq!(rec.len(), 5, "drop flushes the stage");
        let kept: Vec<u64> = rec.events().iter().map(|e| e.at().as_nanos()).collect();
        assert_eq!(kept, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn batch_threshold_flushes_mid_stream() {
        let rec = BinaryRecorder::with_capacity(1 << 20);
        let mut sink = rec.sink();
        for n in 0..(FLUSH_EVENTS as u64) {
            sink.record(&pause(n));
        }
        assert_eq!(rec.len(), FLUSH_EVENTS, "threshold reached, flushed");
        sink.record(&pause(9999));
        assert_eq!(rec.len(), FLUSH_EVENTS, "next event stages privately");
        drop(sink);
        assert_eq!(rec.len(), FLUSH_EVENTS + 1);
    }

    #[test]
    fn ring_bounds_memory_and_counts_evictions() {
        let rec = BinaryRecorder::with_capacity(3);
        {
            let mut sink = rec.sink();
            for n in 0..5 {
                sink.record(&pause(n));
            }
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.total_recorded(), 5);
        assert_eq!(rec.dropped(), 2);
        let kept: Vec<u64> = rec.events().iter().map(|e| e.at().as_nanos()).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest events evicted first");
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn raw_bytes_round_trip_matches_events() {
        let rec = BinaryRecorder::with_capacity(64);
        {
            let mut sink = rec.sink();
            for n in 0..7 {
                sink.record(&pause(n));
            }
        }
        let (decoded, corrupt) = decode_stream(&rec.raw_bytes());
        assert_eq!(corrupt, 0);
        assert_eq!(decoded, rec.events());
    }

    #[test]
    fn sampled_sink_reports_discards_to_ring() {
        use tailguard_sched::AttemptKind;
        let rec = BinaryRecorder::with_capacity(1024);
        {
            let mut sink = rec.sink_sampled(SamplerConfig {
                keep_permille: 0,
                slow_after: tailguard_simcore::SimDuration::from_millis(20),
            });
            // One healthy query: admitted, enqueued, completed.
            sink.record(&TraceEvent::QueryAdmitted {
                at: SimTime::from_millis(1),
                query: 0,
                class: 0,
                fanout: 1,
                deadline: SimTime::from_millis(11),
            });
            sink.record(&TraceEvent::TaskEnqueued {
                at: SimTime::from_millis(1),
                task: 0,
                slot: 0,
                query: 0,
                class: 0,
                server: 0,
                kind: AttemptKind::Original,
                deadline: SimTime::from_millis(11),
            });
            sink.record(&TraceEvent::TaskCompleted {
                at: SimTime::from_millis(2),
                task: 0,
                slot: 0,
                query: 0,
                server: 0,
                busy: tailguard_simcore::SimDuration::from_millis(1),
                won: true,
            });
            sink.record(&pause(99));
        }
        assert_eq!(rec.sampled_out(), 3, "the healthy bundle was dropped");
        assert_eq!(rec.len(), 1, "the cluster event passed through");
        assert_eq!(rec.dropped(), 0, "sampling is not capacity eviction");
    }
}

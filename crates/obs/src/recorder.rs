//! The bounded flight recorder.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use tailguard_sched::{TraceEvent, TraceSink};

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    total: u64,
    dropped: u64,
}

/// A bounded, shareable [`TraceSink`]: keeps the most recent `capacity`
/// events in a ring buffer and counts what it had to evict.
///
/// `RingRecorder` is a cheap-to-clone *handle* (`Arc<Mutex<..>>`): the
/// driver keeps one clone and installs another into the handler with
/// [`QueryHandler::with_trace_sink`](tailguard_sched::QueryHandler::with_trace_sink),
/// then reads the recording back after (or during) the run. One
/// uncontended mutex lock per event is the recorder's entire overhead —
/// measured by the `obs_overhead` bench and recorded in `BENCH_obs.json`.
#[derive(Clone)]
pub struct RingRecorder {
    inner: Arc<Mutex<Ring>>,
}

impl std::fmt::Debug for RingRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.ring();
        f.debug_struct("RingRecorder")
            .field("capacity", &ring.capacity)
            .field("len", &ring.events.len())
            .field("total", &ring.total)
            .field("dropped", &ring.dropped)
            .finish()
    }
}

impl RingRecorder {
    /// Locks the ring, recovering from a poisoned mutex: the ring holds
    /// plain counters and copied events, so state left by a thread that
    /// panicked mid-record is still internally consistent and the
    /// recording (a diagnostic aid) should outlive the panic.
    fn ring(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A recorder keeping the most recent `capacity` events (at least 1).
    ///
    /// The buffer grows on demand (amortized doubling) up to the bound
    /// rather than preallocating it, so a generous default capacity costs
    /// nothing on short runs.
    pub fn with_capacity(capacity: usize) -> Self {
        RingRecorder {
            inner: Arc::new(Mutex::new(Ring {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                total: 0,
                dropped: 0,
            })),
        }
    }

    /// A boxed clone of this handle, ready for
    /// [`QueryHandler::with_trace_sink`](tailguard_sched::QueryHandler::with_trace_sink).
    pub fn sink(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring();
        ring.events.iter().copied().collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring().events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events recorded over the recorder's lifetime (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.ring().total
    }

    /// Events evicted to honor the capacity bound. When this is non-zero,
    /// summaries built from [`RingRecorder::events`] describe a suffix of
    /// the run — callers should surface that instead of calling the
    /// recording complete.
    pub fn dropped(&self) -> u64 {
        self.ring().dropped
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.ring().capacity
    }

    /// Discards the retained events and resets the counters.
    pub fn clear(&self) {
        let mut ring = self.ring();
        ring.events.clear();
        ring.total = 0;
        ring.dropped = 0;
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, event: &TraceEvent) {
        let mut ring = self.ring();
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(*event);
        ring.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_simcore::SimTime;

    fn pause(n: u64) -> TraceEvent {
        TraceEvent::AdmissionPause {
            at: SimTime::from_nanos(n),
        }
    }

    #[test]
    fn ring_bounds_memory_and_counts_evictions() {
        let rec = RingRecorder::with_capacity(3);
        let mut sink = rec.sink();
        for n in 0..5 {
            sink.record(&pause(n));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.total_recorded(), 5);
        assert_eq!(rec.dropped(), 2);
        let kept: Vec<u64> = rec.events().iter().map(|e| e.at().as_nanos()).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest events evicted first");
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn handle_clones_share_one_ring() {
        let rec = RingRecorder::with_capacity(8);
        let mut a = rec.sink();
        let mut b = rec.sink();
        a.record(&pause(1));
        b.record(&pause(2));
        assert_eq!(rec.len(), 2);
    }
}

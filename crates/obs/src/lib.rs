//! Observability for the TailGuard reproduction.
//!
//! TailGuard's argument is about *where time goes* — Eq. 6 splits query
//! latency into pre-dequeuing wait vs. unloaded service, and §III.C
//! admission reacts to the deadline-miss ratio — so this crate makes that
//! decomposition observable instead of burying it in end-of-run
//! aggregates. It builds on the scheduling core's flight-recorder
//! contract ([`tailguard_sched::TraceSink`]) and provides:
//!
//! - [`BinaryRecorder`] — the always-on flight recorder: events encode
//!   into a fixed-width binary layout ([`codec`]) in a per-handler
//!   staging buffer and flush to a bounded shared ring in batches,
//!   decoded back to events only at analysis time; optional tail-aware
//!   sampling ([`TailSampler`]) keeps every interesting query whole and
//!   a deterministic fraction of healthy ones;
//! - [`SloMonitor`] — online SLO attainment tracking: windowed per-class
//!   miss ratios and slack percentiles with multi-window burn-rate
//!   alerts, published under the `tailguard_slo_*` names;
//! - [`RingRecorder`] — the legacy bounded, shareable sink retaining the
//!   most recent N lifecycle events as full enums (evictions counted,
//!   memory bounded; one mutex lock per event);
//! - [`Registry`] — counters, gauges, log-bucketed histograms (built on
//!   [`tailguard_dist::LogHistogram`]) and time series under one naming
//!   scheme, with Prometheus text exposition
//!   ([`Registry::prometheus_text`]) and JSON snapshots
//!   ([`Registry::to_json`]);
//! - timeline reconstruction ([`build_timelines`]) — per-query
//!   enqueue→dequeue→completion timelines including hedge/retry attempts,
//!   top-k slowest queries, per-class/per-type dequeue-slack statistics,
//!   and the reconstructed miss-ratio timeline;
//! - exporters ([`events_to_jsonl`], [`events_to_csv`]) for external
//!   tooling;
//! - [`MetricsServer`] — a `std::net` `/metrics` endpoint the tokio
//!   testbed serves scrapes from.
//!
//! Everything here is read-side: the scheduling core emits events and
//! knows nothing about recording, so disabled tracing (the default
//! [`tailguard_sched::NullSink`]) keeps the golden pins bit-identical.

mod binring;
pub mod codec;
mod export;
mod recorder;
mod registry;
mod sampler;
mod server;
mod slo;
mod timeline;

pub use binring::{BinaryRecorder, BinarySink, FLUSH_EVENTS};
pub use export::{event_to_csv_row, event_to_json, events_to_csv, events_to_jsonl, CSV_HEADER};
pub use recorder::RingRecorder;
pub use registry::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Registry, RegistrySnapshot, SeriesPoint,
    SeriesSnapshot,
};
pub use sampler::{SamplerConfig, TailSampler};
pub use server::{shared_registry, MetricsServer, SharedRegistry};
pub use slo::{SloAlert, SloClassSnapshot, SloConfig, SloMonitor, SloSnapshot};
pub use timeline::{
    build_timelines, miss_ratio_timeline, server_transitions, slack_by_class, slack_by_type,
    slowest_queries, AttemptRecord, MissBin, QueryTimeline, ServerTransition, SlackStats,
};

//! Online SLO attainment monitoring with multi-window burn-rate alerts.
//!
//! TailGuard's contract is a *tail* SLO: at least `target` of dequeues
//! make their queuing deadline. A run-level attainment number hides when
//! the misses happened; [`SloMonitor`] instead buckets dequeues into
//! fixed time windows per class and tracks the miss ratio over two
//! horizons — the just-closed bucket (fast) and the last
//! [`SloConfig::slow_buckets`] buckets (slow) — as *burn rates*:
//! miss-ratio divided by the error budget `1 − target`, so burn `1.0`
//! means exactly consuming budget and `10.0` means burning it ten times
//! too fast. An alert fires only when **both** windows exceed
//! [`SloConfig::burn_threshold`]: the fast window makes alerts prompt,
//! the slow window keeps one noisy bucket from paging (the classic
//! multi-window multi-burn-rate construction).
//!
//! The monitor consumes decoded [`TraceEvent::TaskDequeued`] events off
//! the hot path (post-run or on scrape), keeps per-bucket coarse slack
//! histograms for windowed percentile tracking, and publishes its state
//! under the `tailguard_slo_*` names via [`SloMonitor::publish`].

use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use tailguard_dist::{Cdf, LogHistogram};
use tailguard_sched::TraceEvent;
use tailguard_simcore::SimDuration;

use crate::Registry;

/// The SLO being monitored and the windowing of its burn rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Attainment target in (0, 1): the fraction of dequeues that must
    /// make their deadline. The error budget is `1 − target`.
    pub target: f64,
    /// Width of one time bucket (the fast window).
    pub bucket: SimDuration,
    /// Buckets in the slow window (≥ 1); also how many buckets are
    /// retained for windowed percentile queries.
    pub slow_buckets: usize,
    /// Burn rate both windows must reach to raise an alert. `1.0` alerts
    /// on any over-budget burn; SRE practice starts around `2`–`14`
    /// depending on window length.
    pub burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target: 0.99,
            bucket: SimDuration::from_millis(100),
            slow_buckets: 10,
            burn_threshold: 2.0,
        }
    }
}

/// Coarse per-bucket slack histogram: 1 µs to 10 s in ~30% steps — wide
/// enough for quantile tracking, cheap enough to keep one per bucket.
fn coarse_hist() -> LogHistogram {
    LogHistogram::with_range(1e-3, 1e4, 1.3)
}

/// One time bucket of one class's dequeue outcomes.
struct Bucket {
    /// The bucket's index (`at / bucket_width`).
    index: u64,
    dequeues: u64,
    misses: u64,
    /// Positive dequeue slack, ms.
    slack: LogHistogram,
}

/// One class's windowed state plus run-level totals.
struct ClassWindow {
    /// The most recent `slow_buckets + 1` buckets, oldest first; the last
    /// entry is the still-open current bucket.
    buckets: VecDeque<Bucket>,
    total_dequeues: u64,
    total_misses: u64,
    /// Burn rates as of the last closed bucket.
    fast_burn: f64,
    slow_burn: f64,
    /// Whether the alert condition held at the last closed bucket
    /// (alerts fire on the transition into this state).
    alerting: bool,
    alerts: u64,
}

impl ClassWindow {
    fn new(index: u64) -> Self {
        let mut buckets = VecDeque::new();
        buckets.push_back(Bucket {
            index,
            dequeues: 0,
            misses: 0,
            slack: coarse_hist(),
        });
        ClassWindow {
            buckets,
            total_dequeues: 0,
            total_misses: 0,
            fast_burn: 0.0,
            slow_burn: 0.0,
            alerting: false,
            alerts: 0,
        }
    }
}

/// One burn-rate alert: both windows of `class` exceeded the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SloAlert {
    /// End of the bucket whose close raised the alert, nanoseconds.
    pub at_ns: u64,
    /// The burning class.
    pub class: u8,
    /// Fast-window burn rate at the alert.
    pub fast_burn: f64,
    /// Slow-window burn rate at the alert.
    pub slow_burn: f64,
}

/// Per-class summary of [`SloMonitor`] state, serialized into
/// `tailguard sim --json` and rendered by `tailguard slo`.
#[derive(Debug, Clone, Serialize)]
pub struct SloClassSnapshot {
    /// The service class.
    pub class: u8,
    /// Run-level dequeues observed.
    pub dequeues: u64,
    /// Run-level deadline misses.
    pub misses: u64,
    /// Run-level attainment `1 − misses/dequeues` (1.0 when idle).
    pub attainment: f64,
    /// Whether run-level attainment meets the target.
    pub met: bool,
    /// Fast-window burn rate as of the last closed bucket.
    pub fast_burn: f64,
    /// Slow-window burn rate as of the last closed bucket.
    pub slow_burn: f64,
    /// Alerts raised for this class.
    pub alerts: u64,
    /// Windowed positive-slack p50, ms (0 when idle).
    pub slack_p50_ms: f64,
    /// Windowed positive-slack p99, ms (0 when idle).
    pub slack_p99_ms: f64,
}

/// The monitor's full serializable state.
#[derive(Debug, Clone, Serialize)]
pub struct SloSnapshot {
    /// Attainment target in (0, 1).
    pub target: f64,
    /// Bucket width, nanoseconds.
    pub bucket_ns: u64,
    /// Slow-window length, buckets.
    pub slow_buckets: usize,
    /// Alerting burn threshold.
    pub burn_threshold: f64,
    /// Per-class summaries, ascending class order.
    pub classes: Vec<SloClassSnapshot>,
    /// Every alert raised, in time order.
    pub alerts: Vec<SloAlert>,
}

/// The online SLO attainment monitor. Feed it dequeue events via
/// [`SloMonitor::observe`]/[`SloMonitor::ingest`], seal with
/// [`SloMonitor::finish`], then read snapshots or publish to a registry.
pub struct SloMonitor {
    config: SloConfig,
    bucket_ns: u64,
    classes: BTreeMap<u8, ClassWindow>,
    alerts: Vec<SloAlert>,
}

impl SloMonitor {
    /// A monitor for the given SLO. Degenerate configs are clamped:
    /// zero-width buckets become 1 ns, a zero-length slow window one
    /// bucket, and the error budget never falls below 1e-9.
    pub fn new(config: SloConfig) -> Self {
        SloMonitor {
            bucket_ns: config.bucket.as_nanos().max(1),
            config,
            classes: BTreeMap::new(),
            alerts: Vec::new(),
        }
    }

    fn error_budget(&self) -> f64 {
        (1.0 - self.config.target).max(1e-9)
    }

    fn slow_buckets(&self) -> usize {
        self.config.slow_buckets.max(1)
    }

    /// Closes the newest bucket of `class`: computes both burn rates and
    /// evaluates the alert transition.
    fn close_bucket(
        config: &SloConfig,
        budget: f64,
        slow_len: usize,
        bucket_ns: u64,
        alerts: &mut Vec<SloAlert>,
        class: u8,
        w: &mut ClassWindow,
    ) {
        // tg-lint: allow(unwrap-in-lib) -- a ClassWindow is constructed with one bucket and never drained below one
        let closed = w.buckets.back().expect("window always has a bucket");
        let fast_ratio = if closed.dequeues == 0 {
            0.0
        } else {
            closed.misses as f64 / closed.dequeues as f64
        };
        let tail = w.buckets.iter().rev().take(slow_len);
        let (mut deq, mut miss) = (0u64, 0u64);
        for b in tail {
            deq += b.dequeues;
            miss += b.misses;
        }
        let slow_ratio = if deq == 0 {
            0.0
        } else {
            miss as f64 / deq as f64
        };
        w.fast_burn = fast_ratio / budget;
        w.slow_burn = slow_ratio / budget;
        let burning = w.fast_burn >= config.burn_threshold && w.slow_burn >= config.burn_threshold;
        if burning && !w.alerting {
            w.alerts += 1;
            alerts.push(SloAlert {
                at_ns: (closed.index + 1).saturating_mul(bucket_ns),
                class,
                fast_burn: w.fast_burn,
                slow_burn: w.slow_burn,
            });
        }
        w.alerting = burning;
    }

    /// Rolls `class`'s window forward so the newest bucket covers
    /// `index`, closing (and alert-evaluating) every bucket left behind.
    fn roll_to(&mut self, class: u8, index: u64) {
        let budget = self.error_budget();
        let slow_len = self.slow_buckets();
        let bucket_ns = self.bucket_ns;
        let config = self.config;
        let w = self
            .classes
            .get_mut(&class)
            // tg-lint: allow(unwrap-in-lib) -- observe() inserts the entry before calling roll_to
            .expect("roll_to called after entry creation");
        // tg-lint: allow(unwrap-in-lib) -- a ClassWindow is constructed with one bucket and never drained below one
        while w.buckets.back().expect("non-empty").index < index {
            Self::close_bucket(
                &config,
                budget,
                slow_len,
                bucket_ns,
                &mut self.alerts,
                class,
                w,
            );
            // tg-lint: allow(unwrap-in-lib) -- the loop pushes a bucket each iteration; the window is never empty
            let next = w.buckets.back().expect("non-empty").index + 1;
            // A gap longer than the slow window leaves nothing but empty
            // buckets in scope: jump straight to the target.
            let next = if index.saturating_sub(next) >= slow_len as u64 {
                index
            } else {
                next
            };
            w.buckets.push_back(Bucket {
                index: next,
                dequeues: 0,
                misses: 0,
                slack: coarse_hist(),
            });
            if w.buckets.len() > slow_len + 1 {
                w.buckets.pop_front();
            }
        }
    }

    /// Feeds one event. Only [`TraceEvent::TaskDequeued`] moves the
    /// monitor; everything else is ignored, so the full decoded stream
    /// can be replayed unfiltered. Events must arrive in time order per
    /// class (emission order satisfies this).
    pub fn observe(&mut self, ev: &TraceEvent) {
        let TraceEvent::TaskDequeued {
            at,
            class,
            slack_ns,
            ..
        } = *ev
        else {
            return;
        };
        // tg-lint: allow(panic-surface) -- `bucket_ns` is `.max(1)`-clamped at construction
        let index = at.as_nanos() / self.bucket_ns;
        self.classes
            .entry(class)
            .or_insert_with(|| ClassWindow::new(index));
        self.roll_to(class, index);
        // tg-lint: allow(unwrap-in-lib) -- the entry was inserted just above; a window always has a bucket
        let w = self.classes.get_mut(&class).expect("just inserted");
        // tg-lint: allow(unwrap-in-lib) -- a ClassWindow is constructed with one bucket and never drained below one
        let b = w.buckets.back_mut().expect("non-empty");
        b.dequeues += 1;
        w.total_dequeues += 1;
        if slack_ns < 0 {
            b.misses += 1;
            w.total_misses += 1;
        } else {
            b.slack.record(slack_ns as f64 / 1e6);
        }
    }

    /// Replays a decoded event stream through [`SloMonitor::observe`].
    pub fn ingest(&mut self, events: &[TraceEvent]) {
        for ev in events {
            self.observe(ev);
        }
    }

    /// Seals the stream: closes every class's still-open bucket so the
    /// final partial bucket contributes to burn rates and alerts.
    pub fn finish(&mut self) {
        let budget = self.error_budget();
        let slow_len = self.slow_buckets();
        let bucket_ns = self.bucket_ns;
        let config = self.config;
        for (&class, w) in &mut self.classes {
            Self::close_bucket(
                &config,
                budget,
                slow_len,
                bucket_ns,
                &mut self.alerts,
                class,
                w,
            );
        }
        self.alerts.sort_by_key(|a| (a.at_ns, a.class));
    }

    /// Every alert raised so far, in time order after [`SloMonitor::finish`].
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Run-level attainment for `class` (1.0 when idle or unseen).
    pub fn attainment(&self, class: u8) -> f64 {
        match self.classes.get(&class) {
            Some(w) if w.total_dequeues > 0 => {
                1.0 - w.total_misses as f64 / w.total_dequeues as f64
            }
            _ => 1.0,
        }
    }

    /// The full serializable state, classes in ascending order.
    pub fn snapshot(&self) -> SloSnapshot {
        let slow_len = self.slow_buckets();
        let classes = self
            .classes
            .iter()
            .map(|(&class, w)| {
                let mut slack = coarse_hist();
                for b in w.buckets.iter().rev().take(slow_len) {
                    slack.merge(&b.slack);
                }
                let snap = slack.snapshot();
                let (p50, p99) = if snap.is_empty() {
                    (0.0, 0.0)
                } else {
                    (snap.quantile(0.50), snap.quantile(0.99))
                };
                let attainment = self.attainment(class);
                SloClassSnapshot {
                    class,
                    dequeues: w.total_dequeues,
                    misses: w.total_misses,
                    attainment,
                    met: attainment >= self.config.target,
                    fast_burn: w.fast_burn,
                    slow_burn: w.slow_burn,
                    alerts: w.alerts,
                    slack_p50_ms: p50,
                    slack_p99_ms: p99,
                }
            })
            .collect();
        SloSnapshot {
            target: self.config.target,
            bucket_ns: self.bucket_ns,
            slow_buckets: slow_len,
            burn_threshold: self.config.burn_threshold,
            classes,
            alerts: self.alerts.clone(),
        }
    }

    /// Publishes the monitor's state under the `tailguard_slo_*` names:
    /// the target gauge, and per class the dequeue/miss/alert counters,
    /// attainment and burn-rate gauges, and windowed slack percentile
    /// gauges. Call after [`SloMonitor::finish`].
    pub fn publish(&self, registry: &mut Registry) {
        if self.classes.is_empty() {
            return;
        }
        registry.gauge_set(
            "tailguard_slo_target",
            "Configured SLO attainment target",
            self.config.target,
        );
        for snap in self.snapshot().classes {
            let l = format!("{{class=\"{}\"}}", snap.class);
            registry.counter_set(
                &format!("tailguard_slo_dequeues_total{l}"),
                "Dequeues observed by the SLO monitor",
                snap.dequeues,
            );
            registry.counter_set(
                &format!("tailguard_slo_misses_total{l}"),
                "Deadline misses observed by the SLO monitor",
                snap.misses,
            );
            registry.counter_set(
                &format!("tailguard_slo_alerts_total{l}"),
                "Multi-window burn-rate alerts raised",
                snap.alerts,
            );
            registry.gauge_set(
                &format!("tailguard_slo_attainment{l}"),
                "Run-level SLO attainment (1 - miss ratio)",
                snap.attainment,
            );
            registry.gauge_set(
                &format!("tailguard_slo_burn_fast{l}"),
                "Fast-window burn rate (miss ratio / error budget)",
                snap.fast_burn,
            );
            registry.gauge_set(
                &format!("tailguard_slo_burn_slow{l}"),
                "Slow-window burn rate (miss ratio / error budget)",
                snap.slow_burn,
            );
            registry.gauge_set(
                &format!("tailguard_slo_slack_p50_ms{l}"),
                "Windowed median positive dequeue slack",
                snap.slack_p50_ms,
            );
            registry.gauge_set(
                &format!("tailguard_slo_slack_p99_ms{l}"),
                "Windowed p99 positive dequeue slack",
                snap.slack_p99_ms,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_sched::{AttemptKind, LeaseToken};
    use tailguard_simcore::SimTime;

    fn config() -> SloConfig {
        SloConfig {
            target: 0.9, // 10% error budget
            bucket: SimDuration::from_millis(10),
            slow_buckets: 4,
            burn_threshold: 2.0,
        }
    }

    fn dequeue(at_ms: u64, class: u8, slack_ns: i64) -> TraceEvent {
        TraceEvent::TaskDequeued {
            at: SimTime::from_millis(at_ms),
            task: 0,
            slot: 0,
            query: 0,
            class,
            kind: AttemptKind::Original,
            server: 0,
            token: LeaseToken(1),
            waited: SimDuration::from_millis(1),
            slack_ns,
        }
    }

    #[test]
    fn attainment_counts_misses_per_class() {
        let mut mon = SloMonitor::new(config());
        for i in 0..10 {
            mon.observe(&dequeue(i, 0, if i < 2 { -1 } else { 1_000_000 }));
            mon.observe(&dequeue(i, 1, 1_000_000));
        }
        mon.finish();
        assert!((mon.attainment(0) - 0.8).abs() < 1e-12);
        assert!((mon.attainment(1) - 1.0).abs() < 1e-12);
        assert!((mon.attainment(7) - 1.0).abs() < 1e-12, "unseen class idle");
        let snap = mon.snapshot();
        assert_eq!(snap.classes.len(), 2);
        assert!(!snap.classes[0].met, "0.8 < 0.9 target");
        assert!(snap.classes[1].met);
    }

    #[test]
    fn sustained_burn_raises_one_alert_per_episode() {
        let mut mon = SloMonitor::new(config());
        // Buckets 0..6 (10 ms each): all dequeues miss — burn 10x.
        for ms in 0..60 {
            mon.observe(&dequeue(ms, 0, -1));
        }
        // Recovery: buckets 6..12 all healthy.
        for ms in 60..120 {
            mon.observe(&dequeue(ms, 0, 1_000_000));
        }
        // Relapse: buckets 12..18 all miss again.
        for ms in 120..180 {
            mon.observe(&dequeue(ms, 0, -1));
        }
        mon.finish();
        assert_eq!(
            mon.alerts().len(),
            2,
            "one alert per burning episode, not per bucket: {:?}",
            mon.alerts()
        );
        assert_eq!(mon.alerts()[0].class, 0);
        assert!(mon.alerts()[0].fast_burn >= 2.0);
        assert!(mon.alerts()[0].slow_burn >= 2.0);
        assert!(
            mon.alerts()[1].at_ns > mon.alerts()[0].at_ns,
            "second episode alerts later"
        );
    }

    #[test]
    fn single_noisy_bucket_does_not_alert() {
        let mut mon = SloMonitor::new(config());
        // Long healthy history, then one fully-missing bucket: fast burn
        // spikes but the slow window stays under threshold.
        for ms in 0..40 {
            for _ in 0..10 {
                mon.observe(&dequeue(ms, 0, 1_000_000));
            }
        }
        for ms in 40..50 {
            mon.observe(&dequeue(ms, 0, -1));
        }
        for ms in 50..90 {
            for _ in 0..10 {
                mon.observe(&dequeue(ms, 0, 1_000_000));
            }
        }
        mon.finish();
        assert!(
            mon.alerts().is_empty(),
            "slow window must veto a single bad bucket: {:?}",
            mon.alerts()
        );
    }

    #[test]
    fn publish_exposes_slo_names() {
        let mut mon = SloMonitor::new(config());
        for i in 0..10 {
            mon.observe(&dequeue(i, 2, if i == 0 { -1 } else { 2_000_000 }));
        }
        mon.finish();
        let mut reg = Registry::new();
        mon.publish(&mut reg);
        assert_eq!(
            reg.counter("tailguard_slo_dequeues_total{class=\"2\"}"),
            Some(10)
        );
        assert_eq!(
            reg.counter("tailguard_slo_misses_total{class=\"2\"}"),
            Some(1)
        );
        assert!((reg.gauge("tailguard_slo_target").unwrap() - 0.9).abs() < 1e-12);
        let att = reg.gauge("tailguard_slo_attainment{class=\"2\"}").unwrap();
        assert!((att - 0.9).abs() < 1e-12);
        assert!(
            reg.gauge("tailguard_slo_slack_p50_ms{class=\"2\"}")
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn empty_monitor_publishes_nothing() {
        let mut mon = SloMonitor::new(config());
        mon.finish();
        let mut reg = Registry::new();
        mon.publish(&mut reg);
        assert_eq!(reg.gauge("tailguard_slo_target"), None);
        assert!(mon.snapshot().classes.is_empty());
    }

    #[test]
    fn time_gaps_jump_without_iterating_every_bucket() {
        let mut mon = SloMonitor::new(config());
        mon.observe(&dequeue(0, 0, -1));
        // A gap of ~10^6 buckets must not hang.
        mon.observe(&dequeue(10_000_000, 0, 1_000_000));
        mon.finish();
        assert_eq!(mon.snapshot().classes[0].dequeues, 2);
    }
}

//! Per-query timeline reconstruction from a trace-event stream.
//!
//! The flight recorder stores flat lifecycle events; this module folds
//! them back into one [`QueryTimeline`] per query — every attempt's
//! enqueue → dequeue → completion (or cancellation/loss), hedges and
//! retries included — which is what the `tailguard trace` CLI renders and
//! what the acceptance test checks for completeness.

use std::collections::BTreeMap;
use tailguard_dist::LogHistogram;
use tailguard_sched::{AttemptKind, QueryId, TaskId, TraceEvent};
use tailguard_simcore::{SimDuration, SimTime};

/// The reconstructed life of one task attempt.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// The attempt's task id.
    pub task: TaskId,
    /// The logical slot (the original attempt's task id) this attempt
    /// serves — hedges/retries of one slot share it, so the attempts of a
    /// query are distinguishable *and* groupable.
    pub slot: TaskId,
    /// Its target server.
    pub server: u32,
    /// Original, hedge, or retry.
    pub kind: AttemptKind,
    /// How many times an expired lease bounced this attempt back into its
    /// queue (0 for the common case).
    pub reclaims: u64,
    /// When it entered its server's queue.
    pub enqueued_at: SimTime,
    /// Its queuing deadline `t_D`.
    pub deadline: SimTime,
    /// When it entered service, if it ever did.
    pub dequeued_at: Option<SimTime>,
    /// Queue wait (enqueue → dequeue).
    pub waited: Option<SimDuration>,
    /// Signed deadline slack at dequeue (ns).
    pub slack_ns: Option<i64>,
    /// Whether the dequeue was a detected deadline miss.
    pub missed_deadline: bool,
    /// When it finished service.
    pub completed_at: Option<SimTime>,
    /// Service time spent on it.
    pub busy: Option<SimDuration>,
    /// Whether its completion resolved the slot (false for hedge losers).
    pub won: bool,
    /// When it was discarded at dequeue (slot already resolved).
    pub cancelled_at: Option<SimTime>,
    /// When it was lost to a fault.
    pub lost_at: Option<SimTime>,
}

impl AttemptRecord {
    /// Whether the attempt reached a terminal state (completed, cancelled,
    /// or lost) — i.e. its timeline is closed, not truncated.
    pub fn is_terminal(&self) -> bool {
        self.completed_at.is_some() || self.cancelled_at.is_some() || self.lost_at.is_some()
    }
}

/// The reconstructed life of one query.
#[derive(Debug, Clone)]
pub struct QueryTimeline {
    /// The query id.
    pub query: QueryId,
    /// Its service class.
    pub class: u8,
    /// Its fanout `k_f`.
    pub fanout: u32,
    /// Admission time `t_0`.
    pub admitted_at: SimTime,
    /// The stamped queuing deadline `t_D`.
    pub deadline: SimTime,
    /// Every attempt issued for it, in task-id order (originals first,
    /// then hedges/retries as they were issued).
    pub attempts: Vec<AttemptRecord>,
    /// Hedges/retries this query was denied because its class's
    /// token bucket was empty (`TraceEvent::HedgeBudgetExhausted`).
    pub budget_denials: u64,
}

impl QueryTimeline {
    /// When the query finished: the latest winning completion (partial
    /// quorums complete at their last counted win). `None` when no attempt
    /// won — the query failed or the recording was truncated.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.attempts
            .iter()
            .filter(|a| a.won)
            .filter_map(|a| a.completed_at)
            .max()
    }

    /// Arrival-to-completion latency, when the query completed.
    pub fn latency(&self) -> Option<SimDuration> {
        self.completed_at()
            .map(|done| done.saturating_since(self.admitted_at))
    }

    /// Whether every attempt reached a terminal state — a complete
    /// timeline, as opposed to one truncated by the ring bound.
    pub fn is_complete(&self) -> bool {
        !self.attempts.is_empty() && self.attempts.iter().all(AttemptRecord::is_terminal)
    }

    /// Hedge/retry copies issued for this query.
    pub fn duplicate_attempts(&self) -> usize {
        self.attempts
            .iter()
            .filter(|a| a.kind != AttemptKind::Original)
            .count()
    }
}

/// Folds an event stream into per-query timelines, keyed by query id.
///
/// Events for queries whose `QueryAdmitted` was evicted from the ring are
/// dropped (a timeline without its head cannot be anchored); the caller
/// can compare against [`RingRecorder::dropped`](crate::RingRecorder) to
/// know whether that happened.
pub fn build_timelines(events: &[TraceEvent]) -> BTreeMap<QueryId, QueryTimeline> {
    let mut timelines: BTreeMap<QueryId, QueryTimeline> = BTreeMap::new();
    let mut task_owner: BTreeMap<TaskId, QueryId> = BTreeMap::new();
    for ev in events {
        match *ev {
            TraceEvent::QueryAdmitted {
                at,
                query,
                class,
                fanout,
                deadline,
            } => {
                timelines.insert(
                    query,
                    QueryTimeline {
                        query,
                        class,
                        fanout,
                        admitted_at: at,
                        deadline,
                        attempts: Vec::with_capacity(fanout as usize),
                        budget_denials: 0,
                    },
                );
            }
            TraceEvent::TaskEnqueued {
                at,
                task,
                slot,
                query,
                class: _,
                server,
                kind,
                deadline,
            } => {
                if let Some(tl) = timelines.get_mut(&query) {
                    // A second enqueue of a known task is a lease reclaim
                    // bouncing the attempt back into its queue: reopen the
                    // existing record instead of inventing a new attempt.
                    if let Some(a) = tl.attempts.iter_mut().find(|a| a.task == task) {
                        a.enqueued_at = at;
                        a.dequeued_at = None;
                        a.waited = None;
                        a.slack_ns = None;
                        continue;
                    }
                    task_owner.insert(task, query);
                    tl.attempts.push(AttemptRecord {
                        task,
                        slot,
                        server,
                        kind,
                        reclaims: 0,
                        enqueued_at: at,
                        deadline,
                        dequeued_at: None,
                        waited: None,
                        slack_ns: None,
                        missed_deadline: false,
                        completed_at: None,
                        busy: None,
                        won: false,
                        cancelled_at: None,
                        lost_at: None,
                    });
                }
            }
            TraceEvent::TaskDequeued {
                at,
                task,
                query,
                waited,
                slack_ns,
                ..
            } => {
                if let Some(a) = attempt_mut(&mut timelines, &task_owner, query, task) {
                    a.dequeued_at = Some(at);
                    a.waited = Some(waited);
                    a.slack_ns = Some(slack_ns);
                }
            }
            TraceEvent::DeadlineMissed { task, query, .. } => {
                if let Some(a) = attempt_mut(&mut timelines, &task_owner, query, task) {
                    a.missed_deadline = true;
                }
            }
            TraceEvent::TaskCompleted {
                at,
                task,
                query,
                busy,
                won,
                ..
            } => {
                if let Some(a) = attempt_mut(&mut timelines, &task_owner, query, task) {
                    a.completed_at = Some(at);
                    a.busy = Some(busy);
                    a.won = won;
                }
            }
            TraceEvent::TaskCancelled {
                at, task, query, ..
            } => {
                if let Some(a) = attempt_mut(&mut timelines, &task_owner, query, task) {
                    a.cancelled_at = Some(at);
                }
            }
            TraceEvent::TaskLost {
                at, task, query, ..
            } => {
                if let Some(a) = attempt_mut(&mut timelines, &task_owner, query, task) {
                    a.lost_at = Some(at);
                }
            }
            TraceEvent::LeaseReclaimed { task, query, .. } => {
                if let Some(a) = attempt_mut(&mut timelines, &task_owner, query, task) {
                    a.reclaims += 1;
                }
            }
            TraceEvent::HedgeBudgetExhausted { query, .. } => {
                if let Some(tl) = timelines.get_mut(&query) {
                    tl.budget_denials += 1;
                }
            }
            TraceEvent::HedgeIssued { .. }
            | TraceEvent::QueryRejected { .. }
            | TraceEvent::AdmissionPause { .. }
            | TraceEvent::AdmissionResume { .. }
            | TraceEvent::DuplicateSuppressed { .. }
            | TraceEvent::StaleCommitRejected { .. }
            | TraceEvent::ServerEjected { .. }
            | TraceEvent::ServerReadmitted { .. } => {}
        }
    }
    timelines
}

/// One health-tracker ejection-state flip pulled from an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerTransition {
    /// When the flip happened.
    pub at: SimTime,
    /// The server whose state flipped.
    pub server: u32,
    /// `true` for an ejection, `false` for a readmission.
    pub ejected: bool,
}

/// Extracts the server ejection/readmission flips from an event stream, in
/// emission order — the cluster-level counterpart to the per-query
/// timelines (`tailguard trace` renders them as a cluster-events section).
pub fn server_transitions(events: &[TraceEvent]) -> Vec<ServerTransition> {
    events
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::ServerEjected { at, server } => Some(ServerTransition {
                at,
                server,
                ejected: true,
            }),
            TraceEvent::ServerReadmitted { at, server } => Some(ServerTransition {
                at,
                server,
                ejected: false,
            }),
            _ => None,
        })
        .collect()
}

fn attempt_mut<'a>(
    timelines: &'a mut BTreeMap<QueryId, QueryTimeline>,
    task_owner: &BTreeMap<TaskId, QueryId>,
    query: QueryId,
    task: TaskId,
) -> Option<&'a mut AttemptRecord> {
    debug_assert_eq!(task_owner.get(&task), Some(&query));
    timelines
        .get_mut(&query)?
        .attempts
        .iter_mut()
        .find(|a| a.task == task)
}

/// The `k` slowest completed queries, highest latency first (ties broken
/// by query id for determinism).
pub fn slowest_queries(
    timelines: &BTreeMap<QueryId, QueryTimeline>,
    k: usize,
) -> Vec<&QueryTimeline> {
    let mut done: Vec<(&QueryTimeline, SimDuration)> = timelines
        .values()
        .filter_map(|tl| tl.latency().map(|l| (tl, l)))
        .collect();
    done.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.query.cmp(&b.0.query)));
    done.into_iter().take(k).map(|(tl, _)| tl).collect()
}

/// Dequeue-slack accounting for one group of tasks.
#[derive(Debug, Default)]
pub struct SlackStats {
    /// Dequeues observed.
    pub dequeues: u64,
    /// Of which deadline misses (negative slack).
    pub misses: u64,
    /// Histogram of non-negative slack (ms).
    pub slack: LogHistogram,
    /// Histogram of |slack| for late dequeues (ms).
    pub lateness: LogHistogram,
}

impl SlackStats {
    fn record(&mut self, slack_ns: i64) {
        self.dequeues += 1;
        let ms = slack_ns.unsigned_abs() as f64 / 1e6;
        if slack_ns < 0 {
            self.misses += 1;
            self.lateness.record(ms);
        } else {
            self.slack.record(ms);
        }
    }

    /// Miss fraction among these dequeues.
    pub fn miss_ratio(&self) -> f64 {
        if self.dequeues == 0 {
            0.0
        } else {
            self.misses as f64 / self.dequeues as f64
        }
    }
}

/// Dequeue slack grouped by service class, straight from the event stream.
pub fn slack_by_class(events: &[TraceEvent]) -> BTreeMap<u8, SlackStats> {
    let mut by_class: BTreeMap<u8, SlackStats> = BTreeMap::new();
    for ev in events {
        if let TraceEvent::TaskDequeued {
            class, slack_ns, ..
        } = *ev
        {
            by_class.entry(class).or_default().record(slack_ns);
        }
    }
    by_class
}

/// Dequeue slack grouped by `(class, fanout)` query type, via timelines
/// (the dequeue event itself does not carry fanout).
pub fn slack_by_type(
    timelines: &BTreeMap<QueryId, QueryTimeline>,
) -> BTreeMap<(u8, u32), SlackStats> {
    let mut by_type: BTreeMap<(u8, u32), SlackStats> = BTreeMap::new();
    for tl in timelines.values() {
        let stats = by_type.entry((tl.class, tl.fanout)).or_default();
        for a in &tl.attempts {
            if let Some(slack_ns) = a.slack_ns {
                stats.record(slack_ns);
            }
        }
    }
    by_type
}

/// One bin of the miss-ratio timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissBin {
    /// Bin start time.
    pub start: SimTime,
    /// Task dequeues in the bin.
    pub dequeues: u64,
    /// Of which deadline misses.
    pub misses: u64,
}

impl MissBin {
    /// Miss fraction within the bin.
    pub fn ratio(&self) -> f64 {
        if self.dequeues == 0 {
            0.0
        } else {
            self.misses as f64 / self.dequeues as f64
        }
    }
}

/// Buckets dequeues into fixed `bin`-wide windows — the miss-ratio
/// timeline §III.C admission reacts to, reconstructed after the fact.
/// Empty leading/intermediate bins are retained so the timeline is evenly
/// spaced.
///
/// # Panics
///
/// Panics when `bin` is zero.
/// `bin` is a virtual-time duration (nanosecond domain).
pub fn miss_ratio_timeline(events: &[TraceEvent], bin: SimDuration) -> Vec<MissBin> {
    assert!(!bin.is_zero(), "miss-ratio bin must be positive");
    let mut bins: Vec<MissBin> = Vec::new();
    for ev in events {
        if let TraceEvent::TaskDequeued { at, slack_ns, .. } = *ev {
            // tg-lint: allow(panic-surface) -- `bin` is asserted non-zero above and the `while` loop extends `bins` past `idx` before indexing
            let idx = (at.as_nanos() / bin.as_nanos()) as usize;
            while bins.len() <= idx {
                let start = SimTime::from_nanos(bins.len() as u64 * bin.as_nanos());
                bins.push(MissBin {
                    start,
                    dequeues: 0,
                    misses: 0,
                });
            }
            // tg-lint: allow(panic-surface) -- `bin` is asserted non-zero above and the `while` loop extends `bins` past `idx` before indexing
            bins[idx].dequeues += 1;
            if slack_ns < 0 {
                // tg-lint: allow(panic-surface) -- `bin` is asserted non-zero above and the `while` loop extends `bins` past `idx` before indexing
                bins[idx].misses += 1;
            }
        }
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let ms = SimDuration::from_millis;
        let t = SimTime::from_millis;
        vec![
            TraceEvent::QueryAdmitted {
                at: t(0),
                query: 0,
                class: 0,
                fanout: 1,
                deadline: t(5),
            },
            TraceEvent::TaskEnqueued {
                at: t(0),
                task: 0,
                slot: 0,
                query: 0,
                class: 0,
                server: 0,
                kind: AttemptKind::Original,
                deadline: t(5),
            },
            TraceEvent::TaskDequeued {
                at: t(1),
                task: 0,
                slot: 0,
                query: 0,
                class: 0,
                kind: AttemptKind::Original,
                server: 0,
                token: tailguard_sched::LeaseToken(1),
                waited: ms(1),
                slack_ns: 4_000_000,
            },
            TraceEvent::HedgeIssued {
                at: t(2),
                task: 1,
                slot: 0,
                query: 0,
                server: 1,
            },
            TraceEvent::TaskEnqueued {
                at: t(2),
                task: 1,
                slot: 0,
                query: 0,
                class: 0,
                server: 1,
                kind: AttemptKind::Hedge,
                deadline: t(5),
            },
            TraceEvent::TaskCompleted {
                at: t(3),
                task: 0,
                slot: 0,
                query: 0,
                server: 0,
                busy: ms(2),
                won: true,
            },
            TraceEvent::TaskCancelled {
                at: t(3),
                task: 1,
                slot: 0,
                query: 0,
                server: 1,
            },
        ]
    }

    #[test]
    fn timelines_are_complete_and_latency_matches() {
        let timelines = build_timelines(&sample_events());
        let tl = &timelines[&0];
        assert_eq!(tl.attempts.len(), 2, "original + hedge");
        assert!(tl.is_complete());
        assert_eq!(tl.latency(), Some(SimDuration::from_millis(3)));
        assert_eq!(tl.duplicate_attempts(), 1);
        let hedge = &tl.attempts[1];
        assert_eq!(hedge.kind, AttemptKind::Hedge);
        assert!(hedge.cancelled_at.is_some());
        assert!(!hedge.won);
    }

    #[test]
    fn reclaim_reopens_the_attempt_instead_of_duplicating_it() {
        let ms = SimDuration::from_millis;
        let t = SimTime::from_millis;
        let mut events = sample_events();
        // The winning completion at t=3 is replaced by a crash story: the
        // lease expires, the attempt is re-enqueued, re-dequeued, and only
        // then completes.
        events.truncate(5);
        events.extend([
            TraceEvent::LeaseReclaimed {
                at: t(4),
                task: 0,
                query: 0,
                server: 0,
                token: tailguard_sched::LeaseToken(1),
            },
            TraceEvent::TaskEnqueued {
                at: t(4),
                task: 0,
                slot: 0,
                query: 0,
                class: 0,
                server: 0,
                kind: AttemptKind::Original,
                deadline: t(5),
            },
            TraceEvent::TaskDequeued {
                at: t(5),
                task: 0,
                slot: 0,
                query: 0,
                class: 0,
                kind: AttemptKind::Original,
                server: 0,
                token: tailguard_sched::LeaseToken(2),
                waited: ms(1),
                slack_ns: 0,
            },
            TraceEvent::TaskCompleted {
                at: t(6),
                task: 0,
                slot: 0,
                query: 0,
                server: 0,
                busy: ms(1),
                won: true,
            },
            TraceEvent::TaskCancelled {
                at: t(6),
                task: 1,
                slot: 0,
                query: 0,
                server: 1,
            },
        ]);
        let timelines = build_timelines(&events);
        let tl = &timelines[&0];
        assert_eq!(
            tl.attempts.len(),
            2,
            "reclaim must not mint a third attempt"
        );
        let original = &tl.attempts[0];
        assert_eq!(original.reclaims, 1);
        assert_eq!(original.enqueued_at, t(4), "reopened at the reclaim");
        assert_eq!(original.completed_at, Some(t(6)));
        assert!(tl.is_complete());
        assert_eq!(tl.latency(), Some(ms(6)));
    }

    #[test]
    fn slack_groupings_and_miss_timeline() {
        let events = sample_events();
        let by_class = slack_by_class(&events);
        assert_eq!(by_class[&0].dequeues, 1);
        assert_eq!(by_class[&0].misses, 0);
        let timelines = build_timelines(&events);
        let by_type = slack_by_type(&timelines);
        assert_eq!(by_type[&(0, 1)].dequeues, 1);
        let bins = miss_ratio_timeline(&events, SimDuration::from_millis(1));
        assert_eq!(bins.len(), 2, "dequeue at 1ms lands in the second bin");
        assert_eq!(bins[1].dequeues, 1);
        assert_eq!(bins[1].ratio(), 0.0);
    }

    #[test]
    fn slowest_queries_orders_by_latency() {
        let mut events = sample_events();
        // A second, slower query.
        let t = SimTime::from_millis;
        events.extend([
            TraceEvent::QueryAdmitted {
                at: t(0),
                query: 1,
                class: 0,
                fanout: 1,
                deadline: t(5),
            },
            TraceEvent::TaskEnqueued {
                at: t(0),
                task: 2,
                slot: 2,
                query: 1,
                class: 0,
                server: 0,
                kind: AttemptKind::Original,
                deadline: t(5),
            },
            TraceEvent::TaskCompleted {
                at: t(9),
                task: 2,
                slot: 2,
                query: 1,
                server: 0,
                busy: SimDuration::from_millis(9),
                won: true,
            },
        ]);
        let timelines = build_timelines(&events);
        let top = slowest_queries(&timelines, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].query, 1);
    }

    #[test]
    fn budget_denials_count_and_cluster_events_surface_as_transitions() {
        let t = SimTime::from_millis;
        let mut events = sample_events();
        events.extend([
            TraceEvent::HedgeBudgetExhausted {
                at: t(2),
                slot: 0,
                query: 0,
                class: 0,
            },
            TraceEvent::HedgeBudgetExhausted {
                at: t(3),
                slot: 0,
                query: 0,
                class: 0,
            },
            TraceEvent::ServerEjected {
                at: t(1),
                server: 7,
            },
            TraceEvent::ServerReadmitted {
                at: t(4),
                server: 7,
            },
        ]);
        let timelines = build_timelines(&events);
        assert_eq!(timelines[&0].budget_denials, 2);
        let transitions = server_transitions(&events);
        assert_eq!(transitions.len(), 2);
        assert!(transitions[0].ejected && transitions[0].server == 7);
        assert!(!transitions[1].ejected && transitions[1].at == t(4));
    }
}

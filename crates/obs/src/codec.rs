//! Fixed-width binary encoding of [`TraceEvent`]s.
//!
//! The mutex'd [`RingRecorder`](crate::RingRecorder) stores whole
//! `TraceEvent` enums (72 bytes each after alignment) and pays one lock
//! per event; `BENCH_obs.json` put that at roughly a doubling of the
//! pure-sim hot path. The binary path instead encodes each event into a
//! [`EVENT_BYTES`]-byte little-endian record on the emitting thread's
//! stack and batches records into the shared ring, deferring all decoding
//! to analysis time.
//!
//! The wire layout is a 1-byte variant tag followed by the variant's
//! fields in declaration order, each at its natural width (`u64` for
//! times/durations/tokens, `u32` for ids and servers, `u8` for classes,
//! flags, and [`AttemptKind`]), with the unused tail zero-padded to
//! [`EVENT_BYTES`]. Fixed width keeps the ring a flat array (no per-event
//! lengths), makes records self-aligned, and — because the padding is
//! deterministically zero — makes two recordings of the same run
//! byte-for-byte comparable, which the determinism tests rely on.
//!
//! Times, durations, and lease tokens are carried at their full 64-bit
//! width — the encoder performs no narrowing casts at all — so a
//! near-`u64::MAX` virtual timestamp round-trips bit-identically (the
//! `near_max_timestamps_round_trip` test and the property suite in
//! `tests/codec_roundtrip.rs` pin this).

use tailguard_sched::{AttemptKind, LeaseToken, TraceEvent};
use tailguard_simcore::{SimDuration, SimTime};

/// Width of one encoded event record. Sized by the largest variant
/// (`TaskDequeued`: tag + 8 fixed-width fields + two 64-bit durations);
/// all other variants zero-pad up to it.
pub const EVENT_BYTES: usize = 51;

const TAG_QUERY_ADMITTED: u8 = 0;
const TAG_QUERY_REJECTED: u8 = 1;
const TAG_TASK_ENQUEUED: u8 = 2;
const TAG_TASK_DEQUEUED: u8 = 3;
const TAG_DEADLINE_MISSED: u8 = 4;
const TAG_HEDGE_ISSUED: u8 = 5;
const TAG_TASK_CANCELLED: u8 = 6;
const TAG_TASK_COMPLETED: u8 = 7;
const TAG_TASK_LOST: u8 = 8;
const TAG_LEASE_RECLAIMED: u8 = 9;
const TAG_DUPLICATE_SUPPRESSED: u8 = 10;
const TAG_STALE_COMMIT_REJECTED: u8 = 11;
const TAG_ADMISSION_PAUSE: u8 = 12;
const TAG_ADMISSION_RESUME: u8 = 13;
const TAG_SERVER_EJECTED: u8 = 14;
const TAG_SERVER_READMITTED: u8 = 15;
const TAG_HEDGE_BUDGET_EXHAUSTED: u8 = 16;

/// Sequential little-endian writer over a fixed record. Fields are laid
/// out in declaration order, not at per-field offsets, so encode and
/// decode stay trivially in sync as long as they list fields identically.
struct Writer<'a> {
    buf: &'a mut [u8; EVENT_BYTES],
    pos: usize,
}

impl Writer<'_> {
    #[inline(always)]
    fn u8(&mut self, v: u8) {
        // tg-lint: allow(panic-surface) -- fixed field plan: every variant's widths sum to <= EVENT_BYTES over a fixed-size array; byte content cannot move `pos` (roundtrip + proptest pinned)
        self.buf[self.pos] = v;
        self.pos += 1;
    }

    #[inline(always)]
    fn u32(&mut self, v: u32) {
        // tg-lint: allow(panic-surface) -- fixed field plan: every variant's widths sum to <= EVENT_BYTES over a fixed-size array; byte content cannot move `pos` (roundtrip + proptest pinned)
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }

    #[inline(always)]
    fn u64(&mut self, v: u64) {
        // tg-lint: allow(panic-surface) -- fixed field plan: every variant's widths sum to <= EVENT_BYTES over a fixed-size array; byte content cannot move `pos` (roundtrip + proptest pinned)
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }

    #[inline(always)]
    fn i64(&mut self, v: i64) {
        // tg-lint: allow(panic-surface) -- fixed field plan: every variant's widths sum to <= EVENT_BYTES over a fixed-size array; byte content cannot move `pos` (roundtrip + proptest pinned)
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }

    #[inline(always)]
    fn time(&mut self, t: SimTime) {
        self.u64(t.as_nanos());
    }

    #[inline(always)]
    fn duration(&mut self, d: SimDuration) {
        self.u64(d.as_nanos());
    }
}

/// Sequential little-endian reader mirroring [`Writer`].
struct Reader<'a> {
    buf: &'a [u8; EVENT_BYTES],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> u8 {
        // tg-lint: allow(panic-surface) -- fixed field plan: every variant's widths sum to <= EVENT_BYTES over a fixed-size array; byte content cannot move `pos` (roundtrip + proptest pinned)
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    fn u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        // tg-lint: allow(panic-surface) -- fixed field plan: every variant's widths sum to <= EVENT_BYTES over a fixed-size array; byte content cannot move `pos` (roundtrip + proptest pinned)
        b.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        u32::from_le_bytes(b)
    }

    fn u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        // tg-lint: allow(panic-surface) -- fixed field plan: every variant's widths sum to <= EVENT_BYTES over a fixed-size array; byte content cannot move `pos` (roundtrip + proptest pinned)
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        u64::from_le_bytes(b)
    }

    fn i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        // tg-lint: allow(panic-surface) -- fixed field plan: every variant's widths sum to <= EVENT_BYTES over a fixed-size array; byte content cannot move `pos` (roundtrip + proptest pinned)
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        i64::from_le_bytes(b)
    }

    fn time(&mut self) -> SimTime {
        SimTime::from_nanos(self.u64())
    }

    fn duration(&mut self) -> SimDuration {
        SimDuration::from_nanos(self.u64())
    }
}

fn kind_to_u8(kind: AttemptKind) -> u8 {
    match kind {
        AttemptKind::Original => 0,
        AttemptKind::Hedge => 1,
        AttemptKind::Retry => 2,
    }
}

fn kind_from_u8(v: u8) -> Option<AttemptKind> {
    match v {
        0 => Some(AttemptKind::Original),
        1 => Some(AttemptKind::Hedge),
        2 => Some(AttemptKind::Retry),
        _ => None,
    }
}

/// Encodes one event into a zeroed fixed-width record.
///
/// The buffer is cleared first so the unused tail is always zero —
/// required for the byte-equality determinism checks.
pub fn encode_into(ev: &TraceEvent, buf: &mut [u8; EVENT_BYTES]) {
    buf.fill(0);
    encode_fields(ev, buf);
}

/// Appends one encoded record to `out` without an intermediate stack
/// buffer: the hot-path form for [`BinarySink`](crate::BinarySink). The
/// record region is zero-extended first, so the padding guarantee of
/// [`encode_into`] holds identically.
#[inline]
pub fn encode_append(ev: &TraceEvent, out: &mut Vec<u8>) {
    encode_fields(ev, append_record(out));
}

/// Zero-extends `out` by one record and returns it for in-place encoding.
/// Extending from a constant zero block compiles to one bulk copy, where
/// `Vec::resize` is free to zero element by element.
#[inline(always)]
fn append_record(out: &mut Vec<u8>) -> &mut [u8; EVENT_BYTES] {
    let start = out.len();
    out.extend_from_slice(&[0u8; EVENT_BYTES]);
    // tg-lint: allow(unwrap-in-lib) -- the slice is EVENT_BYTES long by construction
    // tg-lint: allow(panic-surface) -- in range by construction: `out` was zero-extended by exactly EVENT_BYTES above
    (&mut out[start..start + EVENT_BYTES]).try_into().unwrap()
}

/// Field layout shared by [`encode_into`] and [`encode_append`]; assumes
/// `buf` is already zeroed.
#[inline]
// tg-lint: hot(encode)
fn encode_fields(ev: &TraceEvent, buf: &mut [u8; EVENT_BYTES]) {
    let mut w = Writer { buf, pos: 0 };
    match *ev {
        TraceEvent::QueryAdmitted {
            at,
            query,
            class,
            fanout,
            deadline,
        } => {
            w.u8(TAG_QUERY_ADMITTED);
            w.time(at);
            w.u32(query);
            w.u8(class);
            w.u32(fanout);
            w.time(deadline);
        }
        TraceEvent::QueryRejected { at, class, fanout } => {
            w.u8(TAG_QUERY_REJECTED);
            w.time(at);
            w.u8(class);
            w.u32(fanout);
        }
        TraceEvent::TaskEnqueued {
            at,
            task,
            slot,
            query,
            class,
            server,
            kind,
            deadline,
        } => {
            w.u8(TAG_TASK_ENQUEUED);
            w.time(at);
            w.u32(task);
            w.u32(slot);
            w.u32(query);
            w.u8(class);
            w.u32(server);
            w.u8(kind_to_u8(kind));
            w.time(deadline);
        }
        TraceEvent::TaskDequeued {
            at,
            task,
            slot,
            query,
            class,
            kind,
            server,
            token,
            waited,
            slack_ns,
        } => {
            w.u8(TAG_TASK_DEQUEUED);
            w.time(at);
            w.u32(task);
            w.u32(slot);
            w.u32(query);
            w.u8(class);
            w.u8(kind_to_u8(kind));
            w.u32(server);
            w.u64(token.0);
            w.duration(waited);
            w.i64(slack_ns);
        }
        TraceEvent::DeadlineMissed {
            at,
            task,
            query,
            server,
            late_by,
        } => {
            w.u8(TAG_DEADLINE_MISSED);
            w.time(at);
            w.u32(task);
            w.u32(query);
            w.u32(server);
            w.duration(late_by);
        }
        TraceEvent::HedgeIssued {
            at,
            task,
            slot,
            query,
            server,
        } => {
            w.u8(TAG_HEDGE_ISSUED);
            w.time(at);
            w.u32(task);
            w.u32(slot);
            w.u32(query);
            w.u32(server);
        }
        TraceEvent::TaskCancelled {
            at,
            task,
            slot,
            query,
            server,
        } => {
            w.u8(TAG_TASK_CANCELLED);
            w.time(at);
            w.u32(task);
            w.u32(slot);
            w.u32(query);
            w.u32(server);
        }
        TraceEvent::TaskCompleted {
            at,
            task,
            slot,
            query,
            server,
            busy,
            won,
        } => {
            w.u8(TAG_TASK_COMPLETED);
            w.time(at);
            w.u32(task);
            w.u32(slot);
            w.u32(query);
            w.u32(server);
            w.duration(busy);
            w.u8(u8::from(won));
        }
        TraceEvent::TaskLost {
            at,
            task,
            slot,
            query,
            server,
        } => {
            w.u8(TAG_TASK_LOST);
            w.time(at);
            w.u32(task);
            w.u32(slot);
            w.u32(query);
            w.u32(server);
        }
        TraceEvent::LeaseReclaimed {
            at,
            task,
            query,
            server,
            token,
        } => {
            w.u8(TAG_LEASE_RECLAIMED);
            w.time(at);
            w.u32(task);
            w.u32(query);
            w.u32(server);
            w.u64(token.0);
        }
        TraceEvent::DuplicateSuppressed {
            at,
            task,
            query,
            server,
        } => {
            w.u8(TAG_DUPLICATE_SUPPRESSED);
            w.time(at);
            w.u32(task);
            w.u32(query);
            w.u32(server);
        }
        TraceEvent::StaleCommitRejected {
            at,
            task,
            query,
            server,
            token,
        } => {
            w.u8(TAG_STALE_COMMIT_REJECTED);
            w.time(at);
            w.u32(task);
            w.u32(query);
            w.u32(server);
            w.u64(token.0);
        }
        TraceEvent::AdmissionPause { at } => {
            w.u8(TAG_ADMISSION_PAUSE);
            w.time(at);
        }
        TraceEvent::AdmissionResume { at } => {
            w.u8(TAG_ADMISSION_RESUME);
            w.time(at);
        }
        TraceEvent::ServerEjected { at, server } => {
            w.u8(TAG_SERVER_EJECTED);
            w.time(at);
            w.u32(server);
        }
        TraceEvent::ServerReadmitted { at, server } => {
            w.u8(TAG_SERVER_READMITTED);
            w.time(at);
            w.u32(server);
        }
        TraceEvent::HedgeBudgetExhausted {
            at,
            slot,
            query,
            class,
        } => {
            w.u8(TAG_HEDGE_BUDGET_EXHAUSTED);
            w.time(at);
            w.u32(slot);
            w.u32(query);
            w.u8(class);
        }
    }
}
// tg-lint: endhot

/// Decodes one fixed-width record back into a [`TraceEvent`].
///
/// Returns `None` for an unknown variant tag or an out-of-range
/// [`AttemptKind`] byte — a corrupt or version-skewed record, which
/// callers should count rather than panic over.
pub fn decode(buf: &[u8; EVENT_BYTES]) -> Option<TraceEvent> {
    let mut r = Reader { buf, pos: 0 };
    let tag = r.u8();
    Some(match tag {
        TAG_QUERY_ADMITTED => TraceEvent::QueryAdmitted {
            at: r.time(),
            query: r.u32(),
            class: r.u8(),
            fanout: r.u32(),
            deadline: r.time(),
        },
        TAG_QUERY_REJECTED => TraceEvent::QueryRejected {
            at: r.time(),
            class: r.u8(),
            fanout: r.u32(),
        },
        TAG_TASK_ENQUEUED => TraceEvent::TaskEnqueued {
            at: r.time(),
            task: r.u32(),
            slot: r.u32(),
            query: r.u32(),
            class: r.u8(),
            server: r.u32(),
            kind: kind_from_u8(r.u8())?,
            deadline: r.time(),
        },
        TAG_TASK_DEQUEUED => TraceEvent::TaskDequeued {
            at: r.time(),
            task: r.u32(),
            slot: r.u32(),
            query: r.u32(),
            class: r.u8(),
            kind: kind_from_u8(r.u8())?,
            server: r.u32(),
            token: LeaseToken(r.u64()),
            waited: r.duration(),
            slack_ns: r.i64(),
        },
        TAG_DEADLINE_MISSED => TraceEvent::DeadlineMissed {
            at: r.time(),
            task: r.u32(),
            query: r.u32(),
            server: r.u32(),
            late_by: r.duration(),
        },
        TAG_HEDGE_ISSUED => TraceEvent::HedgeIssued {
            at: r.time(),
            task: r.u32(),
            slot: r.u32(),
            query: r.u32(),
            server: r.u32(),
        },
        TAG_TASK_CANCELLED => TraceEvent::TaskCancelled {
            at: r.time(),
            task: r.u32(),
            slot: r.u32(),
            query: r.u32(),
            server: r.u32(),
        },
        TAG_TASK_COMPLETED => TraceEvent::TaskCompleted {
            at: r.time(),
            task: r.u32(),
            slot: r.u32(),
            query: r.u32(),
            server: r.u32(),
            busy: r.duration(),
            won: r.u8() != 0,
        },
        TAG_TASK_LOST => TraceEvent::TaskLost {
            at: r.time(),
            task: r.u32(),
            slot: r.u32(),
            query: r.u32(),
            server: r.u32(),
        },
        TAG_LEASE_RECLAIMED => TraceEvent::LeaseReclaimed {
            at: r.time(),
            task: r.u32(),
            query: r.u32(),
            server: r.u32(),
            token: LeaseToken(r.u64()),
        },
        TAG_DUPLICATE_SUPPRESSED => TraceEvent::DuplicateSuppressed {
            at: r.time(),
            task: r.u32(),
            query: r.u32(),
            server: r.u32(),
        },
        TAG_STALE_COMMIT_REJECTED => TraceEvent::StaleCommitRejected {
            at: r.time(),
            task: r.u32(),
            query: r.u32(),
            server: r.u32(),
            token: LeaseToken(r.u64()),
        },
        TAG_ADMISSION_PAUSE => TraceEvent::AdmissionPause { at: r.time() },
        TAG_ADMISSION_RESUME => TraceEvent::AdmissionResume { at: r.time() },
        TAG_SERVER_EJECTED => TraceEvent::ServerEjected {
            at: r.time(),
            server: r.u32(),
        },
        TAG_SERVER_READMITTED => TraceEvent::ServerReadmitted {
            at: r.time(),
            server: r.u32(),
        },
        TAG_HEDGE_BUDGET_EXHAUSTED => TraceEvent::HedgeBudgetExhausted {
            at: r.time(),
            slot: r.u32(),
            query: r.u32(),
            class: r.u8(),
        },
        _ => return None,
    })
}

/// Decodes a concatenation of fixed-width records, skipping (and
/// counting) undecodable ones. The trailing partial record, if the input
/// length is not a multiple of [`EVENT_BYTES`], is ignored.
pub fn decode_stream(bytes: &[u8]) -> (Vec<TraceEvent>, u64) {
    let mut events = Vec::with_capacity(bytes.len() / EVENT_BYTES);
    let mut corrupt = 0u64;
    for chunk in bytes.chunks_exact(EVENT_BYTES) {
        let mut rec = [0u8; EVENT_BYTES];
        rec.copy_from_slice(chunk);
        match decode(&rec) {
            Some(ev) => events.push(ev),
            None => corrupt += 1,
        }
    }
    (events, corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::QueryAdmitted {
                at: SimTime::from_millis(1),
                query: 9,
                class: 2,
                fanout: 16,
                deadline: SimTime::from_millis(11),
            },
            TraceEvent::QueryRejected {
                at: SimTime::from_millis(2),
                class: 1,
                fanout: 4,
            },
            TraceEvent::TaskEnqueued {
                at: SimTime::from_millis(3),
                task: 40,
                slot: 40,
                query: 9,
                class: 2,
                server: 7,
                kind: AttemptKind::Hedge,
                deadline: SimTime::from_millis(11),
            },
            TraceEvent::TaskDequeued {
                at: SimTime::from_millis(4),
                task: 40,
                slot: 40,
                query: 9,
                class: 2,
                kind: AttemptKind::Retry,
                server: 7,
                token: LeaseToken(u64::MAX),
                waited: SimDuration::from_millis(1),
                slack_ns: -123_456,
            },
            TraceEvent::DeadlineMissed {
                at: SimTime::from_millis(4),
                task: 40,
                query: 9,
                server: 7,
                late_by: SimDuration::from_nanos(123_456),
            },
            TraceEvent::HedgeIssued {
                at: SimTime::from_millis(5),
                task: 41,
                slot: 40,
                query: 9,
                server: 3,
            },
            TraceEvent::TaskCancelled {
                at: SimTime::from_millis(6),
                task: 41,
                slot: 40,
                query: 9,
                server: 3,
            },
            TraceEvent::TaskCompleted {
                at: SimTime::from_millis(7),
                task: 40,
                slot: 40,
                query: 9,
                server: 7,
                busy: SimDuration::from_millis(2),
                won: true,
            },
            TraceEvent::TaskLost {
                at: SimTime::from_millis(8),
                task: 42,
                slot: 42,
                query: 9,
                server: 1,
            },
            TraceEvent::LeaseReclaimed {
                at: SimTime::from_millis(9),
                task: 42,
                query: 9,
                server: 1,
                token: LeaseToken(17),
            },
            TraceEvent::DuplicateSuppressed {
                at: SimTime::from_millis(10),
                task: 42,
                query: 9,
                server: 1,
            },
            TraceEvent::StaleCommitRejected {
                at: SimTime::from_millis(11),
                task: 42,
                query: 9,
                server: 1,
                token: LeaseToken(16),
            },
            TraceEvent::AdmissionPause {
                at: SimTime::from_millis(12),
            },
            TraceEvent::AdmissionResume {
                at: SimTime::from_millis(13),
            },
            TraceEvent::ServerEjected {
                at: SimTime::from_millis(14),
                server: 5,
            },
            TraceEvent::ServerReadmitted {
                at: SimTime::from_millis(15),
                server: 5,
            },
            TraceEvent::HedgeBudgetExhausted {
                at: SimTime::from_millis(16),
                slot: 50,
                query: 12,
                class: 0,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for ev in sample_events() {
            let mut buf = [0u8; EVENT_BYTES];
            encode_into(&ev, &mut buf);
            assert_eq!(decode(&buf), Some(ev));
        }
    }

    #[test]
    fn encoding_is_deterministic_and_zero_padded() {
        let ev = TraceEvent::AdmissionPause {
            at: SimTime::from_nanos(0x0102_0304_0506_0708),
        };
        let mut a = [0xFFu8; EVENT_BYTES];
        let mut b = [0u8; EVENT_BYTES];
        encode_into(&ev, &mut a);
        encode_into(&ev, &mut b);
        assert_eq!(a, b, "stale buffer contents must not leak into padding");
        assert!(a[9..].iter().all(|&x| x == 0), "tail is zero-padded");
    }

    #[test]
    fn widest_variant_fills_the_record_exactly() {
        let ev = TraceEvent::TaskDequeued {
            at: SimTime::from_nanos(u64::MAX),
            task: u32::MAX,
            slot: u32::MAX,
            query: u32::MAX,
            class: u8::MAX,
            kind: AttemptKind::Retry,
            server: u32::MAX,
            token: LeaseToken(u64::MAX),
            waited: SimDuration::from_nanos(u64::MAX),
            slack_ns: i64::MIN,
        };
        let mut buf = [0u8; EVENT_BYTES];
        encode_into(&ev, &mut buf);
        assert_eq!(decode(&buf), Some(ev));
        assert_ne!(buf[EVENT_BYTES - 1], 0, "TaskDequeued uses every byte");
    }

    #[test]
    fn near_max_timestamps_round_trip() {
        // The ns→field audit contract: every time-carrying field is a full
        // 64-bit lane, so timestamps a few ns below the end of the u64
        // domain (≈ 584 years of virtual time) survive unchanged.
        for off in 0..4u64 {
            let t = u64::MAX - off;
            for ev in [
                TraceEvent::AdmissionPause {
                    at: SimTime::from_nanos(t),
                },
                TraceEvent::QueryAdmitted {
                    at: SimTime::from_nanos(t),
                    query: 1,
                    class: 0,
                    fanout: 2,
                    deadline: SimTime::from_nanos(t),
                },
                TraceEvent::DeadlineMissed {
                    at: SimTime::from_nanos(t),
                    task: 3,
                    query: 1,
                    server: 0,
                    late_by: SimDuration::from_nanos(t),
                },
            ] {
                let mut buf = [0u8; EVENT_BYTES];
                encode_into(&ev, &mut buf);
                assert_eq!(decode(&buf), Some(ev));
            }
        }
    }

    #[test]
    fn unknown_tag_and_bad_kind_decode_to_none() {
        let mut buf = [0u8; EVENT_BYTES];
        buf[0] = 200;
        assert_eq!(decode(&buf), None);
        let ev = TraceEvent::TaskEnqueued {
            at: SimTime::ZERO,
            task: 1,
            slot: 1,
            query: 0,
            class: 0,
            server: 0,
            kind: AttemptKind::Original,
            deadline: SimTime::ZERO,
        };
        encode_into(&ev, &mut buf);
        buf[26] = 9; // the AttemptKind byte
        assert_eq!(decode(&buf), None);
    }

    #[test]
    fn decode_stream_skips_corrupt_and_partial_records() {
        let events = sample_events();
        let mut bytes = Vec::new();
        for ev in &events {
            let mut buf = [0u8; EVENT_BYTES];
            encode_into(ev, &mut buf);
            bytes.extend_from_slice(&buf);
        }
        bytes[EVENT_BYTES] = 250; // corrupt the second record's tag
        bytes.extend_from_slice(&[1, 2, 3]); // trailing partial record
        let (decoded, corrupt) = decode_stream(&bytes);
        assert_eq!(corrupt, 1);
        assert_eq!(decoded.len(), events.len() - 1);
        assert_eq!(decoded[0], events[0]);
        assert_eq!(decoded[1], events[2]);
    }
}

//! Flat-file exporters for recorded event streams (JSONL and CSV).
//!
//! Both formats carry the same columns; fields that do not apply to an
//! event kind are omitted (JSONL) or left empty (CSV). Times are integer
//! nanoseconds on the producing runtime's clock, so external tooling
//! never parses floats it has to round-trip.

use tailguard_sched::TraceEvent;

/// The CSV header matching [`event_to_csv_row`].
pub const CSV_HEADER: &str =
    "at_ns,event,query,task,slot,class,fanout,server,kind,deadline_ns,waited_ns,slack_ns,busy_ns,late_by_ns,won,token";

/// Renders one event as a JSON object (one JSONL line, no trailing
/// newline).
pub fn event_to_json(ev: &TraceEvent) -> String {
    let mut fields = vec![
        format!("\"at_ns\":{}", ev.at().as_nanos()),
        format!("\"event\":\"{}\"", ev.kind_name()),
    ];
    match *ev {
        TraceEvent::QueryAdmitted {
            query,
            class,
            fanout,
            deadline,
            ..
        } => {
            fields.push(format!("\"query\":{query}"));
            fields.push(format!("\"class\":{class}"));
            fields.push(format!("\"fanout\":{fanout}"));
            fields.push(format!("\"deadline_ns\":{}", deadline.as_nanos()));
        }
        TraceEvent::QueryRejected { class, fanout, .. } => {
            fields.push(format!("\"class\":{class}"));
            fields.push(format!("\"fanout\":{fanout}"));
        }
        TraceEvent::TaskEnqueued {
            task,
            slot,
            query,
            class,
            server,
            kind,
            deadline,
            ..
        } => {
            fields.push(format!("\"query\":{query}"));
            fields.push(format!("\"task\":{task}"));
            fields.push(format!("\"slot\":{slot}"));
            fields.push(format!("\"class\":{class}"));
            fields.push(format!("\"server\":{server}"));
            fields.push(format!("\"kind\":\"{}\"", kind.name()));
            fields.push(format!("\"deadline_ns\":{}", deadline.as_nanos()));
        }
        TraceEvent::TaskDequeued {
            task,
            slot,
            query,
            class,
            kind,
            server,
            token,
            waited,
            slack_ns,
            ..
        } => {
            fields.push(format!("\"query\":{query}"));
            fields.push(format!("\"task\":{task}"));
            fields.push(format!("\"slot\":{slot}"));
            fields.push(format!("\"class\":{class}"));
            fields.push(format!("\"server\":{server}"));
            fields.push(format!("\"kind\":\"{}\"", kind.name()));
            fields.push(format!("\"token\":{}", token.0));
            fields.push(format!("\"waited_ns\":{}", waited.as_nanos()));
            fields.push(format!("\"slack_ns\":{slack_ns}"));
        }
        TraceEvent::DeadlineMissed {
            task,
            query,
            server,
            late_by,
            ..
        } => {
            fields.push(format!("\"query\":{query}"));
            fields.push(format!("\"task\":{task}"));
            fields.push(format!("\"server\":{server}"));
            fields.push(format!("\"late_by_ns\":{}", late_by.as_nanos()));
        }
        TraceEvent::HedgeIssued {
            task,
            slot,
            query,
            server,
            ..
        } => {
            fields.push(format!("\"query\":{query}"));
            fields.push(format!("\"task\":{task}"));
            fields.push(format!("\"slot\":{slot}"));
            fields.push(format!("\"server\":{server}"));
        }
        TraceEvent::TaskCancelled {
            task,
            slot,
            query,
            server,
            ..
        }
        | TraceEvent::TaskLost {
            task,
            slot,
            query,
            server,
            ..
        } => {
            fields.push(format!("\"query\":{query}"));
            fields.push(format!("\"task\":{task}"));
            fields.push(format!("\"slot\":{slot}"));
            fields.push(format!("\"server\":{server}"));
        }
        TraceEvent::TaskCompleted {
            task,
            slot,
            query,
            server,
            busy,
            won,
            ..
        } => {
            fields.push(format!("\"query\":{query}"));
            fields.push(format!("\"task\":{task}"));
            fields.push(format!("\"slot\":{slot}"));
            fields.push(format!("\"server\":{server}"));
            fields.push(format!("\"busy_ns\":{}", busy.as_nanos()));
            fields.push(format!("\"won\":{won}"));
        }
        TraceEvent::LeaseReclaimed {
            task,
            query,
            server,
            token,
            ..
        }
        | TraceEvent::StaleCommitRejected {
            task,
            query,
            server,
            token,
            ..
        } => {
            fields.push(format!("\"query\":{query}"));
            fields.push(format!("\"task\":{task}"));
            fields.push(format!("\"server\":{server}"));
            fields.push(format!("\"token\":{}", token.0));
        }
        TraceEvent::DuplicateSuppressed {
            task,
            query,
            server,
            ..
        } => {
            fields.push(format!("\"query\":{query}"));
            fields.push(format!("\"task\":{task}"));
            fields.push(format!("\"server\":{server}"));
        }
        TraceEvent::ServerEjected { server, .. } | TraceEvent::ServerReadmitted { server, .. } => {
            fields.push(format!("\"server\":{server}"));
        }
        TraceEvent::HedgeBudgetExhausted {
            slot, query, class, ..
        } => {
            fields.push(format!("\"query\":{query}"));
            fields.push(format!("\"slot\":{slot}"));
            fields.push(format!("\"class\":{class}"));
        }
        TraceEvent::AdmissionPause { .. } | TraceEvent::AdmissionResume { .. } => {}
    }
    format!("{{{}}}", fields.join(","))
}

/// Renders an event stream as JSONL (one object per line).
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_to_json(ev));
        out.push('\n');
    }
    out
}

/// Renders one event as a CSV row under [`CSV_HEADER`].
pub fn event_to_csv_row(ev: &TraceEvent) -> String {
    // Column order: at_ns,event,query,task,slot,class,fanout,server,kind,
    //               deadline_ns,waited_ns,slack_ns,busy_ns,late_by_ns,won,
    //               token
    let mut cols: [String; 16] = Default::default();
    cols[0] = ev.at().as_nanos().to_string();
    cols[1] = ev.kind_name().to_string();
    if let Some(q) = ev.query() {
        cols[2] = q.to_string();
    }
    match *ev {
        TraceEvent::QueryAdmitted {
            class,
            fanout,
            deadline,
            ..
        } => {
            cols[5] = class.to_string();
            cols[6] = fanout.to_string();
            cols[9] = deadline.as_nanos().to_string();
        }
        TraceEvent::QueryRejected { class, fanout, .. } => {
            cols[5] = class.to_string();
            cols[6] = fanout.to_string();
        }
        TraceEvent::TaskEnqueued {
            task,
            slot,
            class,
            server,
            kind,
            deadline,
            ..
        } => {
            cols[3] = task.to_string();
            cols[4] = slot.to_string();
            cols[5] = class.to_string();
            cols[7] = server.to_string();
            cols[8] = kind.name().to_string();
            cols[9] = deadline.as_nanos().to_string();
        }
        TraceEvent::TaskDequeued {
            task,
            slot,
            class,
            kind,
            server,
            token,
            waited,
            slack_ns,
            ..
        } => {
            cols[3] = task.to_string();
            cols[4] = slot.to_string();
            cols[5] = class.to_string();
            cols[7] = server.to_string();
            cols[8] = kind.name().to_string();
            cols[10] = waited.as_nanos().to_string();
            cols[11] = slack_ns.to_string();
            cols[15] = token.0.to_string();
        }
        TraceEvent::DeadlineMissed {
            task,
            server,
            late_by,
            ..
        } => {
            cols[3] = task.to_string();
            cols[7] = server.to_string();
            cols[13] = late_by.as_nanos().to_string();
        }
        TraceEvent::HedgeIssued {
            task, slot, server, ..
        } => {
            cols[3] = task.to_string();
            cols[4] = slot.to_string();
            cols[7] = server.to_string();
        }
        TraceEvent::TaskCancelled {
            task, slot, server, ..
        }
        | TraceEvent::TaskLost {
            task, slot, server, ..
        } => {
            cols[3] = task.to_string();
            cols[4] = slot.to_string();
            cols[7] = server.to_string();
        }
        TraceEvent::TaskCompleted {
            task,
            slot,
            server,
            busy,
            won,
            ..
        } => {
            cols[3] = task.to_string();
            cols[4] = slot.to_string();
            cols[7] = server.to_string();
            cols[12] = busy.as_nanos().to_string();
            cols[14] = won.to_string();
        }
        TraceEvent::LeaseReclaimed {
            task,
            server,
            token,
            ..
        }
        | TraceEvent::StaleCommitRejected {
            task,
            server,
            token,
            ..
        } => {
            cols[3] = task.to_string();
            cols[7] = server.to_string();
            cols[15] = token.0.to_string();
        }
        TraceEvent::DuplicateSuppressed { task, server, .. } => {
            cols[3] = task.to_string();
            cols[7] = server.to_string();
        }
        TraceEvent::ServerEjected { server, .. } | TraceEvent::ServerReadmitted { server, .. } => {
            cols[7] = server.to_string();
        }
        TraceEvent::HedgeBudgetExhausted { slot, class, .. } => {
            cols[4] = slot.to_string();
            cols[5] = class.to_string();
        }
        TraceEvent::AdmissionPause { .. } | TraceEvent::AdmissionResume { .. } => {}
    }
    cols.join(",")
}

/// Renders an event stream as CSV with a header row.
pub fn events_to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48 + CSV_HEADER.len() + 1);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for ev in events {
        out.push_str(&event_to_csv_row(ev));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_sched::AttemptKind;
    use tailguard_simcore::{SimDuration, SimTime};

    #[test]
    fn jsonl_lines_parse_as_json() {
        let events = [
            TraceEvent::QueryAdmitted {
                at: SimTime::from_millis(1),
                query: 3,
                class: 1,
                fanout: 10,
                deadline: SimTime::from_millis(4),
            },
            TraceEvent::TaskDequeued {
                at: SimTime::from_millis(2),
                task: 5,
                slot: 4,
                query: 3,
                class: 1,
                kind: AttemptKind::Hedge,
                server: 7,
                token: tailguard_sched::LeaseToken(9),
                waited: SimDuration::from_millis(1),
                slack_ns: -250,
            },
            TraceEvent::LeaseReclaimed {
                at: SimTime::from_millis(3),
                task: 5,
                query: 3,
                server: 7,
                token: tailguard_sched::LeaseToken(9),
            },
        ];
        let jsonl = events_to_jsonl(&events);
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.get("at_ns").unwrap().as_u64().is_some());
            assert!(v.get("event").unwrap().as_str().is_some());
        }
        assert!(jsonl.contains("\"slack_ns\":-250"));
        assert!(jsonl.contains("\"kind\":\"hedge\""));
        assert!(jsonl.contains("\"slot\":4"));
        assert!(jsonl.contains("\"token\":9"));
        assert!(jsonl.contains("\"event\":\"lease_reclaimed\""));
    }

    #[test]
    fn csv_rows_have_the_header_arity() {
        let events = [
            TraceEvent::AdmissionPause {
                at: SimTime::from_millis(9),
            },
            TraceEvent::TaskCompleted {
                at: SimTime::from_millis(10),
                task: 1,
                slot: 1,
                query: 0,
                server: 2,
                busy: SimDuration::from_millis(3),
                won: true,
            },
            TraceEvent::StaleCommitRejected {
                at: SimTime::from_millis(11),
                task: 1,
                query: 0,
                server: 2,
                token: tailguard_sched::LeaseToken(3),
            },
            TraceEvent::DuplicateSuppressed {
                at: SimTime::from_millis(12),
                task: 1,
                query: 0,
                server: 2,
            },
        ];
        let csv = events_to_csv(&events);
        let cols = CSV_HEADER.split(',').count();
        assert_eq!(cols, 16, "token column appended");
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        assert!(csv.contains("task_completed"));
        assert!(csv.contains("stale_commit_rejected"));
        assert!(csv.contains("duplicate_suppressed"));
    }
}

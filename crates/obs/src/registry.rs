//! The metrics registry and its serializers.
//!
//! One naming scheme, used verbatim by the Prometheus text exposition, the
//! JSON snapshots, and the CLI `--json` outputs:
//!
//! * `tailguard_<noun>_<verb>_total` — monotone counters
//!   (`tailguard_queries_admitted_total`,
//!   `tailguard_mitigation_hedges_issued_total`, …);
//! * `tailguard_<noun>` — gauges (`tailguard_queue_depth`);
//! * `tailguard_<phase>_ms` — log-bucketed latency histograms in
//!   *milliseconds*, the unit every distribution in this repo uses
//!   (`tailguard_queue_wait_ms`, `tailguard_service_ms`,
//!   `tailguard_dequeue_slack_ms{class="0"}`);
//! * time series are named like the gauge they sample and live in the JSON
//!   snapshot (`series`), each point `(at_ns, value)` on the virtual/wall
//!   clock of the producing runtime.
//!
//! Lifecycle counters (`tailguard_queries_*`, `tailguard_tasks_*`) are
//! derived from the trace-event stream by [`Registry::ingest_events`];
//! mitigation counters (`tailguard_mitigation_*`) come from the handler's
//! [`RobustnessStats`] via [`Registry::ingest_robustness`]; estimator and
//! run-level counters are set by the driver. The two families overlap in
//! spirit but not in name, so a scrape never sees the same fact under two
//! spellings.

use serde::Serialize;
use std::collections::BTreeMap;
use tailguard_dist::{Cdf, LogHistogram};
use tailguard_sched::units;
use tailguard_sched::{AttemptKind, LifecycleStats, RobustnessStats, TraceEvent};
use tailguard_simcore::SimTime;

/// Fixed `le` boundaries (ms) for the Prometheus histogram exposition,
/// log-spaced like the underlying [`LogHistogram`] buckets (which are far
/// finer; these are the wire-format summary).
const EXPO_BOUNDS_MS: [f64; 9] = [0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0, 1000.0];

#[derive(Debug)]
struct Entry<T> {
    help: &'static str,
    value: T,
}

/// Counters, gauges, log-bucketed histograms, and time series under one
/// roof. All mutation is by full metric name (labels included, e.g.
/// `tailguard_dequeue_slack_ms{class="0"}`); names are created on first
/// touch and iterated in sorted order, so serialization is deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, Entry<u64>>,
    gauges: BTreeMap<String, Entry<f64>>,
    histograms: BTreeMap<String, Entry<LogHistogram>>,
    series: BTreeMap<String, Entry<Vec<(u64, f64)>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, help: &'static str, delta: u64) {
        let entry = self
            .counters
            .entry(name.to_string())
            .or_insert(Entry { help, value: 0 });
        entry.value += delta;
    }

    /// Sets a counter to an externally accumulated value (e.g. a counter
    /// the scheduling core already maintains).
    pub fn counter_set(&mut self, name: &str, help: &'static str, value: u64) {
        self.counters
            .insert(name.to_string(), Entry { help, value });
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, help: &'static str, value: f64) {
        self.gauges.insert(name.to_string(), Entry { help, value });
    }

    /// Records one observation (in ms) into a histogram, creating it with
    /// the default log-bucket layout first.
    pub fn histogram_record(&mut self, name: &str, help: &'static str, value_ms: f64) {
        let entry = self.histograms.entry(name.to_string()).or_insert(Entry {
            help,
            value: LogHistogram::new(),
        });
        entry.value.record(value_ms);
    }

    /// Appends a `(at, value)` sample to a time series.
    /// `at` is virtual time (nanosecond domain).
    pub fn series_push(&mut self, name: &str, help: &'static str, at: SimTime, value: f64) {
        let entry = self.series.entry(name.to_string()).or_insert(Entry {
            help,
            value: Vec::new(),
        });
        entry.value.push((at.as_nanos(), value));
    }

    /// A counter's current value, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(|e| e.value)
    }

    /// A gauge's current value, if it exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|e| e.value)
    }

    /// A histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name).map(|e| &e.value)
    }

    /// A time series' samples, if it exists.
    pub fn series(&self, name: &str) -> Option<&[(u64, f64)]> {
        self.series.get(name).map(|e| e.value.as_slice())
    }

    /// Derives the lifecycle counters and per-phase latency histograms
    /// from a trace-event stream: admission/rejection/enqueue/dequeue/miss
    /// counts, queue-wait and service-time histograms (the Eq. 6 split of
    /// query latency into pre-dequeuing wait vs. service), hedge-copy
    /// queue wait, and signed dequeue slack split into a per-class slack
    /// histogram (`slack ≥ 0`) and a lateness histogram (`|slack|` of
    /// misses).
    pub fn ingest_events(&mut self, events: &[TraceEvent]) {
        // One local accumulation pass, then one registry touch per metric
        // name. The per-event string-keyed map lookups this replaces were
        // the dominant cost of observed runs (see `BENCH_obs.json`); the
        // resulting counters and histograms are identical.
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut enqueued = 0u64;
        let mut dequeued = 0u64;
        let mut missed = 0u64;
        let mut cancelled = 0u64;
        let mut completed = 0u64;
        let mut lost = 0u64;
        let mut pauses = 0u64;
        let mut resumes = 0u64;
        let mut reclaimed = 0u64;
        let mut dup_suppressed = 0u64;
        let mut stale_rejected = 0u64;
        let mut ejections = 0u64;
        let mut readmissions = 0u64;
        let mut budget_denials = 0u64;
        let mut queue_wait = LogHistogram::new();
        let mut hedge_wait = LogHistogram::new();
        let mut service = LogHistogram::new();
        let mut slack_by_class: BTreeMap<u8, LogHistogram> = BTreeMap::new();
        let mut lateness_by_class: BTreeMap<u8, LogHistogram> = BTreeMap::new();
        for ev in events {
            match *ev {
                TraceEvent::QueryAdmitted { .. } => admitted += 1,
                TraceEvent::QueryRejected { .. } => rejected += 1,
                TraceEvent::TaskEnqueued { .. } => enqueued += 1,
                TraceEvent::TaskDequeued {
                    class,
                    kind,
                    waited,
                    slack_ns,
                    ..
                } => {
                    dequeued += 1;
                    queue_wait.record(waited.as_millis_f64());
                    if kind == AttemptKind::Hedge {
                        hedge_wait.record(waited.as_millis_f64());
                    }
                    let slack_ms = slack_ns as f64 / 1e6;
                    if slack_ns >= 0 {
                        slack_by_class.entry(class).or_default().record(slack_ms);
                    } else {
                        lateness_by_class
                            .entry(class)
                            .or_default()
                            .record(-slack_ms);
                    }
                }
                TraceEvent::DeadlineMissed { .. } => missed += 1,
                TraceEvent::HedgeIssued { .. } => {}
                TraceEvent::TaskCancelled { .. } => cancelled += 1,
                TraceEvent::TaskCompleted { busy, .. } => {
                    completed += 1;
                    service.record(busy.as_millis_f64());
                }
                TraceEvent::TaskLost { .. } => lost += 1,
                TraceEvent::AdmissionPause { .. } => pauses += 1,
                TraceEvent::AdmissionResume { .. } => resumes += 1,
                TraceEvent::LeaseReclaimed { .. } => reclaimed += 1,
                TraceEvent::DuplicateSuppressed { .. } => dup_suppressed += 1,
                TraceEvent::StaleCommitRejected { .. } => stale_rejected += 1,
                TraceEvent::ServerEjected { .. } => ejections += 1,
                TraceEvent::ServerReadmitted { .. } => readmissions += 1,
                TraceEvent::HedgeBudgetExhausted { .. } => budget_denials += 1,
            }
        }
        // Metric names appear exactly when their events did, matching the
        // previous per-event behaviour.
        let counters: [(&str, &'static str, u64); 16] = [
            (
                "tailguard_queries_admitted_total",
                "Queries that passed admission control",
                admitted,
            ),
            (
                "tailguard_queries_rejected_total",
                "Queries turned away by admission control",
                rejected,
            ),
            (
                "tailguard_tasks_enqueued_total",
                "Task attempts enqueued (originals, hedges, retries)",
                enqueued,
            ),
            (
                "tailguard_tasks_dequeued_total",
                "Task attempts that entered service",
                dequeued,
            ),
            (
                "tailguard_tasks_deadline_missed_total",
                "Task attempts that dequeued past their deadline t_D",
                missed,
            ),
            (
                "tailguard_tasks_cancelled_at_dequeue_total",
                "Queued attempts discarded because their slot had resolved",
                cancelled,
            ),
            (
                "tailguard_tasks_completed_total",
                "Task attempts that finished service",
                completed,
            ),
            (
                "tailguard_tasks_lost_total",
                "In-service attempts lost to faults or worker failures",
                lost,
            ),
            (
                "tailguard_admission_pauses_total",
                "Admission flips from admitting to rejecting",
                pauses,
            ),
            (
                "tailguard_admission_resumes_total",
                "Admission flips from rejecting back to admitting",
                resumes,
            ),
            (
                "tailguard_leases_reclaimed_total",
                "Expired leases reclaimed (attempt re-enqueued or cancelled)",
                reclaimed,
            ),
            (
                "tailguard_duplicates_suppressed_total",
                "Redelivered results suppressed by idempotent commit",
                dup_suppressed,
            ),
            (
                "tailguard_stale_commits_rejected_total",
                "Zombie results fenced off by lease-token mismatch",
                stale_rejected,
            ),
            (
                "tailguard_trace_server_ejections_total",
                "Server-ejection flips narrated into the trace stream",
                ejections,
            ),
            (
                "tailguard_trace_server_readmissions_total",
                "Server-readmission flips narrated into the trace stream",
                readmissions,
            ),
            (
                "tailguard_trace_budget_denials_total",
                "Hedges/retries denied by an empty per-class token bucket",
                budget_denials,
            ),
        ];
        for (name, help, count) in counters {
            if count > 0 {
                self.counter_add(name, help, count);
            }
        }
        self.histogram_merge(
            "tailguard_queue_wait_ms",
            "Pre-dequeuing wait per task attempt",
            queue_wait,
        );
        self.histogram_merge(
            "tailguard_hedge_wait_ms",
            "Pre-dequeuing wait of hedge copies",
            hedge_wait,
        );
        self.histogram_merge(
            "tailguard_service_ms",
            "Service time per completed task attempt",
            service,
        );
        for (class, h) in slack_by_class {
            self.histogram_merge(
                &format!("tailguard_dequeue_slack_ms{{class=\"{class}\"}}"),
                "Deadline slack at dequeue (on-time attempts)",
                h,
            );
        }
        for (class, h) in lateness_by_class {
            self.histogram_merge(
                &format!("tailguard_dequeue_lateness_ms{{class=\"{class}\"}}"),
                "How far past t_D late attempts dequeued",
                h,
            );
        }
    }

    /// Merges a locally accumulated histogram into a named one, creating
    /// the name only when there is something to merge (so batched
    /// ingestion exposes exactly the names per-event recording would).
    fn histogram_merge(&mut self, name: &str, help: &'static str, h: LogHistogram) {
        if h.is_empty() {
            return;
        }
        let entry = self.histograms.entry(name.to_string()).or_insert(Entry {
            help,
            value: LogHistogram::new(),
        });
        entry.value.merge(&h);
    }

    /// Publishes the handler's [`RobustnessStats`] under the
    /// `tailguard_mitigation_*` names.
    pub fn ingest_robustness(&mut self, rs: &RobustnessStats) {
        self.counter_set(
            "tailguard_mitigation_hedges_issued_total",
            "Hedge copies issued (budget threshold crossed)",
            rs.hedges_issued,
        );
        self.counter_set(
            "tailguard_mitigation_hedge_wins_total",
            "Hedge copies that beat the original",
            rs.hedge_wins,
        );
        self.counter_set(
            "tailguard_mitigation_retries_total",
            "Retry copies issued for fault-lost tasks",
            rs.retries,
        );
        self.counter_set(
            "tailguard_mitigation_task_wins_total",
            "Attempts that resolved their slot first",
            rs.task_wins,
        );
        self.counter_set(
            "tailguard_mitigation_cancelled_tasks_total",
            "Attempts discarded because their slot was already resolved",
            rs.cancelled_tasks,
        );
        self.counter_set(
            "tailguard_mitigation_tasks_lost_total",
            "Attempts lost to injected faults or worker failures",
            rs.tasks_lost_to_faults,
        );
        self.counter_set(
            "tailguard_mitigation_partial_completions_total",
            "Queries that completed at quorum with missing results",
            rs.partial_completions,
        );
        self.counter_set(
            "tailguard_mitigation_failed_queries_total",
            "Queries whose every task was lost",
            rs.failed_queries,
        );
        self.counter_set(
            "tailguard_mitigation_budget_exhausted_total",
            "Hedges/retries denied by the per-class outstanding-duplicate cap",
            rs.budget_exhausted,
        );
    }

    /// Publishes the state store's [`LifecycleStats`]: end-of-run task
    /// state gauges plus lease/reclaim/duplicate/stale counters. The
    /// counter names shared with [`Registry::ingest_events`] are
    /// *overwritten* with the store's authoritative values (the stats
    /// survive ring-recorder eviction; the values agree whenever no events
    /// were dropped), so calling both in either order is safe.
    pub fn ingest_lifecycle(&mut self, lc: &LifecycleStats) {
        self.gauge_set(
            "tailguard_tasks_queued",
            "Task attempts still queued at end of run",
            lc.queued as f64,
        );
        self.gauge_set(
            "tailguard_tasks_leased",
            "Task attempts holding an uncommitted lease at end of run",
            lc.leased as f64,
        );
        self.gauge_set(
            "tailguard_tasks_running",
            "Task attempts in service at end of run",
            lc.running as f64,
        );
        self.counter_set(
            "tailguard_tasks_state_completed_total",
            "Task attempts whose commit was accepted by the state store",
            lc.completed,
        );
        self.counter_set(
            "tailguard_tasks_state_failed_total",
            "Task attempts that terminally failed (lost or cancelled)",
            lc.failed,
        );
        self.counter_set(
            "tailguard_leases_issued_total",
            "Leases issued at dequeue (one per dispatch)",
            lc.leases_issued,
        );
        self.counter_set(
            "tailguard_leases_reclaimed_total",
            "Expired leases reclaimed (attempt re-enqueued or cancelled)",
            lc.reclaims,
        );
        self.counter_set(
            "tailguard_duplicates_suppressed_total",
            "Redelivered results suppressed by idempotent commit",
            lc.duplicates_suppressed,
        );
        self.counter_set(
            "tailguard_stale_commits_rejected_total",
            "Zombie results fenced off by lease-token mismatch",
            lc.stale_commits_rejected,
        );
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (`# HELP`/`# TYPE` plus samples; histograms as cumulative
    /// `_bucket{le=…}`/`_sum`/`_count` at log-spaced boundaries). Time
    /// series expose their most recent sample as a gauge — the full series
    /// lives in [`Registry::snapshot`].
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, e) in &self.counters {
            let (base, labels) = split_labels(name);
            if base != last_base {
                out.push_str(&format!(
                    "# HELP {base} {}\n# TYPE {base} counter\n",
                    e.help
                ));
                last_base = base.to_string();
            }
            out.push_str(&format!("{base}{labels} {}\n", e.value));
        }
        for (name, e) in &self.gauges {
            let (base, labels) = split_labels(name);
            if base != last_base {
                out.push_str(&format!("# HELP {base} {}\n# TYPE {base} gauge\n", e.help));
                last_base = base.to_string();
            }
            out.push_str(&format!("{base}{labels} {}\n", fmt_f64(e.value)));
        }
        for (name, e) in &self.series {
            let (base, labels) = split_labels(name);
            let Some(&(_, latest)) = e.value.last() else {
                continue;
            };
            if base != last_base {
                out.push_str(&format!(
                    "# HELP {base} {} (latest sample)\n# TYPE {base} gauge\n",
                    e.help
                ));
                last_base = base.to_string();
            }
            out.push_str(&format!("{base}{labels} {}\n", fmt_f64(latest)));
        }
        for (name, e) in &self.histograms {
            let (base, labels) = split_labels(name);
            if base != last_base {
                out.push_str(&format!(
                    "# HELP {base} {}\n# TYPE {base} histogram\n",
                    e.help
                ));
                last_base = base.to_string();
            }
            let h = &e.value;
            let total = units::sat_f64_to_u64(h.count());
            for le in EXPO_BOUNDS_MS {
                let cum = units::sat_f64_to_u64(h.cdf(le) * h.count());
                out.push_str(&format!(
                    "{base}_bucket{} {cum}\n",
                    with_le(labels, &fmt_f64(le))
                ));
            }
            out.push_str(&format!(
                "{base}_bucket{} {total}\n",
                with_le(labels, "+Inf")
            ));
            out.push_str(&format!(
                "{base}_sum{labels} {}\n",
                fmt_f64(h.mean() * h.count())
            ));
            out.push_str(&format!("{base}_count{labels} {total}\n"));
        }
        out
    }

    /// A serializable snapshot of everything in the registry; histograms
    /// are summarized as count/mean/p50/p99/max quantiles.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, e)| CounterSnapshot {
                    name: name.clone(),
                    value: e.value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(name, e)| GaugeSnapshot {
                    name: name.clone(),
                    value: e.value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, e)| HistogramSnapshot {
                    name: name.clone(),
                    count: units::sat_f64_to_u64(e.value.count()),
                    mean_ms: e.value.mean(),
                    p50_ms: e.value.quantile(0.50),
                    p99_ms: e.value.quantile(0.99),
                })
                .collect(),
            series: self
                .series
                .iter()
                .map(|(name, e)| SeriesSnapshot {
                    name: name.clone(),
                    points: e
                        .value
                        .iter()
                        .map(|&(at_ns, value)| SeriesPoint { at_ns, value })
                        .collect(),
                })
                .collect(),
        }
    }

    /// The snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        // tg-lint: allow(unwrap-in-lib) -- pure in-memory serialization of plain structs cannot fail
        serde_json::to_string_pretty(&self.snapshot()).expect("registry snapshot serializes")
    }
}

/// Splits `name{labels}` into `(base, "{labels}")` (labels may be empty).
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => name.split_at(i),
        None => (name, ""),
    }
}

/// Merges an `le` label into an existing (possibly empty) label set.
fn with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!(
            "{}le=\"{le}\"}}",
            labels.strip_suffix('}').unwrap_or(labels).to_string() + ","
        )
    }
}

/// Formats an f64 the way Prometheus expects (no trailing `.0` noise for
/// integers, plain decimal otherwise).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // tg-lint: allow(lossy-cast) -- display-only truncation: the value was just checked integral and below 1e15
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One counter in a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize)]
pub struct CounterSnapshot {
    /// Metric name (labels included).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One gauge in a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize)]
pub struct GaugeSnapshot {
    /// Metric name (labels included).
    pub name: String,
    /// Current value.
    pub value: f64,
}

/// One histogram summary in a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Metric name (labels included).
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Mean observation (ms).
    pub mean_ms: f64,
    /// Median (ms).
    pub p50_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
}

/// One time series in a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize)]
pub struct SeriesSnapshot {
    /// Series name.
    pub name: String,
    /// Samples, oldest first.
    pub points: Vec<SeriesPoint>,
}

/// One sample of a [`SeriesSnapshot`].
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SeriesPoint {
    /// Sample time in nanoseconds on the producing runtime's clock.
    pub at_ns: u64,
    /// Sampled value.
    pub value: f64,
}

/// A point-in-time copy of a [`Registry`], serializable to JSON.
#[derive(Debug, Clone, Serialize)]
pub struct RegistrySnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// All time series, sorted by name.
    pub series: Vec<SeriesSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_simcore::SimDuration;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut r = Registry::new();
        r.counter_add("tailguard_queries_admitted_total", "h", 2);
        r.counter_add("tailguard_queries_admitted_total", "h", 3);
        r.gauge_set("tailguard_queue_depth", "h", 7.0);
        r.histogram_record("tailguard_service_ms", "h", 1.5);
        r.series_push("tailguard_miss_ratio", "h", SimTime::from_millis(5), 0.25);
        assert_eq!(r.counter("tailguard_queries_admitted_total"), Some(5));
        assert_eq!(r.gauge("tailguard_queue_depth"), Some(7.0));
        assert_eq!(
            r.histogram("tailguard_service_ms").unwrap().count().round(),
            1.0
        );
        assert_eq!(
            r.series("tailguard_miss_ratio"),
            Some(&[(5_000_000u64, 0.25)][..])
        );
    }

    #[test]
    fn exposition_has_types_help_and_buckets() {
        let mut r = Registry::new();
        r.counter_add("tailguard_tasks_dequeued_total", "Dequeues", 4);
        r.gauge_set("tailguard_queue_depth", "Depth", 2.0);
        for v in [0.02, 0.2, 2.0, 20.0] {
            r.histogram_record("tailguard_queue_wait_ms", "Wait", v);
        }
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE tailguard_tasks_dequeued_total counter"));
        assert!(text.contains("tailguard_tasks_dequeued_total 4"));
        assert!(text.contains("# TYPE tailguard_queue_depth gauge"));
        assert!(text.contains("# TYPE tailguard_queue_wait_ms histogram"));
        assert!(text.contains("tailguard_queue_wait_ms_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("tailguard_queue_wait_ms_count 4"));
        // Cumulative buckets are monotone.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("tailguard_queue_wait_ms_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn labeled_histograms_share_one_type_line() {
        let mut r = Registry::new();
        r.histogram_record("tailguard_dequeue_slack_ms{class=\"0\"}", "Slack", 1.0);
        r.histogram_record("tailguard_dequeue_slack_ms{class=\"1\"}", "Slack", 2.0);
        let text = r.prometheus_text();
        assert_eq!(
            text.matches("# TYPE tailguard_dequeue_slack_ms histogram")
                .count(),
            1
        );
        assert!(text.contains("tailguard_dequeue_slack_ms_bucket{class=\"0\",le=\"+Inf\"} 1"));
        assert!(text.contains("tailguard_dequeue_slack_ms_count{class=\"1\"} 1"));
    }

    #[test]
    fn ingest_events_builds_lifecycle_counters_and_phase_histograms() {
        let mut r = Registry::new();
        let events = [
            TraceEvent::QueryAdmitted {
                at: SimTime::ZERO,
                query: 0,
                class: 0,
                fanout: 1,
                deadline: SimTime::from_millis(1),
            },
            TraceEvent::TaskDequeued {
                at: SimTime::ZERO,
                task: 0,
                slot: 0,
                query: 0,
                class: 0,
                kind: AttemptKind::Original,
                server: 0,
                token: tailguard_sched::LeaseToken(1),
                waited: SimDuration::from_millis(2),
                slack_ns: -1_000_000,
            },
            TraceEvent::TaskCompleted {
                at: SimTime::from_millis(3),
                task: 0,
                slot: 0,
                query: 0,
                server: 0,
                busy: SimDuration::from_millis(3),
                won: true,
            },
            TraceEvent::LeaseReclaimed {
                at: SimTime::from_millis(4),
                task: 1,
                query: 1,
                server: 0,
                token: tailguard_sched::LeaseToken(2),
            },
            TraceEvent::DuplicateSuppressed {
                at: SimTime::from_millis(5),
                task: 0,
                query: 0,
                server: 0,
            },
        ];
        r.ingest_events(&events);
        assert_eq!(r.counter("tailguard_queries_admitted_total"), Some(1));
        assert_eq!(r.counter("tailguard_tasks_dequeued_total"), Some(1));
        assert_eq!(r.counter("tailguard_leases_reclaimed_total"), Some(1));
        assert_eq!(r.counter("tailguard_duplicates_suppressed_total"), Some(1));
        assert!(r.histogram("tailguard_queue_wait_ms").is_some());
        assert!(r.histogram("tailguard_service_ms").is_some());
        assert!(
            r.histogram("tailguard_dequeue_lateness_ms{class=\"0\"}")
                .is_some(),
            "negative slack lands in the lateness histogram"
        );
    }

    #[test]
    fn ingest_lifecycle_publishes_gauges_and_counters() {
        let mut r = Registry::new();
        // Simulate the event-derived value being present first: the
        // authoritative store value must overwrite it.
        r.counter_add("tailguard_leases_reclaimed_total", "h", 1);
        let lc = LifecycleStats {
            queued: 2,
            leased: 1,
            running: 3,
            completed: 40,
            failed: 5,
            leases_issued: 48,
            reclaims: 6,
            duplicates_suppressed: 7,
            stale_commits_rejected: 8,
        };
        r.ingest_lifecycle(&lc);
        assert_eq!(r.gauge("tailguard_tasks_queued"), Some(2.0));
        assert_eq!(r.gauge("tailguard_tasks_leased"), Some(1.0));
        assert_eq!(r.gauge("tailguard_tasks_running"), Some(3.0));
        assert_eq!(r.counter("tailguard_tasks_state_completed_total"), Some(40));
        assert_eq!(r.counter("tailguard_tasks_state_failed_total"), Some(5));
        assert_eq!(r.counter("tailguard_leases_issued_total"), Some(48));
        assert_eq!(r.counter("tailguard_leases_reclaimed_total"), Some(6));
        assert_eq!(r.counter("tailguard_duplicates_suppressed_total"), Some(7));
        assert_eq!(r.counter("tailguard_stale_commits_rejected_total"), Some(8));
    }

    #[test]
    fn json_snapshot_serializes() {
        let mut r = Registry::new();
        r.counter_add("tailguard_queries_admitted_total", "h", 1);
        r.histogram_record("tailguard_service_ms", "h", 0.5);
        r.series_push("tailguard_queue_depth", "h", SimTime::from_millis(1), 3.0);
        let json = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v.get("counters").unwrap().is_array());
        assert!(v.get("series").unwrap().is_array());
    }
}

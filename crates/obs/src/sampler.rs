//! Tail-aware sampling of the binary event stream.
//!
//! Uniform sampling of trace events is the wrong tool for tail-latency
//! work: the events that explain a P99 miss are, by definition, rare, and
//! a 1% uniform sample discards 99% of them. [`TailSampler`] instead
//! buffers each query's events as an encoded bundle until the query's
//! last attempt resolves, then keeps the whole bundle if anything
//! *interesting* happened to it — a deadline miss, hedge, retry, lost
//! task, lease reclaim, fencing rejection, budget denial, or a dequeue
//! slower than a threshold — and otherwise keeps only a deterministic
//! fraction of the healthy bundles. Every retained query is complete
//! (admission through final completion), so timeline reconstruction
//! still works on the sampled stream.
//!
//! Healthy-query retention hashes the query id through SplitMix64, so the
//! same run keeps the same queries regardless of `--jobs` or runtime —
//! sampling never perturbs the determinism story. Cluster-scoped events
//! (rejections, admission flips, server ejections) carry no query id and
//! always pass straight through.

use crate::codec::{encode_append, EVENT_BYTES};
use tailguard_sched::{AttemptKind, QueryId, TraceEvent};
use tailguard_simcore::SimDuration;

/// What the sampler keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Per-mille of *healthy* query bundles to retain (0..=1000; 1000
    /// keeps everything and reduces the sampler to bundling overhead).
    /// Interesting bundles are always retained.
    pub keep_permille: u16,
    /// A dequeue that waited at least this long marks its query
    /// interesting even if the deadline ultimately held — the near-misses
    /// tail analysis wants alongside the misses.
    pub slow_after: SimDuration,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            keep_permille: 10,
            slow_after: SimDuration::from_millis(20),
        }
    }
}

/// SplitMix64 finalizer: a fixed, high-quality 64-bit mix used to turn a
/// query id into a stable sampling decision. Deterministic by design —
/// no seed, no process entropy.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One query's buffered, encoded events plus the state needed to decide
/// when the query is finished and whether it was interesting.
struct Bundle {
    query: QueryId,
    /// Encoded events, [`EVENT_BYTES`] each, in emission order.
    buf: Vec<u8>,
    /// Attempts enqueued and not yet terminal. The bundle closes when
    /// this returns to zero after having been positive.
    open_attempts: u32,
    /// Whether anything tail-relevant happened; set once, never cleared.
    interesting: bool,
    /// A lease reclaim re-enqueues the *same* task id; this marker makes
    /// the follow-up `TaskEnqueued` not double-count the attempt (and a
    /// follow-up `TaskCancelled` still decrement it once).
    reclaim_pending: bool,
}

const NO_BUNDLE: u32 = u32::MAX;

/// The tail-aware sampler. Feed events through [`TailSampler::offer`];
/// retained encoded bytes are appended to the caller's buffer and the
/// number of healthy-sampled-away events is returned as a delta. Call
/// [`TailSampler::finish`] (or let the owning sink drop) to flush queries
/// still open at end of stream — those are always retained, since an
/// unresolved query at shutdown is itself interesting.
pub struct TailSampler {
    config: SamplerConfig,
    /// Dense query-id → slab index (+[`NO_BUNDLE`] for absent). Query ids
    /// are handler-assigned sequentially, so a flat Vec beats a map.
    slots: Vec<u32>,
    bundles: Vec<Bundle>,
    free: Vec<u32>,
    /// A query whose open-attempt count just hit zero. Closing is
    /// deferred one event because a lost task and its retry re-enqueue
    /// share a timestamp: if the next event belongs to this query the
    /// bundle silently reopens, otherwise it is finalized.
    pending_close: Option<QueryId>,
}

impl TailSampler {
    /// A sampler with the given retention policy.
    pub fn new(config: SamplerConfig) -> Self {
        TailSampler {
            config,
            slots: Vec::new(),
            bundles: Vec::new(),
            free: Vec::new(),
            pending_close: None,
        }
    }

    /// Whether this query id survives healthy sampling.
    fn keeps_healthy(&self, query: QueryId) -> bool {
        splitmix64(u64::from(query)) % 1000 < u64::from(self.config.keep_permille)
    }

    fn bundle_index(&self, query: QueryId) -> Option<usize> {
        match self.slots.get(query as usize) {
            Some(&idx) if idx != NO_BUNDLE => Some(idx as usize),
            _ => None,
        }
    }

    fn open_bundle(&mut self, query: QueryId, interesting: bool) -> usize {
        if self.slots.len() <= query as usize {
            self.slots.resize(query as usize + 1, NO_BUNDLE);
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                // tg-lint: allow(panic-surface) -- bundle/slot tables: `idx` comes from sentinel-checked `slots` entries or the free list, both minted by this sampler; `bundles` is non-empty right after the push above
                let b = &mut self.bundles[idx as usize];
                b.query = query;
                b.buf.clear();
                b.open_attempts = 0;
                b.interesting = interesting;
                b.reclaim_pending = false;
                idx as usize
            }
            None => {
                self.bundles.push(Bundle {
                    query,
                    buf: Vec::new(),
                    open_attempts: 0,
                    interesting,
                    reclaim_pending: false,
                });
                // tg-lint: allow(panic-surface) -- bundle/slot tables: `idx` comes from sentinel-checked `slots` entries or the free list, both minted by this sampler; `bundles` is non-empty right after the push above
                self.bundles.len() - 1
            }
        };
        // tg-lint: allow(lossy-cast, panic-surface) -- bundle/slot tables: `idx` comes from sentinel-checked `slots` entries or the free list, both minted by this sampler; `bundles` is non-empty right after the push above
        self.slots[query as usize] = idx as u32;
        idx
    }

    /// Finalizes one bundle: appends its bytes to `out` if retained,
    /// returns the number of events discarded otherwise.
    fn finalize(&mut self, query: QueryId, out: &mut Vec<u8>) -> u64 {
        let Some(idx) = self.bundle_index(query) else {
            return 0;
        };
        // tg-lint: allow(panic-surface) -- bundle/slot tables: `idx` comes from sentinel-checked `slots` entries or the free list, both minted by this sampler; `bundles` is non-empty right after the push above
        self.slots[query as usize] = NO_BUNDLE;
        // tg-lint: allow(panic-surface) -- bundle/slot tables: `idx` comes from sentinel-checked `slots` entries or the free list, both minted by this sampler; `bundles` is non-empty right after the push above
        let keep = self.bundles[idx].interesting || self.keeps_healthy(query);
        let discarded = if keep {
            // tg-lint: allow(panic-surface) -- bundle/slot tables: `idx` comes from sentinel-checked `slots` entries or the free list, both minted by this sampler; `bundles` is non-empty right after the push above
            out.extend_from_slice(&self.bundles[idx].buf);
            0
        } else {
            // tg-lint: allow(panic-surface) -- bundle/slot tables: `idx` comes from sentinel-checked `slots` entries or the free list, both minted by this sampler; `bundles` is non-empty right after the push above
            (self.bundles[idx].buf.len() / EVENT_BYTES) as u64
        };
        // tg-lint: allow(lossy-cast) -- bundle indices are bounded by the bundle pool size, far below 2^32
        self.free.push(idx as u32);
        discarded
    }

    /// Offers one event. Encoded bytes of events/bundles decided *kept*
    /// are appended to `out`; the return value is how many events were
    /// discarded by healthy sampling as a result of this call.
    pub fn offer(&mut self, ev: &TraceEvent, out: &mut Vec<u8>) -> u64 {
        let query = ev.query();
        let mut discarded = 0;
        if let Some(closing) = self.pending_close {
            if query == Some(closing) {
                // Same query again (e.g. a same-timestamp retry
                // re-enqueue): the close was premature, reopen.
                self.pending_close = None;
            } else {
                discarded += self.finalize(closing, out);
                self.pending_close = None;
            }
        }
        let Some(q) = query else {
            // Cluster-scoped event: always retained, never bundled.
            encode_append(ev, out);
            return discarded;
        };
        // A query-scoped event for a query without a bundle is
        // post-terminal (a late duplicate or zombie commit after the
        // bundle closed) or pre-installation; either way it is
        // tail-relevant, so the fresh bundle starts interesting.
        let idx = match self.bundle_index(q) {
            Some(idx) => idx,
            None => {
                let recreated = !matches!(ev, TraceEvent::QueryAdmitted { .. });
                let idx = self.open_bundle(q, recreated);
                if recreated {
                    self.pending_close = Some(q);
                }
                idx
            }
        };
        // tg-lint: allow(panic-surface) -- bundle/slot tables: `idx` comes from sentinel-checked `slots` entries or the free list, both minted by this sampler; `bundles` is non-empty right after the push above
        let b = &mut self.bundles[idx];
        encode_append(ev, &mut b.buf);
        match *ev {
            TraceEvent::TaskEnqueued { kind, .. } => {
                if b.reclaim_pending {
                    b.reclaim_pending = false;
                } else {
                    b.open_attempts += 1;
                }
                if kind != AttemptKind::Original {
                    b.interesting = true;
                }
            }
            TraceEvent::TaskDequeued { waited, .. } if waited >= self.config.slow_after => {
                b.interesting = true;
            }
            TraceEvent::LeaseReclaimed { .. } => {
                b.interesting = true;
                b.reclaim_pending = true;
            }
            TraceEvent::DeadlineMissed { .. }
            | TraceEvent::HedgeIssued { .. }
            | TraceEvent::DuplicateSuppressed { .. }
            | TraceEvent::StaleCommitRejected { .. }
            | TraceEvent::HedgeBudgetExhausted { .. } => {
                b.interesting = true;
            }
            TraceEvent::TaskCompleted { .. }
            | TraceEvent::TaskCancelled { .. }
            | TraceEvent::TaskLost { .. } => {
                if matches!(ev, TraceEvent::TaskCancelled { .. }) && b.reclaim_pending {
                    b.reclaim_pending = false;
                }
                if matches!(ev, TraceEvent::TaskLost { .. }) {
                    b.interesting = true;
                }
                b.open_attempts = b.open_attempts.saturating_sub(1);
                if b.open_attempts == 0 {
                    self.pending_close = Some(q);
                }
            }
            _ => {}
        }
        discarded
    }

    /// Flushes every bundle still open, in query-id order, marking them
    /// retained (an unresolved query at end of stream is interesting).
    /// Returns the healthy-sampled-away count from closing the pending
    /// query, if any.
    pub fn finish(&mut self, out: &mut Vec<u8>) -> u64 {
        let mut discarded = 0;
        if let Some(closing) = self.pending_close.take() {
            discarded += self.finalize(closing, out);
        }
        for q in 0..self.slots.len() {
            if self.slots[q] != NO_BUNDLE {
                let idx = self.slots[q] as usize;
                // tg-lint: allow(panic-surface) -- bundle/slot tables: `idx` comes from sentinel-checked `slots` entries or the free list, both minted by this sampler; `bundles` is non-empty right after the push above
                self.bundles[idx].interesting = true;
                discarded += self.finalize(q as QueryId, out);
            }
        }
        discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_stream;
    use tailguard_sched::LeaseToken;
    use tailguard_simcore::SimTime;

    fn config(keep_permille: u16) -> SamplerConfig {
        SamplerConfig {
            keep_permille,
            slow_after: SimDuration::from_millis(20),
        }
    }

    /// A minimal healthy query: admit, enqueue, dequeue, complete.
    fn healthy_query(q: QueryId, task: u32) -> Vec<TraceEvent> {
        vec![
            TraceEvent::QueryAdmitted {
                at: SimTime::from_millis(1),
                query: q,
                class: 0,
                fanout: 1,
                deadline: SimTime::from_millis(11),
            },
            TraceEvent::TaskEnqueued {
                at: SimTime::from_millis(1),
                task,
                slot: task,
                query: q,
                class: 0,
                server: 0,
                kind: AttemptKind::Original,
                deadline: SimTime::from_millis(11),
            },
            TraceEvent::TaskDequeued {
                at: SimTime::from_millis(2),
                task,
                slot: task,
                query: q,
                class: 0,
                kind: AttemptKind::Original,
                server: 0,
                token: LeaseToken(1),
                waited: SimDuration::from_millis(1),
                slack_ns: 9_000_000,
            },
            TraceEvent::TaskCompleted {
                at: SimTime::from_millis(3),
                task,
                slot: task,
                query: q,
                server: 0,
                busy: SimDuration::from_millis(1),
                won: true,
            },
        ]
    }

    fn run(sampler: &mut TailSampler, events: &[TraceEvent]) -> (Vec<TraceEvent>, u64) {
        let mut out = Vec::new();
        let mut discarded = 0;
        for ev in events {
            discarded += sampler.offer(ev, &mut out);
        }
        discarded += sampler.finish(&mut out);
        let (decoded, corrupt) = decode_stream(&out);
        assert_eq!(corrupt, 0);
        (decoded, discarded)
    }

    #[test]
    fn keep_all_retains_every_event_in_order() {
        let mut events = healthy_query(0, 0);
        events.extend(healthy_query(1, 1));
        let mut sampler = TailSampler::new(config(1000));
        let (decoded, discarded) = run(&mut sampler, &events);
        assert_eq!(discarded, 0);
        assert_eq!(decoded, events);
    }

    #[test]
    fn keep_none_discards_healthy_but_keeps_misses() {
        let mut events = healthy_query(0, 0);
        let miss_query = healthy_query(1, 1);
        events.extend(&miss_query);
        events.insert(
            events.len() - 1,
            TraceEvent::DeadlineMissed {
                at: SimTime::from_millis(2),
                task: 1,
                query: 1,
                server: 0,
                late_by: SimDuration::from_millis(1),
            },
        );
        let mut sampler = TailSampler::new(config(0));
        let (decoded, discarded) = run(&mut sampler, &events);
        assert_eq!(discarded, 4, "the healthy query's 4 events are dropped");
        assert_eq!(decoded.len(), 5, "the missing query kept whole");
        assert!(decoded.iter().all(|e| e.query() == Some(1)));
    }

    #[test]
    fn slow_dequeue_marks_query_interesting() {
        let mut events = healthy_query(0, 0);
        if let TraceEvent::TaskDequeued { waited, .. } = &mut events[2] {
            *waited = SimDuration::from_millis(25);
        }
        let mut sampler = TailSampler::new(config(0));
        let (decoded, discarded) = run(&mut sampler, &events);
        assert_eq!(discarded, 0);
        assert_eq!(decoded, events);
    }

    #[test]
    fn hedge_kind_enqueue_marks_query_interesting() {
        let mut events = healthy_query(0, 0);
        if let TraceEvent::TaskEnqueued { kind, .. } = &mut events[1] {
            *kind = AttemptKind::Hedge;
        }
        let mut sampler = TailSampler::new(config(0));
        let (decoded, _) = run(&mut sampler, &events);
        assert_eq!(decoded, events);
    }

    #[test]
    fn cluster_events_always_pass_through() {
        let events = [
            TraceEvent::AdmissionPause {
                at: SimTime::from_millis(1),
            },
            TraceEvent::ServerEjected {
                at: SimTime::from_millis(2),
                server: 3,
            },
            TraceEvent::QueryRejected {
                at: SimTime::from_millis(3),
                class: 0,
                fanout: 4,
            },
        ];
        let mut sampler = TailSampler::new(config(0));
        let (decoded, discarded) = run(&mut sampler, &events);
        assert_eq!(discarded, 0);
        assert_eq!(decoded, events);
    }

    #[test]
    fn reclaim_reenqueue_does_not_double_count_attempts() {
        // One task: enqueue, dequeue, lease reclaimed, re-enqueued (same
        // task id), dequeued again, completed. If the re-enqueue
        // double-counted, the bundle would never close and `finish` would
        // flush it; instead it must close at the completion.
        let q = 0;
        let deadline = SimTime::from_millis(11);
        let events = vec![
            TraceEvent::QueryAdmitted {
                at: SimTime::from_millis(1),
                query: q,
                class: 0,
                fanout: 1,
                deadline,
            },
            TraceEvent::TaskEnqueued {
                at: SimTime::from_millis(1),
                task: 0,
                slot: 0,
                query: q,
                class: 0,
                server: 0,
                kind: AttemptKind::Original,
                deadline,
            },
            TraceEvent::TaskDequeued {
                at: SimTime::from_millis(2),
                task: 0,
                slot: 0,
                query: q,
                class: 0,
                kind: AttemptKind::Original,
                server: 0,
                token: LeaseToken(1),
                waited: SimDuration::from_millis(1),
                slack_ns: 9_000_000,
            },
            TraceEvent::LeaseReclaimed {
                at: SimTime::from_millis(6),
                task: 0,
                query: q,
                server: 0,
                token: LeaseToken(1),
            },
            TraceEvent::TaskEnqueued {
                at: SimTime::from_millis(6),
                task: 0,
                slot: 0,
                query: q,
                class: 0,
                server: 1,
                kind: AttemptKind::Original,
                deadline,
            },
            TraceEvent::TaskDequeued {
                at: SimTime::from_millis(7),
                task: 0,
                slot: 0,
                query: q,
                class: 0,
                kind: AttemptKind::Original,
                server: 1,
                token: LeaseToken(2),
                waited: SimDuration::from_millis(1),
                slack_ns: 4_000_000,
            },
            TraceEvent::TaskCompleted {
                at: SimTime::from_millis(8),
                task: 0,
                slot: 0,
                query: q,
                server: 1,
                busy: SimDuration::from_millis(1),
                won: true,
            },
        ];
        let mut sampler = TailSampler::new(config(0));
        let mut out = Vec::new();
        for ev in &events {
            sampler.offer(ev, &mut out);
        }
        // Bundle closed by the completion: the next unrelated event
        // finalizes it without waiting for finish().
        sampler.offer(
            &TraceEvent::AdmissionPause {
                at: SimTime::from_millis(9),
            },
            &mut out,
        );
        let (decoded, _) = decode_stream(&out);
        assert_eq!(decoded.len(), events.len() + 1);
        assert_eq!(&decoded[..events.len()], &events[..]);
    }

    #[test]
    fn same_timestamp_lost_retry_reopens_pending_close() {
        let q = 0;
        let deadline = SimTime::from_millis(11);
        let mut events = healthy_query(q, 0);
        events.truncate(3); // admit, enqueue, dequeue
        events.push(TraceEvent::TaskLost {
            at: SimTime::from_millis(5),
            task: 0,
            slot: 0,
            query: q,
            server: 0,
        });
        // Retry re-enqueue at the same instant: open_attempts transiently
        // zero, must not close the bundle.
        events.push(TraceEvent::TaskEnqueued {
            at: SimTime::from_millis(5),
            task: 1,
            slot: 0,
            query: q,
            class: 0,
            server: 1,
            kind: AttemptKind::Retry,
            deadline,
        });
        events.push(TraceEvent::TaskCompleted {
            at: SimTime::from_millis(6),
            task: 1,
            slot: 0,
            query: q,
            server: 1,
            busy: SimDuration::from_millis(1),
            won: true,
        });
        let mut sampler = TailSampler::new(config(0));
        let (decoded, _) = run(&mut sampler, &events);
        assert_eq!(decoded, events, "one contiguous bundle, nothing split");
    }

    #[test]
    fn post_terminal_duplicate_recreates_interesting_bundle() {
        let mut events = healthy_query(0, 0);
        // Closing event for another query, forcing query 0's finalize.
        events.extend(healthy_query(1, 1));
        let late = TraceEvent::DuplicateSuppressed {
            at: SimTime::from_millis(9),
            task: 0,
            query: 0,
            server: 0,
        };
        events.push(late);
        let mut sampler = TailSampler::new(config(0));
        let (decoded, _) = run(&mut sampler, &events);
        assert!(
            decoded.contains(&late),
            "late duplicate for a closed query must be retained"
        );
    }

    #[test]
    fn healthy_sampling_is_deterministic_over_query_id() {
        let mut keep_a = Vec::new();
        for trial in 0..2 {
            let mut sampler = TailSampler::new(config(500));
            let mut events = Vec::new();
            for q in 0..64 {
                events.extend(healthy_query(q, q));
            }
            let (decoded, discarded) = run(&mut sampler, &events);
            let kept: Vec<QueryId> = decoded
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::QueryAdmitted { query, .. } => Some(*query),
                    _ => None,
                })
                .collect();
            assert!(!kept.is_empty() && kept.len() < 64, "~half retained");
            assert_eq!(discarded, (64 - kept.len() as u64) * 4);
            if trial == 0 {
                keep_a = kept;
            } else {
                assert_eq!(keep_a, kept, "same decision on every run");
            }
        }
    }
}

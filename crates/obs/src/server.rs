//! A minimal `/metrics` HTTP endpoint over `std::net`.
//!
//! The vendored tokio stub has no networking, so the exposition endpoint
//! runs on a plain `std::net::TcpListener` in its own thread — which is
//! also the honest architecture: scraping must not contend with the
//! runtime being measured beyond one registry mutex. The server speaks
//! just enough HTTP/1.1 for Prometheus (and `curl`): `GET /metrics`
//! returns the text exposition, everything else a 404.

use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A shareable registry handle: the runtime updates it, the
/// [`MetricsServer`] serves it.
pub type SharedRegistry = Arc<Mutex<Registry>>;

/// Creates a fresh [`SharedRegistry`].
pub fn shared_registry() -> SharedRegistry {
    Arc::new(Mutex::new(Registry::new()))
}

/// The `/metrics` server; shuts down when dropped.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks a free port; read the
    /// actual one from [`MetricsServer::addr`]) and serves `registry`
    /// until the server is dropped.
    pub fn serve(registry: SharedRegistry, port: u16) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tailguard-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // Serve inline: scrapes are rare and tiny, and a
                        // single thread keeps the footprint predictable.
                        let _ = handle_connection(stream, &registry);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (e.g. to build the scrape URL in tests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, registry: &SharedRegistry) -> std::io::Result<()> {
    // Read until the end of the request headers (clients may split the
    // request across writes); cap at the buffer size — a scrape request
    // is tiny.
    let mut buf = [0u8; 1024];
    let mut filled = 0;
    while filled < buf.len() {
        // tg-lint: allow(panic-surface) -- the read loop maintains `filled <= buf.len()`
        let n = stream.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
        // tg-lint: allow(panic-surface) -- the read loop maintains `filled <= buf.len()`
        if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    // tg-lint: allow(panic-surface) -- the read loop maintains `filled <= buf.len()`
    let request = String::from_utf8_lossy(&buf[..filled]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        let body = registry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .prometheus_text();
        ("200 OK", body)
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    /// Extracts the counter value from a scrape response, panicking on a
    /// malformed body — a half-written line means the scrape observed a
    /// torn registry.
    fn admitted_value(response: &str) -> u64 {
        response
            .lines()
            .find(|l| l.starts_with("tailguard_queries_admitted_total "))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .expect("scrape body missing the admitted counter")
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let registry = shared_registry();
        registry
            .lock()
            .unwrap()
            .counter_add("tailguard_queries_admitted_total", "Admitted", 11);
        let server = MetricsServer::serve(Arc::clone(&registry), 0).unwrap();
        let ok = get(server.addr(), "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"));
        assert!(ok.contains("tailguard_queries_admitted_total 11"));
        let missing = get(server.addr(), "/other");
        assert!(missing.starts_with("HTTP/1.1 404"));
        // Scrapes see live updates.
        registry
            .lock()
            .unwrap()
            .counter_add("tailguard_queries_admitted_total", "Admitted", 1);
        assert!(get(server.addr(), "/metrics").contains("tailguard_queries_admitted_total 12"));
    }

    #[test]
    fn concurrent_scrapes_all_succeed() {
        let registry = shared_registry();
        registry
            .lock()
            .unwrap()
            .counter_add("tailguard_queries_admitted_total", "Admitted", 7);
        let server = MetricsServer::serve(Arc::clone(&registry), 0).unwrap();
        let addr = server.addr();
        let scrapers: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut ok = 0;
                    for _ in 0..16 {
                        let response = get(addr, "/metrics");
                        assert!(response.starts_with("HTTP/1.1 200 OK"));
                        assert_eq!(admitted_value(&response), 7);
                        ok += 1;
                    }
                    ok
                })
            })
            .collect();
        let served: usize = scrapers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(served, 8 * 16);
    }

    #[test]
    fn scrapes_during_updates_see_consistent_snapshots() {
        let registry = shared_registry();
        registry
            .lock()
            .unwrap()
            .counter_add("tailguard_queries_admitted_total", "Admitted", 0);
        let server = MetricsServer::serve(Arc::clone(&registry), 0).unwrap();
        let addr = server.addr();
        // A writer hammers the registry while a scraper reads: every
        // response must parse and be monotonically non-decreasing —
        // exposition happens under the registry mutex, so a scrape can
        // never observe a torn or rolled-back counter.
        let writer_registry = Arc::clone(&registry);
        let writer = std::thread::spawn(move || {
            for _ in 0..2_000 {
                writer_registry.lock().unwrap().counter_add(
                    "tailguard_queries_admitted_total",
                    "Admitted",
                    1,
                );
            }
        });
        let mut last = 0;
        for _ in 0..32 {
            let value = admitted_value(&get(addr, "/metrics"));
            assert!(value >= last, "scrape went backwards: {value} after {last}");
            assert!(value <= 2_000);
            last = value;
        }
        writer.join().unwrap();
        assert_eq!(admitted_value(&get(addr, "/metrics")), 2_000);
    }

    #[test]
    fn scrapes_survive_a_poisoned_registry() {
        let registry = shared_registry();
        registry
            .lock()
            .unwrap()
            .counter_add("tailguard_queries_admitted_total", "Admitted", 3);
        let server = MetricsServer::serve(Arc::clone(&registry), 0).unwrap();
        // Poison the mutex: a producer panicking mid-update must not take
        // the exposition endpoint down with it.
        let poisoner = Arc::clone(&registry);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("simulated producer crash while holding the registry");
        })
        .join();
        assert!(registry.is_poisoned(), "test setup failed to poison");
        let response = get(server.addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(admitted_value(&response), 3);
    }
}

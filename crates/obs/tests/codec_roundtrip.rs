//! Property coverage for the 51-byte trace codec: random valid events —
//! including near-`u64::MAX` timestamps — encode→decode bit-identically,
//! and arbitrary byte corruption is *counted*, never a panic. This is the
//! contract the `panic-surface`-clean decode path (fixed field plan, no
//! computed offsets) is supposed to guarantee; see `docs/lint.md`.
//!
//! `proptest` here is the offline stand-in under `third_party/proptest`
//! (version `0.0.0-offline-stub`): deterministic case streams, no
//! shrinking. See `third_party/README.md`.

use proptest::prelude::*;
use tailguard_obs::codec::{decode, decode_stream, encode_append, encode_into, EVENT_BYTES};
use tailguard_sched::{AttemptKind, LeaseToken, TraceEvent};
use tailguard_simcore::{SimDuration, SimRng, SimTime};

const VARIANTS: usize = 17;

/// Draws one random event of the given variant. Times and tokens are drawn
/// from the *full* `u64` range (biased toward the extremes every few
/// draws), so the near-`u64::MAX` regime the Pi→wall scaling audit cares
/// about is exercised constantly, not just by a single pinned case.
fn random_event(variant: usize, rng: &mut SimRng) -> TraceEvent {
    let mut wide = |rng: &mut SimRng| -> u64 {
        if rng.chance(0.25) {
            u64::MAX - rng.u64() % 4
        } else {
            rng.u64()
        }
    };
    let at = SimTime::from_nanos(wide(rng));
    let dur = SimDuration::from_nanos(wide(rng));
    let id = |rng: &mut SimRng| -> u32 { (rng.u64() & 0xFFFF_FFFF) as u32 };
    let kind = match rng.index(3) {
        0 => AttemptKind::Original,
        1 => AttemptKind::Hedge,
        _ => AttemptKind::Retry,
    };
    match variant {
        0 => TraceEvent::QueryAdmitted {
            at,
            query: id(rng),
            class: rng.index(4) as u8,
            fanout: id(rng),
            deadline: SimTime::from_nanos(wide(rng)),
        },
        1 => TraceEvent::QueryRejected {
            at,
            class: rng.index(4) as u8,
            fanout: id(rng),
        },
        2 => TraceEvent::TaskEnqueued {
            at,
            task: id(rng),
            slot: id(rng),
            query: id(rng),
            class: rng.index(4) as u8,
            server: id(rng),
            kind,
            deadline: SimTime::from_nanos(wide(rng)),
        },
        3 => TraceEvent::TaskDequeued {
            at,
            task: id(rng),
            slot: id(rng),
            query: id(rng),
            class: rng.index(4) as u8,
            kind,
            server: id(rng),
            token: LeaseToken(wide(rng)),
            waited: dur,
            slack_ns: wide(rng) as i64,
        },
        4 => TraceEvent::DeadlineMissed {
            at,
            task: id(rng),
            query: id(rng),
            server: id(rng),
            late_by: dur,
        },
        5 => TraceEvent::HedgeIssued {
            at,
            task: id(rng),
            slot: id(rng),
            query: id(rng),
            server: id(rng),
        },
        6 => TraceEvent::TaskCancelled {
            at,
            task: id(rng),
            slot: id(rng),
            query: id(rng),
            server: id(rng),
        },
        7 => TraceEvent::TaskCompleted {
            at,
            task: id(rng),
            slot: id(rng),
            query: id(rng),
            server: id(rng),
            busy: dur,
            won: rng.chance(0.5),
        },
        8 => TraceEvent::TaskLost {
            at,
            task: id(rng),
            slot: id(rng),
            query: id(rng),
            server: id(rng),
        },
        9 => TraceEvent::LeaseReclaimed {
            at,
            task: id(rng),
            query: id(rng),
            server: id(rng),
            token: LeaseToken(wide(rng)),
        },
        10 => TraceEvent::DuplicateSuppressed {
            at,
            task: id(rng),
            query: id(rng),
            server: id(rng),
        },
        11 => TraceEvent::StaleCommitRejected {
            at,
            task: id(rng),
            query: id(rng),
            server: id(rng),
            token: LeaseToken(wide(rng)),
        },
        12 => TraceEvent::AdmissionPause { at },
        13 => TraceEvent::AdmissionResume { at },
        14 => TraceEvent::ServerEjected {
            at,
            server: id(rng),
        },
        15 => TraceEvent::ServerReadmitted {
            at,
            server: id(rng),
        },
        _ => TraceEvent::HedgeBudgetExhausted {
            at,
            slot: id(rng),
            query: id(rng),
            class: rng.index(4) as u8,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity, and re-encoding the decoded event
    /// reproduces the exact bytes (bit-identical, padding included).
    #[test]
    fn random_events_roundtrip_bit_identically(seed in 0u64..u64::MAX) {
        let mut rng = SimRng::seed(seed);
        for variant in 0..VARIANTS {
            let ev = random_event(variant, &mut rng);
            let mut buf = [0u8; EVENT_BYTES];
            encode_into(&ev, &mut buf);
            let back = decode(&buf);
            prop_assert_eq!(back.as_ref(), Some(&ev));
            // The append path must produce the same bytes as the stack path.
            let mut appended = Vec::new();
            encode_append(&ev, &mut appended);
            prop_assert_eq!(&appended[..], &buf[..]);
            // Re-encode the decoded event: byte-for-byte stable.
            let mut again = [0xAAu8; EVENT_BYTES];
            encode_into(&back.expect("decoded above"), &mut again);
            prop_assert_eq!(&again[..], &buf[..]);
        }
    }

    /// Arbitrary single-byte corruption of an encoded stream never panics:
    /// every record either decodes or bumps the corrupt count.
    #[test]
    fn mutated_streams_are_counted_not_panicked(seed in 0u64..u64::MAX) {
        let mut rng = SimRng::seed(seed);
        let mut bytes = Vec::new();
        let n = 8 + rng.index(9);
        for i in 0..n {
            encode_append(&random_event(i % VARIANTS, &mut rng), &mut bytes);
        }
        // Flip a handful of random bytes to random values (tags, kind
        // bytes, and payload alike).
        for _ in 0..4 + rng.index(8) {
            let pos = rng.index(bytes.len());
            bytes[pos] = (rng.u64() & 0xFF) as u8;
        }
        // And sometimes truncate mid-record.
        if rng.chance(0.5) {
            let cut = rng.index(bytes.len());
            bytes.truncate(bytes.len() - cut % EVENT_BYTES);
        }
        let records = bytes.len() / EVENT_BYTES;
        let (events, corrupt) = decode_stream(&bytes);
        // Every whole record is either decoded or counted as corrupt.
        prop_assert_eq!(events.len() as u64 + corrupt, records as u64);
    }
}

//! The per-edge-node sensing data store.

use tailguard_simcore::SimRng;

/// Minutes per sampling interval (the testbed's Pis "receive sensing data
/// periodically"; we default to one record every 10 minutes).
pub const SAMPLE_INTERVAL_MINUTES: u32 = 10;

/// Days of history each edge node keeps (§IV.E: "up to eighteen-month-worth
/// of the data records").
pub const HISTORY_DAYS: u32 = 18 * 30;

/// One temperature/humidity observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorRecord {
    /// Minutes since the start of the node's history window.
    pub ts_minutes: u32,
    /// Temperature in °C.
    pub temperature: f32,
    /// Relative humidity in %.
    pub humidity: f32,
}

/// An in-memory time-series store of one edge node's sensor history.
///
/// Records are generated synthetically (diurnal temperature cycle plus
/// seeded noise) and kept sorted by timestamp, so range retrieval — the
/// testbed's task workload, "one to up to thirty-day-worth of consecutive
/// records starting from a random time" — is a binary search plus a slice.
///
/// # Example
///
/// ```
/// use tailguard_testbed::SensorStore;
///
/// let store = SensorStore::generate(7);
/// let day = store.range_query(0, 1);
/// assert_eq!(day.len(), 144); // one record per 10 minutes
/// let (t, h) = SensorStore::aggregate(day);
/// assert!(t > -20.0 && t < 50.0);
/// assert!((0.0..=100.0).contains(&h));
/// ```
#[derive(Debug, Clone)]
pub struct SensorStore {
    records: Vec<SensorRecord>,
}

impl SensorStore {
    /// Records per day at the default sampling interval.
    pub const RECORDS_PER_DAY: usize = (24 * 60 / SAMPLE_INTERVAL_MINUTES) as usize;

    /// Generates a full eighteen-month history from a seed.
    pub fn generate(seed: u64) -> Self {
        Self::generate_days(seed, HISTORY_DAYS)
    }

    /// Generates `days` days of history (tests use small stores).
    pub fn generate_days(seed: u64, days: u32) -> Self {
        let mut rng = SimRng::seed(seed);
        let total = days as usize * Self::RECORDS_PER_DAY;
        let mut records = Vec::with_capacity(total);
        let base_temp = 18.0 + rng.f64() * 6.0; // node-specific bias
        let base_hum = 35.0 + rng.f64() * 20.0;
        for i in 0..total {
            let ts_minutes = i as u32 * SAMPLE_INTERVAL_MINUTES;
            let day_phase = (ts_minutes % (24 * 60)) as f64 / (24.0 * 60.0) * std::f64::consts::TAU;
            let season_phase = ts_minutes as f64 / (365.0 * 24.0 * 60.0) * std::f64::consts::TAU;
            let temperature = base_temp
                + 4.0 * (day_phase - std::f64::consts::FRAC_PI_2).sin()
                + 6.0 * season_phase.sin()
                + (rng.f64() - 0.5);
            let humidity =
                (base_hum + 8.0 * day_phase.cos() + 2.0 * (rng.f64() - 0.5)).clamp(0.0, 100.0);
            records.push(SensorRecord {
                ts_minutes,
                temperature: temperature as f32,
                humidity: humidity as f32,
            });
        }
        SensorStore { records }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Days of history available.
    pub fn days(&self) -> u32 {
        (self.records.len() / Self::RECORDS_PER_DAY) as u32
    }

    /// Retrieves `days` consecutive days of records starting at
    /// `start_day`, clamped to the stored history.
    pub fn range_query(&self, start_day: u32, days: u32) -> &[SensorRecord] {
        let start_min = start_day * 24 * 60;
        let end_min = start_min.saturating_add(days * 24 * 60);
        let lo = self.records.partition_point(|r| r.ts_minutes < start_min);
        let hi = self.records.partition_point(|r| r.ts_minutes < end_min);
        &self.records[lo..hi]
    }

    /// Averages a slice of records into `(mean_temperature, mean_humidity)`
    /// — the merge operation the testbed's aggregator performs.
    pub fn aggregate(records: &[SensorRecord]) -> (f32, f32) {
        if records.is_empty() {
            return (0.0, 0.0);
        }
        let n = records.len() as f32;
        let t: f32 = records.iter().map(|r| r.temperature).sum();
        let h: f32 = records.iter().map(|r| r.humidity).sum();
        (t / n, h / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SensorStore::generate_days(1, 10);
        let b = SensorStore::generate_days(1, 10);
        assert_eq!(a.records, b.records);
        let c = SensorStore::generate_days(2, 10);
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn full_history_size() {
        let s = SensorStore::generate(1);
        assert_eq!(s.days(), HISTORY_DAYS);
        assert_eq!(
            s.len(),
            HISTORY_DAYS as usize * SensorStore::RECORDS_PER_DAY
        );
    }

    #[test]
    fn range_query_day_boundaries() {
        let s = SensorStore::generate_days(3, 30);
        let one = s.range_query(5, 1);
        assert_eq!(one.len(), SensorStore::RECORDS_PER_DAY);
        assert_eq!(one[0].ts_minutes, 5 * 24 * 60);
        let week = s.range_query(5, 7);
        assert_eq!(week.len(), 7 * SensorStore::RECORDS_PER_DAY);
    }

    #[test]
    fn range_query_clamps_to_history() {
        let s = SensorStore::generate_days(4, 10);
        let tail = s.range_query(8, 30);
        assert_eq!(tail.len(), 2 * SensorStore::RECORDS_PER_DAY);
        let past = s.range_query(100, 5);
        assert!(past.is_empty());
    }

    #[test]
    fn values_physically_plausible() {
        let s = SensorStore::generate_days(5, 30);
        for r in s.range_query(0, 30) {
            assert!(r.temperature > -20.0 && r.temperature < 60.0);
            assert!((0.0..=100.0).contains(&r.humidity));
        }
    }

    #[test]
    fn aggregate_means() {
        let recs = vec![
            SensorRecord {
                ts_minutes: 0,
                temperature: 10.0,
                humidity: 40.0,
            },
            SensorRecord {
                ts_minutes: 10,
                temperature: 20.0,
                humidity: 60.0,
            },
        ];
        let (t, h) = SensorStore::aggregate(&recs);
        assert_eq!(t, 15.0);
        assert_eq!(h, 50.0);
        assert_eq!(SensorStore::aggregate(&[]), (0.0, 0.0));
    }

    #[test]
    fn timestamps_sorted() {
        let s = SensorStore::generate_days(6, 20);
        assert!(s
            .records
            .windows(2)
            .all(|w| w[0].ts_minutes < w[1].ts_minutes));
    }
}

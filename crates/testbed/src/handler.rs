//! The query handler: a tokio driver over the shared scheduling core.
//!
//! Deadline stamping, per-node queuing, admission control, dequeue-time
//! miss detection, and fanout aggregation all live in
//! [`tailguard_sched::QueryHandler`] — the same state machine the
//! discrete-event simulator drives. This module owns only what is
//! genuinely testbed: the channel event loop, wall-clock timestamps, the
//! per-task record ranges sent to edge nodes, and the sensing aggregates
//! (records, temperature, humidity).

use crate::node::{TaskAssignment, TaskOutcome, TaskResult};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::future::Future;
use tailguard_metrics::LatencyReservoir;
use tailguard_obs::{BinaryRecorder, SharedRegistry, SloConfig, SloMonitor};
use tailguard_policy::Policy;
use tailguard_sched::units;
use tailguard_sched::{
    AdmissionConfig, AdmitDecision, AttemptKind, ClassSpec, CommitOutcome, DeadlineEstimator,
    DispatchedTask, HealthConfig, HealthStats, LeaseToken, LifecycleStats, MitigationConfig,
    QueryArrival, QueryHandler, RobustnessStats, TaskCompletion,
};
use tailguard_simcore::{SimDuration, SimTime};
use tokio::sync::mpsc;
use tokio::time::Instant;

/// A query delivered to the handler by the load generator.
#[derive(Debug, Clone)]
pub(crate) struct IncomingQuery {
    /// Service class (A=0, B=1, C=2).
    pub class: u8,
    /// Target edge nodes, one per task.
    pub servers: Vec<u32>,
    /// Per-task record ranges `(start_day, days)`.
    pub ranges: Vec<(u32, u32)>,
}

/// Everything the handler hands back when the run completes.
#[derive(Debug)]
pub(crate) struct HandlerOutput {
    pub latency_by_class: BTreeMap<u8, LatencyReservoir>, // scaled wall ms
    pub post_queuing_by_node: Vec<LatencyReservoir>,      // scaled wall ms
    pub busy_by_node: Vec<SimDuration>,                   // scaled wall
    pub elapsed: SimDuration,                             // scaled wall
    pub completed_queries: u64,
    pub rejected_queries: u64,
    pub tasks_dequeued: u64,
    pub deadline_misses: u64,
    pub admission_resumes: u64,
    pub records_retrieved: u64,
    /// Sum of per-task mean temperatures — the aggregator's running merge
    /// (used to report a fleet-wide mean reading).
    pub temperature_sum: f64,
    pub humidity_sum: f64,
    pub task_results: u64,
    /// Fault/hedge/partial counters from the scheduling core.
    pub robustness: RobustnessStats,
    /// Tasks whose worker panicked (counted on top of `tasks_lost_to_faults`).
    pub worker_panics: u64,
    /// Lease/fencing counters from the core's task state store.
    pub lifecycle: LifecycleStats,
    /// Health-tracking counters (all zero without a health config).
    pub health: HealthStats,
    /// Final per-node EWMA health scores, scaled wall domain (empty
    /// without health tracking).
    pub server_health: Vec<f64>,
    /// Adaptive-estimator window rolls (zero without an adaptive window).
    pub estimator_window_rolls: u64,
}

pub(crate) struct HandlerConfig {
    pub policy: Policy,
    pub scaled_classes: Vec<ClassSpec>, // per class, wall-scaled SLOs
    pub admission: Option<AdmissionConfig>, // window in the scaled domain
    pub mitigation: Option<MitigationConfig>, // hedging/retry/partial quorum
    pub health: Option<HealthConfig>,   // gray-failure ejection (dimensionless)
    pub expected_queries: u64,
    /// Lease TTL in the *scaled* wall domain. When set, every dispatch
    /// issues a fencing token and arms a reclaim timer; a node that goes
    /// silent past the TTL has its task re-enqueued with the original
    /// deadline, and any late result it still sends is fenced off.
    pub lease_ttl: Option<SimDuration>,
    /// When set, the handler records lifecycle events into a
    /// [`RingRecorder`] and keeps this registry current: queue-depth and
    /// miss-ratio series during the run (so a live `/metrics` scrape sees
    /// them), full counters/histograms at the end. All durations are in
    /// the *compressed* wall domain (`tailguard_run_time_scale` converts).
    pub registry: Option<SharedRegistry>,
}

/// Runs the query handler until `expected_queries` queries have completed
/// or been rejected.
///
/// `queries` delivers load-generator queries; `results` delivers node
/// completions; `node_txs` are the per-node task channels. The estimator
/// must already be seeded (offline calibration) and works in the scaled
/// wall-clock millisecond domain.
pub(crate) async fn query_handler(
    cfg: HandlerConfig,
    estimator: DeadlineEstimator,
    mut queries: mpsc::UnboundedReceiver<IncomingQuery>,
    mut results: mpsc::UnboundedReceiver<TaskResult>,
    node_txs: Vec<mpsc::UnboundedSender<TaskAssignment>>,
) -> HandlerOutput {
    let n = node_txs.len();
    let mut core = QueryHandler::new(
        cfg.policy,
        cfg.scaled_classes.clone(),
        n,
        estimator,
        cfg.admission,
    );
    if let Some(mitigation) = cfg.mitigation {
        core = core.with_mitigation(mitigation);
    }
    if let Some(ttl) = cfg.lease_ttl {
        core = core.with_lease(ttl);
    }
    if let Some(hc) = cfg.health {
        core = core.with_health(hc);
    }
    let recorder = cfg
        .registry
        .as_ref()
        .map(|_| BinaryRecorder::with_capacity(tailguard::DEFAULT_RING_CAPACITY));
    if let Some(rec) = &recorder {
        core = core.with_trace_sink(rec.sink());
    }
    // Results processed since the last live registry sample; sampling every
    // 64 keeps the registry mutex off the per-task hot path.
    let mut results_since_sample = 0u32;
    // Driver-side per-task state, indexed by the core's sequential task id:
    // what to fetch, and when the node started on it.
    let mut task_ranges: Vec<(u32, u32)> = Vec::new();
    let mut dispatched_at: Vec<Option<Instant>> = Vec::new();
    let mut started: Vec<DispatchedTask> = Vec::new();

    let epoch = Instant::now();
    let mut post_queuing_by_node: Vec<LatencyReservoir> =
        (0..n).map(|_| LatencyReservoir::new()).collect();
    let mut records_retrieved = 0u64;
    let mut temperature_sum = 0.0f64;
    let mut humidity_sum = 0.0f64;
    let mut task_results = 0u64;
    let mut worker_panics = 0u64;
    // Pending hedge thresholds: (wall deadline, slot task id), earliest
    // first. Stale entries (slot already resolved) are dropped when due.
    let mut hedge_heap: BinaryHeap<Reverse<(Instant, u32)>> = BinaryHeap::new();
    // Pending lease expiries: (wall expiry, task, token). Entries whose
    // token no longer matches the store (task committed, failed, or
    // already reclaimed) are no-ops when due — the core rejects them.
    let mut lease_heap: BinaryHeap<Reverse<(Instant, u32, u64)>> = BinaryHeap::new();

    let to_sim = |i: Instant| -> SimTime {
        SimTime::from_nanos(units::sat_u128_to_u64(i.duration_since(epoch).as_nanos()))
    };

    loop {
        {
            let stats = core.stats();
            let finished = stats.completed_queries
                + stats.rejected_queries
                + stats.robustness.partial_completions
                + stats.robustness.failed_queries;
            if finished >= cfg.expected_queries {
                break;
            }
        }
        // Biased four-way select, hand-rolled at the poll level: node
        // results are always drained before hedge timers (a completion can
        // make a pending hedge moot), hedges before lease reclaims (both
        // are timers, but a hedge can resolve the slot a reclaim would
        // touch), and all of those before new queries (completions free
        // servers, so this keeps queue depth honest); the loop ends when
        // both channels are closed and drained.
        let mut hedge_sleep = hedge_heap
            .peek()
            .map(|Reverse((at, _))| Box::pin(tokio::time::sleep_until(*at)));
        let mut lease_sleep = lease_heap
            .peek()
            .map(|Reverse((at, _, _))| Box::pin(tokio::time::sleep_until(*at)));
        let event = std::future::poll_fn(|cx| {
            let mut results_closed = false;
            match results.poll_recv(cx) {
                std::task::Poll::Ready(Some(result)) => {
                    return std::task::Poll::Ready(HandlerEvent::Result(result))
                }
                std::task::Poll::Ready(None) => results_closed = true,
                std::task::Poll::Pending => {}
            }
            if let Some(sleep) = hedge_sleep.as_mut() {
                if sleep.as_mut().poll(cx).is_ready() {
                    return std::task::Poll::Ready(HandlerEvent::HedgeDue);
                }
            }
            if let Some(sleep) = lease_sleep.as_mut() {
                if sleep.as_mut().poll(cx).is_ready() {
                    return std::task::Poll::Ready(HandlerEvent::LeaseDue);
                }
            }
            match queries.poll_recv(cx) {
                std::task::Poll::Ready(Some(query)) => {
                    return std::task::Poll::Ready(HandlerEvent::Query(query))
                }
                std::task::Poll::Ready(None) if results_closed => {
                    return std::task::Poll::Ready(HandlerEvent::Closed)
                }
                std::task::Poll::Ready(None) | std::task::Poll::Pending => {}
            }
            std::task::Poll::Pending
        })
        .await;
        match event {
            HandlerEvent::Result(result) if result.outcome == TaskOutcome::Ok => {
                let node = result.node as usize;
                let task = result.task_id as u32;
                let now = Instant::now();
                let post_queuing = SimDuration::from_nanos(units::sat_u128_to_u64(
                    now.duration_since(
                        dispatched_at[task as usize].expect("result implies dispatch"),
                    )
                    .as_nanos(),
                ));
                // Commit under the result's fencing token FIRST: busy
                // accounting, estimator updates (§III.B.2), work
                // conservation, and aggregation happen in the core only
                // when the commit lands. A redelivered or zombie result
                // (its lease was reclaimed and the task re-issued) must
                // not double-count records or node latency either, so the
                // driver-side aggregates below are gated the same way.
                let TaskCompletion {
                    next,
                    done: _,
                    commit,
                } = core.on_task_complete(
                    to_sim(now),
                    task,
                    LeaseToken(result.lease),
                    post_queuing,
                );
                if commit == CommitOutcome::Committed {
                    post_queuing_by_node[node].record(post_queuing);
                    records_retrieved += result.records as u64;
                    temperature_sum += f64::from(result.mean_temperature);
                    humidity_sum += f64::from(result.mean_humidity);
                    task_results += 1;
                }
                if let Some(d) = next {
                    dispatch(
                        d,
                        &core,
                        epoch,
                        &mut lease_heap,
                        &mut dispatched_at,
                        &task_ranges,
                        &node_txs,
                    );
                }
                if let Some(reg) = &cfg.registry {
                    results_since_sample += 1;
                    if results_since_sample >= 64 {
                        results_since_sample = 0;
                        sample_registry(reg, &core, to_sim(Instant::now()));
                    }
                }
            }
            HandlerEvent::Result(result) => {
                // Lost (fault episode) or Failed (worker panic): no
                // payload, no busy/estimator update — the core frees the
                // server, plans a retry if configured, and resolves the
                // query as failed when no live attempt remains.
                if result.outcome == TaskOutcome::Failed {
                    worker_panics += 1;
                }
                let task = result.task_id as u32;
                let now = to_sim(Instant::now());
                let lost = core.on_task_lost(now, task, LeaseToken(result.lease));
                if let Some(d) = lost.next {
                    dispatch(
                        d,
                        &core,
                        epoch,
                        &mut lease_heap,
                        &mut dispatched_at,
                        &task_ranges,
                        &node_txs,
                    );
                }
                if let Some(retry) = lost.retry {
                    let (dup, dispatched) = core.issue_duplicate(
                        now,
                        retry.slot,
                        retry.server,
                        None,
                        AttemptKind::Retry,
                    );
                    debug_assert_eq!(dup as usize, task_ranges.len());
                    task_ranges.push(task_ranges[retry.slot as usize]);
                    dispatched_at.push(None);
                    if let Some(d) = dispatched {
                        dispatch(
                            d,
                            &core,
                            epoch,
                            &mut lease_heap,
                            &mut dispatched_at,
                            &task_ranges,
                            &node_txs,
                        );
                    }
                }
                // lost.done needs no driving here: the sas workload has no
                // request chaining, and the failed/partial accounting
                // already happened in the core.
            }
            HandlerEvent::HedgeDue => {
                let wall = Instant::now();
                let now = to_sim(wall);
                while let Some(Reverse((at, _))) = hedge_heap.peek() {
                    if *at > wall {
                        break;
                    }
                    let Some(Reverse((_, slot))) = hedge_heap.pop() else {
                        break;
                    };
                    // Slot already resolved or at its attempt cap → the
                    // timer is stale; drop it.
                    let Some(server) = core.hedge_target(now, slot) else {
                        continue;
                    };
                    let (dup, dispatched) =
                        core.issue_duplicate(now, slot, server, None, AttemptKind::Hedge);
                    debug_assert_eq!(dup as usize, task_ranges.len());
                    task_ranges.push(task_ranges[slot as usize]);
                    dispatched_at.push(None);
                    if let Some(d) = dispatched {
                        dispatch(
                            d,
                            &core,
                            epoch,
                            &mut lease_heap,
                            &mut dispatched_at,
                            &task_ranges,
                            &node_txs,
                        );
                    }
                }
            }
            HandlerEvent::LeaseDue => {
                let wall = Instant::now();
                let now = to_sim(wall);
                while let Some(Reverse((at, _, _))) = lease_heap.peek() {
                    if *at > wall {
                        break;
                    }
                    let Some(Reverse((_, task, token))) = lease_heap.pop() else {
                        break;
                    };
                    // The core validates the token against the store: a
                    // task that committed, failed, or re-leased since this
                    // timer was armed is left alone. A genuine expiry
                    // reclaims the lease, re-enqueues the task with its
                    // ORIGINAL deadline, and may start the freed node on
                    // its next queued task.
                    if let Some(d) = core.on_lease_expired(now, task, LeaseToken(token)) {
                        dispatch(
                            d,
                            &core,
                            epoch,
                            &mut lease_heap,
                            &mut dispatched_at,
                            &task_ranges,
                            &node_txs,
                        );
                    }
                    // The reclaimed task itself re-dispatches later via the
                    // normal dequeue path, which re-arms its lease timer.
                }
            }
            HandlerEvent::Query(query) => {
                let first_task = core.task_count();
                let decision = core.on_query_arrival(
                    to_sim(Instant::now()),
                    QueryArrival {
                        class: query.class,
                        targets: &query.servers,
                        // No size oracle on a live testbed: nodes measure
                        // their own service times.
                        sizes: None,
                        budget_override: None,
                        task_budgets: None,
                        record: true,
                    },
                    &mut started,
                );
                if let AdmitDecision::Admitted { .. } = decision {
                    task_ranges.extend(&query.ranges);
                    dispatched_at.resize(task_ranges.len(), None);
                    for t in first_task..core.task_count() {
                        if let Some(at) = core.hedge_deadline(t as u32) {
                            hedge_heap.push(Reverse((
                                epoch + std::time::Duration::from_nanos(at.as_nanos()),
                                t as u32,
                            )));
                        }
                    }
                    for &d in &started {
                        dispatch(
                            d,
                            &core,
                            epoch,
                            &mut lease_heap,
                            &mut dispatched_at,
                            &task_ranges,
                            &node_txs,
                        );
                    }
                }
            }
            HandlerEvent::Closed => break, // both channels closed
        }
    }

    let elapsed = SimDuration::from_nanos(units::sat_u128_to_u64(epoch.elapsed().as_nanos()));
    if let Some(reg) = &cfg.registry {
        sample_registry(reg, &core, SimTime::from_nanos(elapsed.as_nanos()));
    }
    let budget_lookups = core.estimator().budget_lookup_count();
    let estimator_refreshes = core.estimator().refresh_count();
    let cached_budgets = core.estimator().cached_budget_count();
    let stats = core.into_stats();
    if let (Some(reg), Some(rec)) = (&cfg.registry, &recorder) {
        let mut reg = reg.lock().unwrap();
        // Decode the binary recording once, at analysis time: the hot
        // path only staged fixed-width records (flushed when the core was
        // consumed above).
        let events = rec.events();
        let slo_target = cfg
            .scaled_classes
            .iter()
            .map(|c| c.percentile)
            .fold(f64::NAN, f64::min);
        let mut slo = SloMonitor::new(SloConfig {
            target: if slo_target.is_nan() {
                0.99
            } else {
                slo_target
            },
            ..SloConfig::default()
        });
        slo.ingest(&events);
        slo.finish();
        reg.ingest_events(&events);
        reg.ingest_robustness(&stats.robustness);
        reg.ingest_lifecycle(&stats.lifecycle);
        slo.publish(&mut reg);
        reg.counter_set(
            "tailguard_estimator_budget_lookups_total",
            "Budget-table lookups while stamping deadlines (Eq. 6)",
            budget_lookups,
        );
        reg.counter_set(
            "tailguard_estimator_refreshes_total",
            "Online budget-table rebuilds from refreshed CDFs (§III.B.2)",
            estimator_refreshes,
        );
        reg.gauge_set(
            "tailguard_estimator_cached_budgets",
            "Distinct (class, fanout) budgets currently cached",
            cached_budgets as f64,
        );
        reg.counter_set(
            "tailguard_run_queries_completed_total",
            "Recorded queries completed",
            stats.completed_queries,
        );
        reg.gauge_set(
            "tailguard_run_elapsed_ms",
            "Compressed wall-clock duration of the run",
            elapsed.as_millis_f64(),
        );
        reg.gauge_set(
            "tailguard_run_deadline_miss_ratio",
            "Final dequeue-time deadline-miss ratio",
            stats.load.deadline_miss_ratio(),
        );
        // Health metrics exist exactly when health tracking is on, so
        // feature-off registries keep their previous shape.
        if !stats.server_health.is_empty() {
            for (node, score) in stats.server_health.iter().enumerate() {
                reg.gauge_set(
                    &format!("tailguard_server_health{{server=\"{node}\"}}"),
                    "Per-node EWMA health score (observed service time, compressed domain)",
                    *score,
                );
            }
            reg.counter_set(
                "tailguard_ejections_total",
                "Nodes ejected from dispatch by the health tracker",
                stats.health.ejections,
            );
            reg.counter_set(
                "tailguard_readmissions_total",
                "Ejected nodes readmitted after recovering",
                stats.health.readmissions,
            );
        }
        if stats.estimator_window_rolls > 0 {
            reg.counter_set(
                "tailguard_estimator_window_rolls_total",
                "Adaptive estimator window rolls (decay + budget-table rebuild)",
                stats.estimator_window_rolls,
            );
        }
        if rec.dropped() > 0 {
            reg.counter_set(
                "tailguard_trace_events_dropped_total",
                "Events evicted by the ring recorder's capacity bound",
                rec.dropped(),
            );
        }
    }
    HandlerOutput {
        latency_by_class: stats.query_latency_by_class,
        post_queuing_by_node,
        busy_by_node: stats.busy_by_server,
        elapsed,
        completed_queries: stats.completed_queries,
        rejected_queries: stats.rejected_queries,
        tasks_dequeued: stats.load.tasks_completed_count(),
        deadline_misses: stats.load.deadline_miss_count(),
        admission_resumes: stats.admission_resumes,
        records_retrieved,
        temperature_sum,
        humidity_sum,
        task_results,
        robustness: stats.robustness,
        worker_panics,
        lifecycle: stats.lifecycle,
        health: stats.health,
        server_health: stats.server_health,
        estimator_window_rolls: stats.estimator_window_rolls,
    }
}

/// Pushes one live sample of queue depth, busy nodes, and miss ratio into
/// the shared registry (as time series, whose latest point the Prometheus
/// exposition surfaces as a gauge).
fn sample_registry(reg: &SharedRegistry, core: &QueryHandler, now: SimTime) {
    let mut reg = reg.lock().unwrap();
    reg.series_push(
        "tailguard_queue_depth",
        "Tasks queued across all per-node queues",
        now,
        core.queued_tasks() as f64,
    );
    reg.series_push(
        "tailguard_servers_busy",
        "Edge nodes with a task in service",
        now,
        core.servers_busy() as f64,
    );
    reg.series_push(
        "tailguard_deadline_miss_ratio",
        "Cumulative dequeue-time deadline-miss ratio",
        now,
        core.stats().load.deadline_miss_ratio(),
    );
}

/// Sends a task the core just moved into service to its edge node,
/// arming its lease-reclaim timer when leasing is on.
fn dispatch(
    d: DispatchedTask,
    core: &QueryHandler,
    epoch: Instant,
    lease_heap: &mut BinaryHeap<Reverse<(Instant, u32, u64)>>,
    dispatched_at: &mut [Option<Instant>],
    task_ranges: &[(u32, u32)],
    node_txs: &[mpsc::UnboundedSender<TaskAssignment>],
) {
    dispatched_at[d.task as usize] = Some(Instant::now());
    if let Some(expiry) = core.lease_expiry(d.task) {
        lease_heap.push(Reverse((
            epoch + std::time::Duration::from_nanos(expiry.as_nanos()),
            d.task,
            d.lease.0,
        )));
    }
    let (start_day, days) = task_ranges[d.task as usize];
    // A closed node channel means shutdown is racing completion; the
    // expected-queries accounting still terminates the loop.
    let _ = node_txs[d.server as usize].send(TaskAssignment {
        task_id: u64::from(d.task),
        start_day,
        days,
        lease: d.lease.0,
    });
}

/// Outcome of one biased poll over the handler's inputs.
enum HandlerEvent {
    /// A node completed (or lost) a task.
    Result(TaskResult),
    /// The earliest pending hedge threshold elapsed.
    HedgeDue,
    /// The earliest pending lease expiry elapsed.
    LeaseDue,
    /// The load generator produced a query.
    Query(IncomingQuery),
    /// Both channels closed and drained.
    Closed,
}

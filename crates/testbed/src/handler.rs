//! The query handler: central queuing, deadline stamping, dispatch,
//! aggregation, and admission control.

use crate::node::{TaskAssignment, TaskResult};
use std::collections::BTreeMap;
use tailguard::AdmissionConfig;
use tailguard::DeadlineEstimator;
use tailguard_metrics::{LatencyReservoir, TimedRatio};
use tailguard_policy::{DeadlineRule, Policy, QueuedTask, ServiceClass, TaskQueue};
use tailguard_simcore::{SimDuration, SimTime};
use tokio::sync::mpsc;
use tokio::time::Instant;

/// A query delivered to the handler by the load generator.
#[derive(Debug, Clone)]
pub(crate) struct IncomingQuery {
    /// Service class (A=0, B=1, C=2).
    pub class: u8,
    /// Target edge nodes, one per task.
    pub servers: Vec<u32>,
    /// Per-task record ranges `(start_day, days)`.
    pub ranges: Vec<(u32, u32)>,
}

/// Everything the handler hands back when the run completes.
#[derive(Debug)]
pub(crate) struct HandlerOutput {
    pub latency_by_class: BTreeMap<u8, LatencyReservoir>, // scaled wall ms
    pub post_queuing_by_node: Vec<LatencyReservoir>,      // scaled wall ms
    pub busy_by_node: Vec<SimDuration>,                   // scaled wall
    pub elapsed: SimDuration,                             // scaled wall
    pub completed_queries: u64,
    pub rejected_queries: u64,
    pub tasks_dequeued: u64,
    pub deadline_misses: u64,
    pub records_retrieved: u64,
    /// Sum of per-task mean temperatures — the aggregator's running merge
    /// (used to report a fleet-wide mean reading).
    pub temperature_sum: f64,
    pub humidity_sum: f64,
    pub task_results: u64,
}

struct TaskInfo {
    query: u32,
    dispatched: Option<Instant>,
}

struct QueryInfo {
    class: u8,
    arrived: Instant,
    outstanding: u32,
}

pub(crate) struct HandlerConfig {
    pub policy: Policy,
    pub scaled_slos: Vec<SimDuration>, // per class, wall-scaled
    pub admission: Option<AdmissionConfig>, // window in the scaled domain
    pub expected_queries: u64,
}

/// Runs the query handler until `expected_queries` queries have completed
/// or been rejected.
///
/// `queries` delivers load-generator queries; `results` delivers node
/// completions; `node_txs` are the per-node task channels. The estimator
/// must already be seeded (offline calibration) and works in the scaled
/// wall-clock millisecond domain.
pub(crate) async fn query_handler(
    cfg: HandlerConfig,
    mut estimator: DeadlineEstimator,
    mut queries: mpsc::UnboundedReceiver<IncomingQuery>,
    mut results: mpsc::UnboundedReceiver<TaskResult>,
    node_txs: Vec<mpsc::UnboundedSender<TaskAssignment>>,
) -> HandlerOutput {
    let n = node_txs.len();
    let mut node_queues: Vec<Box<dyn TaskQueue>> = (0..n).map(|_| cfg.policy.new_queue()).collect();
    let mut node_busy: Vec<bool> = vec![false; n];
    let mut tasks: Vec<TaskInfo> = Vec::new();
    let mut task_ranges: Vec<(u32, u32)> = Vec::new();
    let mut queries_info: Vec<QueryInfo> = Vec::new();
    let mut admission_window = cfg.admission.map(|a| TimedRatio::new(a.window));

    let epoch = Instant::now();
    let mut out = HandlerOutput {
        latency_by_class: BTreeMap::new(),
        post_queuing_by_node: (0..n).map(|_| LatencyReservoir::new()).collect(),
        busy_by_node: vec![SimDuration::ZERO; n],
        elapsed: SimDuration::ZERO,
        completed_queries: 0,
        rejected_queries: 0,
        tasks_dequeued: 0,
        deadline_misses: 0,
        records_retrieved: 0,
        temperature_sum: 0.0,
        humidity_sum: 0.0,
        task_results: 0,
    };

    let to_sim =
        |i: Instant| -> SimTime { SimTime::from_nanos(i.duration_since(epoch).as_nanos() as u64) };

    loop {
        if out.completed_queries + out.rejected_queries >= cfg.expected_queries {
            break;
        }
        // Biased two-way select, hand-rolled at the poll level: node
        // results are always drained before new queries (completions free
        // servers, so this keeps queue depth honest), and the loop ends
        // when both channels are closed and drained.
        let event = std::future::poll_fn(|cx| {
            let mut results_closed = false;
            match results.poll_recv(cx) {
                std::task::Poll::Ready(Some(result)) => {
                    return std::task::Poll::Ready(HandlerEvent::Result(result))
                }
                std::task::Poll::Ready(None) => results_closed = true,
                std::task::Poll::Pending => {}
            }
            match queries.poll_recv(cx) {
                std::task::Poll::Ready(Some(query)) => {
                    return std::task::Poll::Ready(HandlerEvent::Query(query))
                }
                std::task::Poll::Ready(None) if results_closed => {
                    return std::task::Poll::Ready(HandlerEvent::Closed)
                }
                std::task::Poll::Ready(None) | std::task::Poll::Pending => {}
            }
            std::task::Poll::Pending
        })
        .await;
        match event {
            HandlerEvent::Result(result) => {
                handle_result(
                    result,
                    &mut tasks,
                    &mut queries_info,
                    &mut node_busy,
                    &mut node_queues,
                    &node_txs,
                    &task_ranges,
                    &mut estimator,
                    &mut admission_window,
                    &mut out,
                    epoch,
                );
            }
            HandlerEvent::Query(query) => {
                handle_query(
                    query,
                    &cfg,
                    &mut estimator,
                    &mut tasks,
                    &mut task_ranges,
                    &mut queries_info,
                    &mut node_busy,
                    &mut node_queues,
                    &node_txs,
                    &mut admission_window,
                    &mut out,
                    epoch,
                    to_sim(Instant::now()),
                );
            }
            HandlerEvent::Closed => break, // both channels closed
        }
    }

    out.elapsed = SimDuration::from_nanos(epoch.elapsed().as_nanos() as u64);
    out
}

/// Outcome of one biased poll over the two handler input channels.
enum HandlerEvent {
    /// A node completed a task.
    Result(TaskResult),
    /// The load generator produced a query.
    Query(IncomingQuery),
    /// Both channels closed and drained.
    Closed,
}

#[allow(clippy::too_many_arguments)]
fn handle_query(
    query: IncomingQuery,
    cfg: &HandlerConfig,
    estimator: &mut DeadlineEstimator,
    tasks: &mut Vec<TaskInfo>,
    task_ranges: &mut Vec<(u32, u32)>,
    queries_info: &mut Vec<QueryInfo>,
    node_busy: &mut [bool],
    node_queues: &mut [Box<dyn TaskQueue>],
    node_txs: &[mpsc::UnboundedSender<TaskAssignment>],
    admission_window: &mut Option<TimedRatio>,
    out: &mut HandlerOutput,
    epoch: Instant,
    now_sim: SimTime,
) {
    // Admission control (§III.C).
    if let (Some(adm), Some(win)) = (cfg.admission, admission_window.as_mut()) {
        if win.len(now_sim) >= adm.min_samples && win.ratio(now_sim) > adm.threshold {
            out.rejected_queries += 1;
            return;
        }
    }

    let fanout = query.servers.len() as u32;
    let budget = match cfg.policy.deadline_rule() {
        DeadlineRule::SloOnly => cfg.scaled_slos[query.class as usize],
        DeadlineRule::SloAndFanout | DeadlineRule::Unused => {
            estimator.budget(query.class, fanout, &query.servers)
        }
    };
    let deadline = now_sim + budget;

    let query_id = queries_info.len() as u32;
    queries_info.push(QueryInfo {
        class: query.class,
        arrived: Instant::now(),
        outstanding: fanout,
    });

    for (&node, &range) in query.servers.iter().zip(&query.ranges) {
        let task_id = tasks.len() as u64;
        let _ = node; // placement recorded implicitly by the queue it joins
        tasks.push(TaskInfo {
            query: query_id,
            dispatched: None,
        });
        task_ranges.push(range);
        let entry = QueuedTask::new(task_id, ServiceClass(query.class), deadline, now_sim);
        if node_busy[node as usize] {
            node_queues[node as usize].push(entry);
        } else {
            dispatch(
                entry,
                node,
                tasks,
                task_ranges,
                node_busy,
                node_txs,
                admission_window,
                out,
                epoch,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    entry: QueuedTask,
    node: u32,
    tasks: &mut [TaskInfo],
    task_ranges: &[(u32, u32)],
    node_busy: &mut [bool],
    node_txs: &[mpsc::UnboundedSender<TaskAssignment>],
    admission_window: &mut Option<TimedRatio>,
    out: &mut HandlerOutput,
    epoch: Instant,
) {
    let now = Instant::now();
    let now_sim = SimTime::from_nanos(now.duration_since(epoch).as_nanos() as u64);
    let missed = now_sim > entry.deadline;
    out.tasks_dequeued += 1;
    if missed {
        out.deadline_misses += 1;
    }
    if let Some(win) = admission_window.as_mut() {
        win.record(now_sim, missed);
    }
    let task_id = entry.task_id as usize;
    tasks[task_id].dispatched = Some(now);
    node_busy[node as usize] = true;
    let (start_day, days) = task_ranges[task_id];
    // A closed node channel means shutdown is racing completion; the
    // expected-queries accounting still terminates the loop.
    let _ = node_txs[node as usize].send(TaskAssignment {
        task_id: entry.task_id,
        start_day,
        days,
    });
}

#[allow(clippy::too_many_arguments)]
fn handle_result(
    result: TaskResult,
    tasks: &mut [TaskInfo],
    queries_info: &mut [QueryInfo],
    node_busy: &mut [bool],
    node_queues: &mut [Box<dyn TaskQueue>],
    node_txs: &[mpsc::UnboundedSender<TaskAssignment>],
    task_ranges: &[(u32, u32)],
    estimator: &mut DeadlineEstimator,
    admission_window: &mut Option<TimedRatio>,
    out: &mut HandlerOutput,
    epoch: Instant,
) {
    let node = result.node as usize;
    let info = &tasks[result.task_id as usize];
    let dispatched = info.dispatched.expect("result implies dispatch");
    let post_queuing = SimDuration::from_nanos(dispatched.elapsed().as_nanos() as u64);
    out.post_queuing_by_node[node].record(post_queuing);
    out.busy_by_node[node] += post_queuing;
    out.records_retrieved += result.records as u64;
    out.temperature_sum += f64::from(result.mean_temperature);
    out.humidity_sum += f64::from(result.mean_humidity);
    out.task_results += 1;
    // Online updating process (§III.B.2): the handler learns the node's
    // post-queuing time distribution from returned results.
    estimator.record_post_queuing(node, post_queuing);

    // Aggregate into the query.
    let qid = info.query as usize;
    queries_info[qid].outstanding -= 1;
    if queries_info[qid].outstanding == 0 {
        let latency =
            SimDuration::from_nanos(queries_info[qid].arrived.elapsed().as_nanos() as u64);
        out.latency_by_class
            .entry(queries_info[qid].class)
            .or_default()
            .record(latency);
        out.completed_queries += 1;
    }

    // Work conservation: hand the node its next task.
    node_busy[node] = false;
    if let Some(next) = node_queues[node].pop() {
        dispatch(
            next,
            result.node,
            tasks,
            task_ranges,
            node_busy,
            node_txs,
            admission_window,
            out,
            epoch,
        );
    }
}

//! The query handler: a tokio driver over the shared scheduling core.
//!
//! Deadline stamping, per-node queuing, admission control, dequeue-time
//! miss detection, and fanout aggregation all live in
//! [`tailguard_sched::QueryHandler`] — the same state machine the
//! discrete-event simulator drives. This module owns only what is
//! genuinely testbed: the channel event loop, wall-clock timestamps, the
//! per-task record ranges sent to edge nodes, and the sensing aggregates
//! (records, temperature, humidity).

use crate::node::{TaskAssignment, TaskResult};
use std::collections::BTreeMap;
use tailguard_metrics::LatencyReservoir;
use tailguard_policy::Policy;
use tailguard_sched::{
    AdmissionConfig, AdmitDecision, ClassSpec, DeadlineEstimator, DispatchedTask, QueryArrival,
    QueryHandler, TaskCompletion,
};
use tailguard_simcore::{SimDuration, SimTime};
use tokio::sync::mpsc;
use tokio::time::Instant;

/// A query delivered to the handler by the load generator.
#[derive(Debug, Clone)]
pub(crate) struct IncomingQuery {
    /// Service class (A=0, B=1, C=2).
    pub class: u8,
    /// Target edge nodes, one per task.
    pub servers: Vec<u32>,
    /// Per-task record ranges `(start_day, days)`.
    pub ranges: Vec<(u32, u32)>,
}

/// Everything the handler hands back when the run completes.
#[derive(Debug)]
pub(crate) struct HandlerOutput {
    pub latency_by_class: BTreeMap<u8, LatencyReservoir>, // scaled wall ms
    pub post_queuing_by_node: Vec<LatencyReservoir>,      // scaled wall ms
    pub busy_by_node: Vec<SimDuration>,                   // scaled wall
    pub elapsed: SimDuration,                             // scaled wall
    pub completed_queries: u64,
    pub rejected_queries: u64,
    pub tasks_dequeued: u64,
    pub deadline_misses: u64,
    pub admission_resumes: u64,
    pub records_retrieved: u64,
    /// Sum of per-task mean temperatures — the aggregator's running merge
    /// (used to report a fleet-wide mean reading).
    pub temperature_sum: f64,
    pub humidity_sum: f64,
    pub task_results: u64,
}

pub(crate) struct HandlerConfig {
    pub policy: Policy,
    pub scaled_classes: Vec<ClassSpec>, // per class, wall-scaled SLOs
    pub admission: Option<AdmissionConfig>, // window in the scaled domain
    pub expected_queries: u64,
}

/// Runs the query handler until `expected_queries` queries have completed
/// or been rejected.
///
/// `queries` delivers load-generator queries; `results` delivers node
/// completions; `node_txs` are the per-node task channels. The estimator
/// must already be seeded (offline calibration) and works in the scaled
/// wall-clock millisecond domain.
pub(crate) async fn query_handler(
    cfg: HandlerConfig,
    estimator: DeadlineEstimator,
    mut queries: mpsc::UnboundedReceiver<IncomingQuery>,
    mut results: mpsc::UnboundedReceiver<TaskResult>,
    node_txs: Vec<mpsc::UnboundedSender<TaskAssignment>>,
) -> HandlerOutput {
    let n = node_txs.len();
    let mut core = QueryHandler::new(
        cfg.policy,
        cfg.scaled_classes.clone(),
        n,
        estimator,
        cfg.admission,
    );
    // Driver-side per-task state, indexed by the core's sequential task id:
    // what to fetch, and when the node started on it.
    let mut task_ranges: Vec<(u32, u32)> = Vec::new();
    let mut dispatched_at: Vec<Option<Instant>> = Vec::new();
    let mut started: Vec<DispatchedTask> = Vec::new();

    let epoch = Instant::now();
    let mut post_queuing_by_node: Vec<LatencyReservoir> =
        (0..n).map(|_| LatencyReservoir::new()).collect();
    let mut records_retrieved = 0u64;
    let mut temperature_sum = 0.0f64;
    let mut humidity_sum = 0.0f64;
    let mut task_results = 0u64;

    let to_sim =
        |i: Instant| -> SimTime { SimTime::from_nanos(i.duration_since(epoch).as_nanos() as u64) };

    loop {
        {
            let stats = core.stats();
            if stats.completed_queries + stats.rejected_queries >= cfg.expected_queries {
                break;
            }
        }
        // Biased two-way select, hand-rolled at the poll level: node
        // results are always drained before new queries (completions free
        // servers, so this keeps queue depth honest), and the loop ends
        // when both channels are closed and drained.
        let event = std::future::poll_fn(|cx| {
            let mut results_closed = false;
            match results.poll_recv(cx) {
                std::task::Poll::Ready(Some(result)) => {
                    return std::task::Poll::Ready(HandlerEvent::Result(result))
                }
                std::task::Poll::Ready(None) => results_closed = true,
                std::task::Poll::Pending => {}
            }
            match queries.poll_recv(cx) {
                std::task::Poll::Ready(Some(query)) => {
                    return std::task::Poll::Ready(HandlerEvent::Query(query))
                }
                std::task::Poll::Ready(None) if results_closed => {
                    return std::task::Poll::Ready(HandlerEvent::Closed)
                }
                std::task::Poll::Ready(None) | std::task::Poll::Pending => {}
            }
            std::task::Poll::Pending
        })
        .await;
        match event {
            HandlerEvent::Result(result) => {
                let node = result.node as usize;
                let task = result.task_id as u32;
                let now = Instant::now();
                let post_queuing = SimDuration::from_nanos(
                    now.duration_since(
                        dispatched_at[task as usize].expect("result implies dispatch"),
                    )
                    .as_nanos() as u64,
                );
                post_queuing_by_node[node].record(post_queuing);
                records_retrieved += result.records as u64;
                temperature_sum += f64::from(result.mean_temperature);
                humidity_sum += f64::from(result.mean_humidity);
                task_results += 1;
                // Busy accounting, estimator updates (§III.B.2), work
                // conservation, and aggregation happen in the core.
                let TaskCompletion { next, done: _ } =
                    core.on_task_complete(to_sim(now), task, post_queuing);
                if let Some(d) = next {
                    dispatch(d, &mut dispatched_at, &task_ranges, &node_txs);
                }
            }
            HandlerEvent::Query(query) => {
                let decision = core.on_query_arrival(
                    to_sim(Instant::now()),
                    QueryArrival {
                        class: query.class,
                        targets: &query.servers,
                        // No size oracle on a live testbed: nodes measure
                        // their own service times.
                        sizes: None,
                        budget_override: None,
                        task_budgets: None,
                        record: true,
                    },
                    &mut started,
                );
                if let AdmitDecision::Admitted { .. } = decision {
                    task_ranges.extend(&query.ranges);
                    dispatched_at.resize(task_ranges.len(), None);
                    for &d in &started {
                        dispatch(d, &mut dispatched_at, &task_ranges, &node_txs);
                    }
                }
            }
            HandlerEvent::Closed => break, // both channels closed
        }
    }

    let elapsed = SimDuration::from_nanos(epoch.elapsed().as_nanos() as u64);
    let stats = core.into_stats();
    HandlerOutput {
        latency_by_class: stats.query_latency_by_class,
        post_queuing_by_node,
        busy_by_node: stats.busy_by_server,
        elapsed,
        completed_queries: stats.completed_queries,
        rejected_queries: stats.rejected_queries,
        tasks_dequeued: stats.load.tasks_completed_count(),
        deadline_misses: stats.load.deadline_miss_count(),
        admission_resumes: stats.admission_resumes,
        records_retrieved,
        temperature_sum,
        humidity_sum,
        task_results,
    }
}

/// Sends a task the core just moved into service to its edge node.
fn dispatch(
    d: DispatchedTask,
    dispatched_at: &mut [Option<Instant>],
    task_ranges: &[(u32, u32)],
    node_txs: &[mpsc::UnboundedSender<TaskAssignment>],
) {
    dispatched_at[d.task as usize] = Some(Instant::now());
    let (start_day, days) = task_ranges[d.task as usize];
    // A closed node channel means shutdown is racing completion; the
    // expected-queries accounting still terminates the loop.
    let _ = node_txs[d.server as usize].send(TaskAssignment {
        task_id: u64::from(d.task),
        start_day,
        days,
    });
}

/// Outcome of one biased poll over the two handler input channels.
enum HandlerEvent {
    /// A node completed a task.
    Result(TaskResult),
    /// The load generator produced a query.
    Query(IncomingQuery),
    /// Both channels closed and drained.
    Closed,
}

//! Testbed orchestration: calibration, load generation, and reporting.

use crate::handler::{query_handler, HandlerConfig, IncomingQuery};
use crate::node::{edge_node, TaskAssignment, TaskResult};
use crate::sensor::SensorStore;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use tailguard::scenarios::{self, SasCluster};
use tailguard::{AdmissionConfig, ClusterSpec, DeadlineEstimator, EstimatorMode};
use tailguard_dist::{DynDistribution, Scaled};
use tailguard_faults::FaultPlan;
use tailguard_metrics::LatencyReservoir;
use tailguard_obs::SharedRegistry;
use tailguard_policy::Policy;
use tailguard_sched::units;
use tailguard_sched::{
    AdaptiveWindow, HealthConfig, HealthStats, LifecycleStats, MitigationConfig, RobustnessStats,
};
use tailguard_simcore::{SimDuration, SimRng};
use tokio::sync::mpsc;

/// Wall-clock behaviour of a testbed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestbedMode {
    /// Sleeps take real time (compressed by `time_scale`) — the live-demo
    /// mode closest to the physical testbed.
    RealTime,
    /// tokio's paused clock with auto-advance: the identical async code
    /// path executes at simulation speed, deterministically — the mode
    /// tests and benches use.
    PausedTime,
}

/// Configuration of one testbed run.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Queuing policy at the handler's per-node queues.
    pub policy: Policy,
    /// Number of queries to issue.
    pub queries: usize,
    /// Overall offered load (fraction of aggregate node capacity).
    pub target_load: f64,
    /// Time compression: 25 means 82 ms of Pi time runs as 3.3 ms of wall
    /// time. SLOs are compressed identically; reports are de-compressed.
    pub time_scale: f64,
    /// Offline-calibration probe tasks per node (§III.B.2's offline
    /// estimation process).
    pub calibration_probes: usize,
    /// Admission control (window expressed in *uncompressed* Pi time), if
    /// any.
    pub admission: Option<AdmissionConfig>,
    /// Fault episodes to inject at the edge nodes (times in *uncompressed*
    /// Pi time; compressed alongside everything else). Armed only after
    /// offline calibration, so probes always see the healthy cluster.
    pub faults: Option<FaultPlan>,
    /// Workload drift (diurnal load curves, flash crowds, mix shifts) in
    /// *uncompressed* Pi time, applied to the scenario before the load plan
    /// is generated — so a simulator run with the same drifted scenario
    /// consumes the identical query sequence. `None` keeps the stationary
    /// plan (and its RNG stream) bit-identical.
    pub drift: Option<tailguard::DriftPlan>,
    /// Deadline-aware hedging/retry and graceful degradation at the
    /// handler, if any.
    pub mitigation: Option<MitigationConfig>,
    /// Lease TTL in *uncompressed* Pi time (compressed alongside every
    /// other duration). When set, each dispatched task carries a fencing
    /// token; a node silent past the TTL — crashed, restarting, or
    /// partitioned — has its task reclaimed and re-enqueued with the
    /// original deadline, and any zombie result is rejected by token
    /// mismatch. `None` (default) disables crash recovery.
    pub lease_ttl: Option<SimDuration>,
    /// Gray-failure resilience: per-node EWMA health scoring with
    /// hysteresis-gated ejection and recovery probing. The thresholds are
    /// dimensionless ratios against the cluster median, so the same config
    /// works under any time compression. `None` (default) disables it.
    pub health: Option<HealthConfig>,
    /// Adaptive deadline estimation: the estimator decays its observation
    /// histograms every `window` samples so budgets track drifting service
    /// times. `None` (default) keeps the cumulative estimator.
    pub adaptive: Option<AdaptiveWindow>,
    /// Clock mode.
    pub mode: TestbedMode,
    /// Master seed.
    pub seed: u64,
    /// Days of sensor history per node (the physical testbed keeps 540;
    /// tests use less to bound memory).
    pub store_days: u32,
    /// Shared metrics registry, if the run should be observable. The
    /// handler records lifecycle events and keeps the registry current
    /// while running, so a [`tailguard_obs::MetricsServer`] serving this
    /// registry exposes live `/metrics` scrapes. Registry durations are in
    /// the *compressed* wall domain; the `tailguard_run_time_scale` gauge
    /// carries the factor to uncompress them.
    pub registry: Option<SharedRegistry>,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            policy: Policy::TfEdf,
            queries: 2_000,
            target_load: 0.4,
            time_scale: 25.0,
            calibration_probes: 40,
            admission: None,
            faults: None,
            drift: None,
            mitigation: None,
            lease_ttl: None,
            health: None,
            adaptive: None,
            mode: TestbedMode::PausedTime,
            seed: 0x5A5_7E57,
            store_days: 90,
            registry: None,
        }
    }
}

/// Per-cluster post-queuing observations — the data behind Fig. 9(a).
#[derive(Debug, Clone)]
pub struct ClusterObservation {
    /// Cluster display name.
    pub name: &'static str,
    /// Mean task post-queuing time, ms (uncompressed).
    pub mean_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Mean utilization of the cluster's 8 nodes.
    pub load: f64,
}

/// Results of one testbed run (all durations uncompressed to Pi time).
#[derive(Debug)]
pub struct TestbedReport {
    /// Policy under test.
    pub policy: Policy,
    /// Query latencies per class (A=0, B=1, C=2), in real (uncompressed)
    /// time.
    pub latency_by_class: BTreeMap<u8, LatencyReservoir>,
    /// The per-class SLOs (800/1300/1800 ms).
    pub slos: Vec<SimDuration>,
    /// Per-cluster post-queuing statistics (Fig. 9a).
    pub clusters: Vec<ClusterObservation>,
    /// Queries completed.
    pub completed_queries: u64,
    /// Queries rejected by admission control.
    pub rejected_queries: u64,
    /// Admission reject→admit transitions: how many times rejection
    /// *stopped* after the miss window recovered or drained.
    pub admission_resumes: u64,
    /// Fraction of dequeued tasks that missed their deadline.
    pub miss_ratio: f64,
    /// Overall measured load.
    pub overall_load: f64,
    /// Total sensor records retrieved by all tasks.
    pub records_retrieved: u64,
    /// Fleet-wide mean `(temperature °C, humidity %)` over all task
    /// results — the merged sensing answer the SaS returns to users.
    pub mean_reading: (f64, f64),
    /// Wall-clock (compressed) duration of the measurement phase, ms.
    pub elapsed_wall_ms: f64,
    /// Total compressed busy time across all nodes, ms.
    pub busy_wall_ms: f64,
    /// Fault/hedge/partial counters (all zero without faults/mitigation).
    pub robustness: RobustnessStats,
    /// Tasks whose worker panicked (the node survived and reported them).
    pub worker_panics: u64,
    /// Lease/fencing counters (all zero without `lease_ttl`).
    pub lifecycle: LifecycleStats,
    /// Health-tracking counters (all zero without [`TestbedConfig::health`]).
    pub health: HealthStats,
    /// Final per-node EWMA health scores in the *compressed* wall domain
    /// (empty without health tracking).
    pub server_health: Vec<f64>,
    /// Adaptive-estimator window rolls (zero without
    /// [`TestbedConfig::adaptive`]).
    pub estimator_window_rolls: u64,
}

impl TestbedReport {
    /// The measured 99th-percentile latency of `class`, ms.
    pub fn class_p99_ms(&mut self, class: u8) -> f64 {
        self.latency_by_class
            .get_mut(&class)
            .map_or(0.0, |r| r.percentile(0.99).as_millis_f64())
    }

    /// True when every class with enough samples meets its SLO.
    pub fn meets_all_slos(&mut self) -> bool {
        let slos = self.slos.clone();
        (0..slos.len() as u8).all(|c| match self.latency_by_class.get_mut(&c) {
            Some(r) if r.len() >= 20 => r.percentile(0.99) <= slos[c as usize],
            _ => true,
        })
    }
}

/// Runs the testbed to completion on a fresh single-threaded tokio runtime
/// and returns the report.
///
/// # Panics
///
/// Panics on invalid configuration (zero queries, non-positive load or
/// time scale) or if the runtime cannot be built.
pub fn run_testbed(config: &TestbedConfig) -> TestbedReport {
    assert!(config.queries > 0, "need at least one query");
    assert!(config.target_load > 0.0, "load must be positive");
    assert!(config.time_scale > 0.0, "time scale must be positive");
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_time()
        .build()
        .expect("tokio runtime");
    rt.block_on(async {
        if config.mode == TestbedMode::PausedTime {
            tokio::time::pause();
        }
        run_async(config).await
    })
}

async fn run_async(config: &TestbedConfig) -> TestbedReport {
    let scale = config.time_scale;
    let mut master = SimRng::seed(config.seed);
    if let Some(reg) = &config.registry {
        reg.lock().unwrap().gauge_set(
            "tailguard_run_time_scale",
            "Time compression: multiply registry durations by this to get Pi time",
            scale,
        );
    }

    // --- Build the 32-node heterogeneous cluster (scaled domain). -------
    let scaled_dists: Vec<DynDistribution> = SasCluster::ALL
        .iter()
        .flat_map(|c| {
            let d: DynDistribution = Arc::new(Scaled::new(c.service_dist(), scale));
            std::iter::repeat_n(d, 8)
        })
        .collect();
    let scaled_cluster = ClusterSpec::heterogeneous(scaled_dists.clone());

    // --- Spawn edge nodes. ----------------------------------------------
    // The fault plan is compressed into the wall domain like every other
    // duration; the epoch stays unset until calibration finishes, so the
    // probes below always measure the healthy cluster.
    let wall_faults: Option<Arc<FaultPlan>> = config
        .faults
        .as_ref()
        .filter(|p| !p.is_empty())
        .map(|p| Arc::new(p.compressed(scale)));
    let fault_epoch: Arc<OnceLock<tokio::time::Instant>> = Arc::new(OnceLock::new());
    let (result_tx, result_rx) = mpsc::unbounded_channel::<TaskResult>();
    let mut node_txs = Vec::with_capacity(32);
    for node_id in 0..32u32 {
        let (tx, rx) = mpsc::unbounded_channel::<TaskAssignment>();
        node_txs.push(tx);
        let store = Arc::new(SensorStore::generate_days(
            config.seed ^ (0x1000 + u64::from(node_id)),
            config.store_days,
        ));
        tokio::spawn(edge_node(
            node_id,
            store,
            scaled_dists[node_id as usize].clone(),
            1.0, // dists are already compressed
            wall_faults.clone(),
            fault_epoch.clone(),
            master.split(),
            rx,
            result_tx.clone(),
        ));
    }

    // --- The workload plan comes from the simulation twin scenario. ------
    let mut scenario = scenarios::sas_testbed();
    if let Some(d) = &config.drift {
        scenario = scenario.with_drift(d.clone());
    }
    let scaled_classes: Vec<tailguard::ClassSpec> = scenario
        .classes
        .iter()
        .map(|c| {
            tailguard::ClassSpec::p99(SimDuration::from_millis_f64(c.slo.as_millis_f64() / scale))
        })
        .collect();

    // --- Offline calibration (§III.B.2). ----------------------------------
    let mut estimator = DeadlineEstimator::new(
        &scaled_cluster,
        scaled_classes.clone(),
        EstimatorMode::Online {
            refresh_every: 2_000,
            offline_samples: 0,
        },
    );
    // Probe each node sequentially while it is idle, so the measured
    // dispatch→result time is the node's unloaded response time.
    let mut result_rx = result_rx;
    let mut range_rng = master.split();
    for (node, tx) in node_txs.iter().enumerate() {
        for _ in 0..config.calibration_probes {
            let start_day = range_rng.index(config.store_days.max(2) as usize - 1) as u32;
            let sent = tokio::time::Instant::now();
            let _ = tx.send(TaskAssignment {
                task_id: u64::MAX,
                start_day,
                days: 1,
                lease: 0, // probes bypass the core; no fencing
            });
            let r = result_rx.recv().await.expect("nodes alive");
            debug_assert_eq!(r.node as usize, node);
            estimator.record_post_queuing(
                node,
                SimDuration::from_nanos(units::sat_u128_to_u64(sent.elapsed().as_nanos())),
            );
        }
    }
    estimator.refresh_now();
    if let Some(aw) = config.adaptive {
        estimator = estimator.with_adaptive(aw);
    }
    // Calibration done: arm the fault plan — episode times are measured
    // from here, matching the simulator's t = 0.
    crate::node::arm_fault_epoch(&fault_epoch, tokio::time::Instant::now());

    // --- Load generator. ---------------------------------------------------
    let input = scenario.input(config.target_load, config.queries);
    let (query_tx, query_rx) = mpsc::unbounded_channel::<IncomingQuery>();
    let mut gen_rng = master.split();
    let store_days = config.store_days;
    let generator = tokio::spawn(async move {
        let epoch = tokio::time::Instant::now();
        for req in input.requests {
            let spec = &req.queries[0];
            let at = epoch
                + std::time::Duration::from_nanos(units::sat_f64_to_u64(
                    req.arrival.as_nanos() as f64 / scale,
                ));
            tokio::time::sleep_until(at).await;
            let servers = spec
                .servers
                .clone()
                .expect("sas scenario always places explicitly");
            let ranges: Vec<(u32, u32)> = servers
                .iter()
                .map(|_| {
                    let days = 1 + gen_rng.index(30.min(store_days as usize)) as u32;
                    let max_start = store_days.saturating_sub(days).max(1);
                    (gen_rng.index(max_start as usize) as u32, days)
                })
                .collect();
            if query_tx
                .send(IncomingQuery {
                    class: spec.class,
                    servers,
                    ranges,
                })
                .is_err()
            {
                return; // handler finished early
            }
        }
    });

    // --- Query handler. -----------------------------------------------------
    let out = query_handler(
        HandlerConfig {
            policy: config.policy,
            scaled_classes,
            // Compress the time window like every other duration; the
            // thresholds, hysteresis, and window variant pass through.
            admission: config.admission.map(|a| AdmissionConfig {
                window: SimDuration::from_millis_f64(a.window.as_millis_f64() / scale),
                ..a
            }),
            // Hedge threshold and quorum are fractions of budget/fanout —
            // dimensionless, so no compression needed.
            mitigation: config.mitigation,
            // Health thresholds are ratios against the live cluster median
            // — dimensionless, so they pass through uncompressed.
            health: config.health,
            expected_queries: config.queries as u64,
            // The lease TTL is a Pi-time knob like the SLOs; compress it
            // into the wall domain the handler's timers run in.
            lease_ttl: config
                .lease_ttl
                .map(|ttl| SimDuration::from_nanos(units::scale_ns(ttl.as_nanos(), scale.recip()))),
            registry: config.registry.clone(),
        },
        estimator,
        query_rx,
        result_rx,
        node_txs,
    )
    .await;
    generator.abort();

    // --- Assemble the uncompressed report. ----------------------------------
    let unscale = |r: &mut LatencyReservoir| -> LatencyReservoir {
        r.sorted_samples()
            .iter()
            .map(|&ns| SimDuration::from_nanos(units::scale_ns(ns, scale)))
            .collect()
    };
    let mut latency_by_class = BTreeMap::new();
    let mut out_latency = out.latency_by_class;
    for (class, r) in out_latency.iter_mut() {
        latency_by_class.insert(*class, unscale(r));
    }

    let elapsed_ns = out.elapsed.as_nanos().max(1);
    let post = out.post_queuing_by_node;
    let clusters = SasCluster::ALL
        .iter()
        .map(|c| {
            let range = c.server_range();
            let mut merged = LatencyReservoir::new();
            for node in range.clone() {
                merged.merge(&post[node]);
            }
            let mut merged = unscale(&mut merged);
            let busy: u64 = out.busy_by_node[range.clone()]
                .iter()
                .map(|d| d.as_nanos())
                .sum();
            ClusterObservation {
                name: c.name(),
                mean_ms: merged.mean().as_millis_f64(),
                p95_ms: merged.percentile(0.95).as_millis_f64(),
                p99_ms: merged.percentile(0.99).as_millis_f64(),
                load: busy as f64 / (elapsed_ns as f64 * range.len() as f64),
            }
        })
        .collect();
    let total_busy: u64 = out.busy_by_node.iter().map(|d| d.as_nanos()).sum();

    TestbedReport {
        policy: config.policy,
        latency_by_class,
        slos: scenario.classes.iter().map(|c| c.slo).collect(),
        clusters,
        completed_queries: out.completed_queries,
        rejected_queries: out.rejected_queries,
        admission_resumes: out.admission_resumes,
        miss_ratio: if out.tasks_dequeued == 0 {
            0.0
        } else {
            out.deadline_misses as f64 / out.tasks_dequeued as f64
        },
        overall_load: total_busy as f64 / (elapsed_ns as f64 * 32.0),
        elapsed_wall_ms: elapsed_ns as f64 / 1e6,
        busy_wall_ms: total_busy as f64 / 1e6,
        records_retrieved: out.records_retrieved,
        mean_reading: if out.task_results == 0 {
            (0.0, 0.0)
        } else {
            (
                out.temperature_sum / out.task_results as f64,
                out.humidity_sum / out.task_results as f64,
            )
        },
        robustness: out.robustness,
        worker_panics: out.worker_panics,
        lifecycle: out.lifecycle,
        health: out.health,
        server_health: out.server_health,
        estimator_window_rolls: out.estimator_window_rolls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: Policy, load: f64, queries: usize) -> TestbedConfig {
        TestbedConfig {
            policy,
            queries,
            target_load: load,
            calibration_probes: 20,
            store_days: 35,
            mode: TestbedMode::PausedTime,
            ..TestbedConfig::default()
        }
    }

    #[test]
    fn completes_all_queries() {
        let mut report = run_testbed(&quick(Policy::TfEdf, 0.25, 300));
        assert_eq!(report.completed_queries, 300);
        assert_eq!(report.rejected_queries, 0);
        assert!(report.records_retrieved > 0);
        let (t, h) = report.mean_reading;
        assert!(t > -20.0 && t < 50.0, "temperature {t}");
        assert!((0.0..=100.0).contains(&h), "humidity {h}");
        // All three classes saw traffic.
        for class in 0..3u8 {
            assert!(report.class_p99_ms(class) > 0.0, "class {class}");
        }
    }

    #[test]
    fn cluster_observations_match_paper_ordering() {
        let report = run_testbed(&quick(Policy::TfEdf, 0.2, 400));
        let by_name: std::collections::HashMap<&str, &ClusterObservation> =
            report.clusters.iter().map(|c| (c.name, c)).collect();
        // Wet-lab is the fastest cluster (§IV.E).
        assert!(by_name["Wet-lab"].mean_ms < by_name["Server-room"].mean_ms);
        assert!(by_name["Wet-lab"].mean_ms < by_name["Faculty"].mean_ms);
        // Server-room carries the skewed class-A load.
        assert!(
            by_name["Server-room"].load > by_name["Faculty"].load,
            "server-room {} vs faculty {}",
            by_name["Server-room"].load,
            by_name["Faculty"].load
        );
    }

    #[test]
    fn low_load_meets_slos() {
        let mut report = run_testbed(&quick(Policy::TfEdf, 0.15, 400));
        assert!(
            report.meets_all_slos(),
            "A={} B={} C={}",
            report.class_p99_ms(0),
            report.class_p99_ms(1),
            report.class_p99_ms(2)
        );
        assert!(report.miss_ratio < 0.05);
    }

    #[test]
    fn paused_runs_are_deterministic() {
        let cfg = quick(Policy::TfEdf, 0.3, 200);
        let mut a = run_testbed(&cfg);
        let mut b = run_testbed(&cfg);
        assert_eq!(a.completed_queries, b.completed_queries);
        assert_eq!(a.class_p99_ms(0), b.class_p99_ms(0));
        assert_eq!(a.records_retrieved, b.records_retrieved);
    }

    #[test]
    fn all_policies_run() {
        for policy in Policy::ALL {
            let report = run_testbed(&quick(policy, 0.25, 150));
            assert_eq!(report.completed_queries, 150, "{policy}");
        }
    }

    #[test]
    fn admission_control_rejects_at_overload() {
        let mut cfg = quick(Policy::TfEdf, 1.4, 600);
        cfg.admission = Some(AdmissionConfig::new(
            tailguard_simcore::SimDuration::from_millis(20_000),
            0.02,
        ));
        let report = run_testbed(&cfg);
        assert!(
            report.rejected_queries > 0,
            "expected rejections at 140% load"
        );
        assert_eq!(report.completed_queries + report.rejected_queries, 600);
    }

    #[test]
    fn admission_rejection_stops_after_window_drains() {
        // Hysteresis recovery: at 140% load the controller must start
        // rejecting, and — because rejected queries add no work while the
        // backlog drains and misses age out of the time window — it must
        // also *stop* rejecting at least once before the run ends.
        let mut cfg = quick(Policy::TfEdf, 1.3, 1_500);
        // Mild overload and a short window: rejection trips once the queue
        // builds, the rejection pause then drains the backlog well before
        // the arrivals run out, misses age out of the window, and admission
        // must resume at least once.
        cfg.admission = Some(
            AdmissionConfig::new(tailguard_simcore::SimDuration::from_millis(2_000), 0.02)
                .with_resume_threshold(0.01),
        );
        let report = run_testbed(&cfg);
        assert!(report.rejected_queries > 0, "expected rejections");
        assert!(
            report.admission_resumes >= 1,
            "rejection never stopped: {} resumes",
            report.admission_resumes
        );
        assert_eq!(report.completed_queries + report.rejected_queries, 1_500);
    }

    #[test]
    fn blackout_with_retries_still_finishes_and_counts_losses() {
        use tailguard_faults::{FaultEpisode, FaultKind};
        use tailguard_simcore::SimTime;
        let mut cfg = quick(Policy::TfEdf, 0.25, 300);
        // Nodes 0–3 black out for the whole run (Pi-time horizon far past
        // the measurement window); retries re-place their tasks.
        let mut plan = FaultPlan::new();
        for node in 0..4 {
            plan = plan.with_episode(FaultEpisode::new(
                node,
                SimTime::ZERO,
                SimTime::from_millis(100_000_000),
                FaultKind::Drop,
            ));
        }
        cfg.faults = Some(plan);
        cfg.mitigation = Some(MitigationConfig::new());
        let report = run_testbed(&cfg);
        let r = &report.robustness;
        assert!(r.tasks_lost_to_faults > 0, "no task hit the blackout");
        assert!(r.retries > 0, "losses must trigger retries");
        assert_eq!(report.worker_panics, 0);
        // Every query is accounted for exactly once.
        assert_eq!(
            report.completed_queries
                + report.rejected_queries
                + r.partial_completions
                + r.failed_queries,
            300
        );
    }

    #[test]
    fn unmitigated_blackout_fails_queries_but_terminates() {
        use tailguard_faults::{FaultEpisode, FaultKind};
        use tailguard_simcore::SimTime;
        let mut cfg = quick(Policy::TfEdf, 0.25, 200);
        let mut plan = FaultPlan::new();
        for node in 0..4 {
            plan = plan.with_episode(FaultEpisode::new(
                node,
                SimTime::ZERO,
                SimTime::from_millis(100_000_000),
                FaultKind::Drop,
            ));
        }
        cfg.faults = Some(plan);
        let report = run_testbed(&cfg);
        let r = &report.robustness;
        assert!(r.tasks_lost_to_faults > 0);
        assert_eq!(r.retries, 0, "no mitigation, no retries");
        // Fanout-1 queries on a dead node lose every slot → failed; wider
        // queries keep their healthy slots → partial.
        assert!(r.failed_queries > 0, "unmitigated losses must fail queries");
        assert!(r.partial_completions > 0, "wide queries degrade to partial");
        assert_eq!(
            report.completed_queries
                + report.rejected_queries
                + r.partial_completions
                + r.failed_queries,
            200
        );
    }

    #[test]
    fn hedging_under_faults_issues_hedges() {
        use tailguard_faults::{FaultEpisode, FaultKind};
        use tailguard_simcore::SimTime;
        let mut cfg = quick(Policy::TfEdf, 0.3, 300);
        // A long stall on one server-room node makes its queue linger past
        // hedge thresholds without losing tasks outright.
        cfg.faults = Some(FaultPlan::new().with_episode(FaultEpisode::new(
            0,
            SimTime::ZERO,
            SimTime::from_millis(100_000_000),
            FaultKind::Slowdown { factor: 20.0 },
        )));
        cfg.mitigation = Some(MitigationConfig::new().with_hedge_after(0.5));
        let report = run_testbed(&cfg);
        let r = &report.robustness;
        assert!(r.hedges_issued > 0, "slow node must trigger hedges");
        assert!(r.hedge_wins > 0, "some hedge should beat the slow node");
        assert_eq!(
            report.completed_queries + report.rejected_queries + r.failed_queries,
            300
        );
    }

    #[test]
    fn crash_with_lease_reclaims_and_conserves_queries() {
        use tailguard_faults::{FaultEpisode, FaultKind};
        use tailguard_simcore::SimTime;
        let mut cfg = quick(Policy::TfEdf, 0.25, 300);
        // Nodes 0–1 crash for a finite window: tasks dispatched into (or
        // caught in-flight by) the window vanish silently — no Lost
        // report, nothing. Only the lease notices.
        let mut plan = FaultPlan::new();
        for node in 0..2 {
            plan = plan.with_episode(FaultEpisode::new(
                node,
                SimTime::ZERO,
                SimTime::from_millis(3_000),
                FaultKind::Crash,
            ));
        }
        cfg.faults = Some(plan);
        cfg.lease_ttl = Some(SimDuration::from_millis(500));
        let report = run_testbed(&cfg);
        let lc = &report.lifecycle;
        assert!(lc.reclaims > 0, "crashed tasks must be reclaimed");
        assert!(lc.leases_issued > 0);
        // Reclaim + re-enqueue keeps retrying until the node recovers, so
        // no query is lost and none is double-counted.
        assert_eq!(
            report.completed_queries
                + report.rejected_queries
                + report.robustness.partial_completions
                + report.robustness.failed_queries,
            300
        );
        // Every attempt the store ever tracked is in a terminal state or
        // was never started; nothing leaks.
        assert_eq!(lc.queued + lc.leased + lc.running, 0, "no task left live");
    }

    #[test]
    fn duplicate_delivery_is_suppressed_idempotently() {
        use tailguard_faults::{FaultEpisode, FaultKind};
        use tailguard_simcore::SimTime;
        let mut cfg = quick(Policy::TfEdf, 0.25, 300);
        // Nodes 0–3 deliver every result twice for the whole run.
        let mut plan = FaultPlan::new();
        for node in 0..4 {
            plan = plan.with_episode(FaultEpisode::new(
                node,
                SimTime::ZERO,
                SimTime::from_millis(100_000_000),
                FaultKind::DuplicateDelivery,
            ));
        }
        cfg.faults = Some(plan);
        cfg.lease_ttl = Some(SimDuration::from_millis(5_000));
        let mut report = run_testbed(&cfg);
        let lc = &report.lifecycle;
        assert!(lc.duplicates_suppressed > 0, "duplicates must be fenced");
        assert_eq!(lc.reclaims, 0, "generous TTL: nothing should expire");
        assert_eq!(report.completed_queries, 300);
        // The duplicate payloads must not inflate the sensing aggregates:
        // readings stay physical.
        let (t, h) = report.mean_reading;
        assert!(t > -20.0 && t < 50.0, "temperature {t}");
        assert!((0.0..=100.0).contains(&h), "humidity {h}");
        assert!(report.class_p99_ms(0) > 0.0);
    }

    #[test]
    fn restart_loses_in_flight_work_but_recovers() {
        use tailguard_faults::{FaultEpisode, FaultKind};
        use tailguard_simcore::SimTime;
        let mut cfg = quick(Policy::TfEdf, 0.3, 300);
        // One server-room node restarts repeatedly early in the run:
        // results landing inside an episode are lost WITH notification, so
        // the core frees the node immediately (no lease wait needed).
        let mut plan = FaultPlan::new();
        for k in 0..3 {
            let start = 500 + k * 2_000;
            plan = plan.with_episode(FaultEpisode::new(
                0,
                SimTime::from_millis(start),
                SimTime::from_millis(start + 800),
                FaultKind::Restart,
            ));
        }
        cfg.faults = Some(plan);
        cfg.lease_ttl = Some(SimDuration::from_millis(2_000));
        cfg.mitigation = Some(MitigationConfig::new());
        let report = run_testbed(&cfg);
        assert!(
            report.robustness.tasks_lost_to_faults > 0,
            "restarts must lose in-flight work"
        );
        assert_eq!(
            report.completed_queries
                + report.rejected_queries
                + report.robustness.partial_completions
                + report.robustness.failed_queries,
            300
        );
    }

    #[test]
    fn lease_off_keeps_lifecycle_counters_quiet() {
        let report = run_testbed(&quick(Policy::TfEdf, 0.25, 200));
        let lc = &report.lifecycle;
        assert_eq!(lc.reclaims, 0);
        assert_eq!(lc.duplicates_suppressed, 0);
        assert_eq!(lc.stale_commits_rejected, 0);
        // Leases are still issued (the token fences every dispatch); they
        // just never expire without a TTL.
        assert!(lc.leases_issued > 0);
        assert_eq!(lc.completed, lc.leases_issued, "every dispatch committed");
    }

    #[test]
    fn observed_run_populates_registry_and_serves_metrics() {
        use tailguard_obs::{shared_registry, MetricsServer};

        let registry = shared_registry();
        let mut cfg = quick(Policy::TfEdf, 0.25, 200);
        cfg.registry = Some(Arc::clone(&registry));
        let report = run_testbed(&cfg);
        assert_eq!(report.completed_queries, 200);

        {
            let reg = registry.lock().unwrap();
            assert_eq!(
                reg.counter("tailguard_queries_admitted_total"),
                Some(200),
                "every admitted query traced"
            );
            assert_eq!(
                reg.counter("tailguard_estimator_budget_lookups_total"),
                Some(200),
                "one budget lookup per arrival"
            );
            assert!(reg.histogram("tailguard_queue_wait_ms").is_some());
            assert!(reg.series("tailguard_queue_depth").is_some());
            assert_eq!(reg.gauge("tailguard_run_time_scale"), Some(25.0));
        }

        // The same registry serves live Prometheus scrapes.
        let server = MetricsServer::serve(Arc::clone(&registry), 0).unwrap();
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        use std::io::{Read as _, Write as _};
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.contains("# TYPE tailguard_queries_admitted_total counter"));
        assert!(body.contains("# TYPE tailguard_queue_wait_ms histogram"));
        assert!(body.contains("tailguard_queries_admitted_total 200"));
    }

    #[test]
    #[should_panic(expected = "need at least one query")]
    fn zero_queries_rejected() {
        let mut cfg = quick(Policy::Fifo, 0.2, 1);
        cfg.queries = 0;
        let _ = run_testbed(&cfg);
    }

    #[test]
    fn pi_to_wall_scaling_clamps_near_u64_max() {
        // The exact conversions the runner/handler use for Pi→wall
        // compression and wall→Pi reporting, pinned at the end of the u64
        // nanosecond domain: a pathological virtual time must clamp, never
        // wrap into a short (or zero) wall delay.
        let scale = 25.0_f64;
        for t in [u64::MAX, u64::MAX - 1, u64::MAX - 3] {
            // Compression divides by `scale`; the result stays enormous
            // and ordered, not wrapped to ~0.
            let wall = units::sat_f64_to_u64(t as f64 / scale);
            assert!(wall > u64::MAX / 26, "compressed {t} collapsed to {wall}");
            // Un-scaling a near-max wall sample back into Pi time
            // saturates at u64::MAX instead of wrapping.
            assert_eq!(units::scale_ns(t, scale), u64::MAX);
            // TTL compression keeps a finite positive duration.
            let ttl = SimDuration::from_nanos(units::scale_ns(t, scale.recip()));
            assert!(ttl.as_nanos() > 0);
        }
        // Wall durations longer than the u64 ns domain (u128 from
        // std::time) clamp on entry instead of truncating high bits.
        assert_eq!(units::sat_u128_to_u64(u128::from(u64::MAX) + 7), u64::MAX);
    }
}

//! The emulated edge node.

use crate::sensor::SensorStore;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use tailguard_dist::DynDistribution;
use tailguard_faults::FaultPlan;
use tailguard_sched::units;
use tailguard_simcore::{SimDuration, SimRng, SimTime};
use tokio::sync::mpsc;
use tokio::time::Instant;

/// Times the fault epoch was armed when it already held an instant.
/// Double-arming is benign (first arm wins) but worth counting: a non-zero
/// value in a test run means two code paths both think they own arming.
static FAULT_EPOCH_DOUBLE_ARMS: AtomicU64 = AtomicU64::new(0);

/// Arms the fault epoch at `now`, idempotently.
///
/// `OnceLock::set` returns `Err` when a value is already present; an
/// `unwrap()` there would panic whichever worker armed second (e.g. a
/// runner re-calibrating after a warm-up pass). The first arm wins — fault
/// episodes stay anchored to the earliest epoch — and later arms are
/// counted instead of panicking. Returns `true` when this call armed it.
pub(crate) fn arm_fault_epoch(epoch: &OnceLock<Instant>, now: Instant) -> bool {
    let armed = epoch.set(now).is_ok();
    if !armed {
        FAULT_EPOCH_DOUBLE_ARMS.fetch_add(1, Ordering::Relaxed);
        debug_assert!(
            epoch.get().is_some(),
            "set failed, so an instant must already be armed"
        );
    }
    armed
}

/// Times the epoch was re-armed after already being set (see
/// [`arm_fault_epoch`]); process-wide, read by the regression test.
#[cfg(test)]
pub(crate) fn fault_epoch_double_arms() -> u64 {
    FAULT_EPOCH_DOUBLE_ARMS.load(Ordering::Relaxed)
}

/// A task sent from the query handler to an edge node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TaskAssignment {
    /// Handler-side task identifier.
    pub task_id: u64,
    /// The lease token fencing this dispatch (0 = unleased); echoed back
    /// in the result so the handler can reject zombie replies.
    pub lease: u64,
    /// First day of the requested record range.
    pub start_day: u32,
    /// Number of consecutive days requested.
    pub days: u32,
}

/// What happened to a task at the edge node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskOutcome {
    /// The retrieval completed and the payload is valid.
    Ok,
    /// A fault episode swallowed the task (at dispatch) or its result (at
    /// completion); no payload.
    Lost,
    /// The worker panicked while serving the task; no payload.
    Failed,
}

/// A completed task returned to the handler/aggregator.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TaskResult {
    /// The node that served the task.
    pub node: u32,
    /// Handler-side task identifier.
    pub task_id: u64,
    /// The lease token the task was dispatched under, echoed back.
    pub lease: u64,
    /// Number of sensor records retrieved.
    pub records: usize,
    /// Mean temperature over the range (the aggregated payload).
    pub mean_temperature: f32,
    /// Mean humidity over the range.
    pub mean_humidity: f32,
    /// Whether the payload is valid, or how the task was lost.
    pub outcome: TaskOutcome,
}

/// A payload-free result for a task the node could not serve.
fn empty_result(node: u32, task_id: u64, lease: u64, outcome: TaskOutcome) -> TaskResult {
    TaskResult {
        node,
        task_id,
        lease,
        records: 0,
        mean_temperature: 0.0,
        mean_humidity: 0.0,
        outcome,
    }
}

/// Runs one edge node: serves tasks one at a time — emulating the Pi's
/// processing time with a sleep drawn from the node's cluster service
/// distribution (compressed by `time_scale`) — then performs the actual
/// record retrieval and returns the aggregate.
///
/// `faults` (already compressed into the wall domain) injects per-node
/// episodes measured from the instant `fault_epoch` is set; until then the
/// node is healthy, so offline calibration always probes the fault-free
/// cluster. Worker panics (in the service draw or the retrieval) are caught
/// and reported as [`TaskOutcome::Failed`] instead of killing the node.
///
/// Exits when the assignment channel closes.
#[allow(clippy::too_many_arguments)]
pub(crate) async fn edge_node(
    node_id: u32,
    store: Arc<SensorStore>,
    service: DynDistribution,
    time_scale: f64,
    faults: Option<Arc<FaultPlan>>,
    fault_epoch: Arc<OnceLock<Instant>>,
    mut rng: SimRng,
    mut tasks: mpsc::UnboundedReceiver<TaskAssignment>,
    results: mpsc::UnboundedSender<TaskResult>,
) {
    while let Some(task) = tasks.recv().await {
        let fault_now = || -> Option<SimTime> {
            let epoch = fault_epoch.get()?;
            Some(SimTime::from_nanos(units::sat_u128_to_u64(
                epoch.elapsed().as_nanos(),
            )))
        };
        // A pathological service distribution can panic; treat that like
        // any other worker fault so the node survives.
        let drawn = std::panic::catch_unwind(AssertUnwindSafe(|| service.sample(&mut rng)));
        let Ok(sample_ms) = drawn else {
            if results
                .send(empty_result(
                    node_id,
                    task.task_id,
                    task.lease,
                    TaskOutcome::Failed,
                ))
                .is_err()
            {
                return;
            }
            continue;
        };
        let mut service_ms = sample_ms / time_scale;
        let dispatched_at = fault_now().unwrap_or(SimTime::ZERO);
        if let (Some(plan), Some(now)) = (faults.as_deref(), fault_now()) {
            if plan.crashed(node_id, now) {
                // The node is down: the dispatch vanishes without a trace —
                // no NACK, no result. Only a lease reclaim recovers it.
                continue;
            }
            if plan.drops(node_id, now) {
                // Blackout at dispatch: the task is swallowed, no work done.
                if results
                    .send(empty_result(
                        node_id,
                        task.task_id,
                        task.lease,
                        TaskOutcome::Lost,
                    ))
                    .is_err()
                {
                    return;
                }
                continue;
            }
            // Stall/restart episodes defer the start; slowdown episodes
            // inflate the service — both fold into one effective
            // dispatch→result delay.
            service_ms = plan
                .completion_delay(node_id, now, SimDuration::from_millis_f64(service_ms))
                .as_millis_f64();
        }
        // tokio's timer wheel rounds sleeps *up* to 1 ms, which would bias
        // every service time (+0.5 ms mean — 20% at a 25x compression).
        // Stochastic rounding to whole milliseconds keeps the mean exact:
        // 2.3 ms sleeps 2 ms with p=0.7 and 3 ms with p=0.3.
        let floor = service_ms.floor();
        let quantized_ms = units::trunc_f64_to_u64(if rng.f64() < service_ms - floor {
            floor + 1.0
        } else {
            floor
        });
        // tokio wakes at the first wheel tick *strictly after* now + d, so
        // an aligned n-ms target needs sleep(n-1 ms); sleep(0) itself
        // consumes exactly one 1-ms tick (verified by testbed tests).
        if quantized_ms >= 1 {
            tokio::time::sleep(std::time::Duration::from_millis(quantized_ms - 1)).await;
        }
        let mut duplicate = false;
        if let (Some(plan), Some(now)) = (faults.as_deref(), fault_now()) {
            if plan.crash_started_within(node_id, dispatched_at, now) {
                // The node crashed while the work was in flight: it
                // restarted and forgot the task. Nothing lands, nobody is
                // notified — the lease reclaim is the only recovery.
                continue;
            }
            if plan.drops(node_id, now) || plan.restart_loses(node_id, now) {
                // The result lands inside a blackout or a restart window:
                // the reply is lost with the node's in-flight state, but
                // the scheduler is notified.
                if results
                    .send(empty_result(
                        node_id,
                        task.task_id,
                        task.lease,
                        TaskOutcome::Lost,
                    ))
                    .is_err()
                {
                    return;
                }
                continue;
            }
            duplicate = plan.duplicates(node_id, now);
        }
        let retrieved = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let slice = store.range_query(task.start_day, task.days);
            let (mean_temperature, mean_humidity) = SensorStore::aggregate(slice);
            (slice.len(), mean_temperature, mean_humidity)
        }));
        let result = match retrieved {
            Ok((records, mean_temperature, mean_humidity)) => TaskResult {
                node: node_id,
                task_id: task.task_id,
                lease: task.lease,
                records,
                mean_temperature,
                mean_humidity,
                outcome: TaskOutcome::Ok,
            },
            Err(_) => empty_result(node_id, task.task_id, task.lease, TaskOutcome::Failed),
        };
        if results.send(result).is_err() {
            return; // handler gone; shut down quietly
        }
        if duplicate {
            // The ack was retransmitted: deliver the same result a second
            // time. The handler's state store suppresses the redelivery.
            if results.send(result).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_dist::{Cdf, Deterministic, Distribution};
    use tailguard_faults::{FaultEpisode, FaultKind};

    fn healthy() -> (Option<Arc<FaultPlan>>, Arc<OnceLock<Instant>>) {
        (None, Arc::new(OnceLock::new()))
    }

    #[tokio::test(start_paused = true)]
    async fn node_serves_tasks_in_order() {
        let store = Arc::new(SensorStore::generate_days(1, 40));
        let (task_tx, task_rx) = mpsc::unbounded_channel();
        let (res_tx, mut res_rx) = mpsc::unbounded_channel();
        let service: DynDistribution = Arc::new(Deterministic::new(5.0));
        let (faults, epoch) = healthy();
        tokio::spawn(edge_node(
            3,
            store,
            service,
            1.0,
            faults,
            epoch,
            SimRng::seed(1),
            task_rx,
            res_tx,
        ));
        let t0 = tokio::time::Instant::now();
        for id in 0..3 {
            task_tx
                .send(TaskAssignment {
                    task_id: id,
                    lease: 0,
                    start_day: 0,
                    days: 1,
                })
                .unwrap();
        }
        for id in 0..3 {
            let r = res_rx.recv().await.unwrap();
            assert_eq!(r.task_id, id);
            assert_eq!(r.node, 3);
            assert_eq!(r.records, SensorStore::RECORDS_PER_DAY);
            assert_eq!(r.outcome, TaskOutcome::Ok);
        }
        // Three sequential ~5ms services (tick-compensated; allow 1-tick
        // misalignment at the start of the run).
        let e = t0.elapsed();
        assert!(e >= std::time::Duration::from_millis(11), "{e:?}");
        assert!(e <= std::time::Duration::from_millis(18), "{e:?}");
    }

    #[tokio::test(start_paused = true)]
    async fn time_scale_compresses_service() {
        let store = Arc::new(SensorStore::generate_days(2, 5));
        let (task_tx, task_rx) = mpsc::unbounded_channel();
        let (res_tx, mut res_rx) = mpsc::unbounded_channel();
        let service: DynDistribution = Arc::new(Deterministic::new(100.0));
        let (faults, epoch) = healthy();
        tokio::spawn(edge_node(
            0,
            store,
            service,
            10.0, // 100ms of "Pi time" becomes 10ms of wall time
            faults,
            epoch,
            SimRng::seed(1),
            task_rx,
            res_tx,
        ));
        let t0 = tokio::time::Instant::now();
        task_tx
            .send(TaskAssignment {
                task_id: 0,
                lease: 0,
                start_day: 0,
                days: 1,
            })
            .unwrap();
        res_rx.recv().await.unwrap();
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= std::time::Duration::from_millis(8),
            "{elapsed:?}"
        );
        assert!(
            elapsed < std::time::Duration::from_millis(20),
            "{elapsed:?}"
        );
    }

    #[tokio::test(start_paused = true)]
    async fn node_exits_on_channel_close() {
        let store = Arc::new(SensorStore::generate_days(3, 5));
        let (task_tx, task_rx) = mpsc::unbounded_channel();
        let (res_tx, _res_rx) = mpsc::unbounded_channel();
        let service: DynDistribution = Arc::new(Deterministic::new(1.0));
        let (faults, epoch) = healthy();
        let h = tokio::spawn(edge_node(
            0,
            store,
            service,
            1.0,
            faults,
            epoch,
            SimRng::seed(1),
            task_rx,
            res_tx,
        ));
        drop(task_tx);
        h.await.unwrap(); // must terminate
    }

    #[tokio::test(start_paused = true)]
    async fn blackout_loses_tasks_until_the_episode_ends() {
        let store = Arc::new(SensorStore::generate_days(4, 10));
        let (task_tx, task_rx) = mpsc::unbounded_channel();
        let (res_tx, mut res_rx) = mpsc::unbounded_channel();
        let service: DynDistribution = Arc::new(Deterministic::new(2.0));
        let plan = FaultPlan::new().with_episode(FaultEpisode::new(
            7,
            SimTime::from_millis(0),
            SimTime::from_millis(5),
            FaultKind::Drop,
        ));
        let epoch = Arc::new(OnceLock::new());
        arm_fault_epoch(&epoch, Instant::now());
        tokio::spawn(edge_node(
            7,
            store,
            service,
            1.0,
            Some(Arc::new(plan)),
            epoch,
            SimRng::seed(1),
            task_rx,
            res_tx,
        ));
        let send = |id| {
            task_tx
                .send(TaskAssignment {
                    task_id: id,
                    lease: 0,
                    start_day: 0,
                    days: 1,
                })
                .unwrap();
        };
        send(0);
        let r = res_rx.recv().await.unwrap();
        assert_eq!(r.outcome, TaskOutcome::Lost);
        assert_eq!(r.records, 0);
        // Past the blackout the node is healthy again.
        tokio::time::sleep(std::time::Duration::from_millis(10)).await;
        send(1);
        let r = res_rx.recv().await.unwrap();
        assert_eq!(r.outcome, TaskOutcome::Ok);
        assert_eq!(r.records, SensorStore::RECORDS_PER_DAY);
    }

    #[tokio::test(start_paused = true)]
    async fn crash_swallows_the_task_silently() {
        let store = Arc::new(SensorStore::generate_days(8, 10));
        let (task_tx, task_rx) = mpsc::unbounded_channel();
        let (res_tx, mut res_rx) = mpsc::unbounded_channel();
        let service: DynDistribution = Arc::new(Deterministic::new(2.0));
        let plan = FaultPlan::new().with_episode(FaultEpisode::new(
            9,
            SimTime::from_millis(0),
            SimTime::from_millis(5),
            FaultKind::Crash,
        ));
        let epoch = Arc::new(OnceLock::new());
        arm_fault_epoch(&epoch, Instant::now());
        tokio::spawn(edge_node(
            9,
            store,
            service,
            1.0,
            Some(Arc::new(plan)),
            epoch,
            SimRng::seed(1),
            task_rx,
            res_tx,
        ));
        let send = |id| {
            task_tx
                .send(TaskAssignment {
                    task_id: id,
                    lease: id + 1,
                    start_day: 0,
                    days: 1,
                })
                .unwrap();
        };
        // Dispatched into the crash: swallowed, no result at all.
        send(0);
        // Past the crash: served normally, and the lease echoes back.
        tokio::time::sleep(std::time::Duration::from_millis(10)).await;
        send(1);
        let r = res_rx.recv().await.unwrap();
        assert_eq!(r.task_id, 1, "the crashed task must yield nothing");
        assert_eq!(r.lease, 2);
        assert_eq!(r.outcome, TaskOutcome::Ok);
    }

    #[tokio::test(start_paused = true)]
    async fn duplicate_delivery_sends_the_result_twice() {
        let store = Arc::new(SensorStore::generate_days(9, 10));
        let (task_tx, task_rx) = mpsc::unbounded_channel();
        let (res_tx, mut res_rx) = mpsc::unbounded_channel();
        let service: DynDistribution = Arc::new(Deterministic::new(2.0));
        let plan = FaultPlan::new().with_episode(FaultEpisode::new(
            4,
            SimTime::from_millis(0),
            SimTime::from_millis(50),
            FaultKind::DuplicateDelivery,
        ));
        let epoch = Arc::new(OnceLock::new());
        arm_fault_epoch(&epoch, Instant::now());
        tokio::spawn(edge_node(
            4,
            store,
            service,
            1.0,
            Some(Arc::new(plan)),
            epoch,
            SimRng::seed(1),
            task_rx,
            res_tx,
        ));
        task_tx
            .send(TaskAssignment {
                task_id: 0,
                lease: 7,
                start_day: 0,
                days: 1,
            })
            .unwrap();
        let first = res_rx.recv().await.unwrap();
        let second = res_rx.recv().await.unwrap();
        assert_eq!(first.task_id, second.task_id);
        assert_eq!(first.lease, second.lease);
        assert_eq!(first.outcome, TaskOutcome::Ok);
        assert_eq!(second.outcome, TaskOutcome::Ok);
        assert_eq!(first.records, second.records);
    }

    #[tokio::test(start_paused = true)]
    async fn slowdown_inflates_service_time() {
        let store = Arc::new(SensorStore::generate_days(5, 10));
        let (task_tx, task_rx) = mpsc::unbounded_channel();
        let (res_tx, mut res_rx) = mpsc::unbounded_channel();
        let service: DynDistribution = Arc::new(Deterministic::new(5.0));
        let plan = FaultPlan::new().with_episode(FaultEpisode::new(
            0,
            SimTime::from_millis(0),
            SimTime::from_millis(1_000),
            FaultKind::Slowdown { factor: 4.0 },
        ));
        let epoch = Arc::new(OnceLock::new());
        arm_fault_epoch(&epoch, Instant::now());
        tokio::spawn(edge_node(
            0,
            store,
            service,
            1.0,
            Some(Arc::new(plan)),
            epoch,
            SimRng::seed(1),
            task_rx,
            res_tx,
        ));
        let t0 = tokio::time::Instant::now();
        task_tx
            .send(TaskAssignment {
                task_id: 0,
                lease: 0,
                start_day: 0,
                days: 1,
            })
            .unwrap();
        let r = res_rx.recv().await.unwrap();
        assert_eq!(r.outcome, TaskOutcome::Ok);
        // 5 ms × factor 4 ≈ 20 ms instead of 5 ms.
        let e = t0.elapsed();
        assert!(e >= std::time::Duration::from_millis(17), "{e:?}");
        assert!(e <= std::time::Duration::from_millis(23), "{e:?}");
    }

    /// A service distribution that panics on every draw — the injection
    /// point for worker-panic hardening tests.
    #[derive(Debug)]
    struct PanickingDist;
    impl Cdf for PanickingDist {
        fn cdf(&self, x: f64) -> f64 {
            if x >= 1.0 {
                1.0
            } else {
                0.0
            }
        }
    }
    impl Distribution for PanickingDist {
        fn sample(&self, _rng: &mut SimRng) -> f64 {
            panic!("injected worker fault")
        }
        fn mean(&self) -> f64 {
            1.0
        }
    }

    #[tokio::test(start_paused = true)]
    async fn worker_panic_reports_failed_and_node_survives() {
        let store = Arc::new(SensorStore::generate_days(6, 5));
        let (task_tx, task_rx) = mpsc::unbounded_channel();
        let (res_tx, mut res_rx) = mpsc::unbounded_channel();
        let service: DynDistribution = Arc::new(PanickingDist);
        let (faults, epoch) = healthy();
        tokio::spawn(edge_node(
            0,
            store,
            service,
            1.0,
            faults,
            epoch,
            SimRng::seed(1),
            task_rx,
            res_tx,
        ));
        // Two tasks: both must come back Failed — the panic is contained
        // per task, so the node keeps serving instead of dying on the
        // first one.
        for id in 0..2 {
            task_tx
                .send(TaskAssignment {
                    task_id: id,
                    lease: 0,
                    start_day: 0,
                    days: 1,
                })
                .unwrap();
        }
        for id in 0..2 {
            let r = res_rx.recv().await.unwrap();
            assert_eq!(r.task_id, id);
            assert_eq!(r.outcome, TaskOutcome::Failed);
            assert_eq!(r.records, 0);
        }
    }

    /// Regression: arming the fault epoch twice used to `unwrap()` the
    /// `OnceLock::set` error and panic the arming worker. It must be
    /// idempotent — first instant wins, later arms are counted.
    #[tokio::test(start_paused = true)]
    async fn double_arming_the_fault_epoch_is_idempotent() {
        let epoch = Arc::new(OnceLock::new());
        let before = fault_epoch_double_arms();
        let first = Instant::now();
        assert!(arm_fault_epoch(&epoch, first));
        tokio::time::sleep(std::time::Duration::from_millis(5)).await;
        assert!(
            !arm_fault_epoch(&epoch, Instant::now()),
            "second arm must report it did not win"
        );
        assert_eq!(
            epoch.get().copied(),
            Some(first),
            "the first armed instant must win"
        );
        assert_eq!(
            fault_epoch_double_arms(),
            before + 1,
            "the re-arm must be counted"
        );
    }
}

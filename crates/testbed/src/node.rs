//! The emulated edge node.

use crate::sensor::SensorStore;
use std::sync::Arc;
use tailguard_dist::DynDistribution;
use tailguard_simcore::SimRng;
use tokio::sync::mpsc;

/// A task sent from the query handler to an edge node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TaskAssignment {
    /// Handler-side task identifier.
    pub task_id: u64,
    /// First day of the requested record range.
    pub start_day: u32,
    /// Number of consecutive days requested.
    pub days: u32,
}

/// A completed task returned to the handler/aggregator.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TaskResult {
    /// The node that served the task.
    pub node: u32,
    /// Handler-side task identifier.
    pub task_id: u64,
    /// Number of sensor records retrieved.
    pub records: usize,
    /// Mean temperature over the range (the aggregated payload).
    pub mean_temperature: f32,
    /// Mean humidity over the range.
    pub mean_humidity: f32,
}

/// Runs one edge node: serves tasks one at a time — emulating the Pi's
/// processing time with a sleep drawn from the node's cluster service
/// distribution (compressed by `time_scale`) — then performs the actual
/// record retrieval and returns the aggregate.
///
/// Exits when the assignment channel closes.
pub(crate) async fn edge_node(
    node_id: u32,
    store: Arc<SensorStore>,
    service: DynDistribution,
    time_scale: f64,
    mut rng: SimRng,
    mut tasks: mpsc::UnboundedReceiver<TaskAssignment>,
    results: mpsc::UnboundedSender<TaskResult>,
) {
    while let Some(task) = tasks.recv().await {
        let service_ms = service.sample(&mut rng) / time_scale;
        // tokio's timer wheel rounds sleeps *up* to 1 ms, which would bias
        // every service time (+0.5 ms mean — 20% at a 25x compression).
        // Stochastic rounding to whole milliseconds keeps the mean exact:
        // 2.3 ms sleeps 2 ms with p=0.7 and 3 ms with p=0.3.
        let floor = service_ms.floor();
        let quantized_ms = if rng.f64() < service_ms - floor {
            floor + 1.0
        } else {
            floor
        } as u64;
        // tokio wakes at the first wheel tick *strictly after* now + d, so
        // an aligned n-ms target needs sleep(n-1 ms); sleep(0) itself
        // consumes exactly one 1-ms tick (verified by testbed tests).
        if quantized_ms >= 1 {
            tokio::time::sleep(std::time::Duration::from_millis(quantized_ms - 1)).await;
        }
        let slice = store.range_query(task.start_day, task.days);
        let (mean_temperature, mean_humidity) = SensorStore::aggregate(slice);
        let result = TaskResult {
            node: node_id,
            task_id: task.task_id,
            records: slice.len(),
            mean_temperature,
            mean_humidity,
        };
        if results.send(result).is_err() {
            return; // handler gone; shut down quietly
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_dist::Deterministic;

    #[tokio::test(start_paused = true)]
    async fn node_serves_tasks_in_order() {
        let store = Arc::new(SensorStore::generate_days(1, 40));
        let (task_tx, task_rx) = mpsc::unbounded_channel();
        let (res_tx, mut res_rx) = mpsc::unbounded_channel();
        let service: DynDistribution = Arc::new(Deterministic::new(5.0));
        tokio::spawn(edge_node(
            3,
            store,
            service,
            1.0,
            SimRng::seed(1),
            task_rx,
            res_tx,
        ));
        let t0 = tokio::time::Instant::now();
        for id in 0..3 {
            task_tx
                .send(TaskAssignment {
                    task_id: id,
                    start_day: 0,
                    days: 1,
                })
                .unwrap();
        }
        for id in 0..3 {
            let r = res_rx.recv().await.unwrap();
            assert_eq!(r.task_id, id);
            assert_eq!(r.node, 3);
            assert_eq!(r.records, SensorStore::RECORDS_PER_DAY);
        }
        // Three sequential ~5ms services (tick-compensated; allow 1-tick
        // misalignment at the start of the run).
        let e = t0.elapsed();
        assert!(e >= std::time::Duration::from_millis(11), "{e:?}");
        assert!(e <= std::time::Duration::from_millis(18), "{e:?}");
    }

    #[tokio::test(start_paused = true)]
    async fn time_scale_compresses_service() {
        let store = Arc::new(SensorStore::generate_days(2, 5));
        let (task_tx, task_rx) = mpsc::unbounded_channel();
        let (res_tx, mut res_rx) = mpsc::unbounded_channel();
        let service: DynDistribution = Arc::new(Deterministic::new(100.0));
        tokio::spawn(edge_node(
            0,
            store,
            service,
            10.0, // 100ms of "Pi time" becomes 10ms of wall time
            SimRng::seed(1),
            task_rx,
            res_tx,
        ));
        let t0 = tokio::time::Instant::now();
        task_tx
            .send(TaskAssignment {
                task_id: 0,
                start_day: 0,
                days: 1,
            })
            .unwrap();
        res_rx.recv().await.unwrap();
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= std::time::Duration::from_millis(8),
            "{elapsed:?}"
        );
        assert!(
            elapsed < std::time::Duration::from_millis(20),
            "{elapsed:?}"
        );
    }

    #[tokio::test(start_paused = true)]
    async fn node_exits_on_channel_close() {
        let store = Arc::new(SensorStore::generate_days(3, 5));
        let (task_tx, task_rx) = mpsc::unbounded_channel();
        let (res_tx, _res_rx) = mpsc::unbounded_channel();
        let service: DynDistribution = Arc::new(Deterministic::new(1.0));
        let h = tokio::spawn(edge_node(
            0,
            store,
            service,
            1.0,
            SimRng::seed(1),
            task_rx,
            res_tx,
        ));
        drop(task_tx);
        h.await.unwrap(); // must terminate
    }
}

//! An in-process reproduction of the paper's Sensing-as-a-Service testbed
//! (§IV.E), built on tokio.
//!
//! The physical testbed is 32 Raspberry-Pi edge nodes in four heterogeneous
//! clusters (Server-room, Wet-lab, Faculty, GTA), each holding eighteen
//! months of temperature/humidity records, fronted by a query handler that
//! queues tasks *centrally* (one queue set per edge node) and talks to the
//! nodes over keep-alive HTTP. We reproduce it as:
//!
//! * [`SensorStore`] — an in-memory time-series store per edge node with
//!   eighteen months of synthetic sensor records and range queries,
//! * an **edge node** tokio task per node: receives one task at a time,
//!   emulates the Pi's processing time by sleeping a draw from its
//!   cluster's calibrated service distribution, performs the record
//!   retrieval, and returns the result,
//! * a **query handler** task owning the per-node queues (any
//!   [`tailguard_policy::Policy`]), the online
//!   [`tailguard::DeadlineEstimator`] (per-cluster CDFs, exactly as the
//!   paper shares one CDF per cluster), the aggregator, and optional
//!   admission control,
//! * a Poisson load generator issuing class A/B/C queries (50/40/10 %,
//!   fanouts 1/4/32, SLOs 800/1300/1800 ms) with class A load skewed 80 %
//!   onto the Server-room cluster.
//!
//! Time can be compressed ([`TestbedConfig::time_scale`]) and, for tests
//! and benches, run under tokio's paused clock
//! ([`TestbedMode::PausedTime`]), which auto-advances timers — the full
//! async code path at simulation speed, deterministically.
//!
//! # Example
//!
//! ```
//! use tailguard_testbed::{run_testbed, TestbedConfig, TestbedMode};
//! use tailguard_policy::Policy;
//!
//! let cfg = TestbedConfig {
//!     policy: Policy::TfEdf,
//!     queries: 300,
//!     target_load: 0.3,
//!     mode: TestbedMode::PausedTime,
//!     ..TestbedConfig::default()
//! };
//! let report = run_testbed(&cfg);
//! assert_eq!(report.completed_queries, 300);
//! ```

mod handler;
mod node;
mod runner;
mod sensor;

pub use runner::{run_testbed, ClusterObservation, TestbedConfig, TestbedMode, TestbedReport};
pub use sensor::{SensorRecord, SensorStore};

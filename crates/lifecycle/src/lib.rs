//! The durable task-lifecycle state store shared by both runtimes.
//!
//! TailGuard's deadline math (Eq. 6 task deadlines, §III.C admission)
//! assumes every dispatched task either completes or is *observed* to fail.
//! A crashed or restarted edge node breaks that assumption: its in-flight
//! work vanishes without a loss notification, so SLO accounting and
//! conservation both silently drift. This crate supplies the production
//! lifecycle layer that closes the gap — the durable-execution model of
//! at-least-once delivery, idempotent commit, and lease fencing:
//!
//! - every task **attempt** moves through an explicit state machine
//!   ([`AttemptState`]: `Queued → Leased → Running → Completed/Failed`),
//! - each dispatch takes a monotonically increasing [`LeaseToken`] with a
//!   `lease_expires_at` instant, so exactly one attempt incarnation is
//!   active at a time,
//! - a commit ([`TaskStateStore::commit`] / [`TaskStateStore::fail`])
//!   carries the token it was dispatched under and is **fenced**: a stale
//!   incarnation's result is rejected by token mismatch, and a duplicate
//!   delivery of an already-committed result is suppressed idempotently,
//! - a lease that expires while its attempt is still active can be
//!   **reclaimed** ([`TaskStateStore::reclaim_expired`]) back to `Queued`,
//!   so the scheduler re-enqueues the task — with its *original* queuing
//!   deadline `t_D`, never a refreshed one.
//!
//! Everything here is pure bookkeeping: no clock, no RNG, no I/O. The
//! scheduling core (`tailguard-sched`) owns the store and drives every
//! transition; the discrete-event simulator and the tokio testbed only see
//! tokens and expiry instants through it, which is what makes crash
//! recovery behave identically on both runtimes.

use tailguard_simcore::{SimDuration, SimTime};

/// A fencing token for one lease of one task attempt.
///
/// Tokens are assigned monotonically from a store-wide counter: a reclaim
/// followed by a re-dispatch yields a strictly larger token, so the old
/// incarnation's commit can be recognized as stale by simple inequality.
/// [`LeaseToken::NONE`] (zero) is never issued and marks "no lease" in
/// driver-side plumbing (e.g. calibration probes that bypass the core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LeaseToken(pub u64);

impl LeaseToken {
    /// The null token: never issued by a store, compares below every real
    /// token.
    pub const NONE: LeaseToken = LeaseToken(0);
}

/// Which attempt of a logical task an issued copy is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptKind {
    /// The first copy, issued at query arrival.
    Original,
    /// A hedge copy, issued when the remaining budget crossed the
    /// mitigation layer's hedge threshold.
    Hedge,
    /// A retry copy, issued after an attempt was lost to a fault.
    Retry,
}

impl AttemptKind {
    /// Stable lowercase name (`"original"`/`"hedge"`/`"retry"`), used by
    /// trace exporters.
    pub fn name(self) -> &'static str {
        match self {
            AttemptKind::Original => "original",
            AttemptKind::Hedge => "hedge",
            AttemptKind::Retry => "retry",
        }
    }
}

/// Where one task attempt is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptState {
    /// Waiting in a server's queue (also the state a reclaimed attempt
    /// returns to).
    Queued,
    /// Dequeued and dispatched under a lease, not yet acknowledged as
    /// executing. In-process drivers transition straight on to
    /// [`AttemptState::Running`]; the distinction exists for drivers with a
    /// real dispatch/start gap.
    Leased {
        /// The fencing token this incarnation holds.
        token: LeaseToken,
        /// When the lease expires, if the store has a TTL configured.
        expires_at: Option<SimTime>,
    },
    /// Executing at its server under a lease.
    Running {
        /// The fencing token this incarnation holds.
        token: LeaseToken,
        /// When the lease expires, if the store has a TTL configured.
        expires_at: Option<SimTime>,
    },
    /// A result committed for this attempt (terminal). Remembers the
    /// winning token so late zombie results still fence as stale rather
    /// than blending into redelivery suppression.
    Completed {
        /// The token the committed result was dispatched under.
        token: LeaseToken,
    },
    /// The attempt ended without a result: lost to a fault, or cancelled
    /// at dequeue because its slot had already resolved (terminal).
    Failed {
        /// The token of the failing incarnation ([`LeaseToken::NONE`] for
        /// never-leased attempts cancelled at dequeue).
        token: LeaseToken,
    },
}

/// Verdict of a fenced commit or failure report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The token matched an active lease: the attempt transitioned to its
    /// terminal state and the caller should apply the result.
    Committed,
    /// The attempt was already terminal — an at-least-once redelivery.
    /// Suppressed idempotently; the caller must not apply the result again.
    Duplicate,
    /// The token belongs to a reclaimed (or otherwise superseded) lease
    /// incarnation: fencing rejects the result outright.
    Stale,
}

/// Immutable identity of one task attempt (who it serves and where).
#[derive(Debug, Clone, Copy)]
pub struct AttemptRecord {
    /// The owning query.
    pub query: u32,
    /// The server the attempt targets.
    pub server: u32,
    /// The logical task (slot) this attempt serves: originals point at
    /// themselves, hedge/retry copies at the original's id.
    pub slot: u32,
    /// Original, hedge, or retry.
    pub kind: AttemptKind,
}

/// Per-logical-task (slot) state, indexed like attempts; entries at
/// hedge/retry ids are inert placeholders (their state lives at the
/// original's index).
#[derive(Debug, Clone)]
pub struct SlotRecord {
    /// A completion (or exhaustion) already resolved this slot; any other
    /// in-flight attempt is a loser to cancel at dequeue or completion.
    pub resolved: bool,
    /// Attempts issued so far (original + hedges + retries).
    pub attempts: u32,
    /// Attempts currently queued or in service.
    pub live: u32,
    /// The slot's queuing deadline `t_D` (duplicates inherit it, and a
    /// reclaim re-enqueues with it unchanged — the reclaim-preserves-`t_D`
    /// invariant).
    pub deadline: SimTime,
    /// When a hedge copy becomes due, if hedging is configured.
    pub hedge_at: Option<SimTime>,
    /// Servers already tried by duplicates (excluded from backup choice).
    pub extra_servers: Vec<u32>,
}

impl SlotRecord {
    fn placeholder() -> Self {
        SlotRecord {
            resolved: true,
            attempts: 0,
            live: 0,
            deadline: SimTime::ZERO,
            hedge_at: None,
            extra_servers: Vec::new(),
        }
    }
}

/// Lifecycle gauges and counters, accumulated by the store.
///
/// The first five fields are *current-state gauges* (they go up and down as
/// attempts move through the machine); the rest are monotonic counters.
/// Conservation: `completed + failed + queued + leased + running` always
/// equals the number of attempts created.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Attempts currently waiting in a queue.
    pub queued: u64,
    /// Attempts currently dispatched but not yet running.
    pub leased: u64,
    /// Attempts currently executing under a lease.
    pub running: u64,
    /// Attempts that committed a result (terminal).
    pub completed: u64,
    /// Attempts that ended without a result (terminal).
    pub failed: u64,
    /// Leases issued (one per dispatch, including re-dispatches after
    /// reclaim).
    pub leases_issued: u64,
    /// Expired leases reclaimed back to `Queued`.
    pub reclaims: u64,
    /// Redeliveries of already-committed results, suppressed idempotently.
    pub duplicates_suppressed: u64,
    /// Results rejected by lease-token fencing (stale incarnations).
    pub stale_commits_rejected: u64,
}

/// The per-attempt state store: attempt identities, slot bookkeeping, lease
/// issuance, and fenced commits, all under one roof.
///
/// # Example
///
/// ```
/// use tailguard_lifecycle::{CommitOutcome, TaskStateStore};
/// use tailguard_simcore::{SimDuration, SimTime};
///
/// let mut store = TaskStateStore::new(Some(SimDuration::from_millis(5)));
/// let t = store.push_original(0, 2, SimTime::from_millis(10), None);
/// let lease = store.lease(t, SimTime::ZERO);
/// store.mark_running(t);
///
/// // The node crashes; the lease expires and the task is reclaimed.
/// assert!(store.reclaim_expired(t, lease, SimTime::from_millis(5)));
/// let lease2 = store.lease(t, SimTime::from_millis(5));
/// store.mark_running(t);
///
/// // The zombie incarnation's result is fenced off...
/// assert_eq!(store.commit(t, lease), CommitOutcome::Stale);
/// // ...the live incarnation commits, and a redelivery is suppressed.
/// assert_eq!(store.commit(t, lease2), CommitOutcome::Committed);
/// assert_eq!(store.commit(t, lease2), CommitOutcome::Duplicate);
/// ```
#[derive(Debug)]
pub struct TaskStateStore {
    attempts: Vec<AttemptRecord>,
    states: Vec<AttemptState>,
    slots: Vec<SlotRecord>,
    next_token: u64,
    lease_ttl: Option<SimDuration>,
    stats: LifecycleStats,
}

impl TaskStateStore {
    /// Creates an empty store. With `lease_ttl` set, every lease carries an
    /// expiry instant `now + ttl` the driver can schedule a reclaim check
    /// at; without one, leases never expire (the pre-recovery behaviour).
    /// `lease_ttl` is a virtual-time duration (nanosecond domain).
    pub fn new(lease_ttl: Option<SimDuration>) -> Self {
        TaskStateStore {
            attempts: Vec::new(),
            states: Vec::new(),
            slots: Vec::new(),
            next_token: 1,
            lease_ttl,
            stats: LifecycleStats::default(),
        }
    }

    /// The configured lease TTL, if any.
    pub fn lease_ttl(&self) -> Option<SimDuration> {
        self.lease_ttl
    }

    /// Sets the lease TTL. Intended for builder-time configuration, before
    /// any lease is issued.
    /// `ttl` is a virtual-time duration (nanosecond domain).
    pub fn set_lease_ttl(&mut self, ttl: Option<SimDuration>) {
        self.lease_ttl = ttl;
    }

    /// Registers a query's original attempt for one fanout task, `Queued`,
    /// with its own slot. Returns the attempt id (`== slot id`).
    /// `deadline` is virtual time (nanosecond domain).
    pub fn push_original(
        &mut self,
        query: u32,
        server: u32,
        deadline: SimTime,
        hedge_at: Option<SimTime>,
    ) -> u32 {
        // tg-lint: allow(lossy-cast) -- attempt ids are `u32` on the wire and dense by construction; saturation would alias ids, and admission bounds a run far below 2^32 attempts
        let task = self.attempts.len() as u32;
        self.attempts.push(AttemptRecord {
            query,
            server,
            slot: task,
            kind: AttemptKind::Original,
        });
        self.states.push(AttemptState::Queued);
        self.slots.push(SlotRecord {
            resolved: false,
            attempts: 1,
            live: 1,
            deadline,
            hedge_at,
            extra_servers: Vec::new(),
        });
        self.stats.queued += 1;
        task
    }

    /// Registers a hedge or retry copy of `slot` targeting `server`,
    /// `Queued`, bumping the slot's attempt/live counts and recording the
    /// tried server. Returns the new attempt id.
    ///
    /// # Panics
    ///
    /// Debug-asserts the slot is unresolved and `kind` is not
    /// [`AttemptKind::Original`].
    pub fn push_duplicate(&mut self, slot: u32, server: u32, kind: AttemptKind) -> u32 {
        debug_assert_ne!(kind, AttemptKind::Original, "duplicates are not originals");
        debug_assert!(
            // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
            !self.slots[slot as usize].resolved,
            "cannot duplicate a resolved slot"
        );
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        let query = self.attempts[slot as usize].query;
        // tg-lint: allow(lossy-cast) -- attempt ids are `u32` on the wire and dense by construction; saturation would alias ids, and admission bounds a run far below 2^32 attempts
        let task = self.attempts.len() as u32;
        self.attempts.push(AttemptRecord {
            query,
            server,
            slot,
            kind,
        });
        self.states.push(AttemptState::Queued);
        self.slots.push(SlotRecord::placeholder());
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        let slot_state = &mut self.slots[slot as usize];
        slot_state.attempts += 1;
        slot_state.live += 1;
        slot_state.extra_servers.push(server);
        self.stats.queued += 1;
        task
    }

    /// Leases a `Queued` attempt for dispatch at `now`: assigns the next
    /// monotonic token and stamps `expires_at = now + ttl` when a TTL is
    /// configured.
    ///
    /// # Panics
    ///
    /// Debug-asserts the attempt is `Queued`.
    /// `now` is virtual time (nanosecond domain).
    pub fn lease(&mut self, task: u32, now: SimTime) -> LeaseToken {
        debug_assert!(
            // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
            matches!(self.states[task as usize], AttemptState::Queued),
            "only queued attempts can be leased"
        );
        let token = LeaseToken(self.next_token);
        self.next_token += 1;
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        self.states[task as usize] = AttemptState::Leased {
            token,
            expires_at: self.lease_ttl.map(|ttl| now + ttl),
        };
        self.stats.queued = self.stats.queued.saturating_sub(1);
        self.stats.leased += 1;
        self.stats.leases_issued += 1;
        token
    }

    /// Transitions a `Leased` attempt to `Running` (same token and expiry).
    ///
    /// # Panics
    ///
    /// Debug-asserts the attempt is `Leased`.
    pub fn mark_running(&mut self, task: u32) {
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        let AttemptState::Leased { token, expires_at } = self.states[task as usize] else {
            debug_assert!(false, "only leased attempts can start running");
            return;
        };
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        self.states[task as usize] = AttemptState::Running { token, expires_at };
        self.stats.leased = self.stats.leased.saturating_sub(1);
        self.stats.running += 1;
    }

    /// Fenced commit of a result for `task` under `token`.
    ///
    /// Matching active lease → `Completed` and [`CommitOutcome::Committed`];
    /// terminal under the *same* token → [`CommitOutcome::Duplicate`]
    /// (at-least-once redelivery, suppressed idempotently); reclaimed,
    /// superseded, or terminal under a different token →
    /// [`CommitOutcome::Stale`].
    pub fn commit(&mut self, task: u32, token: LeaseToken) -> CommitOutcome {
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        match self.states[task as usize] {
            AttemptState::Running { token: t, .. } if t == token => {
                // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
                self.states[task as usize] = AttemptState::Completed { token };
                self.stats.running = self.stats.running.saturating_sub(1);
                self.stats.completed += 1;
                CommitOutcome::Committed
            }
            AttemptState::Leased { token: t, .. } if t == token => {
                // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
                self.states[task as usize] = AttemptState::Completed { token };
                self.stats.leased = self.stats.leased.saturating_sub(1);
                self.stats.completed += 1;
                CommitOutcome::Committed
            }
            AttemptState::Completed { token: t } | AttemptState::Failed { token: t }
                if t == token =>
            {
                self.stats.duplicates_suppressed += 1;
                CommitOutcome::Duplicate
            }
            AttemptState::Queued
            | AttemptState::Running { .. }
            | AttemptState::Leased { .. }
            | AttemptState::Completed { .. }
            | AttemptState::Failed { .. } => {
                self.stats.stale_commits_rejected += 1;
                CommitOutcome::Stale
            }
        }
    }

    /// Fenced failure report (a loss notification) for `task` under
    /// `token`. Same fencing rules as [`TaskStateStore::commit`], with
    /// `Failed` as the terminal state.
    pub fn fail(&mut self, task: u32, token: LeaseToken) -> CommitOutcome {
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        match self.states[task as usize] {
            AttemptState::Running { token: t, .. } if t == token => {
                // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
                self.states[task as usize] = AttemptState::Failed { token };
                self.stats.running = self.stats.running.saturating_sub(1);
                self.stats.failed += 1;
                CommitOutcome::Committed
            }
            AttemptState::Leased { token: t, .. } if t == token => {
                // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
                self.states[task as usize] = AttemptState::Failed { token };
                self.stats.leased = self.stats.leased.saturating_sub(1);
                self.stats.failed += 1;
                CommitOutcome::Committed
            }
            AttemptState::Completed { token: t } | AttemptState::Failed { token: t }
                if t == token =>
            {
                self.stats.duplicates_suppressed += 1;
                CommitOutcome::Duplicate
            }
            AttemptState::Queued
            | AttemptState::Running { .. }
            | AttemptState::Leased { .. }
            | AttemptState::Completed { .. }
            | AttemptState::Failed { .. } => {
                self.stats.stale_commits_rejected += 1;
                CommitOutcome::Stale
            }
        }
    }

    /// Cancels a `Queued` attempt (discarded at dequeue because its slot
    /// already resolved) — terminal `Failed` without a loss notification.
    ///
    /// # Panics
    ///
    /// Debug-asserts the attempt is `Queued`.
    pub fn cancel(&mut self, task: u32) {
        debug_assert!(
            // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
            matches!(self.states[task as usize], AttemptState::Queued),
            "only queued attempts are cancelled at dequeue"
        );
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        self.states[task as usize] = AttemptState::Failed {
            token: LeaseToken::NONE,
        };
        self.stats.queued = self.stats.queued.saturating_sub(1);
        self.stats.failed += 1;
    }

    /// Reclaims an expired lease: when `task` still holds an active lease
    /// under exactly `token` whose expiry has passed by `now`, it returns
    /// to `Queued` (ready for re-enqueue with its original deadline) and
    /// the reclaim is counted. Returns `false` — a fenced no-op — when the
    /// attempt already committed, failed, or was re-leased under a newer
    /// token.
    /// `now` is virtual time (nanosecond domain).
    pub fn reclaim_expired(&mut self, task: u32, token: LeaseToken, now: SimTime) -> bool {
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        let (t, expires_at) = match self.states[task as usize] {
            AttemptState::Running { token, expires_at }
            | AttemptState::Leased { token, expires_at } => (token, expires_at),
            AttemptState::Queued | AttemptState::Completed { .. } | AttemptState::Failed { .. } => {
                return false
            }
        };
        if t != token {
            return false;
        }
        let Some(expires_at) = expires_at else {
            return false;
        };
        if now < expires_at {
            return false;
        }
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        match self.states[task as usize] {
            AttemptState::Running { .. } => {
                self.stats.running = self.stats.running.saturating_sub(1)
            }
            _ => self.stats.leased = self.stats.leased.saturating_sub(1),
        }
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        self.states[task as usize] = AttemptState::Queued;
        self.stats.queued += 1;
        self.stats.reclaims += 1;
        true
    }

    /// When the current lease of `task` expires, if it holds one with a
    /// TTL — the driver schedules its reclaim check here.
    pub fn lease_expiry(&self, task: u32) -> Option<SimTime> {
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        match self.states[task as usize] {
            AttemptState::Leased { expires_at, .. } | AttemptState::Running { expires_at, .. } => {
                expires_at
            }
            AttemptState::Queued | AttemptState::Completed { .. } | AttemptState::Failed { .. } => {
                None
            }
        }
    }

    /// The token of the attempt's current lease, if it holds one.
    pub fn current_token(&self, task: u32) -> Option<LeaseToken> {
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        match self.states[task as usize] {
            AttemptState::Leased { token, .. } | AttemptState::Running { token, .. } => Some(token),
            AttemptState::Queued | AttemptState::Completed { .. } | AttemptState::Failed { .. } => {
                None
            }
        }
    }

    /// The attempt's current lifecycle state.
    pub fn state(&self, task: u32) -> AttemptState {
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        self.states[task as usize]
    }

    /// The attempt's immutable identity (query, server, slot, kind).
    pub fn attempt(&self, task: u32) -> &AttemptRecord {
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        &self.attempts[task as usize]
    }

    /// The slot record at `slot` (placeholder for hedge/retry ids).
    pub fn slot(&self, slot: u32) -> &SlotRecord {
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        &self.slots[slot as usize]
    }

    /// Mutable slot record (the scheduling core resolves slots here).
    pub fn slot_mut(&mut self, slot: u32) -> &mut SlotRecord {
        // tg-lint: allow(panic-surface) -- dense id-indexed tables: `task`/`slot` ids are minted by this store's push_* methods and the tables grow in lockstep; a foreign id is a fencing bug where the documented panic is the designed failure mode
        &mut self.slots[slot as usize]
    }

    /// Total attempts created (ids are `0..len()`).
    pub fn len(&self) -> usize {
        self.attempts.len()
    }

    /// True when no attempt was created yet.
    pub fn is_empty(&self) -> bool {
        self.attempts.is_empty()
    }

    /// The accumulated lifecycle gauges and counters.
    pub fn stats(&self) -> &LifecycleStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn store(ttl: Option<u64>) -> TaskStateStore {
        TaskStateStore::new(ttl.map(dms))
    }

    #[test]
    fn tokens_are_monotonic_and_nonzero() {
        let mut s = store(None);
        let a = s.push_original(0, 0, ms(10), None);
        let b = s.push_original(0, 1, ms(10), None);
        let ta = s.lease(a, ms(0));
        let tb = s.lease(b, ms(0));
        assert!(ta > LeaseToken::NONE);
        assert!(tb > ta, "tokens grow monotonically");
        assert_eq!(s.stats().leases_issued, 2);
    }

    #[test]
    fn happy_path_counts_states() {
        let mut s = store(None);
        let t = s.push_original(3, 1, ms(10), None);
        assert_eq!(s.stats().queued, 1);
        let tok = s.lease(t, ms(0));
        assert_eq!((s.stats().queued, s.stats().leased), (0, 1));
        s.mark_running(t);
        assert_eq!((s.stats().leased, s.stats().running), (0, 1));
        assert_eq!(s.commit(t, tok), CommitOutcome::Committed);
        assert_eq!((s.stats().running, s.stats().completed), (0, 1));
        assert_eq!(s.attempt(t).query, 3);
        assert_eq!(s.state(t), AttemptState::Completed { token: tok });
    }

    #[test]
    fn duplicate_delivery_is_suppressed_idempotently() {
        let mut s = store(None);
        let t = s.push_original(0, 0, ms(10), None);
        let tok = s.lease(t, ms(0));
        s.mark_running(t);
        assert_eq!(s.commit(t, tok), CommitOutcome::Committed);
        assert_eq!(s.commit(t, tok), CommitOutcome::Duplicate);
        assert_eq!(s.fail(t, tok), CommitOutcome::Duplicate);
        assert_eq!(s.stats().duplicates_suppressed, 2);
        assert_eq!(s.stats().completed, 1, "terminal state unchanged");
    }

    #[test]
    fn stale_token_is_fenced() {
        let mut s = store(Some(5));
        let t = s.push_original(0, 0, ms(10), None);
        let old = s.lease(t, ms(0));
        s.mark_running(t);
        assert!(s.reclaim_expired(t, old, ms(5)), "lease expired at +5ms");
        let new = s.lease(t, ms(5));
        s.mark_running(t);
        // The zombie incarnation is rejected; the live one commits.
        assert_eq!(s.commit(t, old), CommitOutcome::Stale);
        assert_eq!(s.fail(t, old), CommitOutcome::Stale);
        assert_eq!(s.commit(t, new), CommitOutcome::Committed);
        assert_eq!(s.stats().stale_commits_rejected, 2);
        assert_eq!(s.stats().reclaims, 1);
    }

    #[test]
    fn reclaim_requires_expiry_and_matching_token() {
        let mut s = store(Some(5));
        let t = s.push_original(0, 0, ms(10), None);
        let tok = s.lease(t, ms(0));
        s.mark_running(t);
        assert_eq!(s.lease_expiry(t), Some(ms(5)));
        assert!(!s.reclaim_expired(t, tok, ms(4)), "not yet expired");
        assert!(
            !s.reclaim_expired(t, LeaseToken(999), ms(5)),
            "wrong token is a fenced no-op"
        );
        assert!(s.reclaim_expired(t, tok, ms(5)));
        assert!(
            !s.reclaim_expired(t, tok, ms(6)),
            "already reclaimed: queued attempts hold no lease"
        );
        assert_eq!(s.stats().reclaims, 1);
        assert_eq!(s.current_token(t), None);
    }

    #[test]
    fn without_ttl_leases_never_expire() {
        let mut s = store(None);
        let t = s.push_original(0, 0, ms(10), None);
        let tok = s.lease(t, ms(0));
        s.mark_running(t);
        assert_eq!(s.lease_expiry(t), None);
        assert!(!s.reclaim_expired(t, tok, SimTime::from_millis(1_000_000)));
    }

    #[test]
    fn commit_after_reclaim_and_reenqueue_round_trips() {
        let mut s = store(Some(2));
        let t = s.push_original(0, 0, ms(10), None);
        let t1 = s.lease(t, ms(0));
        s.mark_running(t);
        assert!(s.reclaim_expired(t, t1, ms(2)));
        // Second incarnation completes normally.
        let t2 = s.lease(t, ms(3));
        s.mark_running(t);
        assert_eq!(s.commit(t, t2), CommitOutcome::Committed);
        // The first incarnation's late result is a stale commit, and a
        // re-send of the second's is a duplicate.
        assert_eq!(s.commit(t, t1), CommitOutcome::Stale);
        assert_eq!(s.commit(t, t2), CommitOutcome::Duplicate);
        let st = s.stats();
        assert_eq!(
            (
                st.completed,
                st.reclaims,
                st.stale_commits_rejected,
                st.duplicates_suppressed
            ),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn duplicates_track_slot_bookkeeping() {
        let mut s = store(None);
        let orig = s.push_original(7, 0, ms(10), Some(ms(5)));
        let hedge = s.push_duplicate(orig, 2, AttemptKind::Hedge);
        assert_eq!(s.attempt(hedge).slot, orig);
        assert_eq!(s.attempt(hedge).query, 7);
        assert_eq!(s.attempt(hedge).kind, AttemptKind::Hedge);
        let slot = s.slot(orig);
        assert_eq!(slot.attempts, 2);
        assert_eq!(slot.live, 2);
        assert_eq!(slot.extra_servers, vec![2]);
        assert_eq!(slot.hedge_at, Some(ms(5)));
        assert!(s.slot(hedge).resolved, "duplicate entry is a placeholder");
    }

    #[test]
    fn cancel_moves_queued_to_failed() {
        let mut s = store(None);
        let t = s.push_original(0, 0, ms(10), None);
        s.cancel(t);
        assert_eq!(
            s.state(t),
            AttemptState::Failed {
                token: LeaseToken::NONE
            }
        );
        assert_eq!((s.stats().queued, s.stats().failed), (0, 1));
    }

    #[test]
    fn state_conservation_holds() {
        let mut s = store(Some(3));
        let a = s.push_original(0, 0, ms(10), None);
        let b = s.push_original(0, 1, ms(10), None);
        let c = s.push_duplicate(a, 2, AttemptKind::Retry);
        let ta = s.lease(a, ms(0));
        s.mark_running(a);
        let _tb = s.lease(b, ms(0));
        s.mark_running(b);
        s.cancel(c);
        assert!(s.reclaim_expired(a, ta, ms(3)));
        let st = s.stats();
        assert_eq!(
            st.queued + st.leased + st.running + st.completed + st.failed,
            s.len() as u64,
            "every attempt is in exactly one state"
        );
    }
}

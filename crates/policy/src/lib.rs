//! Task queue disciplines for the TailGuard reproduction.
//!
//! The paper (§III.A) compares four queuing policies at the task servers:
//!
//! * **FIFO** — first-in-first-out ([`FifoQueue`]),
//! * **PRIQ** — strict priority across service classes, FIFO within a class
//!   ([`PriqQueue`]),
//! * **T-EDFQ** — earliest-deadline-first with the *fanout-unaware* deadline
//!   `t_D = t_0 + x_p^SLO`,
//! * **TF-EDFQ (TailGuard)** — earliest-deadline-first with the fanout-aware
//!   deadline `t_D = t_0 + x_p^SLO − x_p^u(k_f)` (Eq. 6).
//!
//! T-EDFQ and TF-EDFQ share the same queue structure ([`EdfQueue`]) and
//! differ only in how deadlines are computed — that computation lives in the
//! `tailguard` core crate ([`DeadlineRule`] names the variants). This crate
//! is purely about queue *ordering*.
//!
//! # Example
//!
//! ```
//! use tailguard_policy::{Policy, QueuedTask, ServiceClass};
//! use tailguard_simcore::SimTime;
//!
//! let mut q = Policy::TfEdf.new_queue();
//! q.push(QueuedTask::new(1, ServiceClass(0), SimTime::from_millis(5), SimTime::ZERO));
//! q.push(QueuedTask::new(2, ServiceClass(0), SimTime::from_millis(2), SimTime::ZERO));
//! assert_eq!(q.pop().unwrap().task_id, 2); // earliest deadline first
//! ```

mod edf;
mod fifo;
mod priq;
mod sjf;
mod task;

pub use edf::EdfQueue;
pub use fifo::FifoQueue;
pub use priq::PriqQueue;
pub use sjf::SjfQueue;
pub use task::{QueuedTask, ServiceClass};

use serde::{Deserialize, Serialize};
use std::fmt;

/// A task queue at (or in front of) a task server.
///
/// All four of the paper's policies implement this trait; the cluster
/// simulator and the tokio testbed are generic over it. Implementations must
/// be *work-conserving-friendly*: `pop` returns `Some` whenever `len() > 0`.
pub trait TaskQueue: fmt::Debug + Send {
    /// Enqueues a task.
    fn push(&mut self, task: QueuedTask);

    /// Dequeues the next task according to the discipline.
    fn pop(&mut self) -> Option<QueuedTask>;

    /// Inspects the next task without removing it.
    fn peek(&self) -> Option<&QueuedTask>;

    /// Number of queued tasks.
    fn len(&self) -> usize;

    /// True when no tasks are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The queuing policies evaluated in the paper (§III.A, §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// First-in-first-out task queuing.
    Fifo,
    /// Strict per-class priority queuing (class 0 = highest priority).
    Priq,
    /// Tail-latency-SLO-aware EDF: deadline `t_0 + x_p^SLO` (fanout-unaware).
    TEdf,
    /// TailGuard's TF-EDFQ: deadline `t_0 + x_p^SLO − x_p^u(k_f)` (Eq. 6).
    TfEdf,
    /// Shortest-job-first with a perfect size oracle — the task-size-aware
    /// reordering baseline class the paper's related work deems inadequate
    /// (§II.B); not part of the paper's four evaluated policies.
    Sjf,
}

impl Policy {
    /// The paper's four evaluated policies, in the order its figures list
    /// them.
    pub const ALL: [Policy; 4] = [Policy::TfEdf, Policy::Fifo, Policy::Priq, Policy::TEdf];

    /// The paper's four plus the size-aware SJF extension baseline.
    pub const WITH_EXTENSIONS: [Policy; 5] = [
        Policy::TfEdf,
        Policy::Fifo,
        Policy::Priq,
        Policy::TEdf,
        Policy::Sjf,
    ];

    /// Creates an empty queue implementing this policy's ordering.
    pub fn new_queue(&self) -> Box<dyn TaskQueue> {
        match self {
            Policy::Fifo => Box::new(FifoQueue::new()),
            Policy::Priq => Box::new(PriqQueue::new()),
            Policy::TEdf | Policy::TfEdf => Box::new(EdfQueue::new()),
            Policy::Sjf => Box::new(SjfQueue::new()),
        }
    }

    /// Which deadline computation this policy expects from the query
    /// handler.
    pub fn deadline_rule(&self) -> DeadlineRule {
        match self {
            Policy::Fifo | Policy::Priq | Policy::Sjf => DeadlineRule::Unused,
            Policy::TEdf => DeadlineRule::SloOnly,
            Policy::TfEdf => DeadlineRule::SloAndFanout,
        }
    }

    /// True for the fanout-aware policy (TailGuard itself).
    pub fn is_fanout_aware(&self) -> bool {
        matches!(self, Policy::TfEdf)
    }

    /// The display name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fifo => "FIFO",
            Policy::Priq => "PRIQ",
            Policy::TEdf => "T-EDFQ",
            Policy::TfEdf => "TailGuard",
            Policy::Sjf => "SJF",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a query handler should derive task queuing deadlines for a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeadlineRule {
    /// Deadlines are ignored by the queue (FIFO, PRIQ).
    Unused,
    /// `t_D = t_0 + x_p^SLO` — T-EDFQ, fanout-unaware.
    SloOnly,
    /// `t_D = t_0 + x_p^SLO − x_p^u(k_f)` — TF-EDFQ / TailGuard (Eq. 6).
    SloAndFanout,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_simcore::SimTime;

    fn t(id: u64, class: u8, deadline_ms: u64) -> QueuedTask {
        QueuedTask::new(
            id,
            ServiceClass(class),
            SimTime::from_millis(deadline_ms),
            SimTime::ZERO,
        )
    }

    #[test]
    fn factory_orderings_differ_as_expected() {
        // Same three tasks pushed everywhere: class-1 early deadline,
        // class-0 late deadline, class-0 mid deadline.
        let tasks = [t(1, 1, 1), t(2, 0, 9), t(3, 0, 5)];

        let mut fifo = Policy::Fifo.new_queue();
        let mut priq = Policy::Priq.new_queue();
        let mut edf = Policy::TfEdf.new_queue();
        for q in [&mut fifo, &mut priq, &mut edf] {
            for task in &tasks {
                q.push(task.clone());
            }
        }
        let drain = |q: &mut Box<dyn TaskQueue>| -> Vec<u64> {
            std::iter::from_fn(|| q.pop().map(|x| x.task_id)).collect()
        };
        assert_eq!(drain(&mut fifo), vec![1, 2, 3]);
        assert_eq!(drain(&mut priq), vec![2, 3, 1]); // class 0 first, FIFO within
        assert_eq!(drain(&mut edf), vec![1, 3, 2]); // deadline order
    }

    #[test]
    fn deadline_rules_match_paper() {
        assert_eq!(Policy::Fifo.deadline_rule(), DeadlineRule::Unused);
        assert_eq!(Policy::Priq.deadline_rule(), DeadlineRule::Unused);
        assert_eq!(Policy::TEdf.deadline_rule(), DeadlineRule::SloOnly);
        assert_eq!(Policy::TfEdf.deadline_rule(), DeadlineRule::SloAndFanout);
    }

    #[test]
    fn names_for_figures() {
        assert_eq!(Policy::TfEdf.to_string(), "TailGuard");
        assert_eq!(Policy::TEdf.to_string(), "T-EDFQ");
        assert_eq!(Policy::ALL.len(), 4);
        assert!(Policy::TfEdf.is_fanout_aware());
        assert!(!Policy::TEdf.is_fanout_aware());
    }
}

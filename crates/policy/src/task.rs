//! The unit of queuing: a dispatched task.

use serde::{Deserialize, Serialize};
use std::fmt;
use tailguard_simcore::{SimDuration, SimTime};

/// A service class identifier (0 = highest priority / tightest SLO).
///
/// The paper evaluates one-, two- and four-class configurations; TailGuard
/// itself "permits an unlimited number of query classes" (§I), so the class
/// is just a `u8` label rather than an enum.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ServiceClass(pub u8);

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class-{}", self.0)
    }
}

/// A task waiting in (or about to enter) a task-server queue.
///
/// Carries exactly the metadata the four disciplines need: the insertion
/// identity (`task_id`), the service class (PRIQ), the queuing deadline
/// `t_D` (T-EDFQ / TF-EDFQ), and the enqueue timestamp (FIFO tie-breaking
/// and pre-dequeuing-time accounting).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedTask {
    /// Unique id of the task within a run; links the queue entry back to the
    /// simulator's task table.
    pub task_id: u64,
    /// The query's service class.
    pub class: ServiceClass,
    /// The task queuing deadline `t_D` (Eq. 6). Ignored by FIFO/PRIQ.
    pub deadline: SimTime,
    /// When the task entered the queue (`t_0` of its query, in the central
    /// queuing model).
    pub enqueued_at: SimTime,
    /// The task's (estimated) service demand — consumed only by the
    /// size-aware [`crate::SjfQueue`] baseline; zero when unknown.
    pub size_hint: SimDuration,
}

impl QueuedTask {
    /// Creates a queue entry.
    /// `deadline` is virtual time (nanosecond domain).
    pub fn new(task_id: u64, class: ServiceClass, deadline: SimTime, enqueued_at: SimTime) -> Self {
        QueuedTask {
            task_id,
            class,
            deadline,
            enqueued_at,
            size_hint: SimDuration::ZERO,
        }
    }

    /// Attaches a service-demand estimate (builder-style), for size-aware
    /// disciplines.
    /// `size_hint` is a virtual-time duration (nanosecond domain).
    pub fn with_size_hint(mut self, size_hint: SimDuration) -> Self {
        self.size_hint = size_hint;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ordering() {
        assert!(ServiceClass(0) < ServiceClass(1));
        assert_eq!(ServiceClass(2).to_string(), "class-2");
    }

    #[test]
    fn task_carries_fields() {
        let t = QueuedTask::new(7, ServiceClass(1), SimTime::from_millis(3), SimTime::ZERO);
        assert_eq!(t.task_id, 7);
        assert_eq!(t.class, ServiceClass(1));
        assert_eq!(t.deadline, SimTime::from_millis(3));
    }
}

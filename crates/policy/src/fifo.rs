//! First-in-first-out queuing.

use crate::{QueuedTask, TaskQueue};
use std::collections::VecDeque;

/// The FIFO baseline: tasks are served strictly in arrival order.
///
/// With a single service class, the paper notes that PRIQ and T-EDFQ both
/// degenerate to FIFO, which is why Fig. 4 compares TailGuard against FIFO
/// alone.
///
/// # Example
///
/// ```
/// use tailguard_policy::{FifoQueue, QueuedTask, ServiceClass, TaskQueue};
/// use tailguard_simcore::SimTime;
///
/// let mut q = FifoQueue::new();
/// for id in 0..3 {
///     q.push(QueuedTask::new(id, ServiceClass(0), SimTime::ZERO, SimTime::ZERO));
/// }
/// assert_eq!(q.pop().unwrap().task_id, 0);
/// assert_eq!(q.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct FifoQueue {
    queue: VecDeque<QueuedTask>,
}

impl FifoQueue {
    /// Creates an empty FIFO queue.
    pub fn new() -> Self {
        FifoQueue {
            queue: VecDeque::new(),
        }
    }
}

impl TaskQueue for FifoQueue {
    fn push(&mut self, task: QueuedTask) {
        self.queue.push_back(task);
    }

    fn pop(&mut self) -> Option<QueuedTask> {
        self.queue.pop_front()
    }

    fn peek(&self) -> Option<&QueuedTask> {
        self.queue.front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceClass;
    use tailguard_simcore::SimTime;

    fn task(id: u64) -> QueuedTask {
        QueuedTask::new(id, ServiceClass(0), SimTime::ZERO, SimTime::ZERO)
    }

    #[test]
    fn strict_arrival_order() {
        let mut q = FifoQueue::new();
        for id in 0..100 {
            q.push(task(id));
        }
        for id in 0..100 {
            assert_eq!(q.pop().unwrap().task_id, id);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn ignores_deadlines_and_classes() {
        let mut q = FifoQueue::new();
        q.push(QueuedTask::new(
            0,
            ServiceClass(9),
            SimTime::from_millis(100),
            SimTime::ZERO,
        ));
        q.push(QueuedTask::new(
            1,
            ServiceClass(0),
            SimTime::from_millis(1),
            SimTime::ZERO,
        ));
        assert_eq!(q.pop().unwrap().task_id, 0);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = FifoQueue::new();
        q.push(task(5));
        assert_eq!(q.peek().unwrap().task_id, 5);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue() {
        let mut q = FifoQueue::new();
        assert!(q.is_empty());
        assert!(q.peek().is_none());
        assert!(q.pop().is_none());
    }
}

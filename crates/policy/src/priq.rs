//! Strict per-class priority queuing (PRIQ).

use crate::{QueuedTask, ServiceClass, TaskQueue};
use std::collections::{BTreeMap, VecDeque};

/// The PRIQ baseline: one FIFO per service class, with strict priority given
/// to lower class numbers (class 0 is most urgent).
///
/// The paper (§IV.C) shows PRIQ over-serves the high class and starves the
/// low class of the headroom it needs to meet its own SLO — the motivating
/// failure mode that TailGuard's per-query budgets fix.
///
/// # Example
///
/// ```
/// use tailguard_policy::{PriqQueue, QueuedTask, ServiceClass, TaskQueue};
/// use tailguard_simcore::SimTime;
///
/// let mut q = PriqQueue::new();
/// q.push(QueuedTask::new(1, ServiceClass(1), SimTime::ZERO, SimTime::ZERO));
/// q.push(QueuedTask::new(2, ServiceClass(0), SimTime::ZERO, SimTime::ZERO));
/// assert_eq!(q.pop().unwrap().task_id, 2); // class 0 wins
/// ```
#[derive(Debug, Default)]
pub struct PriqQueue {
    queues: BTreeMap<ServiceClass, VecDeque<QueuedTask>>,
    len: usize,
}

impl PriqQueue {
    /// Creates an empty priority queue.
    pub fn new() -> Self {
        PriqQueue {
            queues: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of distinct classes currently queued.
    pub fn class_count(&self) -> usize {
        self.queues.len()
    }
}

impl TaskQueue for PriqQueue {
    fn push(&mut self, task: QueuedTask) {
        self.queues.entry(task.class).or_default().push_back(task);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<QueuedTask> {
        let mut entry = self.queues.first_entry()?;
        let task = entry.get_mut().pop_front();
        if entry.get().is_empty() {
            entry.remove();
        }
        if task.is_some() {
            self.len = self.len.saturating_sub(1);
        }
        task
    }

    fn peek(&self) -> Option<&QueuedTask> {
        self.queues.values().next().and_then(|q| q.front())
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_simcore::SimTime;

    fn task(id: u64, class: u8) -> QueuedTask {
        QueuedTask::new(id, ServiceClass(class), SimTime::ZERO, SimTime::ZERO)
    }

    #[test]
    fn strict_priority_across_classes() {
        let mut q = PriqQueue::new();
        q.push(task(1, 2));
        q.push(task(2, 0));
        q.push(task(3, 1));
        q.push(task(4, 0));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|t| t.task_id)).collect();
        assert_eq!(order, vec![2, 4, 3, 1]);
    }

    #[test]
    fn fifo_within_class() {
        let mut q = PriqQueue::new();
        for id in 0..10 {
            q.push(task(id, 1));
        }
        for id in 0..10 {
            assert_eq!(q.pop().unwrap().task_id, id);
        }
    }

    #[test]
    fn high_class_arrival_preempts_queue_position() {
        let mut q = PriqQueue::new();
        q.push(task(1, 1));
        q.push(task(2, 1));
        assert_eq!(q.pop().unwrap().task_id, 1);
        q.push(task(3, 0)); // urgent arrival jumps ahead of task 2
        assert_eq!(q.pop().unwrap().task_id, 3);
        assert_eq!(q.pop().unwrap().task_id, 2);
    }

    #[test]
    fn len_tracks_across_classes() {
        let mut q = PriqQueue::new();
        q.push(task(1, 0));
        q.push(task(2, 3));
        q.push(task(3, 7));
        assert_eq!(q.len(), 3);
        assert_eq!(q.class_count(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        assert_eq!(q.class_count(), 2);
    }

    #[test]
    fn peek_returns_highest_priority() {
        let mut q = PriqQueue::new();
        q.push(task(1, 5));
        q.push(task(2, 2));
        assert_eq!(q.peek().unwrap().task_id, 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn empty_queue() {
        let mut q = PriqQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek().is_none());
    }
}

//! Earliest-deadline-first queuing (the structure behind T-EDFQ and
//! TF-EDFQ).

use crate::{QueuedTask, TaskQueue};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A single earliest-deadline-first queue.
///
/// This is the queue structure of both T-EDFQ and TailGuard's TF-EDFQ
/// (§III.A): tasks are ordered by ascending queuing deadline `t_D`; ties are
/// broken by insertion order, so two tasks with identical deadlines are
/// served FIFO — a determinism property the property tests pin down.
///
/// The paper stresses the policy is lightweight: both `push` and `pop` are
/// `O(log n)` on a binary heap, which the criterion micro-bench
/// (`micro_criterion`) verifies stays in the tens of nanoseconds.
///
/// # Example
///
/// ```
/// use tailguard_policy::{EdfQueue, QueuedTask, ServiceClass, TaskQueue};
/// use tailguard_simcore::SimTime;
///
/// let mut q = EdfQueue::new();
/// q.push(QueuedTask::new(1, ServiceClass(0), SimTime::from_millis(9), SimTime::ZERO));
/// q.push(QueuedTask::new(2, ServiceClass(0), SimTime::from_millis(3), SimTime::ZERO));
/// assert_eq!(q.pop().unwrap().task_id, 2);
/// ```
#[derive(Debug, Default)]
pub struct EdfQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

#[derive(Debug)]
struct Entry {
    task: QueuedTask,
    seq: u64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.task.deadline == other.task.deadline && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on (deadline, seq).
        other
            .task
            .deadline
            .cmp(&self.task.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl EdfQueue {
    /// Creates an empty EDF queue.
    pub fn new() -> Self {
        EdfQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl TaskQueue for EdfQueue {
    fn push(&mut self, task: QueuedTask) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { task, seq });
    }

    fn pop(&mut self) -> Option<QueuedTask> {
        self.heap.pop().map(|e| e.task)
    }

    fn peek(&self) -> Option<&QueuedTask> {
        self.heap.peek().map(|e| &e.task)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceClass;
    use proptest::prelude::*;
    use tailguard_simcore::SimTime;

    fn task(id: u64, deadline_ms: u64) -> QueuedTask {
        QueuedTask::new(
            id,
            ServiceClass(0),
            SimTime::from_millis(deadline_ms),
            SimTime::ZERO,
        )
    }

    #[test]
    fn deadline_order() {
        let mut q = EdfQueue::new();
        q.push(task(1, 30));
        q.push(task(2, 10));
        q.push(task(3, 20));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|t| t.task_id)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EdfQueue::new();
        for id in 0..50 {
            q.push(task(id, 5));
        }
        for id in 0..50 {
            assert_eq!(q.pop().unwrap().task_id, id);
        }
    }

    #[test]
    fn urgent_arrival_jumps_queue() {
        let mut q = EdfQueue::new();
        q.push(task(1, 100));
        q.push(task(2, 200));
        assert_eq!(q.peek().unwrap().task_id, 1);
        q.push(task(3, 1)); // tight deadline arrives late
        assert_eq!(q.pop().unwrap().task_id, 3);
    }

    #[test]
    fn class_is_irrelevant_to_ordering() {
        let mut q = EdfQueue::new();
        q.push(QueuedTask::new(
            1,
            ServiceClass(0),
            SimTime::from_millis(10),
            SimTime::ZERO,
        ));
        q.push(QueuedTask::new(
            2,
            ServiceClass(5),
            SimTime::from_millis(1),
            SimTime::ZERO,
        ));
        // The low-priority *class* wins because its *deadline* is earlier —
        // exactly the paper's point about class-based scheduling being
        // insufficient.
        assert_eq!(q.pop().unwrap().task_id, 2);
    }

    #[test]
    fn empty_queue() {
        let mut q = EdfQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek().is_none());
    }

    proptest! {
        /// Popped deadlines are non-decreasing for any push sequence.
        #[test]
        fn prop_pop_order_sorted(deadlines in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut q = EdfQueue::new();
            for (id, d) in deadlines.iter().enumerate() {
                q.push(task(id as u64, *d));
            }
            let mut last = 0u64;
            while let Some(t) = q.pop() {
                let d = t.deadline.as_nanos();
                prop_assert!(d >= last);
                last = d;
            }
        }

        /// Equal-deadline tasks always pop in insertion order, even
        /// interleaved with other deadlines.
        #[test]
        fn prop_stable_among_ties(deadlines in proptest::collection::vec(0u64..8, 1..200)) {
            let mut q = EdfQueue::new();
            for (id, d) in deadlines.iter().enumerate() {
                q.push(task(id as u64, *d));
            }
            let mut last_id_per_deadline = std::collections::HashMap::new();
            while let Some(t) = q.pop() {
                if let Some(prev) = last_id_per_deadline.insert(t.deadline, t.task_id) {
                    prop_assert!(t.task_id > prev, "tie broken out of FIFO order");
                }
            }
        }

        /// Push/pop interleavings conserve tasks: everything pushed comes
        /// out exactly once.
        #[test]
        fn prop_conservation(ops in proptest::collection::vec(proptest::option::of(0u64..1000), 1..300)) {
            let mut q = EdfQueue::new();
            let mut pushed = std::collections::HashSet::new();
            let mut popped = std::collections::HashSet::new();
            let mut next_id = 0u64;
            for op in ops {
                match op {
                    Some(d) => {
                        q.push(task(next_id, d));
                        pushed.insert(next_id);
                        next_id += 1;
                    }
                    None => {
                        if let Some(t) = q.pop() {
                            prop_assert!(popped.insert(t.task_id), "task popped twice");
                        }
                    }
                }
            }
            while let Some(t) = q.pop() {
                prop_assert!(popped.insert(t.task_id), "task popped twice");
            }
            prop_assert_eq!(pushed, popped);
        }
    }
}

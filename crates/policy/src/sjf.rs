//! Shortest-job-first queuing — the task-size-aware reordering baseline.
//!
//! The paper's related work (§II.B) covers "solutions based on
//! task-size-aware task reordering in a task queue … to avoid head-of-line
//! blocking of small-sized tasks by large-sized ones" and argues they are
//! inadequate for the design objective because task *size* ignores both the
//! query's SLO and its fanout. This queue implements that class with a
//! perfect size oracle (the scheduler knows each task's true service time),
//! giving the baseline its best case; the `ext_sjf_baseline` bench shows it
//! still loses to TF-EDFQ on SLO-constrained max load.

use crate::{QueuedTask, TaskQueue};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A non-preemptive shortest-job-first queue ordered by
/// [`QueuedTask::size_hint`], ties broken FIFO.
///
/// # Example
///
/// ```
/// use tailguard_policy::{QueuedTask, ServiceClass, SjfQueue, TaskQueue};
/// use tailguard_simcore::{SimDuration, SimTime};
///
/// let mut q = SjfQueue::new();
/// let mut long = QueuedTask::new(1, ServiceClass(0), SimTime::ZERO, SimTime::ZERO);
/// long.size_hint = SimDuration::from_millis(9);
/// let mut short = QueuedTask::new(2, ServiceClass(0), SimTime::ZERO, SimTime::ZERO);
/// short.size_hint = SimDuration::from_millis(1);
/// q.push(long);
/// q.push(short);
/// assert_eq!(q.pop().unwrap().task_id, 2);
/// ```
#[derive(Debug, Default)]
pub struct SjfQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

#[derive(Debug)]
struct Entry {
    task: QueuedTask,
    seq: u64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.task.size_hint == other.task.size_hint && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on (size, seq).
        other
            .task
            .size_hint
            .cmp(&self.task.size_hint)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl SjfQueue {
    /// Creates an empty SJF queue.
    pub fn new() -> Self {
        SjfQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl TaskQueue for SjfQueue {
    fn push(&mut self, task: QueuedTask) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { task, seq });
    }

    fn pop(&mut self) -> Option<QueuedTask> {
        self.heap.pop().map(|e| e.task)
    }

    fn peek(&self) -> Option<&QueuedTask> {
        self.heap.peek().map(|e| &e.task)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceClass;
    use proptest::prelude::*;
    use tailguard_simcore::{SimDuration, SimTime};

    fn task(id: u64, size_us: u64) -> QueuedTask {
        let mut t = QueuedTask::new(id, ServiceClass(0), SimTime::ZERO, SimTime::ZERO);
        t.size_hint = SimDuration::from_micros(size_us);
        t
    }

    #[test]
    fn shortest_first() {
        let mut q = SjfQueue::new();
        q.push(task(1, 500));
        q.push(task(2, 100));
        q.push(task(3, 300));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|t| t.task_id)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn ties_fifo() {
        let mut q = SjfQueue::new();
        for id in 0..20 {
            q.push(task(id, 100));
        }
        for id in 0..20 {
            assert_eq!(q.pop().unwrap().task_id, id);
        }
    }

    #[test]
    fn ignores_deadline_and_class() {
        let mut q = SjfQueue::new();
        let mut urgent = task(1, 900);
        urgent.deadline = SimTime::from_millis(1);
        urgent.class = ServiceClass(0);
        let mut lazy = task(2, 100);
        lazy.deadline = SimTime::from_millis(999);
        lazy.class = ServiceClass(9);
        q.push(urgent);
        q.push(lazy);
        // The small task wins even though the other is far more urgent —
        // exactly the blindness the paper criticizes.
        assert_eq!(q.pop().unwrap().task_id, 2);
    }

    #[test]
    fn empty_queue() {
        let mut q = SjfQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek().is_none());
    }

    proptest! {
        #[test]
        fn prop_pop_sizes_sorted(sizes in proptest::collection::vec(0u64..100_000, 1..150)) {
            let mut q = SjfQueue::new();
            for (id, s) in sizes.iter().enumerate() {
                q.push(task(id as u64, *s));
            }
            let mut last = 0u64;
            while let Some(t) = q.pop() {
                let s = t.size_hint.as_nanos();
                prop_assert!(s >= last);
                last = s;
            }
        }
    }
}

//! Simulated clock types.
//!
//! All simulation time in the workspace is expressed in integer nanoseconds.
//! Using an integer representation (rather than `f64` seconds) keeps event
//! ordering exact and makes runs bit-reproducible across platforms.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and supports the natural arithmetic with
/// [`SimDuration`]. Subtracting a later time from an earlier one saturates at
/// [`SimTime::ZERO`] rather than panicking, because latency accounting on
/// reordered events must never bring a simulation down.
///
/// # Example
///
/// ```
/// use tailguard_simcore::{SimDuration, SimTime};
///
/// let t0 = SimTime::from_millis_f64(2.0);
/// let t1 = t0 + SimDuration::from_micros(500);
/// assert_eq!((t1 - t0).as_micros(), 500);
/// assert!(t1 > t0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use tailguard_simcore::SimDuration;
///
/// let d = SimDuration::from_millis_f64(1.5);
/// assert_eq!(d.as_nanos(), 1_500_000);
/// assert!((d.as_millis_f64() - 1.5).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from fractional milliseconds.
    ///
    /// Negative and non-finite inputs clamp to [`SimTime::ZERO`].
    #[inline]
    pub fn from_millis_f64(millis: f64) -> Self {
        SimTime(millis_f64_to_nanos(millis))
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since simulation start as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The elapsed duration since `earlier`, saturating to zero if `earlier`
    /// is in fact later than `self`.
    /// `earlier` is virtual time (nanosecond domain).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` when `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// Negative and non-finite inputs clamp to [`SimDuration::ZERO`]; values
    /// beyond the representable range clamp to [`SimDuration::MAX`].
    #[inline]
    pub fn from_millis_f64(millis: f64) -> Self {
        SimDuration(millis_f64_to_nanos(millis))
    }

    /// Creates a duration from fractional seconds, with the same clamping as
    /// [`SimDuration::from_millis_f64`].
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(millis_f64_to_nanos(secs * 1e3))
    }

    /// Length in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    /// `rhs` is a virtual-time duration (nanosecond domain).
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction: `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// True when the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float, clamping to the representable
    /// range (useful for scaling SLOs, e.g. the paper's `1.5 × x99`).
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(millis_f64_to_nanos(self.as_millis_f64() * factor))
    }
}

fn millis_f64_to_nanos(millis: f64) -> u64 {
    if millis.is_nan() || millis <= 0.0 {
        return 0;
    }
    let nanos = millis * 1e6;
    if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        // tg-lint: allow(lossy-cast) -- guarded: the branches above establish 0 < nanos < 2^64
        nanos.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics when `rhs` is zero.
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        // tg-lint: allow(panic-surface) -- operator contract mirrors u64 `/` (documented); a zero divisor is a caller bug surfaced loudly
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl From<SimDuration> for SimTime {
    fn from(d: SimDuration) -> SimTime {
        SimTime(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis_f64(0.5).as_micros(), 500);
    }

    #[test]
    fn float_conversions_clamp() {
        assert_eq!(SimDuration::from_millis_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis_f64(f64::INFINITY),
            SimDuration::MAX
        );
        assert_eq!(SimTime::from_millis_f64(-0.1), SimTime::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(4);
        assert_eq!((t + d).as_millis_f64(), 14.0);
        assert_eq!((t - d).as_millis_f64(), 6.0);
        assert_eq!(t + d - t, d);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_millis(1)));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(2);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(3));
        assert_eq!(d * 3, SimDuration::from_millis(6));
        assert_eq!(d / 2, SimDuration::from_millis(1));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn ordering_is_total() {
        let mut times = vec![
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_micros(10),
        ];
        times.sort();
        assert_eq!(
            times,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(10),
                SimTime::from_millis(3)
            ]
        );
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.000ms");
    }

    #[test]
    fn add_saturates_at_max() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_millis(1), SimTime::MAX);
        let d = SimDuration::MAX;
        assert_eq!(d + SimDuration::from_nanos(1), SimDuration::MAX);
        assert_eq!(d * 2, SimDuration::MAX);
    }
}

//! Deterministic, splittable randomness.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seedable random-number generator with deterministic stream splitting.
///
/// Every stochastic component of a simulation (arrival process, service
/// times, fanout draws, server selection, …) should own its own `SimRng`
/// derived from the experiment's master seed via [`SimRng::split`]. That way
/// adding samples to one component never perturbs another, and any run is
/// reproducible from a single `u64`.
///
/// # Example
///
/// ```
/// use tailguard_simcore::SimRng;
///
/// let mut master = SimRng::seed(42);
/// let mut arrivals = master.split();
/// let mut services = master.split();
/// let a1 = arrivals.f64();
/// let s1 = services.f64();
///
/// // Re-creating from the same seed reproduces both streams exactly.
/// let mut master2 = SimRng::seed(42);
/// assert_eq!(master2.split().f64(), a1);
/// assert_eq!(master2.split().f64(), s1);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator. Successive calls yield
    /// distinct, deterministic streams.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed(self.inner.random::<u64>())
    }

    /// A uniform sample from `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// A uniform sample from the open interval `(0, 1)`, safe as input to
    /// inverse-CDF transforms that take `ln`.
    #[inline]
    pub fn open01(&mut self) -> f64 {
        loop {
            let u = self.inner.random::<f64>();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// A uniform `u64`.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }

    /// `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Samples `k` distinct indices uniformly from `[0, n)`, in random order.
    ///
    /// # Panics
    ///
    /// Panics when `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        rand::seq::index::sample(&mut self.inner, n, k).into_vec()
    }

    /// Access to the underlying `rand` generator for use with external
    /// distribution adaptors.
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_later_use() {
        let mut m1 = SimRng::seed(9);
        let mut c1 = m1.split();
        let _ = m1.u64(); // perturb the master afterwards
        let v1: Vec<u64> = (0..8).map(|_| c1.u64()).collect();

        let mut m2 = SimRng::seed(9);
        let mut c2 = m2.split();
        let v2: Vec<u64> = (0..8).map(|_| c2.u64()).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn open01_never_zero() {
        let mut r = SimRng::seed(4);
        for _ in 0..10_000 {
            assert!(r.open01() > 0.0);
        }
    }

    #[test]
    fn index_bounds() {
        let mut r = SimRng::seed(5);
        for _ in 0..1_000 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "index bound must be positive")]
    fn index_zero_panics() {
        SimRng::seed(0).index(0);
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut r = SimRng::seed(11);
        for _ in 0..100 {
            let mut v = r.sample_distinct(50, 10);
            assert_eq!(v.len(), 10);
            assert!(v.iter().all(|&i| i < 50));
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), 10);
        }
    }

    #[test]
    fn sample_distinct_full_population() {
        let mut r = SimRng::seed(12);
        let mut v = r.sample_distinct(5, 5);
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(13);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut r = SimRng::seed(14);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}

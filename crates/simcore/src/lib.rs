//! Discrete-event simulation substrate for the TailGuard reproduction.
//!
//! This crate provides the three building blocks every simulation experiment
//! in the workspace is built on:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution simulated clock
//!   with total ordering and saturating arithmetic,
//! * [`Scheduler`] / [`Engine`] — a deterministic future-event list (a binary
//!   heap keyed by `(time, sequence)`) and a run loop driving a user-supplied
//!   [`Simulation`] state machine,
//! * [`SimRng`] — a seedable, splittable random-number generator so that every
//!   experiment is exactly reproducible from a single `u64` seed.
//!
//! # Example
//!
//! A minimal M/D/1 queue simulated to completion:
//!
//! ```
//! use tailguard_simcore::{Engine, Scheduler, SimDuration, SimTime, Simulation};
//!
//! #[derive(Debug)]
//! enum Ev { Arrival, Departure }
//!
//! #[derive(Default)]
//! struct Md1 {
//!     arrived: u32,
//!     queued: u32,
//!     busy: bool,
//!     served: u32,
//! }
//!
//! impl Simulation for Md1 {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
//!         match ev {
//!             Ev::Arrival => {
//!                 self.arrived += 1;
//!                 if self.arrived < 10 {
//!                     sched.schedule_in(now, SimDuration::from_millis_f64(1.0), Ev::Arrival);
//!                 }
//!                 if self.busy {
//!                     self.queued += 1;
//!                 } else {
//!                     self.busy = true;
//!                     sched.schedule_in(now, SimDuration::from_millis_f64(0.5), Ev::Departure);
//!                 }
//!             }
//!             Ev::Departure => {
//!                 self.served += 1;
//!                 if self.queued > 0 {
//!                     self.queued -= 1;
//!                     sched.schedule_in(now, SimDuration::from_millis_f64(0.5), Ev::Departure);
//!                 } else {
//!                     self.busy = false;
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Md1::default());
//! engine.scheduler_mut().schedule_at(SimTime::ZERO, Ev::Arrival);
//! engine.run_to_completion();
//! assert_eq!(engine.state().served, 10);
//! ```

mod engine;
mod event;
mod rng;
mod time;

pub use engine::{Engine, RunOutcome, Simulation};
pub use event::{Scheduled, Scheduler};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};

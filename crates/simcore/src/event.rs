//! Future-event list: a deterministic, time-ordered scheduler.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queued for execution at a given simulated instant.
///
/// Events at equal times are delivered in insertion order (FIFO among ties),
/// which makes simulations deterministic regardless of heap internals.
///
/// Internally the `(time, sequence)` ordering pair is packed into a single
/// `u128` (time in the high 64 bits, insertion sequence in the low 64), so
/// every heap sift-up/down comparison is one integer compare instead of
/// two — the event heap is the innermost loop of the simulator.
#[derive(Debug)]
pub struct Scheduled<E> {
    /// `(at.as_nanos() << 64) | seq`; lexicographic `(at, seq)` order and
    /// numeric `u128` order coincide.
    key: u128,
    /// The event payload.
    pub event: E,
}

impl<E> Scheduled<E> {
    fn new(at: SimTime, seq: u64, event: E) -> Self {
        Scheduled {
            key: (u128::from(at.as_nanos()) << 64) | u128::from(seq),
            event,
        }
    }

    /// When the event fires.
    pub fn at(&self) -> SimTime {
        // tg-lint: allow(lossy-cast) -- exact: the upper half of the packed (time, seq) u128 key — `>> 64` bounds it below 2^64
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.key.cmp(&self.key)
    }
}

/// A deterministic future-event list.
///
/// The scheduler is the only channel through which a [`crate::Simulation`]
/// creates future work. Determinism guarantee:
/// two events scheduled for the same instant are delivered in the order they
/// were scheduled.
///
/// # Example
///
/// ```
/// use tailguard_simcore::{Scheduler, SimDuration, SimTime};
///
/// let mut sched: Scheduler<&'static str> = Scheduler::new();
/// sched.schedule_at(SimTime::from_millis(2), "late");
/// sched.schedule_at(SimTime::from_millis(1), "early");
/// sched.schedule_in(SimTime::from_millis(1), SimDuration::ZERO, "tie");
///
/// let order: Vec<_> = std::iter::from_fn(|| sched.pop().map(|s| s.event)).collect();
/// assert_eq!(order, vec!["early", "tie", "late"]);
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    scheduled_total: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            seq: 0,
            scheduled_total: 0,
        }
    }

    /// Creates an empty scheduler with pre-allocated capacity for `cap`
    /// simultaneously outstanding events.
    pub fn with_capacity(cap: usize) -> Self {
        Scheduler {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `event` to fire at absolute instant `at`.
    /// `at` is virtual time (nanosecond domain).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled::new(at, seq, event));
    }

    /// Schedules `event` to fire `delay` after `now`.
    /// `now` is virtual time (nanosecond domain).
    pub fn schedule_in(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule_at(now + delay, event);
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(Scheduled::at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled over the scheduler's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drops all pending events (the lifetime counter is preserved).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(5), 5);
        s.schedule_at(SimTime::from_millis(1), 1);
        s.schedule_at(SimTime::from_millis(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            s.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_offsets_from_now() {
        let mut s = Scheduler::new();
        s.schedule_in(SimTime::from_millis(2), SimDuration::from_millis(3), ());
        assert_eq!(s.peek_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn len_and_clear() {
        let mut s = Scheduler::new();
        assert!(s.is_empty());
        s.schedule_at(SimTime::ZERO, ());
        s.schedule_at(SimTime::ZERO, ());
        assert_eq!(s.len(), 2);
        assert_eq!(s.scheduled_total(), 2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(10), 10);
        s.schedule_at(SimTime::from_millis(1), 1);
        assert_eq!(s.pop().unwrap().event, 1);
        s.schedule_at(SimTime::from_millis(2), 2);
        s.schedule_at(SimTime::from_millis(20), 20);
        assert_eq!(s.pop().unwrap().event, 2);
        assert_eq!(s.pop().unwrap().event, 10);
        assert_eq!(s.pop().unwrap().event, 20);
        assert!(s.pop().is_none());
    }
}

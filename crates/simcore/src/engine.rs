//! The simulation run loop.

use crate::event::Scheduler;
use crate::time::SimTime;

/// A discrete-event state machine driven by an [`Engine`].
///
/// Implementors own all mutable simulation state; the engine owns the clock
/// and the future-event list. `handle` is invoked once per event, in
/// non-decreasing time order, and may schedule further events through the
/// provided scheduler.
pub trait Simulation {
    /// The event alphabet of this simulation.
    type Event;

    /// Processes a single event occurring at simulated instant `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);

    /// Optional early-stop predicate checked after every event; returning
    /// `true` halts the run loop (used e.g. to stop after a target number of
    /// completed queries).
    fn should_stop(&self) -> bool {
        false
    }
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The future-event list drained completely.
    Exhausted,
    /// The time horizon passed to [`Engine::run_until`] was reached.
    HorizonReached,
    /// [`Simulation::should_stop`] returned `true`.
    Stopped,
    /// The event budget passed to [`Engine::run_events`] was consumed.
    BudgetExhausted,
}

/// Drives a [`Simulation`] forward through simulated time.
///
/// # Example
///
/// See the crate-level documentation for a complete M/D/1 example.
#[derive(Debug)]
pub struct Engine<S: Simulation> {
    state: S,
    scheduler: Scheduler<S::Event>,
    now: SimTime,
    processed: u64,
}

impl<S: Simulation> Engine<S> {
    /// Creates an engine at time zero with an empty event list.
    pub fn new(state: S) -> Self {
        Engine {
            state,
            scheduler: Scheduler::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulated instant (the timestamp of the last event
    /// processed, or zero before any event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the simulation state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the simulation state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the engine, returning the final simulation state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Exclusive access to the scheduler, e.g. for seeding initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<S::Event> {
        &mut self.scheduler
    }

    /// Shared access to the scheduler.
    pub fn scheduler(&self) -> &Scheduler<S::Event> {
        &self.scheduler
    }

    /// Processes a single event, if one is pending. Returns `false` when the
    /// event list is empty.
    // tg-lint: hot(event-loop)
    pub fn step(&mut self) -> bool {
        match self.scheduler.pop() {
            Some(scheduled) => {
                debug_assert!(
                    scheduled.at() >= self.now,
                    "event scheduled in the past: {} < {}",
                    scheduled.at(),
                    self.now
                );
                self.now = scheduled.at();
                self.processed += 1;
                self.state
                    .handle(self.now, scheduled.event, &mut self.scheduler);
                true
            }
            None => false,
        }
    }
    // tg-lint: endhot

    /// Runs until the event list drains or the simulation requests a stop.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        loop {
            if self.state.should_stop() {
                return RunOutcome::Stopped;
            }
            if !self.step() {
                return RunOutcome::Exhausted;
            }
        }
    }

    /// Runs until the next pending event lies strictly beyond `horizon`, the
    /// event list drains, or the simulation requests a stop. Events stamped
    /// exactly at `horizon` are processed.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.state.should_stop() {
                return RunOutcome::Stopped;
            }
            match self.scheduler.peek_time() {
                None => return RunOutcome::Exhausted,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs at most `budget` events (or to exhaustion / stop).
    pub fn run_events(&mut self, budget: u64) -> RunOutcome {
        for _ in 0..budget {
            if self.state.should_stop() {
                return RunOutcome::Stopped;
            }
            if !self.step() {
                return RunOutcome::Exhausted;
            }
        }
        if self.state.should_stop() {
            RunOutcome::Stopped
        } else {
            RunOutcome::BudgetExhausted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Ticks forever at 1ms intervals, counting.
    struct Ticker {
        ticks: u64,
        stop_at: Option<u64>,
    }

    impl Simulation for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
            self.ticks += 1;
            sched.schedule_in(now, SimDuration::from_millis(1), ());
        }
        fn should_stop(&self) -> bool {
            self.stop_at.is_some_and(|n| self.ticks >= n)
        }
    }

    fn ticker(stop_at: Option<u64>) -> Engine<Ticker> {
        let mut e = Engine::new(Ticker { ticks: 0, stop_at });
        e.scheduler_mut().schedule_at(SimTime::ZERO, ());
        e
    }

    #[test]
    fn run_until_respects_horizon_inclusive() {
        let mut e = ticker(None);
        let outcome = e.run_until(SimTime::from_millis(10));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // events at 0,1,...,10 ms inclusive
        assert_eq!(e.state().ticks, 11);
        assert_eq!(e.now(), SimTime::from_millis(10));
    }

    #[test]
    fn run_events_respects_budget() {
        let mut e = ticker(None);
        assert_eq!(e.run_events(5), RunOutcome::BudgetExhausted);
        assert_eq!(e.state().ticks, 5);
        assert_eq!(e.processed(), 5);
    }

    #[test]
    fn should_stop_halts() {
        let mut e = ticker(Some(7));
        assert_eq!(e.run_to_completion(), RunOutcome::Stopped);
        assert_eq!(e.state().ticks, 7);
    }

    #[test]
    fn exhaustion_when_no_events() {
        struct Inert;
        impl Simulation for Inert {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), _: &mut Scheduler<()>) {}
        }
        let mut e = Engine::new(Inert);
        assert_eq!(e.run_to_completion(), RunOutcome::Exhausted);
        assert_eq!(e.processed(), 0);
    }

    #[test]
    fn clock_is_monotone_across_steps() {
        let mut e = ticker(None);
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            e.step();
            assert!(e.now() >= last);
            last = e.now();
        }
    }

    #[test]
    fn into_state_returns_final_state() {
        let mut e = ticker(Some(3));
        e.run_to_completion();
        let s = e.into_state();
        assert_eq!(s.ticks, 3);
    }
}

//! Query arrival processes.

use serde::{Deserialize, Serialize};
use tailguard_dist::{Distribution, Exponential, Pareto};
use tailguard_simcore::{SimDuration, SimRng};

/// A renewal process generating query inter-arrival gaps.
///
/// The paper uses a Poisson arrival process by default ("widely recognized
/// as a good model for cloud applications") and a Pareto process as a
/// burstier alternative in the two-class sensitivity study (Fig. 5b). The
/// Pareto variant is constructed with the *same mean rate*, so policies face
/// the same offered load with heavier burst clumping.
///
/// # Example
///
/// ```
/// use tailguard_workload::ArrivalProcess;
/// use tailguard_simcore::SimRng;
///
/// let a = ArrivalProcess::poisson(2.0); // 2 queries per ms
/// assert!((a.rate_per_ms() - 2.0).abs() < 1e-12);
/// let mut rng = SimRng::seed(1);
/// let gap = a.next_gap(&mut rng);
/// assert!(gap.as_nanos() > 0 || gap.as_nanos() == 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival gaps with the given mean
    /// rate (queries per ms).
    Poisson {
        /// Mean arrival rate λ in queries per millisecond.
        rate_per_ms: f64,
    },
    /// Pareto-renewal arrivals: Pareto(shape) inter-arrival gaps scaled to
    /// the given mean rate — burstier than Poisson for `shape` close to 1.
    Pareto {
        /// Mean arrival rate λ in queries per millisecond.
        rate_per_ms: f64,
        /// Pareto shape α (> 1 so the mean gap exists). The paper-style
        /// bursty setting uses α = 1.5.
        shape: f64,
    },
}

impl ArrivalProcess {
    /// The default Pareto shape used by the burstiness study.
    pub const DEFAULT_PARETO_SHAPE: f64 = 1.5;

    /// Poisson arrivals at `rate_per_ms` queries per millisecond.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and positive.
    /// `rate_per_ms` is in milliseconds of virtual time.
    pub fn poisson(rate_per_ms: f64) -> Self {
        assert!(
            rate_per_ms.is_finite() && rate_per_ms > 0.0,
            "rate must be positive"
        );
        ArrivalProcess::Poisson { rate_per_ms }
    }

    /// Pareto-renewal arrivals at `rate_per_ms` with shape
    /// [`Self::DEFAULT_PARETO_SHAPE`].
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and positive.
    /// `rate_per_ms` is in milliseconds of virtual time.
    pub fn pareto(rate_per_ms: f64) -> Self {
        Self::pareto_with_shape(rate_per_ms, Self::DEFAULT_PARETO_SHAPE)
    }

    /// Pareto-renewal arrivals with an explicit shape.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is positive and `shape > 1`.
    pub fn pareto_with_shape(rate_per_ms: f64, shape: f64) -> Self {
        assert!(
            rate_per_ms.is_finite() && rate_per_ms > 0.0,
            "rate must be positive"
        );
        assert!(shape > 1.0, "shape must exceed 1 for a finite mean gap");
        ArrivalProcess::Pareto { rate_per_ms, shape }
    }

    /// The mean arrival rate in queries per millisecond.
    pub fn rate_per_ms(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_ms } => *rate_per_ms,
            ArrivalProcess::Pareto { rate_per_ms, .. } => *rate_per_ms,
        }
    }

    /// A copy of this process re-scaled to a different mean rate — the
    /// "tuning knob to adjust the system load" (§IV.A).
    ///
    /// # Panics
    ///
    /// Panics unless the new rate is finite and positive.
    /// `rate_per_ms` is in milliseconds of virtual time.
    pub fn with_rate(&self, rate_per_ms: f64) -> Self {
        match self {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::poisson(rate_per_ms),
            ArrivalProcess::Pareto { shape, .. } => {
                ArrivalProcess::pareto_with_shape(rate_per_ms, *shape)
            }
        }
    }

    /// Draws the gap until the next query arrival.
    pub fn next_gap(&self, rng: &mut SimRng) -> SimDuration {
        let gap_ms = match self {
            ArrivalProcess::Poisson { rate_per_ms } => {
                Exponential::with_mean(1.0 / rate_per_ms).sample(rng)
            }
            ArrivalProcess::Pareto { rate_per_ms, shape } => {
                Pareto::with_mean(1.0 / rate_per_ms, *shape).sample(rng)
            }
        };
        SimDuration::from_millis_f64(gap_ms)
    }

    /// A short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "Poisson",
            ArrivalProcess::Pareto { .. } => "Pareto",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap_ms(a: &ArrivalProcess, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed(seed);
        (0..n)
            .map(|_| a.next_gap(&mut rng).as_millis_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let a = ArrivalProcess::poisson(4.0);
        let m = mean_gap_ms(&a, 200_000, 1);
        assert!((m - 0.25).abs() < 0.005, "mean gap {m}");
    }

    #[test]
    fn pareto_mean_gap_matches_rate() {
        let a = ArrivalProcess::pareto(2.0);
        let m = mean_gap_ms(&a, 3_000_000, 2);
        assert!((m - 0.5).abs() < 0.08, "mean gap {m}");
    }

    #[test]
    fn pareto_is_burstier_than_poisson() {
        // Compare squared coefficient of variation of the gaps.
        let scv = |a: &ArrivalProcess, seed| {
            let mut rng = SimRng::seed(seed);
            let n = 500_000;
            let gaps: Vec<f64> = (0..n)
                .map(|_| a.next_gap(&mut rng).as_millis_f64())
                .collect();
            let m = gaps.iter().sum::<f64>() / n as f64;
            let var = gaps.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / n as f64;
            var / (m * m)
        };
        let poisson = scv(&ArrivalProcess::poisson(1.0), 3);
        let pareto = scv(&ArrivalProcess::pareto(1.0), 4);
        assert!((poisson - 1.0).abs() < 0.1, "poisson scv {poisson}");
        assert!(pareto > 2.0, "pareto scv {pareto}");
    }

    #[test]
    fn with_rate_rescales_preserving_family() {
        let a = ArrivalProcess::pareto(1.0).with_rate(5.0);
        assert_eq!(a.rate_per_ms(), 5.0);
        assert_eq!(a.label(), "Pareto");
        let b = ArrivalProcess::poisson(1.0).with_rate(2.0);
        assert_eq!(b.label(), "Poisson");
        assert_eq!(b.rate_per_ms(), 2.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        let _ = ArrivalProcess::poisson(0.0);
    }

    #[test]
    #[should_panic(expected = "shape must exceed 1")]
    fn rejects_infinite_mean_pareto() {
        let _ = ArrivalProcess::pareto_with_shape(1.0, 0.9);
    }

    #[test]
    fn gaps_are_positive() {
        let a = ArrivalProcess::pareto(10.0);
        let mut rng = SimRng::seed(5);
        for _ in 0..10_000 {
            assert!(a.next_gap(&mut rng).as_nanos() > 0);
        }
    }
}

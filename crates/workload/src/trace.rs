//! Query trace generation and serialization.

use crate::{ArrivalProcess, FanoutDist};
use serde::{Deserialize, Serialize};
use std::io;
use tailguard_simcore::{SimRng, SimTime};

/// One class's share of the query mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassShare {
    /// Class index (0 = tightest SLO).
    pub class: u8,
    /// Probability of a query belonging to this class.
    pub probability: f64,
    /// Fanout distribution for this class's queries.
    pub fanout: FanoutDist,
}

/// The query mix: classes with probabilities and per-class fanout models.
///
/// # Example
///
/// ```
/// use tailguard_workload::{ClassShare, FanoutDist, QueryMix};
///
/// // The paper's two-class case: equal class probability, shared fanout mix.
/// let mix = QueryMix::new(vec![
///     ClassShare { class: 0, probability: 0.5, fanout: FanoutDist::paper_mix() },
///     ClassShare { class: 1, probability: 0.5, fanout: FanoutDist::paper_mix() },
/// ]);
/// assert_eq!(mix.classes().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryMix {
    classes: Vec<ClassShare>,
    cumulative: Vec<f64>,
}

impl QueryMix {
    /// Builds a mix; probabilities are normalized to sum to one.
    ///
    /// # Panics
    ///
    /// Panics when `classes` is empty or probabilities are negative /
    /// non-finite / all zero.
    pub fn new(classes: Vec<ClassShare>) -> Self {
        assert!(!classes.is_empty(), "mix needs at least one class");
        let total: f64 = classes.iter().map(|c| c.probability).sum();
        assert!(
            total.is_finite() && total > 0.0,
            "class probabilities must sum to a positive value"
        );
        assert!(
            classes
                .iter()
                .all(|c| c.probability.is_finite() && c.probability >= 0.0),
            "class probabilities must be non-negative"
        );
        let mut cumulative = Vec::with_capacity(classes.len());
        let mut acc = 0.0;
        for c in &classes {
            acc += c.probability / total;
            cumulative.push(acc);
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        QueryMix {
            classes,
            cumulative,
        }
    }

    /// A single-class mix with the given fanout distribution.
    pub fn single(fanout: FanoutDist) -> Self {
        QueryMix::new(vec![ClassShare {
            class: 0,
            probability: 1.0,
            fanout,
        }])
    }

    /// `n` equiprobable classes sharing one fanout distribution (the
    /// paper's two-class and four-class configurations).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn equiprobable(n: u8, fanout: FanoutDist) -> Self {
        assert!(n > 0, "need at least one class");
        QueryMix::new(
            (0..n)
                .map(|class| ClassShare {
                    class,
                    probability: 1.0,
                    fanout: fanout.clone(),
                })
                .collect(),
        )
    }

    /// The class shares.
    pub fn classes(&self) -> &[ClassShare] {
        &self.classes
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Draws `(class, fanout)` for one query.
    pub fn sample(&self, rng: &mut SimRng) -> (u8, u32) {
        let u = rng.f64();
        let idx = self
            .cumulative
            .partition_point(|&c| c <= u)
            // tg-lint: allow(panic-surface) -- guarded: records are validated sorted by arrival and the branch above requires len >= 2
            .min(self.classes.len() - 1);
        // tg-lint: allow(panic-surface) -- guarded: records are validated sorted by arrival and the branch above requires len >= 2
        let share = &self.classes[idx];
        (share.class, share.fanout.sample(rng))
    }

    /// The largest fanout any class can draw.
    pub fn max_fanout(&self) -> u32 {
        self.classes
            .iter()
            .map(|c| c.fanout.max_fanout())
            .max()
            // tg-lint: allow(unwrap-in-lib) -- mix constructors assert at least one class share
            .expect("non-empty")
    }
}

/// One query in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Arrival time in nanoseconds since trace start.
    pub arrival_ns: u64,
    /// Service class index.
    pub class: u8,
    /// Query fanout `k_f`.
    pub fanout: u32,
}

impl QueryRecord {
    /// The arrival instant as a [`SimTime`].
    pub fn arrival(&self) -> SimTime {
        SimTime::from_nanos(self.arrival_ns)
    }
}

/// Metadata identifying how a trace was generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human-readable workload label (e.g. "Masstree two-class").
    pub label: String,
    /// Arrival process used.
    pub arrival: ArrivalProcess,
    /// RNG seed the trace was generated from.
    pub seed: u64,
}

/// A reproducible query trace: arrival times, classes and fanouts.
///
/// Traces decouple workload generation from simulation: the same trace can
/// be replayed under every queuing policy so policy comparisons share
/// identical arrivals (the variance-reduction trick the paper's simulations
/// rely on implicitly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Generation metadata.
    pub meta: TraceMeta,
    /// Queries in non-decreasing arrival order.
    pub records: Vec<QueryRecord>,
}

/// Errors from trace (de)serialization.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// Malformed CSV row.
    Csv(String),
    /// Records were not sorted by arrival time.
    NotSorted,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceError::Json(e) => write!(f, "trace json invalid: {e}"),
            TraceError::Csv(msg) => write!(f, "trace csv invalid: {msg}"),
            TraceError::NotSorted => f.write_str("trace records not sorted by arrival time"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Json(e) => Some(e),
            TraceError::Csv(_) | TraceError::NotSorted => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

impl Trace {
    /// Generates a trace of `count` queries.
    pub fn generate(
        label: impl Into<String>,
        arrival: &ArrivalProcess,
        mix: &QueryMix,
        count: usize,
        seed: u64,
    ) -> Self {
        let mut master = SimRng::seed(seed);
        let mut arrival_rng = master.split();
        let mut mix_rng = master.split();
        let mut t = SimTime::ZERO;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            t += arrival.next_gap(&mut arrival_rng);
            let (class, fanout) = mix.sample(&mut mix_rng);
            records.push(QueryRecord {
                arrival_ns: t.as_nanos(),
                class,
                fanout,
            });
        }
        Trace {
            meta: TraceMeta {
                label: label.into(),
                arrival: arrival.clone(),
                seed,
            },
            records,
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace holds no queries.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total task count (sum of fanouts).
    pub fn task_count(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.fanout)).sum()
    }

    /// Trace duration (arrival time of the last query).
    pub fn duration(&self) -> SimTime {
        self.records
            .last()
            .map_or(SimTime::ZERO, QueryRecord::arrival)
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Json`] if serialization fails (it cannot for
    /// well-formed traces).
    pub fn to_json(&self) -> Result<String, TraceError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Parses a trace from JSON, validating arrival-order.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Json`] on malformed input and
    /// [`TraceError::NotSorted`] when arrivals are out of order.
    pub fn from_json(s: &str) -> Result<Self, TraceError> {
        let trace: Trace = serde_json::from_str(s)?;
        if trace
            .records
            .windows(2)
            .any(|w| w[1].arrival_ns < w[0].arrival_ns)
        {
            return Err(TraceError::NotSorted);
        }
        Ok(trace)
    }

    /// Writes the trace as JSON to `w`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] / [`TraceError::Json`] on failure.
    pub fn write_json<W: io::Write>(&self, mut w: W) -> Result<(), TraceError> {
        let s = self.to_json()?;
        w.write_all(s.as_bytes())?;
        Ok(())
    }

    /// Reads a trace from a JSON reader.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] / [`TraceError::Json`] /
    /// [`TraceError::NotSorted`] on failure.
    pub fn read_json<R: io::Read>(mut r: R) -> Result<Self, TraceError> {
        let mut s = String::new();
        r.read_to_string(&mut s)?;
        Trace::from_json(&s)
    }

    /// Serializes the records as CSV (`arrival_ns,class,fanout`, one query
    /// per line) — the interchange format for external tooling. Metadata is
    /// not carried; use JSON for loss-free round-trips.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "arrival_ns,class,fanout
",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{}
",
                r.arrival_ns, r.class, r.fanout
            ));
        }
        out
    }

    /// Parses records from CSV produced by [`Trace::to_csv`] (or any file
    /// with the same header). The metadata is reconstructed as a synthetic
    /// Poisson process at the trace's empirical mean rate.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Csv`] on malformed rows and
    /// [`TraceError::NotSorted`] when arrivals are out of order.
    pub fn from_csv(s: &str) -> Result<Self, TraceError> {
        let mut lines = s.lines();
        match lines.next() {
            Some(h) if h.trim() == "arrival_ns,class,fanout" => {}
            _ => return Err(TraceError::Csv("missing header".to_string())),
        }
        let mut records = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let parse_err = || TraceError::Csv(format!("line {}: `{line}`", i + 2));
            let arrival_ns: u64 = parts
                .next()
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(parse_err)?;
            let class: u8 = parts
                .next()
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(parse_err)?;
            let fanout: u32 = parts
                .next()
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(parse_err)?;
            if parts.next().is_some() || fanout == 0 {
                return Err(parse_err());
            }
            records.push(QueryRecord {
                arrival_ns,
                class,
                fanout,
            });
        }
        if records
            .windows(2)
            .any(|w| w[1].arrival_ns < w[0].arrival_ns)
        {
            return Err(TraceError::NotSorted);
        }
        let rate = if records.len() >= 2 {
            // tg-lint: allow(unwrap-in-lib) -- guarded by the len() >= 2 branch above
            // tg-lint: allow(panic-surface) -- guarded: records are validated sorted by arrival and the branch above requires len >= 2
            let span_ms = (records.last().expect("non-empty").arrival_ns - records[0].arrival_ns)
                as f64
                / 1e6;
            if span_ms > 0.0 {
                // tg-lint: allow(panic-surface) -- guarded: records are validated sorted by arrival and the branch above requires len >= 2
                (records.len() - 1) as f64 / span_ms
            } else {
                1.0
            }
        } else {
            1.0
        };
        Ok(Trace {
            meta: TraceMeta {
                label: "imported-csv".to_string(),
                arrival: ArrivalProcess::poisson(rate.max(1e-9)),
                seed: 0,
            },
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix2() -> QueryMix {
        QueryMix::equiprobable(2, FanoutDist::paper_mix())
    }

    #[test]
    fn generate_is_deterministic() {
        let a = ArrivalProcess::poisson(1.0);
        let t1 = Trace::generate("t", &a, &mix2(), 1000, 7);
        let t2 = Trace::generate("t", &a, &mix2(), 1000, 7);
        assert_eq!(t1, t2);
        let t3 = Trace::generate("t", &a, &mix2(), 1000, 8);
        assert_ne!(t1, t3);
    }

    #[test]
    fn arrivals_sorted_and_rate_correct() {
        let a = ArrivalProcess::poisson(2.0);
        let t = Trace::generate("t", &a, &mix2(), 100_000, 1);
        assert!(t
            .records
            .windows(2)
            .all(|w| w[1].arrival_ns >= w[0].arrival_ns));
        let rate = t.len() as f64 / t.duration().as_millis_f64();
        assert!((rate - 2.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn class_split_roughly_even() {
        let a = ArrivalProcess::poisson(1.0);
        let t = Trace::generate("t", &a, &mix2(), 100_000, 2);
        let c0 = t.records.iter().filter(|r| r.class == 0).count();
        let frac = c0 as f64 / t.len() as f64;
        assert!((frac - 0.5).abs() < 0.01, "class-0 fraction {frac}");
    }

    #[test]
    fn json_roundtrip() {
        let a = ArrivalProcess::pareto(0.5);
        let t = Trace::generate("roundtrip", &a, &mix2(), 500, 3);
        let json = t.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.meta.label, "roundtrip");
        assert_eq!(back.meta.seed, 3);
    }

    #[test]
    fn unsorted_json_rejected() {
        let a = ArrivalProcess::poisson(1.0);
        let mut t = Trace::generate("bad", &a, &mix2(), 10, 4);
        t.records.swap(0, 9);
        let json = t.to_json().unwrap();
        assert!(matches!(
            Trace::from_json(&json),
            Err(TraceError::NotSorted)
        ));
    }

    #[test]
    fn writer_reader_roundtrip() {
        let a = ArrivalProcess::poisson(1.0);
        let t = Trace::generate("io", &a, &mix2(), 100, 5);
        let mut buf = Vec::new();
        t.write_json(&mut buf).unwrap();
        let back = Trace::read_json(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_roundtrip_preserves_records() {
        let a = ArrivalProcess::poisson(2.0);
        let t = Trace::generate("csv", &a, &mix2(), 500, 21);
        let csv = t.to_csv();
        let back = Trace::from_csv(&csv).expect("parse");
        assert_eq!(t.records, back.records);
        // Reconstructed rate approximates the original.
        assert!((back.meta.arrival.rate_per_ms() - 2.0).abs() < 0.3);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(matches!(Trace::from_csv("nope"), Err(TraceError::Csv(_))));
        assert!(matches!(
            Trace::from_csv(
                "arrival_ns,class,fanout
1,2
"
            ),
            Err(TraceError::Csv(_))
        ));
        assert!(matches!(
            Trace::from_csv(
                "arrival_ns,class,fanout
1,0,0
"
            ),
            Err(TraceError::Csv(_))
        ));
        assert!(matches!(
            Trace::from_csv(
                "arrival_ns,class,fanout
5,0,1
1,0,1
"
            ),
            Err(TraceError::NotSorted)
        ));
    }

    #[test]
    fn csv_tolerates_blank_lines() {
        let t = Trace::from_csv(
            "arrival_ns,class,fanout
1,0,1

2,1,4
",
        )
        .expect("parse");
        assert_eq!(t.len(), 2);
        assert_eq!(t.records[1].fanout, 4);
    }

    #[test]
    fn task_count_sums_fanouts() {
        let a = ArrivalProcess::poisson(1.0);
        let t = Trace::generate("t", &a, &QueryMix::single(FanoutDist::fixed(4)), 25, 6);
        assert_eq!(t.task_count(), 100);
    }

    #[test]
    fn mix_validation() {
        let m = QueryMix::new(vec![
            ClassShare {
                class: 0,
                probability: 3.0,
                fanout: FanoutDist::fixed(1),
            },
            ClassShare {
                class: 1,
                probability: 1.0,
                fanout: FanoutDist::fixed(2),
            },
        ]);
        let mut rng = SimRng::seed(8);
        let n = 100_000;
        let c0 = (0..n).filter(|_| m.sample(&mut rng).0 == 0).count();
        let frac = c0 as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
        assert_eq!(m.max_fanout(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_rejected() {
        let _ = QueryMix::new(vec![]);
    }
}

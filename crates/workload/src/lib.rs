//! Workload models for the TailGuard reproduction.
//!
//! The paper drives its simulations with three ingredients (§IV.A):
//!
//! 1. **A query arrival process** — Poisson by default, Pareto for the
//!    burstiness sensitivity study ([`ArrivalProcess`]),
//! 2. **A query fanout distribution** — e.g. fanouts {1, 10, 100} with
//!    probability inversely proportional to the fanout ([`FanoutDist`]),
//! 3. **A task service-time distribution** — sampled from the Tailbench
//!    benchmark suite; we reproduce the three representative workloads
//!    (Masstree, Shore, Xapian) as piecewise-quantile models calibrated to
//!    the paper's Table II ([`TailbenchWorkload`]).
//!
//! The crate also provides trace generation and (de)serialization
//! ([`Trace`]), so experiments can be replayed bit-for-bit.

mod arrival;
mod drift;
mod fanout;
mod tailbench;
mod trace;

pub use arrival::ArrivalProcess;
pub use drift::{DriftKind, DriftPlan};
pub use fanout::FanoutDist;
pub use tailbench::{fig3_markers, TailbenchWorkload, UnloadedStats};
pub use trace::{ClassShare, QueryMix, QueryRecord, Trace, TraceError, TraceMeta};

//! Non-stationary workload drift: load curves and mix shifts.
//!
//! Everything benchmarked before this module is stationary — a fixed
//! arrival rate and a fixed query mix for the whole run. Real user-facing
//! load is not: it swells and ebbs diurnally, spikes under flash crowds,
//! and its *composition* drifts (e.g. a product launch shifting traffic
//! from Masstree-like point lookups to Xapian-like search queries). A
//! [`DriftPlan`] describes such non-stationarity as pure data the trace
//! generator consults:
//!
//! * [`DriftKind::Diurnal`] — a sinusoidal arrival-rate curve,
//! * [`DriftKind::FlashCrowd`] — a rate spike over a window,
//! * [`DriftKind::MixShift`] — the query mix interpolating toward a target
//!   mix over a window (each arrival samples from the target with
//!   probability equal to the shift's progress).
//!
//! Rate factors compose multiplicatively, mirroring
//! `FaultPlan::slowdown_factor`; mix shifts apply in plan order. The plan
//! is consumed only when explicitly attached to a scenario, so RNG streams
//! of drift-free runs stay bit-identical.

use crate::trace::QueryMix;
use serde::{Deserialize, Serialize};
use tailguard_simcore::{SimDuration, SimRng, SimTime};

/// One drift component (see the module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DriftKind {
    /// Sinusoidal arrival-rate modulation:
    /// `rate × (1 + amplitude · sin(2πt / period))`.
    Diurnal {
        /// Cycle length of the curve.
        period: SimDuration,
        /// Peak deviation from the mean rate, in `[0, 1)` so the rate
        /// stays positive.
        amplitude: f64,
    },
    /// Arrival-rate spike: `rate × factor` inside `[start, end)`.
    FlashCrowd {
        /// Spike onset.
        start: SimTime,
        /// Spike end (exclusive).
        end: SimTime,
        /// Rate multiplier during the spike (finite, > 0).
        factor: f64,
    },
    /// The query mix interpolates from the scenario's base mix toward
    /// `to`: an arrival at progress `φ = (t − start) / (end − start)`
    /// (clamped to `[0, 1]`) samples from `to` with probability `φ`.
    MixShift {
        /// Shift onset.
        start: SimTime,
        /// Instant the shift completes; from here on every arrival
        /// samples from `to`.
        end: SimTime,
        /// The target mix.
        to: QueryMix,
    },
}

/// A set of drift components consulted by the trace generator.
///
/// # Example
///
/// ```
/// use tailguard_simcore::{SimDuration, SimTime};
/// use tailguard_workload::{DriftKind, DriftPlan};
///
/// let plan = DriftPlan::new(vec![DriftKind::FlashCrowd {
///     start: SimTime::from_millis(100),
///     end: SimTime::from_millis(200),
///     factor: 3.0,
/// }]);
/// assert_eq!(plan.rate_factor(SimTime::from_millis(50)), 1.0);
/// assert_eq!(plan.rate_factor(SimTime::from_millis(150)), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftPlan {
    components: Vec<DriftKind>,
}

impl DriftPlan {
    /// Builds a plan from components, validating each.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite flash-crowd factor, a
    /// diurnal amplitude outside `[0, 1)`, a zero diurnal period, an
    /// empty mix-shift target, or an inverted window (`end <= start`).
    pub fn new(components: Vec<DriftKind>) -> Self {
        for c in &components {
            match c {
                DriftKind::Diurnal { period, amplitude } => {
                    assert!(!period.is_zero(), "diurnal period must be non-zero");
                    assert!(
                        amplitude.is_finite() && (0.0..1.0).contains(amplitude),
                        "diurnal amplitude must lie in [0, 1), got {amplitude}"
                    );
                }
                DriftKind::FlashCrowd { start, end, factor } => {
                    assert!(end > start, "flash crowd window must not be inverted");
                    assert!(
                        factor.is_finite() && *factor > 0.0,
                        "flash crowd factor must be finite and positive, got {factor}"
                    );
                }
                DriftKind::MixShift { start, end, to } => {
                    assert!(end > start, "mix shift window must not be inverted");
                    assert!(
                        !to.classes().is_empty(),
                        "mix shift target must be non-empty"
                    );
                }
            }
        }
        DriftPlan { components }
    }

    /// The plan's components, in application order.
    pub fn components(&self) -> &[DriftKind] {
        &self.components
    }

    /// The arrival-rate multiplier at `now` — the product of every
    /// diurnal and flash-crowd component (1.0 for an empty plan).
    /// `now` is virtual time (nanosecond domain).
    pub fn rate_factor(&self, now: SimTime) -> f64 {
        self.components.iter().fold(1.0, |acc, c| match c {
            DriftKind::Diurnal { period, amplitude } => {
                let phase = now.as_nanos() as f64 / period.as_nanos() as f64;
                acc * (1.0 + amplitude * (std::f64::consts::TAU * phase).sin())
            }
            DriftKind::FlashCrowd { start, end, factor } => {
                if now >= *start && now < *end {
                    acc * factor
                } else {
                    acc
                }
            }
            DriftKind::MixShift { .. } => acc,
        })
    }

    /// Samples a `(class, fanout)` pair for an arrival at `now`: the last
    /// mix-shift component whose window has started decides between its
    /// target mix (with probability equal to its progress) and `base`;
    /// without one, this is exactly `base.sample(rng)`.
    /// `now` is virtual time (nanosecond domain).
    pub fn sample_mix(&self, base: &QueryMix, now: SimTime, rng: &mut SimRng) -> (u8, u32) {
        for c in self.components.iter().rev() {
            if let DriftKind::MixShift { start, end, to } = c {
                if now < *start {
                    continue;
                }
                let span = end.saturating_since(*start).as_nanos() as f64;
                let phase = (now.saturating_since(*start).as_nanos() as f64 / span).clamp(0.0, 1.0);
                return if rng.f64() < phase {
                    to.sample(rng)
                } else {
                    base.sample(rng)
                };
            }
        }
        base.sample(rng)
    }

    /// Whether the plan modulates the arrival rate at all (false for
    /// pure mix shifts), letting drivers skip per-arrival rate lookups.
    pub fn modulates_rate(&self) -> bool {
        self.components
            .iter()
            .any(|c| !matches!(c, DriftKind::MixShift { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fanout::FanoutDist;
    use crate::trace::ClassShare;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn single_class_mix(class: u8) -> QueryMix {
        QueryMix::new(vec![ClassShare {
            class,
            probability: 1.0,
            fanout: FanoutDist::fixed(1),
        }])
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = DriftPlan::new(Vec::new());
        assert_eq!(plan.rate_factor(ms(123)), 1.0);
        assert!(!plan.modulates_rate());
        let base = single_class_mix(0);
        let mut rng = SimRng::seed(1);
        assert_eq!(plan.sample_mix(&base, ms(5), &mut rng), (0, 1));
    }

    #[test]
    fn diurnal_peaks_and_troughs() {
        let plan = DriftPlan::new(vec![DriftKind::Diurnal {
            period: SimDuration::from_millis(1000),
            amplitude: 0.5,
        }]);
        // Quarter period = peak, three quarters = trough.
        assert!((plan.rate_factor(ms(250)) - 1.5).abs() < 1e-9);
        assert!((plan.rate_factor(ms(750)) - 0.5).abs() < 1e-9);
        assert!((plan.rate_factor(ms(0)) - 1.0).abs() < 1e-9);
        assert!(plan.modulates_rate());
    }

    #[test]
    fn flash_crowd_is_a_window() {
        let plan = DriftPlan::new(vec![DriftKind::FlashCrowd {
            start: ms(100),
            end: ms(200),
            factor: 4.0,
        }]);
        assert_eq!(plan.rate_factor(ms(99)), 1.0);
        assert_eq!(plan.rate_factor(ms(100)), 4.0);
        assert_eq!(plan.rate_factor(ms(199)), 4.0);
        assert_eq!(plan.rate_factor(ms(200)), 1.0, "end is exclusive");
    }

    #[test]
    fn overlapping_rate_components_compose_multiplicatively() {
        let plan = DriftPlan::new(vec![
            DriftKind::FlashCrowd {
                start: ms(0),
                end: ms(100),
                factor: 2.0,
            },
            DriftKind::FlashCrowd {
                start: ms(50),
                end: ms(150),
                factor: 3.0,
            },
        ]);
        assert_eq!(plan.rate_factor(ms(75)), 6.0);
    }

    #[test]
    fn mix_shift_interpolates_between_mixes() {
        let plan = DriftPlan::new(vec![DriftKind::MixShift {
            start: ms(0),
            end: ms(1000),
            to: single_class_mix(1),
        }]);
        let base = single_class_mix(0);
        let frac_target = |t: SimTime, seed: u64| {
            let mut rng = SimRng::seed(seed);
            let n = 20_000;
            let hits = (0..n)
                .filter(|_| plan.sample_mix(&base, t, &mut rng).0 == 1)
                .count();
            hits as f64 / n as f64
        };
        assert_eq!(frac_target(ms(0), 1), 0.0, "shift not begun");
        let mid = frac_target(ms(500), 2);
        assert!((mid - 0.5).abs() < 0.02, "midpoint ~50/50, got {mid}");
        assert_eq!(frac_target(ms(2000), 3), 1.0, "shift complete");
    }

    #[test]
    fn mix_shift_does_not_touch_rate() {
        let plan = DriftPlan::new(vec![DriftKind::MixShift {
            start: ms(0),
            end: ms(10),
            to: single_class_mix(1),
        }]);
        assert_eq!(plan.rate_factor(ms(5)), 1.0);
        assert!(!plan.modulates_rate());
    }

    #[test]
    fn serde_round_trip() {
        let plan = DriftPlan::new(vec![
            DriftKind::Diurnal {
                period: SimDuration::from_millis(500),
                amplitude: 0.3,
            },
            DriftKind::MixShift {
                start: ms(10),
                end: ms(20),
                to: single_class_mix(2),
            },
        ]);
        let json = serde_json::to_string(&plan).unwrap();
        let back: DriftPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn full_amplitude_panics() {
        let _ = DriftPlan::new(vec![DriftKind::Diurnal {
            period: SimDuration::from_millis(10),
            amplitude: 1.0,
        }]);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_flash_crowd_panics() {
        let _ = DriftPlan::new(vec![DriftKind::FlashCrowd {
            start: ms(10),
            end: ms(10),
            factor: 2.0,
        }]);
    }
}

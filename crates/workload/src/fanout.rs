//! Query fanout distributions.

use serde::{Deserialize, Serialize};
use tailguard_simcore::SimRng;

/// A discrete distribution over query fanouts `k_f`.
///
/// The paper's main simulation mix (§IV.B) uses fanouts {1, 10, 100} with
/// probability *inversely proportional to the fanout* — P(1)=100/111,
/// P(10)=10/111, P(100)=1/111 — so that each fanout type contributes the
/// same expected number of tasks, mirroring the Facebook observation that
/// small fanouts dominate query counts.
///
/// # Example
///
/// ```
/// use tailguard_workload::FanoutDist;
/// use tailguard_simcore::SimRng;
///
/// let d = FanoutDist::paper_mix();
/// let mut rng = SimRng::seed(1);
/// let k = d.sample(&mut rng);
/// assert!(k == 1 || k == 10 || k == 100);
/// assert!((d.mean() - 300.0 / 111.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FanoutDist {
    fanouts: Vec<u32>,
    cumulative: Vec<f64>,
    mean: f64,
}

impl FanoutDist {
    /// Builds a fanout distribution from `(fanout, weight)` pairs; weights
    /// are normalized.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is empty, any fanout is zero, any weight is
    /// negative or non-finite, or all weights are zero.
    pub fn new(entries: Vec<(u32, f64)>) -> Self {
        assert!(!entries.is_empty(), "need at least one fanout");
        assert!(
            entries.iter().all(|&(k, _)| k >= 1),
            "fanouts must be at least 1"
        );
        assert!(
            entries.iter().all(|&(_, w)| w.is_finite() && w >= 0.0),
            "weights must be non-negative"
        );
        let total: f64 = entries.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut fanouts = Vec::with_capacity(entries.len());
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        let mut mean = 0.0;
        for (k, w) in &entries {
            let p = w / total;
            acc += p;
            mean += f64::from(*k) * p;
            fanouts.push(*k);
            cumulative.push(acc);
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        FanoutDist {
            fanouts,
            cumulative,
            mean,
        }
    }

    /// The paper's §IV.B mix: fanouts {1, 10, 100} with P(k) ∝ 1/k.
    pub fn paper_mix() -> Self {
        FanoutDist::new(vec![(1, 100.0), (10, 10.0), (100, 1.0)])
    }

    /// A scaled variant of the paper mix for arbitrary cluster sizes:
    /// fanouts {1, N/10, N} with P(k) ∝ 1/k (used by the N=1000 extension
    /// experiment).
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of 10.
    pub fn paper_mix_scaled(n: u32) -> Self {
        assert!(
            n >= 10 && n.is_multiple_of(10),
            "n must be a positive multiple of 10"
        );
        FanoutDist::new(vec![(1, f64::from(n)), (n / 10, 10.0), (n, 1.0)])
    }

    /// Every query fans out to exactly `k` tasks (the OLDI case of §IV.C,
    /// where each query touches every server).
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn fixed(k: u32) -> Self {
        FanoutDist::new(vec![(k, 1.0)])
    }

    /// A Facebook-like distribution: `P(k) ∝ 1/k` over `1..=max_fanout`,
    /// yielding roughly 60–65 % of queries with fanout below 20 for
    /// `max_fanout = 300` (§II.A cites 65 % under 20).
    ///
    /// # Panics
    ///
    /// Panics when `max_fanout` is zero.
    pub fn facebook_like(max_fanout: u32) -> Self {
        assert!(max_fanout >= 1, "max_fanout must be at least 1");
        let entries = (1..=max_fanout).map(|k| (k, 1.0 / f64::from(k))).collect();
        FanoutDist::new(entries)
    }

    /// Draws a fanout.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        let u = rng.f64();
        let idx = self
            .cumulative
            .partition_point(|&c| c <= u)
            // tg-lint: allow(panic-surface) -- fanout/cumulative tables are built in lockstep by the validated constructor; indices are min-clamped to the last entry
            .min(self.fanouts.len() - 1);
        // tg-lint: allow(panic-surface) -- fanout/cumulative tables are built in lockstep by the validated constructor; indices are min-clamped to the last entry
        self.fanouts[idx]
    }

    /// Expected fanout `E[k_f]` — the factor converting query rate to task
    /// rate in the load formula `ρ = λ·E[k_f]·T_m/N`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distinct fanout values, ascending as supplied.
    pub fn support(&self) -> &[u32] {
        &self.fanouts
    }

    /// The largest possible fanout.
    pub fn max_fanout(&self) -> u32 {
        // tg-lint: allow(unwrap-in-lib) -- the constructor asserts at least one fanout entry
        *self.fanouts.iter().max().expect("non-empty")
    }

    /// The probability of drawing `k`.
    pub fn probability_of(&self, k: u32) -> f64 {
        let mut prev = 0.0;
        for (i, &f) in self.fanouts.iter().enumerate() {
            // tg-lint: allow(panic-surface) -- fanout/cumulative tables are built in lockstep by the validated constructor; indices are min-clamped to the last entry
            let p = self.cumulative[i] - prev;
            if f == k {
                return p;
            }
            // tg-lint: allow(panic-surface) -- fanout/cumulative tables are built in lockstep by the validated constructor; indices are min-clamped to the last entry
            prev = self.cumulative[i];
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_probabilities() {
        let d = FanoutDist::paper_mix();
        assert!((d.probability_of(1) - 100.0 / 111.0).abs() < 1e-12);
        assert!((d.probability_of(10) - 10.0 / 111.0).abs() < 1e-12);
        assert!((d.probability_of(100) - 1.0 / 111.0).abs() < 1e-12);
        assert_eq!(d.probability_of(7), 0.0);
        assert_eq!(d.max_fanout(), 100);
    }

    #[test]
    fn paper_mix_equalizes_task_mass() {
        // Each type contributes ~1/3 of tasks: k * P(k) equal across types.
        let d = FanoutDist::paper_mix();
        let masses: Vec<f64> = [1u32, 10, 100]
            .iter()
            .map(|&k| f64::from(k) * d.probability_of(k))
            .collect();
        assert!((masses[0] - masses[1]).abs() < 1e-12);
        assert!((masses[1] - masses[2]).abs() < 1e-12);
    }

    #[test]
    fn sampling_frequencies_match() {
        let d = FanoutDist::paper_mix();
        let mut rng = SimRng::seed(1);
        let n = 500_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(d.sample(&mut rng)).or_insert(0u64) += 1;
        }
        for &k in &[1u32, 10, 100] {
            let freq = counts[&k] as f64 / n as f64;
            let expect = d.probability_of(k);
            assert!((freq - expect).abs() < 0.005, "k={k} freq={freq}");
        }
    }

    #[test]
    fn fixed_always_returns_k() {
        let d = FanoutDist::fixed(32);
        let mut rng = SimRng::seed(2);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 32);
        }
        assert_eq!(d.mean(), 32.0);
    }

    #[test]
    fn facebook_like_mostly_small() {
        let d = FanoutDist::facebook_like(300);
        let under20: f64 = (1..20).map(|k| d.probability_of(k)).sum();
        assert!(under20 > 0.5, "under20 = {under20}");
        assert_eq!(d.support().len(), 300);
    }

    #[test]
    fn scaled_mix_shape() {
        let d = FanoutDist::paper_mix_scaled(1000);
        assert_eq!(d.support(), &[1, 100, 1000]);
        // P(k) ∝ 1/k relationship preserved.
        let p1 = d.probability_of(1);
        let p1000 = d.probability_of(1000);
        assert!((p1 / p1000 - 1000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "fanouts must be at least 1")]
    fn zero_fanout_rejected() {
        let _ = FanoutDist::new(vec![(0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn zero_weights_rejected() {
        let _ = FanoutDist::new(vec![(1, 0.0)]);
    }

    #[test]
    fn mean_formula() {
        let d = FanoutDist::new(vec![(2, 1.0), (4, 1.0)]);
        assert_eq!(d.mean(), 3.0);
    }
}

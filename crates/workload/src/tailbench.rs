//! Tailbench-calibrated task service-time models.
//!
//! The paper selects one workload from each of the three Tailbench groups
//! (§IV.A): **Masstree** (in-memory key-value store), **Shore** (SSD-backed
//! transactional database) and **Xapian** (web search). We do not ship the
//! Tailbench binaries; instead each workload is a [`PiecewiseQuantile`]
//! distribution whose tail control points are taken *directly from the
//! paper's Table II* (mean task service time `T_m` and the unloaded 99th
//! percentile query tail latency at fanouts 1/10/100) and whose body points
//! follow the CDF shapes of Fig. 3. The mean is matched exactly by solving
//! the piecewise-linear mean equation for the median control point.
//!
//! Because `x_99^u(k) = F^{-1}(0.99^{1/k})` (Eqs. 1–2), pinning the
//! quantile function at `p = 0.99, 0.999, 0.9999` reproduces the paper's
//! `x_99^u(1), x_99^u(10), x_99^u(100)` to within interpolation error
//! (< 0.5 %), which the unit tests assert.

use serde::{Deserialize, Serialize};
use tailguard_dist::{order_stats, Cdf, Distribution, PiecewiseQuantile};

/// The three Tailbench workloads evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TailbenchWorkload {
    /// In-memory key-value store: very fast, short-tailed (T_m = 0.176 ms).
    Masstree,
    /// SSD-based transactional database: fast body, heavy tail
    /// (T_m = 0.341 ms, x99 ≈ 6 × mean).
    Shore,
    /// Web search: slower, broad distribution (T_m = 0.925 ms).
    Xapian,
}

/// The paper's Table II row for one workload (all values in ms).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnloadedStats {
    /// Mean task service time `T_m`.
    pub mean: f64,
    /// Unloaded 99th percentile query tail latency at fanout 1.
    pub x99_k1: f64,
    /// Unloaded 99th percentile query tail latency at fanout 10.
    pub x99_k10: f64,
    /// Unloaded 99th percentile query tail latency at fanout 100.
    pub x99_k100: f64,
}

impl TailbenchWorkload {
    /// All three workloads in the paper's order.
    pub const ALL: [TailbenchWorkload; 3] = [
        TailbenchWorkload::Masstree,
        TailbenchWorkload::Shore,
        TailbenchWorkload::Xapian,
    ];

    /// The workload's display name.
    pub fn name(&self) -> &'static str {
        match self {
            TailbenchWorkload::Masstree => "Masstree",
            TailbenchWorkload::Shore => "Shore",
            TailbenchWorkload::Xapian => "Xapian",
        }
    }

    /// The paper's Table II statistics for this workload.
    pub fn paper_stats(&self) -> UnloadedStats {
        match self {
            TailbenchWorkload::Masstree => UnloadedStats {
                mean: 0.176,
                x99_k1: 0.219,
                x99_k10: 0.247,
                x99_k100: 0.473,
            },
            TailbenchWorkload::Shore => UnloadedStats {
                mean: 0.341,
                x99_k1: 2.095,
                x99_k10: 2.721,
                x99_k100: 2.829,
            },
            TailbenchWorkload::Xapian => UnloadedStats {
                mean: 0.925,
                x99_k1: 2.590,
                x99_k10: 2.998,
                x99_k100: 3.308,
            },
        }
    }

    /// The calibrated task service-time distribution (ms).
    ///
    /// Tail control points sit at `p = 0.99, 0.999, 0.9999` with the
    /// Table II values; body points follow Fig. 3; the p50 point is solved
    /// so the mean equals `T_m` exactly.
    ///
    /// # Panics
    ///
    /// Panics if the built-in control points ever become infeasible — a
    /// programming error caught by tests, not a runtime condition.
    pub fn service_dist(&self) -> PiecewiseQuantile {
        let s = self.paper_stats();
        let (points, adjust_idx) = match self {
            TailbenchWorkload::Masstree => (
                vec![
                    (0.0, 0.10),
                    (0.5, 0.17), // placeholder, calibrated below
                    (0.9, 0.205),
                    (0.99, s.x99_k1),
                    (0.999, s.x99_k10),
                    (0.9999, s.x99_k100),
                    (1.0, 0.70),
                ],
                1,
            ),
            TailbenchWorkload::Shore => (
                vec![
                    (0.0, 0.10),
                    (0.5, 0.25), // placeholder, calibrated below
                    (0.9, 0.55),
                    (0.95, 0.90),
                    (0.99, s.x99_k1),
                    (0.999, s.x99_k10),
                    (0.9999, s.x99_k100),
                    (1.0, 3.0),
                ],
                1,
            ),
            TailbenchWorkload::Xapian => (
                vec![
                    (0.0, 0.40),
                    (0.5, 0.80), // placeholder, calibrated below
                    (0.9, 1.60),
                    (0.95, 1.90),
                    (0.99, s.x99_k1),
                    (0.999, s.x99_k10),
                    (0.9999, s.x99_k100),
                    (1.0, 3.60),
                ],
                1,
            ),
        };
        PiecewiseQuantile::new(points)
            // tg-lint: allow(unwrap-in-lib) -- Table II control points are compile-time constants validated by tests
            .expect("built-in control points are valid")
            .calibrate_mean(adjust_idx, s.mean)
            // tg-lint: allow(unwrap-in-lib) -- the fixed control points admit the published mean by construction
            .expect("built-in control points admit the Table II mean")
    }

    /// The unloaded `p`-th percentile query tail latency at fanout `k`
    /// (Eqs. 1–2 applied to the calibrated distribution), in ms.
    ///
    /// # Example
    ///
    /// ```
    /// use tailguard_workload::TailbenchWorkload;
    ///
    /// let x = TailbenchWorkload::Masstree.unloaded_query_tail(0.99, 100);
    /// assert!((x - 0.473).abs() < 0.01); // Table II
    /// ```
    pub fn unloaded_query_tail(&self, p: f64, fanout: u32) -> f64 {
        order_stats::homogeneous_quantile(&self.service_dist(), p, fanout)
    }

    /// Mean task service time `T_m` in ms (exact, by calibration).
    pub fn mean_service_ms(&self) -> f64 {
        self.service_dist().mean()
    }
}

impl std::fmt::Display for TailbenchWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reproduces Fig. 3's summary markers: the unloaded 95th and 99th
/// percentile single-task tail latencies, in ms.
pub fn fig3_markers(w: TailbenchWorkload) -> (f64, f64) {
    let d = w.service_dist();
    (d.quantile(0.95), d.quantile(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_dist::Ecdf;
    use tailguard_simcore::SimRng;

    #[test]
    fn table2_means_exact() {
        for w in TailbenchWorkload::ALL {
            let s = w.paper_stats();
            assert!(
                (w.mean_service_ms() - s.mean).abs() < 1e-9,
                "{w}: mean {} != {}",
                w.mean_service_ms(),
                s.mean
            );
        }
    }

    #[test]
    fn table2_fanout_tails_within_half_percent() {
        for w in TailbenchWorkload::ALL {
            let s = w.paper_stats();
            for (k, target) in [(1u32, s.x99_k1), (10, s.x99_k10), (100, s.x99_k100)] {
                let got = w.unloaded_query_tail(0.99, k);
                let rel = (got - target).abs() / target;
                assert!(rel < 0.005, "{w} k={k}: got {got}, want {target}");
            }
        }
    }

    #[test]
    fn tails_monotone_in_fanout() {
        for w in TailbenchWorkload::ALL {
            let x1 = w.unloaded_query_tail(0.99, 1);
            let x10 = w.unloaded_query_tail(0.99, 10);
            let x100 = w.unloaded_query_tail(0.99, 100);
            assert!(x1 < x10 && x10 < x100, "{w}");
        }
    }

    #[test]
    fn sampled_ecdf_reproduces_table2() {
        // End-to-end: sample 500k service times, rebuild the ECDF (the
        // paper's offline estimation process) and check Table II again.
        let w = TailbenchWorkload::Masstree;
        let d = w.service_dist();
        let mut rng = SimRng::seed(99);
        let e: Ecdf = (0..500_000).map(|_| d.sample(&mut rng)).collect();
        let s = w.paper_stats();
        assert!((e.mean() - s.mean).abs() / s.mean < 0.01);
        let x99_1 = tailguard_dist::order_stats::homogeneous_quantile(&e, 0.99, 1);
        assert!((x99_1 - s.x99_k1).abs() / s.x99_k1 < 0.02);
        let x99_10 = tailguard_dist::order_stats::homogeneous_quantile(&e, 0.99, 10);
        assert!((x99_10 - s.x99_k10).abs() / s.x99_k10 < 0.05);
    }

    #[test]
    fn shore_is_heavy_tailed_masstree_is_not() {
        // Fig. 3's qualitative contrast: Shore's p99/mean ratio dwarfs
        // Masstree's.
        let shore = TailbenchWorkload::Shore;
        let masstree = TailbenchWorkload::Masstree;
        let shore_ratio = shore.paper_stats().x99_k1 / shore.mean_service_ms();
        let masstree_ratio = masstree.paper_stats().x99_k1 / masstree.mean_service_ms();
        assert!(shore_ratio > 4.0, "shore ratio {shore_ratio}");
        assert!(masstree_ratio < 1.5, "masstree ratio {masstree_ratio}");
    }

    #[test]
    fn fig3_markers_ordered() {
        for w in TailbenchWorkload::ALL {
            let (p95, p99) = fig3_markers(w);
            assert!(p95 < p99, "{w}");
            assert!(p95 > w.mean_service_ms() * 0.5, "{w}");
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(TailbenchWorkload::Masstree.to_string(), "Masstree");
        assert_eq!(TailbenchWorkload::Shore.name(), "Shore");
        assert_eq!(TailbenchWorkload::ALL.len(), 3);
    }

    #[test]
    fn samples_within_support() {
        for w in TailbenchWorkload::ALL {
            let d = w.service_dist();
            let lo = d.quantile(0.0);
            let hi = d.quantile(1.0);
            let mut rng = SimRng::seed(7);
            for _ in 0..10_000 {
                let x = d.sample(&mut rng);
                assert!(x >= lo && x <= hi, "{w}: {x} outside [{lo},{hi}]");
            }
        }
    }
}

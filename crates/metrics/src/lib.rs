//! Measurement toolkit for the TailGuard reproduction.
//!
//! Everything the evaluation (paper §IV) measures flows through this crate:
//!
//! * [`LatencyReservoir`] — stores raw latency samples and answers exact
//!   percentile queries (the paper reports 95th/99th percentile tails),
//! * [`TimedRatio`] / [`MovingRatio`] — moving-window task-deadline-
//!   violation ratios (time-based and count-based) that drive query
//!   admission control (§III.C),
//! * [`LoadStats`] — offered / accepted / rejected load accounting and
//!   per-server busy-time utilization,
//! * [`LatencySummary`] — a compact row (count, mean, p50/p95/p99/max) for
//!   printing experiment tables.

mod load;
mod reservoir;
mod timed_window;
mod window;

pub use load::LoadStats;
pub use reservoir::{LatencyReservoir, LatencySummary};
pub use timed_window::TimedRatio;
pub use window::MovingRatio;

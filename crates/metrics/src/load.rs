//! Offered / accepted / rejected load accounting.

use serde::{Deserialize, Serialize};
use tailguard_simcore::{SimDuration, SimTime};

/// Load and utilization accounting for a simulated cluster run.
///
/// The paper defines load as the fraction of aggregate server capacity
/// consumed: `ρ = λ · E[k_f] · T_m / N`. During a run we measure it directly
/// as total busy time across servers divided by `N · elapsed`. Admission
/// control (Fig. 7) additionally splits offered work into accepted and
/// rejected parts, each reported in the same load units.
///
/// # Example
///
/// ```
/// use tailguard_metrics::LoadStats;
/// use tailguard_simcore::{SimDuration, SimTime};
///
/// let mut ls = LoadStats::new(2);
/// ls.query_offered();
/// ls.query_accepted();
/// ls.record_busy(SimDuration::from_millis(30));        // accepted work
/// ls.record_rejected_work(SimDuration::from_millis(10));
/// let elapsed = SimTime::from_millis(100);
/// assert!((ls.accepted_load(elapsed) - 0.15).abs() < 1e-12);
/// assert!((ls.rejected_load(elapsed) - 0.05).abs() < 1e-12);
/// assert!((ls.offered_load(elapsed) - 0.20).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadStats {
    servers: usize,
    busy: SimDuration,
    rejected_work: SimDuration,
    queries_offered: u64,
    queries_accepted: u64,
    tasks_dispatched: u64,
    tasks_completed: u64,
    deadline_misses: u64,
}

impl LoadStats {
    /// Creates accounting for a cluster of `servers` task servers.
    ///
    /// # Panics
    ///
    /// Panics when `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        LoadStats {
            servers,
            busy: SimDuration::ZERO,
            rejected_work: SimDuration::ZERO,
            queries_offered: 0,
            queries_accepted: 0,
            tasks_dispatched: 0,
            tasks_completed: 0,
            deadline_misses: 0,
        }
    }

    /// Counts one offered query.
    pub fn query_offered(&mut self) {
        self.queries_offered += 1;
    }

    /// Counts one admitted query.
    pub fn query_accepted(&mut self) {
        self.queries_accepted += 1;
    }

    /// Counts one dispatched task.
    pub fn task_dispatched(&mut self) {
        self.tasks_dispatched += 1;
    }

    /// Counts one completed task, noting whether it missed its queuing
    /// deadline.
    pub fn task_completed(&mut self, missed_deadline: bool) {
        self.tasks_completed += 1;
        if missed_deadline {
            self.deadline_misses += 1;
        }
    }

    /// Adds service time actually executed on some server.
    /// `service` is a virtual-time duration (nanosecond domain).
    pub fn record_busy(&mut self, service: SimDuration) {
        self.busy += service;
    }

    /// Adds service time that *would have been* executed had the query not
    /// been rejected (used to report the rejected load in Fig. 7).
    /// `service` is a virtual-time duration (nanosecond domain).
    pub fn record_rejected_work(&mut self, service: SimDuration) {
        self.rejected_work += service;
    }

    /// Accepted (executed) load over `elapsed`: busy time / (N · elapsed).
    /// `elapsed` is virtual time (nanosecond domain).
    pub fn accepted_load(&self, elapsed: SimTime) -> f64 {
        self.load_of(self.busy, elapsed)
    }

    /// Load equivalent of the rejected work over `elapsed`.
    /// `elapsed` is virtual time (nanosecond domain).
    pub fn rejected_load(&self, elapsed: SimTime) -> f64 {
        self.load_of(self.rejected_work, elapsed)
    }

    /// Offered load = accepted + rejected.
    /// `elapsed` is virtual time (nanosecond domain).
    pub fn offered_load(&self, elapsed: SimTime) -> f64 {
        self.accepted_load(elapsed) + self.rejected_load(elapsed)
    }

    fn load_of(&self, work: SimDuration, elapsed: SimTime) -> f64 {
        let denom = elapsed.as_nanos() as f64 * self.servers as f64;
        if denom <= 0.0 {
            0.0
        } else {
            work.as_nanos() as f64 / denom
        }
    }

    /// Offered queries.
    pub fn queries_offered_count(&self) -> u64 {
        self.queries_offered
    }

    /// Accepted queries.
    pub fn queries_accepted_count(&self) -> u64 {
        self.queries_accepted
    }

    /// Rejected queries.
    pub fn queries_rejected_count(&self) -> u64 {
        self.queries_offered.saturating_sub(self.queries_accepted)
    }

    /// Fraction of offered queries accepted (1.0 when none offered).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.queries_offered == 0 {
            1.0
        } else {
            self.queries_accepted as f64 / self.queries_offered as f64
        }
    }

    /// Dispatched tasks.
    pub fn tasks_dispatched_count(&self) -> u64 {
        self.tasks_dispatched
    }

    /// Completed tasks.
    pub fn tasks_completed_count(&self) -> u64 {
        self.tasks_completed
    }

    /// Completed tasks that missed their queuing deadline.
    pub fn deadline_miss_count(&self) -> u64 {
        self.deadline_misses
    }

    /// Fraction of completed tasks that missed their queuing deadline.
    pub fn deadline_miss_ratio(&self) -> f64 {
        if self.tasks_completed == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.tasks_completed as f64
        }
    }

    /// Cluster size.
    pub fn servers(&self) -> usize {
        self.servers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_busy_over_capacity() {
        let mut ls = LoadStats::new(4);
        ls.record_busy(SimDuration::from_millis(200));
        let load = ls.accepted_load(SimTime::from_millis(100));
        assert!((load - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_gives_zero_load() {
        let mut ls = LoadStats::new(1);
        ls.record_busy(SimDuration::from_millis(5));
        assert_eq!(ls.accepted_load(SimTime::ZERO), 0.0);
    }

    #[test]
    fn offered_is_accepted_plus_rejected() {
        let mut ls = LoadStats::new(10);
        ls.record_busy(SimDuration::from_millis(300));
        ls.record_rejected_work(SimDuration::from_millis(100));
        let t = SimTime::from_millis(1000);
        assert!((ls.offered_load(t) - (ls.accepted_load(t) + ls.rejected_load(t))).abs() < 1e-15);
    }

    #[test]
    fn query_counters() {
        let mut ls = LoadStats::new(1);
        for _ in 0..10 {
            ls.query_offered();
        }
        for _ in 0..7 {
            ls.query_accepted();
        }
        assert_eq!(ls.queries_rejected_count(), 3);
        assert!((ls.acceptance_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn acceptance_ratio_empty_is_one() {
        let ls = LoadStats::new(1);
        assert_eq!(ls.acceptance_ratio(), 1.0);
    }

    #[test]
    fn deadline_miss_ratio() {
        let mut ls = LoadStats::new(1);
        ls.task_completed(false);
        ls.task_completed(true);
        ls.task_completed(false);
        ls.task_completed(false);
        assert_eq!(ls.deadline_miss_ratio(), 0.25);
        assert_eq!(ls.deadline_miss_count(), 1);
        assert_eq!(ls.tasks_completed_count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = LoadStats::new(0);
    }
}

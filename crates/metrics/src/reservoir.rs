//! Exact-percentile latency reservoirs.

use serde::{Deserialize, Serialize};
use std::fmt;
use tailguard_simcore::SimDuration;

/// A reservoir of latency samples with exact percentile queries.
///
/// The paper's conclusions hinge on 99th-percentile comparisons between
/// queuing policies, sometimes for query types that make up < 1 % of
/// traffic; approximate sketches would blur exactly the signal under study,
/// so the reservoir keeps every sample (8 bytes each) and sorts lazily on
/// the first percentile query after an insert.
///
/// # Example
///
/// ```
/// use tailguard_metrics::LatencyReservoir;
/// use tailguard_simcore::SimDuration;
///
/// let mut r = LatencyReservoir::new();
/// for ms in 1..=100 {
///     r.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(r.percentile(0.99), SimDuration::from_millis(99));
/// assert_eq!(r.len(), 100);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyReservoir {
    samples: Vec<u64>, // nanoseconds
    sorted: bool,
    sum: u128,
}

impl LatencyReservoir {
    /// Creates an empty reservoir.
    pub fn new() -> Self {
        LatencyReservoir {
            samples: Vec::new(),
            sorted: true,
            sum: 0,
        }
    }

    /// Creates an empty reservoir with capacity pre-allocated for `cap`
    /// samples.
    pub fn with_capacity(cap: usize) -> Self {
        LatencyReservoir {
            samples: Vec::with_capacity(cap),
            sorted: true,
            sum: 0,
        }
    }

    /// Records one latency sample.
    /// `d` is a virtual-time duration (nanosecond domain).
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sorted = false;
        self.sum += u128::from(d.as_nanos());
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The exact `p`-quantile (`p ∈ [0, 1]`) using the nearest-rank method
    /// (rank `⌈p·n⌉`) — the same convention as `tailguard_dist::Ecdf`.
    ///
    /// Returns [`SimDuration::ZERO`] on an empty reservoir.
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 1.0);
        let n = self.samples.len();
        // tg-lint: allow(lossy-cast) -- rank/bound arithmetic is clamped to 1.0..=n before truncation; the u128 ns sum divided by the count fits back in u64
        let rank = (p * n as f64).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        // tg-lint: allow(panic-surface) -- guarded: ranks are clamped to 1..=n and the empty case returns early above
        SimDuration::from_nanos(self.samples[idx])
    }

    /// Arithmetic mean of the samples ([`SimDuration::ZERO`] when empty).
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        // tg-lint: allow(lossy-cast, panic-surface) -- guarded by the is_empty() early return above; a mean of u64 ns samples fits u64
        SimDuration::from_nanos((self.sum / self.samples.len() as u128) as u64)
    }

    /// Largest sample ([`SimDuration::ZERO`] when empty).
    pub fn max(&mut self) -> SimDuration {
        self.ensure_sorted();
        match self.samples.last() {
            Some(&v) => SimDuration::from_nanos(v),
            None => SimDuration::ZERO,
        }
    }

    /// Smallest sample ([`SimDuration::ZERO`] when empty).
    pub fn min(&mut self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        SimDuration::from_nanos(self.samples[0])
    }

    /// Fraction of samples strictly greater than `threshold` — the measured
    /// SLO violation rate.
    pub fn exceed_ratio(&self, threshold: SimDuration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let t = threshold.as_nanos();
        let over = self.samples.iter().filter(|&&s| s > t).count();
        over as f64 / self.samples.len() as f64
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
        self.sum = 0;
    }

    /// Absorbs all samples of `other`.
    pub fn merge(&mut self, other: &LatencyReservoir) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
        self.sum += other.sum;
    }

    /// Produces a compact summary row of the current contents.
    pub fn summary(&mut self) -> LatencySummary {
        LatencySummary {
            count: self.len() as u64,
            mean: self.mean(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            max: self.max(),
        }
    }

    /// The raw samples in ascending order.
    pub fn sorted_samples(&mut self) -> &[u64] {
        self.ensure_sorted();
        &self.samples
    }

    /// A distribution-free confidence interval for the `p`-quantile at
    /// (two-sided) confidence `conf`, via the binomial order-statistic
    /// bound: the number of samples `≤ Q_p` is Binomial(n, p), so the
    /// interval is `[x_(lo), x_(hi)]` with ranks at the normal-approximated
    /// binomial quantiles.
    ///
    /// Used to justify tolerances when comparing p99s between policies:
    /// if the intervals do not overlap, the difference is real.
    ///
    /// Returns `None` when fewer than 20 samples are available (the normal
    /// approximation would mislead).
    pub fn percentile_ci(&mut self, p: f64, conf: f64) -> Option<(SimDuration, SimDuration)> {
        let n = self.samples.len();
        if n < 20 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let conf = conf.clamp(0.5, 0.9999);
        // z for two-sided confidence.
        let z = normal_quantile(0.5 + conf / 2.0);
        let mean = p * n as f64;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // tg-lint: allow(lossy-cast) -- rank/bound arithmetic is clamped to 1.0..=n before truncation; the u128 ns sum divided by the count fits back in u64
        let lo_rank = (mean - z * sd).floor().clamp(1.0, n as f64) as usize;
        // tg-lint: allow(lossy-cast) -- rank/bound arithmetic is clamped to 1.0..=n before truncation; the u128 ns sum divided by the count fits back in u64
        let hi_rank = (mean + z * sd).ceil().clamp(1.0, n as f64) as usize;
        self.ensure_sorted();
        Some((
            // tg-lint: allow(panic-surface) -- guarded: ranks are clamped to 1..=n and the empty case returns early above
            SimDuration::from_nanos(self.samples[lo_rank - 1]),
            // tg-lint: allow(panic-surface) -- guarded: ranks are clamped to 1..=n and the empty case returns early above
            SimDuration::from_nanos(self.samples[hi_rank - 1]),
        ))
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }
}

/// Inverse standard-normal CDF via the Beasley-Springer-Moro style rational
/// fit used for CI ranks (1e-4 accuracy suffices for rank selection).
fn normal_quantile(p: f64) -> f64 {
    // Shifted logistic-style approximation good to ~1e-3 over (0.5, 0.9999):
    // use the symmetry and the classical Hastings fit.
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    let (sign, pp) = if p < 0.5 { (-1.0, p) } else { (1.0, 1.0 - p) };
    let t = (-2.0 * pp.ln()).sqrt();
    let num = 2.30753 + 0.27061 * t;
    let den = 1.0 + 0.99229 * t + 0.04481 * t * t;
    sign * (t - num / den)
}

impl Extend<SimDuration> for LatencyReservoir {
    fn extend<I: IntoIterator<Item = SimDuration>>(&mut self, iter: I) {
        for d in iter {
            self.record(d);
        }
    }
}

impl FromIterator<SimDuration> for LatencyReservoir {
    fn from_iter<I: IntoIterator<Item = SimDuration>>(iter: I) -> Self {
        let mut r = LatencyReservoir::new();
        r.extend(iter);
        r
    }
}

/// A compact one-line latency summary (count, mean, p50/p95/p99, max).
///
/// `Display` renders the durations in milliseconds, ready for the experiment
/// tables printed by the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: u64,
    /// Mean latency.
    pub mean: SimDuration,
    /// Median latency.
    pub p50: SimDuration,
    /// 95th percentile latency.
    pub p95: SimDuration,
    /// 99th percentile latency.
    pub p99: SimDuration,
    /// Maximum latency.
    pub max: SimDuration,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={:<9} mean={:>9.3}ms p50={:>9.3}ms p95={:>9.3}ms p99={:>9.3}ms max={:>9.3}ms",
            self.count,
            self.mean.as_millis_f64(),
            self.p50.as_millis_f64(),
            self.p95.as_millis_f64(),
            self.p99.as_millis_f64(),
            self.max.as_millis_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut r: LatencyReservoir = (1..=10).map(ms).collect();
        assert_eq!(r.percentile(0.0), ms(1));
        assert_eq!(r.percentile(0.1), ms(1));
        assert_eq!(r.percentile(0.11), ms(2));
        assert_eq!(r.percentile(0.5), ms(5));
        assert_eq!(r.percentile(0.99), ms(10));
        assert_eq!(r.percentile(1.0), ms(10));
    }

    #[test]
    fn empty_reservoir_is_benign() {
        let mut r = LatencyReservoir::new();
        assert!(r.is_empty());
        assert_eq!(r.percentile(0.99), SimDuration::ZERO);
        assert_eq!(r.mean(), SimDuration::ZERO);
        assert_eq!(r.max(), SimDuration::ZERO);
        assert_eq!(r.min(), SimDuration::ZERO);
        assert_eq!(r.exceed_ratio(ms(1)), 0.0);
    }

    #[test]
    fn mean_is_exact() {
        let r: LatencyReservoir = [2, 4, 6, 8].into_iter().map(ms).collect();
        assert_eq!(r.mean(), ms(5));
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut r = LatencyReservoir::new();
        r.record(ms(5));
        assert_eq!(r.percentile(0.5), ms(5));
        r.record(ms(1));
        assert_eq!(r.percentile(0.5), ms(1));
        r.record(ms(9));
        assert_eq!(r.percentile(0.5), ms(5));
        assert_eq!(r.min(), ms(1));
        assert_eq!(r.max(), ms(9));
    }

    #[test]
    fn exceed_ratio_counts_strictly_greater() {
        let r: LatencyReservoir = (1..=100).map(ms).collect();
        assert_eq!(r.exceed_ratio(ms(99)), 0.01);
        assert_eq!(r.exceed_ratio(ms(100)), 0.0);
        assert_eq!(r.exceed_ratio(ms(0)), 1.0);
    }

    #[test]
    fn merge_combines() {
        let mut a: LatencyReservoir = (1..=50).map(ms).collect();
        let b: LatencyReservoir = (51..=100).map(ms).collect();
        a.merge(&b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.percentile(0.99), ms(99));
        assert_eq!(a.mean(), SimDuration::from_micros(50_500));
    }

    #[test]
    fn clear_resets() {
        let mut r: LatencyReservoir = (1..=3).map(ms).collect();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.mean(), SimDuration::ZERO);
    }

    #[test]
    fn summary_fields_consistent() {
        let mut r: LatencyReservoir = (1..=100).map(ms).collect();
        let s = r.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, ms(50));
        assert_eq!(s.p95, ms(95));
        assert_eq!(s.p99, ms(99));
        assert_eq!(s.max, ms(100));
        let line = s.to_string();
        assert!(line.contains("n=100"));
        assert!(line.contains("p99="));
    }

    #[test]
    fn percentile_ci_brackets_the_point_estimate() {
        let mut r: LatencyReservoir = (1..=10_000).map(ms).collect();
        let p99 = r.percentile(0.99);
        let (lo, hi) = r.percentile_ci(0.99, 0.95).expect("enough samples");
        assert!(lo <= p99 && p99 <= hi, "[{lo}, {hi}] vs {p99}");
        // Interval should be tight for 10k uniform samples (~±0.2%).
        let width = hi.as_millis_f64() - lo.as_millis_f64();
        assert!(width < 100.0, "width {width}");
    }

    #[test]
    fn percentile_ci_requires_samples() {
        let mut r: LatencyReservoir = (1..=10).map(ms).collect();
        assert!(r.percentile_ci(0.99, 0.95).is_none());
    }

    #[test]
    fn percentile_ci_coverage_monte_carlo() {
        // The 95% CI for p90 should contain the true quantile in roughly
        // 95% of repeated experiments.
        use tailguard_simcore::SimRng;
        let mut rng = SimRng::seed(31);
        let true_p90 = 0.9_f64; // Uniform(0,1): Q(0.9) = 0.9
        let mut covered = 0;
        let trials = 400;
        for _ in 0..trials {
            let mut r = LatencyReservoir::new();
            for _ in 0..500 {
                r.record(SimDuration::from_nanos((rng.f64() * 1e9) as u64));
            }
            let (lo, hi) = r.percentile_ci(0.9, 0.95).expect("enough");
            let t = (true_p90 * 1e9) as u64;
            if lo.as_nanos() <= t && t <= hi.as_nanos() {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!((0.90..=0.99).contains(&rate), "coverage {rate}");
    }

    #[test]
    fn sorted_samples_ascending() {
        let mut r: LatencyReservoir = [5, 1, 4, 2, 3].into_iter().map(ms).collect();
        let s = r.sorted_samples();
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }
}

//! Moving-window ratio tracking for admission control.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A boolean moving window reporting the fraction of `true` outcomes.
///
/// This implements the measurement side of the paper's query admission
/// control (§III.C): the query handler records, for each task result, whether
/// the task missed its queuing deadline, over a window sized like the SLO
/// accounting window (the paper uses 1 000 queries ≈ 100 000 tasks for the
/// Masstree OLDI case). When [`MovingRatio::ratio`] exceeds the threshold
/// `R_th`, new queries are rejected until it falls back below.
///
/// The scheduling core (`tailguard-sched`) uses this count-window form as
/// the opt-in admission variant (`AdmissionConfig::with_count_window`);
/// its default is the time-based `TimedRatio`. The count form cannot age
/// events out by itself: under *total* rejection no new tasks are dequeued
/// and the window freezes at its last ratio. The admission controller
/// therefore bounds the freeze — after a full admission-window duration
/// with no dequeue event it calls [`MovingRatio::clear`] and resumes
/// admitting, so rejection can never persist on stale data alone (the time
/// window instead ages events out on its own).
///
/// # Example
///
/// ```
/// use tailguard_metrics::MovingRatio;
///
/// let mut w = MovingRatio::new(4);
/// w.record(true);
/// w.record(false);
/// w.record(false);
/// w.record(false);
/// assert_eq!(w.ratio(), 0.25);
/// w.record(false); // evicts the initial `true`
/// assert_eq!(w.ratio(), 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MovingRatio {
    window: VecDeque<bool>,
    capacity: usize,
    hits: usize,
}

impl MovingRatio {
    /// Creates a window holding the most recent `capacity` outcomes.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        MovingRatio {
            window: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
        }
    }

    /// Records one outcome (`true` = event of interest, e.g. deadline miss).
    pub fn record(&mut self, hit: bool) {
        if self.window.len() == self.capacity && self.window.pop_front() == Some(true) {
            self.hits = self.hits.saturating_sub(1);
        }
        self.window.push_back(hit);
        if hit {
            self.hits += 1;
        }
    }

    /// The fraction of `true` outcomes in the current window (0 when empty).
    pub fn ratio(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.hits as f64 / self.window.len() as f64
        }
    }

    /// Number of outcomes currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// True once the window has filled to capacity.
    pub fn is_full(&self) -> bool {
        self.window.len() == self.capacity
    }

    /// The configured window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Empties the window.
    pub fn clear(&mut self) {
        self.window.clear();
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_over_partial_window() {
        let mut w = MovingRatio::new(10);
        w.record(true);
        w.record(false);
        assert_eq!(w.ratio(), 0.5);
        assert_eq!(w.len(), 2);
        assert!(!w.is_full());
    }

    #[test]
    fn eviction_updates_ratio() {
        let mut w = MovingRatio::new(3);
        w.record(true);
        w.record(true);
        w.record(false);
        assert!((w.ratio() - 2.0 / 3.0).abs() < 1e-12);
        w.record(false); // evicts first true
        assert!((w.ratio() - 1.0 / 3.0).abs() < 1e-12);
        w.record(false); // evicts second true
        assert_eq!(w.ratio(), 0.0);
    }

    #[test]
    fn empty_ratio_is_zero() {
        let w = MovingRatio::new(5);
        assert_eq!(w.ratio(), 0.0);
        assert!(w.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut w = MovingRatio::new(2);
        w.record(true);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = MovingRatio::new(0);
    }

    #[test]
    fn long_stream_ratio_tracks_recent_rate() {
        let mut w = MovingRatio::new(1000);
        // 10% miss rate for 5000 records...
        for i in 0..5000 {
            w.record(i % 10 == 0);
        }
        assert!((w.ratio() - 0.1).abs() < 0.01);
        // ...then 2% for another 1000: the window should forget the past.
        for i in 0..1000 {
            w.record(i % 50 == 0);
        }
        assert!((w.ratio() - 0.02).abs() < 0.005, "ratio {}", w.ratio());
    }

    #[test]
    fn hits_never_desync() {
        // Adversarial interleaving; internal hit counter must match window.
        let mut w = MovingRatio::new(7);
        for i in 0..10_000u32 {
            w.record(i.wrapping_mul(2654435761) % 3 == 0);
            let actual = w.window.iter().filter(|&&b| b).count();
            assert_eq!(actual, w.hits);
        }
    }
}

//! Time-based moving-window ratio tracking.

use std::collections::VecDeque;
use tailguard_simcore::{SimDuration, SimTime};

/// A moving *time* window over boolean outcomes, reporting the fraction of
/// `true` outcomes among events younger than the window length.
///
/// This is the admission controller's measurement device as the paper
/// actually specifies it (§III.C): "The moving time window can be set to be
/// the same as the time window in which the tail latency SLOs should be
/// guaranteed." A time window is essential: under full rejection no new
/// tasks are dequeued, and a count-based window would freeze above the
/// threshold and reject forever, whereas old misses here *age out* and the
/// controller re-admits.
///
/// # Example
///
/// ```
/// use tailguard_metrics::TimedRatio;
/// use tailguard_simcore::{SimDuration, SimTime};
///
/// let mut w = TimedRatio::new(SimDuration::from_millis(10));
/// w.record(SimTime::from_millis(0), true);
/// w.record(SimTime::from_millis(5), false);
/// assert_eq!(w.ratio(SimTime::from_millis(5)), 0.5);
/// // At t=12ms the miss at t=0 has aged out.
/// assert_eq!(w.ratio(SimTime::from_millis(12)), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TimedRatio {
    window: SimDuration,
    events: VecDeque<(SimTime, bool)>,
    hits: usize,
}

impl TimedRatio {
    /// Creates a window of the given length.
    ///
    /// # Panics
    ///
    /// Panics when the window length is zero.
    /// `window` is a virtual-time duration (nanosecond domain).
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window length must be positive");
        TimedRatio {
            window,
            events: VecDeque::new(),
            hits: 0,
        }
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now - self.window;
        while let Some(&(t, hit)) = self.events.front() {
            if t >= cutoff {
                break;
            }
            self.events.pop_front();
            if hit {
                self.hits = self.hits.saturating_sub(1);
            }
        }
    }

    /// Records one outcome at `now`. Timestamps must be non-decreasing.
    /// `now` is virtual time (nanosecond domain).
    pub fn record(&mut self, now: SimTime, hit: bool) {
        debug_assert!(
            self.events.back().is_none_or(|&(t, _)| now >= t),
            "timestamps must be non-decreasing"
        );
        self.evict(now);
        self.events.push_back((now, hit));
        if hit {
            self.hits += 1;
        }
    }

    /// The fraction of `true` outcomes within the window ending at `now`
    /// (0 when the window holds no events).
    /// `now` is virtual time (nanosecond domain).
    pub fn ratio(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        if self.events.is_empty() {
            0.0
        } else {
            self.hits as f64 / self.events.len() as f64
        }
    }

    /// Number of events currently inside the window (after evicting
    /// against `now`).
    /// `now` is virtual time (nanosecond domain).
    pub fn len(&mut self, now: SimTime) -> usize {
        self.evict(now);
        self.events.len()
    }

    /// True when no events are in the window at `now`.
    /// `now` is virtual time (nanosecond domain).
    pub fn is_empty(&mut self, now: SimTime) -> bool {
        self.len(now) == 0
    }

    /// The configured window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn ratio_over_window() {
        let mut w = TimedRatio::new(SimDuration::from_millis(100));
        w.record(ms(0), true);
        w.record(ms(10), false);
        w.record(ms(20), false);
        w.record(ms(30), false);
        assert_eq!(w.ratio(ms(30)), 0.25);
    }

    #[test]
    fn old_events_age_out() {
        let mut w = TimedRatio::new(SimDuration::from_millis(50));
        for i in 0..10 {
            w.record(ms(i), true); // a burst of misses
        }
        assert_eq!(w.ratio(ms(9)), 1.0);
        // 60ms later, all misses expired even with no new events.
        assert_eq!(w.ratio(ms(70)), 0.0);
        assert!(w.is_empty(ms(70)));
    }

    #[test]
    fn recovery_after_total_rejection() {
        // The scenario that deadlocks a count-based window: misses fill the
        // window, then no events at all for a long stretch.
        let mut w = TimedRatio::new(SimDuration::from_millis(10));
        for i in 0..100 {
            w.record(ms(i / 10), true);
        }
        assert!(w.ratio(ms(10)) > 0.9);
        // Silence; controller polls later and must see a clean window.
        assert_eq!(w.ratio(ms(25)), 0.0);
        // New on-time tasks keep it clean.
        w.record(ms(26), false);
        assert_eq!(w.ratio(ms(26)), 0.0);
        assert_eq!(w.len(ms(26)), 1);
    }

    #[test]
    fn eviction_boundary_inclusive() {
        let mut w = TimedRatio::new(SimDuration::from_millis(10));
        w.record(ms(0), true);
        // Exactly window-old events are retained (cutoff is exclusive).
        assert_eq!(w.ratio(ms(10)), 1.0);
        assert_eq!(w.ratio(ms(11)), 0.0);
    }

    #[test]
    fn hits_counter_consistent() {
        let mut w = TimedRatio::new(SimDuration::from_millis(7));
        for i in 0..1000u64 {
            w.record(ms(i), i % 3 == 0);
            let actual = w.events.iter().filter(|&&(_, h)| h).count();
            assert_eq!(actual, w.hits);
        }
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_rejected() {
        let _ = TimedRatio::new(SimDuration::ZERO);
    }
}

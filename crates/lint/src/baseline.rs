//! `--baseline` support: subtract a previously-recorded report.
//!
//! CI's changed-only step wants "no *new* findings", not "zero findings
//! ever": a rule rollout can land with a pinned baseline and the tree then
//! ratchets down. The baseline file is this tool's own `--json` output;
//! the parser below is a ~100-line hand-rolled JSON reader (the crate is
//! deliberately dependency-free) that accepts exactly the subset the
//! report writer emits.
//!
//! Matching is by `(rule, file, message, snippet)` **multiset**, not line
//! number, so unrelated edits that shift a finding up or down a few lines
//! do not surface it as new.

use std::collections::BTreeMap;

use crate::report::Report;

/// A parsed JSON value (only the shapes the report writer produces).
enum Json {
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
    /// Array.
    Arr(Vec<Json>),
    /// String.
    Str(String),
    /// Number (the report only writes unsigned integers; the value is
    /// parsed for validation but baseline matching never reads it).
    Num(#[allow(dead_code)] u64),
    /// true/false (parsed for validation, never read back).
    Bool(#[allow(dead_code)] bool),
    /// null.
    Null,
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Removes from `report` every violation that also appears in
/// `baseline_json` (a prior `--json` output), by multiset matching on
/// `(rule, file, message, snippet)`. Returns the number of suppressed
/// findings.
pub fn subtract_baseline(report: &mut Report, baseline_json: &str) -> Result<usize, String> {
    let doc = parse(baseline_json)?;
    let violations = doc
        .get("violations")
        .ok_or("baseline JSON has no `violations` array")?;
    let Json::Arr(items) = violations else {
        return Err("baseline `violations` is not an array".to_string());
    };
    let mut budget: BTreeMap<(String, String, String, String), u32> = BTreeMap::new();
    for item in items {
        let key = (
            item.get("rule")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            item.get("file")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            item.get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            item.get("snippet")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        );
        *budget.entry(key).or_insert(0) += 1;
    }
    let before = report.violations.len();
    report.violations.retain(|d| {
        let key = (
            d.rule.id().to_string(),
            d.file.clone(),
            d.message.clone(),
            d.snippet.clone(),
        );
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                false // known from the baseline: drop it
            }
            _ => true,
        }
    });
    Ok(before - report.violations.len())
}

/// Parses a JSON document (object/array/string/uint/bool/null).
fn parse(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => parse_object(chars, pos),
        Some('[') => parse_array(chars, pos),
        Some('"') => Ok(Json::Str(parse_string(chars, pos)?)),
        Some('t') => parse_keyword(chars, pos, "true", Json::Bool(true)),
        Some('f') => parse_keyword(chars, pos, "false", Json::Bool(false)),
        Some('n') => parse_keyword(chars, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() => parse_number(chars, pos),
        Some(c) => Err(format!("unexpected `{c}` at offset {pos}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_keyword(chars: &[char], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    for w in word.chars() {
        if chars.get(*pos) != Some(&w) {
            return Err(format!("bad keyword at offset {pos}"));
        }
        *pos += 1;
    }
    Ok(v)
}

fn parse_number(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while chars.get(*pos).is_some_and(char::is_ascii_digit) {
        *pos += 1;
    }
    let text: String = chars[start..*pos].iter().collect();
    text.parse::<u64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    if chars.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let Some(&esc) = chars.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hex: String = chars.get(*pos..*pos + 4).unwrap_or(&[]).iter().collect();
                        if hex.len() != 4 {
                            return Err("truncated \\u escape".to_string());
                        }
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|e| format!("bad \\u escape `{hex}`: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{other}`")),
                }
            }
            _ => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_object(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(chars, pos);
        let key = parse_string(chars, pos)?;
        skip_ws(chars, pos);
        if chars.get(*pos) != Some(&':') {
            return Err(format!("expected `:` at offset {pos}"));
        }
        *pos += 1;
        let value = parse_value(chars, pos)?;
        pairs.push((key, value));
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
        }
    }
}

fn parse_array(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(chars, pos)?);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Diagnostic;
    use crate::rules::Rule;

    fn diag(rule: Rule, file: &str, line: u32, msg: &str) -> Diagnostic {
        Diagnostic::new(rule, file, line, 1, "snippet", msg)
    }

    #[test]
    fn subtract_drops_known_findings_by_content_not_line() {
        let baseline = Report::new(
            1,
            vec![diag(Rule::TodoMarker, "a.rs", 10, "m1")],
            Vec::new(),
        )
        .render_json();
        // The same finding drifted to line 14; a second, new one appeared.
        let mut current = Report::new(
            1,
            vec![
                diag(Rule::TodoMarker, "a.rs", 14, "m1"),
                diag(Rule::TodoMarker, "a.rs", 20, "m2"),
            ],
            Vec::new(),
        );
        let dropped = subtract_baseline(&mut current, &baseline).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(current.violations.len(), 1);
        assert_eq!(current.violations[0].message, "m2");
    }

    #[test]
    fn multiset_semantics_subtract_once_per_occurrence() {
        let baseline =
            Report::new(1, vec![diag(Rule::TodoMarker, "a.rs", 1, "m")], Vec::new()).render_json();
        let mut current = Report::new(
            1,
            vec![
                diag(Rule::TodoMarker, "a.rs", 1, "m"),
                diag(Rule::TodoMarker, "a.rs", 2, "m"),
            ],
            Vec::new(),
        );
        subtract_baseline(&mut current, &baseline).unwrap();
        assert_eq!(current.violations.len(), 1, "only one occurrence budgeted");
    }

    #[test]
    fn parser_round_trips_report_escapes() {
        let report = Report::new(
            2,
            vec![diag(Rule::WallClock, "b.rs", 3, "say \"hi\"\tand\\more")],
            Vec::new(),
        );
        let mut current = Report::new(
            2,
            vec![diag(Rule::WallClock, "b.rs", 9, "say \"hi\"\tand\\more")],
            Vec::new(),
        );
        subtract_baseline(&mut current, &report.render_json()).unwrap();
        assert!(current.violations.is_empty());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        let mut r = Report::new(0, Vec::new(), Vec::new());
        assert!(subtract_baseline(&mut r, "{").is_err());
        assert!(subtract_baseline(&mut r, "{\"version\": 1}").is_err());
        assert!(subtract_baseline(&mut r, "[]").is_err());
    }
}

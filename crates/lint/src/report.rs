//! Machine-readable report: aggregation and hand-rolled JSON rendering.
//!
//! The JSON writer is ~60 lines instead of a serde dependency because the
//! linter must stay buildable with zero external crates; the output is
//! pretty-printed and fully sorted so tests can pin it byte-for-byte.

use crate::diagnostics::Diagnostic;
use crate::rules::{AllowRecord, Rule, ALL_RULES};

/// The result of linting a set of files.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: u32,
    /// All violations, sorted by (file, line, column, rule).
    pub violations: Vec<Diagnostic>,
    /// All parsed allow directives, sorted by (file, line, rule).
    pub allows: Vec<AllowRecord>,
}

impl Report {
    /// Builds a report, sorting everything into its stable order.
    pub fn new(
        files_scanned: u32,
        mut violations: Vec<Diagnostic>,
        mut allows: Vec<AllowRecord>,
    ) -> Self {
        violations.sort_by_key(super::diagnostics::Diagnostic::sort_key);
        allows.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.id()).cmp(&(b.file.as_str(), b.line, b.rule.id()))
        });
        Report {
            files_scanned,
            violations,
            allows,
        }
    }

    /// True when the tree is clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation count for one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.violations.iter().filter(|d| d.rule == rule).count()
    }

    /// Human-readable rendering: one grep-able line per violation plus a
    /// per-rule summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.violations {
            out.push_str(&d.render());
            out.push('\n');
        }
        if !self.violations.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} violation(s), {} allow(s)\n",
            self.files_scanned,
            self.violations.len(),
            self.allows.len()
        ));
        for &rule in ALL_RULES {
            let n = self.count(rule);
            if n > 0 {
                out.push_str(&format!("  {}: {}\n", rule.id(), n));
            }
        }
        out
    }

    /// Pretty-printed JSON; key order and array order are deterministic.
    pub fn render_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        w.field_u64("version", 1);
        w.field_u64("files_scanned", u64::from(self.files_scanned));
        w.field_bool("ok", self.ok());
        w.key("counts");
        w.open_object();
        for &rule in ALL_RULES {
            w.field_u64(rule.id(), self.count(rule) as u64);
        }
        w.close_object();
        w.key("violations");
        w.open_array();
        for d in &self.violations {
            w.open_object();
            w.field_str("rule", d.rule.id());
            w.field_str("file", &d.file);
            w.field_u64("line", u64::from(d.line));
            w.field_u64("column", u64::from(d.column));
            w.field_str("snippet", &d.snippet);
            w.field_str("message", &d.message);
            w.close_object();
        }
        w.close_array();
        w.key("allows");
        w.open_array();
        for a in &self.allows {
            w.open_object();
            w.field_str("rule", a.rule.id());
            w.field_str("file", &a.file);
            w.field_u64("line", u64::from(a.line));
            w.field_str("justification", &a.justification);
            w.field_u64("used", u64::from(a.used));
            w.close_object();
        }
        w.close_array();
        w.close_object();
        w.finish()
    }
}

/// Minimal pretty-printing JSON writer (objects, arrays, strings, u64,
/// bool — all the report needs).
struct JsonWriter {
    out: String,
    indent: usize,
    /// Whether the current container already has an entry (comma control).
    has_entry: Vec<bool>,
    /// Set after `key(...)`: the next open/scalar continues the same line.
    pending_key: bool,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            out: String::new(),
            indent: 0,
            has_entry: Vec::new(),
            pending_key: false,
        }
    }

    fn newline_and_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn begin_entry(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has) = self.has_entry.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        if self.indent > 0 {
            self.newline_and_indent();
        }
    }

    fn key(&mut self, name: &str) {
        self.begin_entry();
        self.out.push('"');
        self.out.push_str(name);
        self.out.push_str("\": ");
        self.pending_key = true;
    }

    fn open_object(&mut self) {
        self.begin_entry();
        self.out.push('{');
        self.indent += 1;
        self.has_entry.push(false);
    }

    fn close_object(&mut self) {
        let had = self.has_entry.pop().unwrap_or(false);
        self.indent -= 1;
        if had {
            self.newline_and_indent();
        }
        self.out.push('}');
    }

    fn open_array(&mut self) {
        self.begin_entry();
        self.out.push('[');
        self.indent += 1;
        self.has_entry.push(false);
    }

    fn close_array(&mut self) {
        let had = self.has_entry.pop().unwrap_or(false);
        self.indent -= 1;
        if had {
            self.newline_and_indent();
        }
        self.out.push(']');
    }

    fn field_str(&mut self, name: &str, value: &str) {
        self.key(name);
        self.begin_entry();
        self.out.push('"');
        for c in value.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\t' => self.out.push_str("\\t"),
                '\r' => self.out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn field_u64(&mut self, name: &str, value: u64) {
        self.key(name);
        self.begin_entry();
        self.out.push_str(&value.to_string());
    }

    fn field_bool(&mut self, name: &str, value: bool) {
        self.key(name);
        self.begin_entry();
        self.out.push_str(if value { "true" } else { "false" });
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_ok_and_stable() {
        let r = Report::new(3, Vec::new(), Vec::new());
        assert!(r.ok());
        let json = r.render_json();
        assert!(json.contains("\"ok\": true"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"violations\": []"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let d = Diagnostic::new(Rule::TodoMarker, "f.rs", 1, 1, "say \"hi\\\"", "a\tmessage");
        let r = Report::new(1, vec![d], Vec::new());
        let json = r.render_json();
        assert!(json.contains("say \\\"hi\\\\\\\""));
        assert!(json.contains("a\\tmessage"));
    }

    #[test]
    fn violations_sort_by_location() {
        let mk = |file: &str, line| Diagnostic::new(Rule::TodoMarker, file, line, 1, "", "m");
        let r = Report::new(
            2,
            vec![mk("b.rs", 1), mk("a.rs", 9), mk("a.rs", 2)],
            Vec::new(),
        );
        let order: Vec<(String, u32)> = r
            .violations
            .iter()
            .map(|d| (d.file.clone(), d.line))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 2),
                ("a.rs".to_string(), 9),
                ("b.rs".to_string(), 1)
            ]
        );
    }
}

//! `tailguard-lint` — static determinism & hygiene analysis for the
//! TailGuard workspace.
//!
//! Every golden pin in this repository (sim reports, observed runs, the
//! metrics exposition) assumes the deterministic crates are *pure*: all
//! time is virtual, all randomness is caller-seeded, all iteration is
//! ordered, and library code never panics a query away. Those properties
//! were previously enforced only after the fact, by golden tests failing.
//! This crate checks them at the source level with a hand-rolled scanner
//! (no `syn`; the build environment is offline) and a small rule catalog —
//! see [`rules::Rule`] — each with a justified per-line escape hatch:
//!
//! ```text
//! // tg-lint: allow(hash-order) -- lookup-only cache, never iterated
//! ```
//!
//! The analyzer runs in two passes. Pass 1 ([`model`]) builds a
//! lightweight per-file model — `fn` items with signatures and docs,
//! local type ascriptions, `// tg-lint: hot(<label>)` regions, and the
//! file's identifier set. Pass 2 runs the lexical rules plus the semantic
//! rules in [`semantic`] (`lossy-cast`, `panic-surface`, `hot-alloc`, and
//! the cross-file `pub-doc-drift`, which uses a workspace-wide identifier
//! index for reachability).
//!
//! Run it as `cargo run -p tailguard-lint` (optionally `-- --json`); it
//! exits non-zero if any rule fires. `--changed-only <paths>` restricts
//! *reporting* to the named files while still modeling the whole workspace
//! (cross-file rules need it); `--baseline <json>` subtracts a previous
//! report so CI can enforce "no new findings".

pub mod baseline;
pub mod config;
pub mod diagnostics;
pub mod model;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod semantic;
pub mod types;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use config::{crate_config, CrateConfig, STRICT};
use report::Report;

/// Lints the workspace rooted at `root`: `src/` of every crate under
/// `crates/`, plus the root umbrella lib. `target/`, `third_party/`, and
/// the linter's own `fixtures/` are never scanned.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    lint_workspace_filtered(root, None)
}

/// Workspace lint with an optional changed-file filter: the whole
/// workspace is scanned and modeled (the cross-file rules need every
/// crate's identifier index), but violations and allows are only reported
/// for files in `changed`. Paths in `changed` may be absolute or
/// root-relative; entries that are not scanned workspace sources are
/// silently ignored (deleted files, non-Rust files, fixtures).
pub fn lint_workspace_filtered(root: &Path, changed: Option<&[PathBuf]>) -> Result<Report, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for name in sorted_dir_names(&crates_dir)? {
        let Some(cfg) = crate_config(&name) else {
            return Err(format!(
                "crate `{name}` is not in the embedded lint config \
                 (crates/lint/src/config.rs); classify it as \
                 Deterministic or Driver"
            ));
        };
        let src = crates_dir.join(&name).join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
            files
                .iter_mut()
                .filter(|(_, c)| c.is_none())
                .for_each(|(_, c)| *c = Some(*cfg));
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        let cfg = crate_config(".").ok_or("missing root crate config")?;
        collect_rs_files(&root_src, &mut files)?;
        files
            .iter_mut()
            .filter(|(_, c)| c.is_none())
            .for_each(|(_, c)| *c = Some(*cfg));
    }
    let changed_rels: Option<BTreeSet<String>> = changed.map(|paths| {
        paths
            .iter()
            .map(|p| display_path(root, p))
            .collect::<BTreeSet<String>>()
    });
    lint_files(root, &files, changed_rels.as_ref())
}

/// Lints an explicit set of paths (files or directories) under the
/// strictest configuration — used for the fixture corpus. No cross-crate
/// index exists in this mode, so `pub-doc-drift` treats every pub fn as
/// reachable.
pub fn lint_paths(paths: &[PathBuf]) -> Result<Report, String> {
    let mut files: Vec<(PathBuf, Option<CrateConfig>)> = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(p, &mut files)?;
        } else {
            files.push((p.clone(), None));
        }
    }
    for (_, c) in &mut files {
        c.get_or_insert(STRICT);
    }
    lint_files(Path::new(""), &files, None)
}

/// One fully-scanned workspace source file, ready for pass 2.
struct LoadedFile {
    rel: String,
    cfg: CrateConfig,
    scanned: scanner::ScannedFile,
    model: model::FileModel,
}

fn lint_files(
    root: &Path,
    files: &[(PathBuf, Option<CrateConfig>)],
    changed: Option<&BTreeSet<String>>,
) -> Result<Report, String> {
    // Pass 1: scan and model every file.
    let mut loaded = Vec::with_capacity(files.len());
    for (path, cfg) in files {
        let cfg = cfg.as_ref().ok_or("file with no crate config")?;
        let source =
            fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = display_path(root, path);
        let scanned = scanner::scan(&rel, &source);
        let model = model::build(&scanned);
        loaded.push(LoadedFile {
            rel,
            cfg: *cfg,
            scanned,
            model,
        });
    }

    // Cross-file index: per crate, the union of identifiers its files
    // mention. A pub fn is "reachable" for `pub-doc-drift` when any other
    // crate's set contains its name.
    let workspace_mode = changed.is_some() || loaded.iter().any(|f| f.cfg.name != STRICT.name);
    let mut per_crate: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    if workspace_mode {
        for f in &loaded {
            per_crate
                .entry(f.cfg.name)
                .or_default()
                .extend(f.model.idents.iter().cloned());
        }
    }
    let external_for = |own: &str| -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (name, idents) in &per_crate {
            if *name != own {
                out.extend(idents.iter().cloned());
            }
        }
        out
    };
    let mut external_cache: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();

    // Pass 2: rules, with reporting restricted to changed files if asked.
    let mut violations = Vec::new();
    let mut allows = Vec::new();
    let mut reported_files = 0u32;
    for f in &loaded {
        let external = if workspace_mode {
            Some(
                external_cache
                    .entry(f.cfg.name)
                    .or_insert_with(|| external_for(f.cfg.name))
                    as &BTreeSet<String>,
            )
        } else {
            None
        };
        if let Some(changed) = changed {
            if !changed.contains(&f.rel) {
                continue;
            }
        }
        reported_files += 1;
        let (mut d, mut a) = rules::check_file_with(&f.scanned, &f.model, &f.cfg, external);
        violations.append(&mut d);
        allows.append(&mut a);
    }
    let files_scanned = if changed.is_some() {
        reported_files
    } else {
        loaded.len() as u32
    };
    Ok(Report::new(files_scanned, violations, allows))
}

/// Workspace-relative path with forward slashes (stable across platforms
/// for pinned output).
fn display_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Immediate subdirectory names of `dir`, sorted for a deterministic walk.
fn sorted_dir_names(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        if entry.path().is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    Ok(names)
}

/// Recursively collects `.rs` files under `dir` (sorted), tagging them
/// with no config yet (the caller assigns one).
fn collect_rs_files(
    dir: &Path,
    out: &mut Vec<(PathBuf, Option<CrateConfig>)>,
) -> Result<(), String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned());
            // Never descend into build output, vendored stubs, or the
            // linter's own test corpus.
            if matches!(name.as_deref(), Some("target" | "third_party" | "fixtures")) {
                continue;
            }
            collect_rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push((p, None));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_path_strips_root() {
        let root = Path::new("/ws");
        let p = Path::new("/ws/crates/sched/src/handler.rs");
        assert_eq!(display_path(root, p), "crates/sched/src/handler.rs");
    }
}

//! The rule catalog and the per-file rule engine.
//!
//! Each rule is a static pattern check over masked source lines (see
//! [`crate::scanner`]); all rules skip test-only code, and each can be
//! suppressed per-line with a justified control comment:
//!
//! ```text
//! // tg-lint: allow(wall-clock) -- metrics server timestamps are cosmetic
//! ```
//!
//! The justification after `--` is mandatory: an allow without one is
//! itself reported (`malformed-allow`), so every suppression in the tree
//! documents *why* the invariant does not apply at that site.

use std::collections::BTreeSet;

use crate::config::{rule_applies, CrateConfig};
use crate::diagnostics::Diagnostic;
use crate::model::{is_hot_marker, FileModel};
use crate::scanner::{find_words, ScannedFile};
use crate::semantic::{self, Candidate};

/// Every rule the analyzer knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `std::time::Instant` / `SystemTime` in deterministic crates.
    WallClock,
    /// `thread_rng` / `from_entropy` / `RandomState` outside drivers.
    OsEntropy,
    /// `HashMap` / `HashSet` in deterministic crates (iteration order).
    HashOrder,
    /// `.unwrap()` / `.expect(` / `panic!` in deterministic library code.
    UnwrapInLib,
    /// `==` / `!=` on floating-point operands in budget/CDF/policy crates.
    FloatEq,
    /// `todo!` / `unimplemented!` in shipped (non-test) code.
    TodoMarker,
    /// A numeric `as` cast that can silently truncate (semantic pass).
    LossyCast,
    /// Computed indexing, `/`·`%` by non-literal, unsigned `-` in
    /// deterministic library code (semantic pass).
    PanicSurface,
    /// Heap allocation inside a `hot(<label>)` region (semantic pass).
    HotAlloc,
    /// A cross-crate `pub fn` whose time-typed params lack a documented
    /// unit (semantic pass).
    PubDocDrift,
    /// A `tg-lint:` comment that does not parse or lacks a justification.
    MalformedAllow,
}

/// All rules, in reporting order.
pub const ALL_RULES: &[Rule] = &[
    Rule::WallClock,
    Rule::OsEntropy,
    Rule::HashOrder,
    Rule::UnwrapInLib,
    Rule::FloatEq,
    Rule::TodoMarker,
    Rule::LossyCast,
    Rule::PanicSurface,
    Rule::HotAlloc,
    Rule::PubDocDrift,
    Rule::MalformedAllow,
];

impl Rule {
    /// Stable kebab-case identifier (used in `allow(...)` and JSON).
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::OsEntropy => "os-entropy",
            Rule::HashOrder => "hash-order",
            Rule::UnwrapInLib => "unwrap-in-lib",
            Rule::FloatEq => "float-eq",
            Rule::TodoMarker => "todo-marker",
            Rule::LossyCast => "lossy-cast",
            Rule::PanicSurface => "panic-surface",
            Rule::HotAlloc => "hot-alloc",
            Rule::PubDocDrift => "pub-doc-drift",
            Rule::MalformedAllow => "malformed-allow",
        }
    }

    /// Parses a rule id as written inside `allow(...)`.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }

    /// One-line description for `--list-rules` and docs.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "no std::time::Instant/SystemTime in deterministic crates \
                 (virtual SimTime only; wall clocks belong to drivers)"
            }
            Rule::OsEntropy => {
                "no thread_rng/from_entropy/RandomState outside drivers \
                 (all randomness flows from caller-seeded SimRng)"
            }
            Rule::HashOrder => {
                "no HashMap/HashSet in deterministic crates \
                 (iteration order varies per process; use BTreeMap/BTreeSet)"
            }
            Rule::UnwrapInLib => {
                "no unwrap()/expect()/panic! in deterministic library code \
                 (return Result/Option; a panicking scheduler drops queries)"
            }
            Rule::FloatEq => {
                "no ==/!= against float operands in sched/dist/policy \
                 (exact float equality breaks budget and CDF math silently)"
            }
            Rule::TodoMarker => "no todo!/unimplemented! in shipped code",
            Rule::LossyCast => {
                "no numeric `as` cast that can truncate in deterministic \
                 crates (use From/try_from or a sched::units helper; \
                 int→float for reporting is accepted)"
            }
            Rule::PanicSurface => {
                "no computed indexing/slicing, `/` or `%` by a non-literal, \
                 or unsigned `-` in deterministic library code (each is a \
                 latent panic that drops a query)"
            }
            Rule::HotAlloc => {
                "no per-event heap allocation inside `// tg-lint: \
                 hot(<label>)` regions (preallocate outside the event loop)"
            }
            Rule::PubDocDrift => {
                "pub fns used by other workspace crates must document the \
                 unit of time-typed params (ms/ns/micros/secs, virtual/wall)"
            }
            Rule::MalformedAllow => {
                "tg-lint allow comments must name known rules and carry a \
                 `-- justification`"
            }
        }
    }
}

/// An `allow` that was parsed successfully and suppressed at least zero
/// diagnostics; reported in `--json` so suppressions stay auditable.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// File the allow lives in.
    pub file: String,
    /// Line of the control comment.
    pub line: u32,
    /// Rule it suppresses.
    pub rule: Rule,
    /// The mandatory justification text.
    pub justification: String,
    /// Number of diagnostics it actually suppressed.
    pub used: u32,
}

struct ParsedAllow {
    target_line: u32,
    comment_line: u32,
    rules: Vec<Rule>,
    justification: String,
    used: u32,
}

/// The lexical rules the original per-line engine owns; the four semantic
/// rules run in [`crate::semantic`] instead.
const LEXICAL_RULES: &[Rule] = &[
    Rule::WallClock,
    Rule::OsEntropy,
    Rule::HashOrder,
    Rule::UnwrapInLib,
    Rule::FloatEq,
    Rule::TodoMarker,
];

/// Runs every applicable rule over one scanned file, building the model
/// internally. Single-file mode: every pub fn counts as reachable for
/// `pub-doc-drift` (no cross-crate index available).
pub fn check_file(file: &ScannedFile, cfg: &CrateConfig) -> (Vec<Diagnostic>, Vec<AllowRecord>) {
    let model = crate::model::build(file);
    check_file_with(file, &model, cfg, None)
}

/// Runs the lexical and semantic rules with a prebuilt model.
/// `external_idents` is the union of identifiers used by *other* crates
/// (drives `pub-doc-drift` reachability); `None` treats every pub fn as
/// reachable.
pub fn check_file_with(
    file: &ScannedFile,
    model: &FileModel,
    cfg: &CrateConfig,
    external_idents: Option<&BTreeSet<String>>,
) -> (Vec<Diagnostic>, Vec<AllowRecord>) {
    let mut diags = Vec::new();
    let mut allows: Vec<ParsedAllow> = Vec::new();

    for d in &file.directives {
        if is_hot_marker(&d.text) {
            continue; // consumed by the model pass (hot regions)
        }
        match parse_allow(&d.text) {
            Ok((rules, justification)) => allows.push(ParsedAllow {
                target_line: d.target_line,
                comment_line: d.line,
                rules,
                justification,
                used: 0,
            }),
            Err(msg) => diags.push(Diagnostic::new(
                Rule::MalformedAllow,
                &file.path,
                d.line,
                1,
                &d.text,
                &msg,
            )),
        }
    }
    for (line, msg) in &model.marker_errors {
        diags.push(Diagnostic::new(
            Rule::MalformedAllow,
            &file.path,
            *line,
            1,
            "",
            msg,
        ));
    }

    // Lexical and semantic findings flow through one allow filter, so a
    // single `allow(<rule>)` grammar covers both passes.
    let mut cands: Vec<Candidate> = Vec::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        for &rule in LEXICAL_RULES {
            if !rule_applies(rule, cfg) {
                continue;
            }
            for (col, what) in matches_on_line(rule, &line.code) {
                cands.push(Candidate {
                    rule,
                    line: line.number,
                    col: col as u32 + 1,
                    message: message_for(rule, &what),
                });
            }
        }
    }
    cands.extend(semantic::candidates(file, model, cfg, external_idents));

    for c in cands {
        if let Some(allow) = allows
            .iter_mut()
            .find(|a| a.target_line == c.line && a.rules.contains(&c.rule))
        {
            allow.used += 1;
            continue;
        }
        let snippet = file
            .lines
            .get(c.line.saturating_sub(1) as usize)
            .map_or("", |l| l.code.trim());
        diags.push(Diagnostic::new(
            c.rule, &file.path, c.line, c.col, snippet, &c.message,
        ));
    }

    // An allow that never fired is stale: surface it so suppressions are
    // removed when the underlying code is fixed.
    for a in &allows {
        if a.used == 0 {
            let ids: Vec<&str> = a.rules.iter().map(|r| r.id()).collect();
            diags.push(Diagnostic::new(
                Rule::MalformedAllow,
                &file.path,
                a.comment_line,
                1,
                "",
                &format!(
                    "stale allow({}): no matching violation on its target line",
                    ids.join(", ")
                ),
            ));
        }
    }

    let records = allows
        .iter()
        .flat_map(|a| {
            a.rules.iter().map(|&rule| AllowRecord {
                file: file.path.clone(),
                line: a.comment_line,
                rule,
                justification: a.justification.clone(),
                used: a.used,
            })
        })
        .collect();
    (diags, records)
}

/// Parses the text after `tg-lint:` into rules + justification.
fn parse_allow(text: &str) -> Result<(Vec<Rule>, String), String> {
    let text = text.trim();
    let rest = text
        .strip_prefix("allow")
        .ok_or_else(|| {
            format!(
                "unknown tg-lint directive `{text}`; expected `allow(<rule>) -- <justification>`"
            )
        })?
        .trim_start();
    let rest = rest.strip_prefix('(').ok_or("missing `(` after allow")?;
    let close = rest.find(')').ok_or("missing `)` in allow(...)")?;
    let (list, tail) = rest.split_at(close);
    let tail = &tail[1..];

    let mut rules = Vec::new();
    for raw in list.split(',') {
        let id = raw.trim();
        if id.is_empty() {
            return Err("empty rule name in allow(...)".to_string());
        }
        let rule = Rule::from_id(id).ok_or_else(|| format!("unknown rule `{id}` in allow(...)"))?;
        if rule == Rule::MalformedAllow {
            return Err("malformed-allow cannot itself be allowed".to_string());
        }
        rules.push(rule);
    }
    if rules.is_empty() {
        return Err("allow(...) names no rules".to_string());
    }

    let tail = tail.trim_start();
    let justification = tail.strip_prefix("--").map_or("", str::trim);
    if justification.is_empty() {
        return Err(
            "allow(...) requires a justification: `-- <why this site is exempt>`".to_string(),
        );
    }
    Ok((rules, justification.to_string()))
}

/// All matches of `rule` on a masked line: `(column, matched token)`.
fn matches_on_line(rule: Rule, code: &str) -> Vec<(usize, String)> {
    match rule {
        Rule::WallClock => words(code, &["Instant", "SystemTime"]),
        Rule::OsEntropy => words(code, &["thread_rng", "from_entropy", "RandomState"]),
        Rule::HashOrder => words(code, &["HashMap", "HashSet"]),
        Rule::UnwrapInLib => {
            let mut out = substrings(code, &[".unwrap()", ".expect("]);
            out.extend(words(code, &["panic!"]));
            out.sort();
            out
        }
        Rule::FloatEq => float_comparisons(code),
        Rule::TodoMarker => words(code, &["todo!", "unimplemented!"]),
        // Semantic rules are driven from `crate::semantic`, not here.
        Rule::LossyCast
        | Rule::PanicSurface
        | Rule::HotAlloc
        | Rule::PubDocDrift
        | Rule::MalformedAllow => Vec::new(),
    }
}

fn words(code: &str, needles: &[&str]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for &needle in needles {
        // `panic!`/`todo!` end with `!`, which is already a word boundary;
        // match the identifier part with boundaries, then require the `!`.
        if let Some(ident) = needle.strip_suffix('!') {
            for pos in find_words(code, ident) {
                if code[pos + ident.len()..].starts_with('!') {
                    out.push((pos, needle.to_string()));
                }
            }
        } else {
            out.extend(find_words(code, needle).map(|pos| (pos, needle.to_string())));
        }
    }
    out.sort();
    out
}

fn substrings(code: &str, needles: &[&str]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for &needle in needles {
        out.extend(
            code.match_indices(needle)
                .map(|(pos, _)| (pos, needle.to_string())),
        );
    }
    out.sort();
    out
}

/// Finds `==`/`!=` whose left or right operand is a float literal, an
/// `as f64`/`as f32` cast, or an `f64::`/`f32::` constant.
fn float_comparisons(code: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < chars.len() {
        let two: String = chars[i..i + 2].iter().collect();
        let op = match two.as_str() {
            "==" => {
                // Skip `<=`, `>=`, `=>`-adjacent and `===`-like sequences.
                let prev = if i > 0 { chars[i - 1] } else { ' ' };
                let next = chars.get(i + 2).copied().unwrap_or(' ');
                if prev == '=' || prev == '<' || prev == '>' || prev == '!' || next == '=' {
                    None
                } else {
                    Some("==")
                }
            }
            "!=" => {
                let next = chars.get(i + 2).copied().unwrap_or(' ');
                if next == '=' {
                    None
                } else {
                    Some("!=")
                }
            }
            _ => None,
        };
        if let Some(op) = op {
            let lhs = operand_before(&chars, i);
            let rhs = operand_after(&chars, i + 2);
            if lhs.as_deref().is_some_and(is_float_operand)
                || rhs.as_deref().is_some_and(is_float_operand)
            {
                out.push((i, op.to_string()));
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

fn operand_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '.' || c == ':'
}

/// The token immediately left of position `i`, with an `as f64` cast
/// collapsed to its target type.
fn operand_before(chars: &[char], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 && chars[j - 1] == ' ' {
        j -= 1;
    }
    let end = j;
    while j > 0 && operand_char(chars[j - 1]) {
        j -= 1;
    }
    if j == end {
        return None;
    }
    let tok: String = chars[j..end].iter().collect();
    if tok == "f64" || tok == "f32" {
        // Only a cast target if preceded by `as`.
        let mut k = j;
        while k > 0 && chars[k - 1] == ' ' {
            k -= 1;
        }
        let end2 = k;
        while k > 0 && operand_char(chars[k - 1]) {
            k -= 1;
        }
        let prev: String = chars[k..end2].iter().collect();
        if prev == "as" {
            return Some(format!("as {tok}"));
        }
    }
    Some(tok)
}

/// The token immediately right of position `i` (skipping a unary minus).
fn operand_after(chars: &[char], i: usize) -> Option<String> {
    let mut j = i;
    while j < chars.len() && chars[j] == ' ' {
        j += 1;
    }
    if j < chars.len() && chars[j] == '-' {
        j += 1;
    }
    let start = j;
    while j < chars.len() && operand_char(chars[j]) {
        j += 1;
    }
    (j > start).then(|| chars[start..j].iter().collect())
}

/// Float literal (`1.0`, `0.`, `1e-9`, `2f64`), cast (`as f64`), or float
/// associated path (`f64::NAN`).
fn is_float_operand(tok: &str) -> bool {
    if tok == "as f64" || tok == "as f32" {
        return true;
    }
    if tok.starts_with("f64::") || tok.starts_with("f32::") {
        return true;
    }
    let Some(first) = tok.chars().next() else {
        return false;
    };
    if !first.is_ascii_digit() {
        return false;
    }
    if tok.ends_with("f64") || tok.ends_with("f32") {
        return true;
    }
    // Digits followed by a dot: 1.0, 3.14, 0.
    let mut saw_dot = false;
    for (k, c) in tok.char_indices() {
        if c == '.' {
            if k > 0 && tok[..k].chars().all(|d| d.is_ascii_digit() || d == '_') {
                saw_dot = true;
            }
            break;
        }
    }
    if saw_dot {
        return true;
    }
    // Exponent form without a dot: 1e9.
    tok.chars()
        .all(|c| c.is_ascii_digit() || c == '_' || c == 'e' || c == '-')
        && tok.contains('e')
}

fn message_for(rule: Rule, what: &str) -> String {
    match rule {
        Rule::WallClock => format!(
            "`{what}` is a wall clock; deterministic crates must take `now` \
             as SimTime from the driver"
        ),
        Rule::OsEntropy => format!(
            "`{what}` draws OS entropy; use a caller-seeded SimRng so runs \
             replay bit-identically"
        ),
        Rule::HashOrder => format!(
            "`{what}` iterates in per-process random order; use \
             BTreeMap/BTreeSet, or justify that this value is never iterated"
        ),
        Rule::UnwrapInLib => format!(
            "`{what}` can panic in library code; bubble the error or justify \
             why it is unreachable"
        ),
        Rule::FloatEq => format!(
            "float `{what}` comparison is exact; compare with a tolerance or \
             total ordering"
        ),
        Rule::TodoMarker => format!("`{what}` must not ship outside tests"),
        Rule::LossyCast
        | Rule::PanicSurface
        | Rule::HotAlloc
        | Rule::PubDocDrift
        | Rule::MalformedAllow => what.to_string(),
    }
}

/// Runs the engine on raw source text (convenience for tests/fixtures).
pub fn check_source(path: &str, source: &str, cfg: &CrateConfig) -> Vec<Diagnostic> {
    let scanned = crate::scanner::scan(path, source);
    check_file(&scanned, cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::STRICT;

    fn diags(src: &str) -> Vec<Diagnostic> {
        check_source("t.rs", src, &STRICT)
    }

    #[test]
    fn wall_clock_flags_instant_and_systemtime() {
        let d = diags("let t = std::time::Instant::now();\nlet s = SystemTime::now();\n");
        let rules: Vec<&str> = d.iter().map(|d| d.rule.id()).collect();
        assert!(
            rules.iter().filter(|r| **r == "wall-clock").count() >= 2,
            "{rules:?}"
        );
    }

    #[test]
    fn os_entropy_flags_each_source() {
        let d = diags("let r = thread_rng();\nlet s = SmallRng::from_entropy();\nlet h: HashMap<u32, u32, RandomState> = HashMap::default();\n");
        let hits = d.iter().filter(|d| d.rule == Rule::OsEntropy).count();
        assert_eq!(hits, 3, "{d:?}");
    }

    #[test]
    fn unwrap_in_lib_skips_unwrap_or() {
        let d = diags("let x = y.unwrap_or(3);\nlet z = w.unwrap();\n");
        let hits: Vec<_> = d.iter().filter(|d| d.rule == Rule::UnwrapInLib).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn float_eq_catches_literal_and_cast_comparisons() {
        for src in [
            "if x == 1.0 {}",
            "if 0.5 != y {}",
            "if a as f64 == b {}",
            "if x == f64::INFINITY {}",
            "if x == 1e-9 {}",
            "if x == 2f64 {}",
        ] {
            let d = diags(src);
            assert!(d.iter().any(|d| d.rule == Rule::FloatEq), "{src}");
        }
    }

    #[test]
    fn float_eq_ignores_integer_and_generic_comparisons() {
        for src in [
            "if x == 1 {}",
            "if n != m {}",
            "if x <= 1.0 {}",
            "if x >= 1.0 {}",
            "let f = |a: &u32| *a == 3;",
            "assert!(matches!(k, K::V));",
        ] {
            let d = diags(src);
            assert!(!d.iter().any(|d| d.rule == Rule::FloatEq), "{src}");
        }
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "// tg-lint: allow(hash-order) -- lookup-only cache, never iterated\n\
                   let m: HashMap<u32, u32> = HashMap::new();\n";
        let d = diags(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_without_justification_is_malformed_and_does_not_suppress() {
        let src = "// tg-lint: allow(hash-order)\nlet m: HashMap<u32, u32> = HashMap::new();\n";
        let d = diags(src);
        assert!(d.iter().any(|d| d.rule == Rule::MalformedAllow));
        assert!(d.iter().any(|d| d.rule == Rule::HashOrder));
    }

    #[test]
    fn stale_allow_is_reported() {
        let src = "// tg-lint: allow(wall-clock) -- nothing here\nlet x = 1;\n";
        let d = diags(src);
        assert!(d
            .iter()
            .any(|d| d.rule == Rule::MalformedAllow && d.message.contains("stale")));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x = y.unwrap();\n        let m = std::collections::HashMap::new();\n    }\n}\n";
        let d = diags(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn todo_markers_flagged_outside_tests_only() {
        let d = diags("fn f() { todo!() }\n");
        assert!(d.iter().any(|d| d.rule == Rule::TodoMarker));
        let d = diags("#[test]\nfn t() { unimplemented!() }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn multiple_rules_in_one_allow() {
        let src = "// tg-lint: allow(wall-clock, unwrap-in-lib) -- test harness shim\n\
                   let t = Instant::now().elapsed().as_secs_f64(); let x = y.unwrap();\n";
        let d = diags(src);
        assert!(d.is_empty(), "{d:?}");
    }
}

//! Numeric type vocabulary and cast classification for the semantic pass.
//!
//! The `lossy-cast` rule needs to know, for `expr as T`, whether the
//! conversion can lose information. The target type is always visible in
//! the source; the operand's type comes from the lightweight per-file
//! model ([`crate::model`]) plus the local inference in
//! [`crate::semantic`]. This module owns the type lattice itself: which
//! primitive a type string names, and how a `(source, target)` pair is
//! classified.
//!
//! `usize`/`isize` are modeled as exactly 64 bits wide. The workspace
//! documents a 64-bit-platform assumption (the testbed targets aarch64,
//! CI is x86-64), and `sched::units` carries the saturating fallbacks for
//! anything narrower.

/// A primitive numeric type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Num {
    /// `u8`
    U8,
    /// `u16`
    U16,
    /// `u32`
    U32,
    /// `u64`
    U64,
    /// `u128`
    U128,
    /// `usize` (modeled as 64-bit; see module docs)
    Usize,
    /// `i8`
    I8,
    /// `i16`
    I16,
    /// `i32`
    I32,
    /// `i64`
    I64,
    /// `i128`
    I128,
    /// `isize` (modeled as 64-bit; see module docs)
    Isize,
    /// `f32`
    F32,
    /// `f64`
    F64,
}

impl Num {
    /// Parses a primitive numeric type name.
    pub fn parse(s: &str) -> Option<Num> {
        Some(match s {
            "u8" => Num::U8,
            "u16" => Num::U16,
            "u32" => Num::U32,
            "u64" => Num::U64,
            "u128" => Num::U128,
            "usize" => Num::Usize,
            "i8" => Num::I8,
            "i16" => Num::I16,
            "i32" => Num::I32,
            "i64" => Num::I64,
            "i128" => Num::I128,
            "isize" => Num::Isize,
            "f32" => Num::F32,
            "f64" => Num::F64,
            _ => return None,
        })
    }

    /// The canonical type name.
    pub fn name(self) -> &'static str {
        match self {
            Num::U8 => "u8",
            Num::U16 => "u16",
            Num::U32 => "u32",
            Num::U64 => "u64",
            Num::U128 => "u128",
            Num::Usize => "usize",
            Num::I8 => "i8",
            Num::I16 => "i16",
            Num::I32 => "i32",
            Num::I64 => "i64",
            Num::I128 => "i128",
            Num::Isize => "isize",
            Num::F32 => "f32",
            Num::F64 => "f64",
        }
    }

    /// True for `f32`/`f64`.
    pub fn is_float(self) -> bool {
        matches!(self, Num::F32 | Num::F64)
    }

    /// True for the unsigned integer types.
    pub fn is_unsigned(self) -> bool {
        matches!(
            self,
            Num::U8 | Num::U16 | Num::U32 | Num::U64 | Num::U128 | Num::Usize
        )
    }

    /// True for any integer type.
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// Bit width (`usize`/`isize` count as 64; floats report mantissa-free
    /// storage width, only used between floats).
    fn bits(self) -> u32 {
        match self {
            Num::U8 | Num::I8 => 8,
            Num::U16 | Num::I16 => 16,
            Num::U32 | Num::I32 | Num::F32 => 32,
            Num::U64 | Num::I64 | Num::Usize | Num::Isize | Num::F64 => 64,
            Num::U128 | Num::I128 => 128,
        }
    }

    /// Largest integer bit-width a cast into this float preserves exactly.
    fn exact_int_bits(self) -> u32 {
        match self {
            Num::F32 => 24,
            Num::F64 => 53,
            _ => 0,
        }
    }
}

/// How an `as` cast between two numeric types can behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastClass {
    /// Provably lossless (e.g. `u32 as u64`, `u16 as i32`, `f32 as f64`,
    /// `u32 as f64`). Never flagged.
    Widening,
    /// Integer to float where the integer's range exceeds the mantissa
    /// (`u64 as f64`): values above 2^53 round. Accepted by policy —
    /// the float domain is reporting/statistics — but classified so the
    /// decision is explicit.
    IntToFloat,
    /// Integer to smaller-or-sign-losing integer (`u64 as u32`,
    /// `i64 as u64`): silently truncates or reinterprets. Flagged.
    Narrowing,
    /// Float to integer (`f64 as u64`): truncates toward zero and
    /// saturates, losing sub-integer precision and the NaN case. Flagged.
    FloatTrunc,
    /// `f64 as f32`: rounds and can overflow to infinity. Flagged.
    FloatNarrow,
}

impl CastClass {
    /// Whether this class violates the `lossy-cast` rule.
    pub fn is_lossy(self) -> bool {
        matches!(
            self,
            CastClass::Narrowing | CastClass::FloatTrunc | CastClass::FloatNarrow
        )
    }
}

/// Classifies `src as dst`.
pub fn classify_cast(src: Num, dst: Num) -> CastClass {
    match (src.is_float(), dst.is_float()) {
        (true, true) => {
            if dst.bits() >= src.bits() {
                CastClass::Widening
            } else {
                CastClass::FloatNarrow
            }
        }
        (true, false) => CastClass::FloatTrunc,
        (false, true) => {
            if src.bits() <= dst.exact_int_bits() {
                CastClass::Widening
            } else {
                CastClass::IntToFloat
            }
        }
        (false, false) => classify_int_cast(src, dst),
    }
}

fn classify_int_cast(src: Num, dst: Num) -> CastClass {
    match (src.is_unsigned(), dst.is_unsigned()) {
        // Same signedness: pure width comparison.
        (true, true) | (false, false) => {
            if dst.bits() >= src.bits() {
                CastClass::Widening
            } else {
                CastClass::Narrowing
            }
        }
        // Unsigned into signed needs a strictly wider target.
        (true, false) => {
            if dst.bits() > src.bits() {
                CastClass::Widening
            } else {
                CastClass::Narrowing
            }
        }
        // Signed into unsigned reinterprets negatives, whatever the width.
        (false, true) => CastClass::Narrowing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for name in [
            "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
            "f32", "f64",
        ] {
            assert_eq!(Num::parse(name).map(Num::name), Some(name));
        }
        assert_eq!(Num::parse("String"), None);
        assert_eq!(Num::parse("SimTime"), None);
    }

    #[test]
    fn widening_casts_are_lossless() {
        for (a, b) in [
            (Num::U8, Num::U32),
            (Num::U32, Num::U64),
            (Num::U32, Num::I64),
            (Num::I32, Num::I64),
            (Num::U32, Num::F64),
            (Num::F32, Num::F64),
            (Num::Usize, Num::U64),
            (Num::U64, Num::Usize),
        ] {
            assert_eq!(classify_cast(a, b), CastClass::Widening, "{a:?}→{b:?}");
        }
    }

    #[test]
    fn narrowing_and_truncation_are_lossy() {
        assert_eq!(classify_cast(Num::U64, Num::U32), CastClass::Narrowing);
        assert_eq!(classify_cast(Num::I64, Num::U64), CastClass::Narrowing);
        assert_eq!(classify_cast(Num::U64, Num::I64), CastClass::Narrowing);
        assert_eq!(classify_cast(Num::Usize, Num::U32), CastClass::Narrowing);
        assert_eq!(classify_cast(Num::U128, Num::U64), CastClass::Narrowing);
        assert_eq!(classify_cast(Num::F64, Num::U64), CastClass::FloatTrunc);
        assert_eq!(classify_cast(Num::F64, Num::F32), CastClass::FloatNarrow);
        assert!(classify_cast(Num::F64, Num::U64).is_lossy());
        assert!(!classify_cast(Num::U64, Num::F64).is_lossy());
    }

    #[test]
    fn int_to_float_is_classified_but_accepted() {
        assert_eq!(classify_cast(Num::U64, Num::F64), CastClass::IntToFloat);
        assert_eq!(classify_cast(Num::U32, Num::F32), CastClass::IntToFloat);
        assert_eq!(classify_cast(Num::U16, Num::F32), CastClass::Widening);
    }
}

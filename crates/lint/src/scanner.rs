//! A hand-rolled Rust source scanner.
//!
//! The linter cannot use `syn` (the build environment is offline and this
//! crate is deliberately dependency-free), so this module implements the
//! small subset of Rust lexing the rules need:
//!
//! - masking of comments, string/char literals (including raw and byte
//!   strings) so rule patterns never match inside text,
//! - line comments are *captured* before masking so `// tg-lint: allow(..)`
//!   directives can be parsed out of them,
//! - a brace-depth pass that marks `#[cfg(test)]` modules and
//!   `#[test]`-family functions so rules can exempt test-only code.
//!
//! The scanner is line-oriented on output: every source line yields a
//! [`ScannedLine`] whose `code` field has the same length and column
//! positions as the original line, with non-code bytes blanked to spaces.

/// One source line after masking.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// 1-based line number.
    pub number: u32,
    /// The line with comments and literal contents replaced by spaces.
    /// Column positions match the original source line.
    pub code: String,
    /// True if the line sits inside a `#[cfg(test)]` module or a
    /// `#[test]`/`#[tokio::test]`/`#[bench]` item.
    pub in_test: bool,
}

/// A `tg-lint:` control comment found in the source.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// 1-based line the directive applies to (same line for trailing
    /// comments, the next non-blank code line for standalone ones).
    pub target_line: u32,
    /// Raw text after `tg-lint:`, trimmed.
    pub text: String,
}

/// A whole file after scanning.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Masked lines, in order.
    pub lines: Vec<ScannedLine>,
    /// All `tg-lint:` directives found in line comments.
    pub directives: Vec<Directive>,
    /// Every `//` comment, in order (doc comments included).
    pub comments: Vec<LineComment>,
}

/// The marker that introduces a lint control comment.
pub const DIRECTIVE_PREFIX: &str = "tg-lint:";

/// A captured `//` comment (before masking). The semantic pass reads
/// these to find doc comments (`///` lines arrive with a leading `/`).
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// Text after the `//`, untrimmed.
    pub text: String,
    /// True when code precedes the comment on its line.
    pub has_code_before: bool,
}

/// Scans `source`, producing masked lines, test-region flags, and
/// `tg-lint:` directives.
pub fn scan(path: &str, source: &str) -> ScannedFile {
    let (masked, comments) = mask(source);
    let mut lines: Vec<ScannedLine> = masked
        .split('\n')
        .enumerate()
        .map(|(i, code)| ScannedLine {
            number: (i + 1) as u32,
            code: code.to_string(),
            in_test: false,
        })
        .collect();
    mark_test_regions(&mut lines);
    let directives = comments
        .iter()
        .filter_map(|c| parse_directive(c, &lines))
        .collect();
    ScannedFile {
        path: path.to_string(),
        lines,
        directives,
        comments,
    }
}

/// Replaces comments and literal contents with spaces (newlines kept so
/// line numbers and columns stay aligned) and collects line comments.
fn mask(source: &str) -> (String, Vec<LineComment>) {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut line_has_code = false;
    let mut i = 0usize;

    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '\n' {
            out.push('\n');
            line += 1;
            line_has_code = false;
            i += 1;
        } else if c == '/' && next == Some('/') {
            // Line comment: capture its text, then blank it.
            let start = i + 2;
            let mut j = start;
            while j < bytes.len() && bytes[j] != '\n' {
                j += 1;
            }
            let text: String = bytes[start..j].iter().collect();
            comments.push(LineComment {
                line,
                text,
                has_code_before: line_has_code,
            });
            for _ in i..j {
                out.push(' ');
            }
            i = j;
        } else if c == '/' && next == Some('*') {
            // Block comment, possibly nested.
            let mut depth = 1u32;
            let mut j = i + 2;
            out.push(' ');
            out.push(' ');
            while j < bytes.len() && depth > 0 {
                if bytes[j] == '/' && bytes.get(j + 1) == Some(&'*') {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    j += 2;
                } else if bytes[j] == '*' && bytes.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    j += 2;
                } else {
                    if bytes[j] == '\n' {
                        line += 1;
                        line_has_code = false;
                    }
                    out.push(blank(bytes[j]));
                    j += 1;
                }
            }
            i = j;
        } else if c == '"' {
            i = mask_string(&bytes, i, &mut out, &mut line, &mut line_has_code);
        } else if (c == 'r' || c == 'b') && !prev_is_ident(&bytes, i) {
            if let Some(end) = raw_or_byte_literal_end(&bytes, i) {
                for &byte in &bytes[i..end] {
                    if byte == '\n' {
                        line += 1;
                        line_has_code = false;
                    }
                    out.push(blank(byte));
                }
                i = end;
            } else {
                line_has_code = true;
                out.push(c);
                i += 1;
            }
        } else if c == '\'' {
            if let Some(end) = char_literal_end(&bytes, i) {
                for _ in i..end {
                    out.push(' ');
                }
                i = end;
            } else {
                // A lifetime: keep the tick, scan on normally.
                line_has_code = true;
                out.push(c);
                i += 1;
            }
        } else {
            if !c.is_whitespace() {
                line_has_code = true;
            }
            out.push(c);
            i += 1;
        }
    }
    (out, comments)
}

/// Masks an ordinary `"..."` string starting at `i`; returns the index
/// one past the closing quote.
fn mask_string(
    bytes: &[char],
    i: usize,
    out: &mut String,
    line: &mut u32,
    line_has_code: &mut bool,
) -> usize {
    out.push(' ');
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            '\\' => {
                // Keep newline bytes (string line-continuations) so line
                // numbering stays aligned.
                out.push(' ');
                if bytes.get(j + 1) == Some(&'\n') {
                    out.push('\n');
                    *line += 1;
                    *line_has_code = false;
                } else if j + 1 < bytes.len() {
                    out.push(' ');
                }
                j += 2;
            }
            '"' => {
                out.push(' ');
                return j + 1;
            }
            '\n' => {
                out.push('\n');
                *line += 1;
                *line_has_code = false;
                j += 1;
            }
            _ => {
                out.push(' ');
                j += 1;
            }
        }
    }
    j
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// If `i` starts a raw string (`r"`, `r#"`), byte string (`b"`), raw byte
/// string (`br#"`), or byte char (`b'x'`), returns the index one past the
/// closing delimiter.
fn raw_or_byte_literal_end(bytes: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    let mut is_byte = false;
    if bytes[j] == 'b' {
        is_byte = true;
        j += 1;
    }
    let raw = bytes.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    if is_byte && !raw {
        match bytes.get(j) {
            Some('"') => return Some(plain_string_end(bytes, j)),
            Some('\'') => return char_literal_end(bytes, j).or(Some(j + 1)),
            _ => return None,
        }
    }
    if !raw {
        return None;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    while j < bytes.len() {
        if bytes[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(j)
}

/// End index (exclusive) of a plain `"..."` string starting at `start`.
fn plain_string_end(bytes: &[char], start: usize) -> usize {
    let mut j = start + 1;
    while j < bytes.len() {
        match bytes[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Distinguishes `'a'` / `'\n'` / `'\u{1F600}'` char literals from
/// lifetimes like `'static`. Returns the end index for a literal, `None`
/// for a lifetime.
fn char_literal_end(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some('\\') => {
            // Escape: scan to the closing quote (bounded; `\u{...}` is the
            // longest escape form).
            let mut j = i + 2;
            let limit = (i + 12).min(bytes.len());
            while j < limit {
                if bytes[j] == '\'' {
                    return Some(j + 1);
                }
                j += 1;
            }
            Some(j)
        }
        Some(c) if *c != '\'' => {
            if bytes.get(i + 2) == Some(&'\'') {
                // 'x' — but 'a' followed by a quote could also be a
                // lifetime in `<'a>'`-free code; a single char bounded by
                // quotes is always a literal in practice.
                Some(i + 3)
            } else {
                None // lifetime
            }
        }
        _ => None,
    }
}

/// Marks lines inside `#[cfg(test)]` / `#[test]`-family items.
fn mark_test_regions(lines: &mut [ScannedLine]) {
    let mut depth: i32 = 0;
    let mut pending_test = false;
    // Depth *outside* the innermost test region, if any.
    let mut test_outer_depth: Option<i32> = None;

    for line in lines.iter_mut() {
        let mut in_test_here = test_outer_depth.is_some();
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c == '#' && chars.get(i + 1) == Some(&'[') {
                let (attr, end) = read_attr(&chars, i + 2);
                if attr_is_test(&attr) {
                    pending_test = true;
                }
                i = end;
                continue;
            }
            match c {
                '{' => {
                    depth += 1;
                    if pending_test {
                        pending_test = false;
                        if test_outer_depth.is_none() {
                            test_outer_depth = Some(depth - 1);
                            in_test_here = true;
                        }
                    }
                }
                '}' => {
                    depth -= 1;
                    if test_outer_depth == Some(depth) {
                        test_outer_depth = None;
                    }
                }
                ';' => {
                    // `#[cfg(test)] use ...;` or `#[cfg(test)] mod tests;`
                    // never opened a block: drop the pending flag.
                    pending_test = false;
                }
                _ => {}
            }
            i += 1;
        }
        line.in_test = in_test_here || test_outer_depth.is_some();
    }
}

/// Reads an attribute's bracketed content starting just past `#[`;
/// returns (content, index past the closing `]`).
fn read_attr(chars: &[char], start: usize) -> (String, usize) {
    let mut depth = 1i32;
    let mut j = start;
    let mut content = String::new();
    while j < chars.len() && depth > 0 {
        match chars[j] {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            c => content.push(c),
        }
        j += 1;
    }
    (content, j.min(chars.len()))
}

/// True for `#[test]`, `#[tokio::test(...)]`, `#[bench]`, and any
/// `#[cfg(...)]` whose predicate mentions `test`.
fn attr_is_test(attr: &str) -> bool {
    let attr = attr.trim();
    let head = attr
        .split(|c: char| c == '(' || c.is_whitespace())
        .next()
        .unwrap_or("");
    if head == "test" || head == "bench" || head.ends_with("::test") {
        return true;
    }
    if head == "cfg" {
        return contains_word(attr, "test");
    }
    false
}

/// True if `word` occurs in `text` with non-identifier characters (or the
/// text boundary) on both sides.
pub fn contains_word(text: &str, word: &str) -> bool {
    find_words(text, word).next().is_some()
}

/// Iterator over byte offsets of word-bounded occurrences of `word`.
pub fn find_words<'a>(text: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    text.match_indices(word).filter_map(move |(pos, _)| {
        let before_ok = pos == 0 || !text[..pos].chars().next_back().is_some_and(is_ident);
        let after = &text[pos + word.len()..];
        let after_ok = !after.chars().next().is_some_and(is_ident);
        (before_ok && after_ok).then_some(pos)
    })
}

/// Parses a captured line comment into a [`Directive`], if it carries the
/// `tg-lint:` marker. Target resolution: trailing comments apply to their
/// own line; standalone comments to the next line with code.
fn parse_directive(comment: &LineComment, lines: &[ScannedLine]) -> Option<Directive> {
    let text = comment.text.trim();
    let rest = text.strip_prefix(DIRECTIVE_PREFIX)?.trim();
    let target_line = if comment.has_code_before {
        comment.line
    } else {
        lines
            .iter()
            .skip(comment.line as usize) // lines after the comment line
            .find(|l| !l.code.trim().is_empty())
            .map_or(comment.line, |l| l.number)
    };
    Some(Directive {
        line: comment.line,
        target_line,
        text: rest.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let src = "let x = \"Instant::now()\"; // Instant here too\nlet y = 1;\n";
        let f = scan("t.rs", src);
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(f.lines[0].code.contains("let x ="));
        assert_eq!(f.lines[1].code, "let y = 1;");
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let src = "let a = r#\"thread_rng\"#; let b = b\"from_entropy\"; let c = br\"HashMap\";";
        let f = scan("t.rs", src);
        let code = &f.lines[0].code;
        assert!(!code.contains("thread_rng"));
        assert!(!code.contains("from_entropy"));
        assert!(!code.contains("HashMap"));
    }

    #[test]
    fn keeps_lifetimes_but_masks_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let f = scan("t.rs", src);
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(!f.lines[0].code.contains("'x'"));
    }

    #[test]
    fn nested_block_comments_mask_across_lines() {
        let src = "/* outer /* SystemTime */ still comment */ let z = 2;\nInstant\n";
        let f = scan("t.rs", src);
        assert!(!f.lines[0].code.contains("SystemTime"));
        assert!(f.lines[0].code.contains("let z = 2;"));
        assert_eq!(f.lines[1].code.trim(), "Instant");
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn lib2() {}\n";
        let f = scan("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside mod tests");
        assert!(!f.lines[5].in_test, "after mod tests");
    }

    #[test]
    fn test_fn_variants_are_marked() {
        for attr in ["#[test]", "#[tokio::test(start_paused = true)]", "#[bench]"] {
            let src = format!("{attr}\nfn t() {{\n    body();\n}}\nfn lib() {{}}\n");
            let f = scan("t.rs", &src);
            assert!(f.lines[2].in_test, "{attr} body");
            assert!(!f.lines[4].in_test, "{attr} after");
        }
    }

    #[test]
    fn cfg_test_on_statement_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {\n    body();\n}\n";
        let f = scan("t.rs", src);
        assert!(!f.lines[3].in_test);
    }

    #[test]
    fn directives_resolve_targets() {
        let src = "let a = 1; // tg-lint: allow(wall-clock) -- trailing\n\
                   // tg-lint: allow(hash-order) -- standalone\n\
                   let b = 2;\n";
        let f = scan("t.rs", src);
        assert_eq!(f.directives.len(), 2);
        assert_eq!(f.directives[0].target_line, 1);
        assert_eq!(f.directives[1].target_line, 3);
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("use std::time::Instant;", "Instant"));
        assert!(!contains_word("SimInstant::now()", "Instant"));
        assert!(!contains_word("Instantaneous", "Instant"));
    }
}

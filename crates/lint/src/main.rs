//! CLI entry point for `tailguard-lint`.
//!
//! ```text
//! tailguard-lint [--root DIR] [--json] [--list-rules] [--paths P...]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

// Diagnostics on stdout are this binary's interface.
#![allow(clippy::print_stdout)]
use std::path::PathBuf;
use std::process::ExitCode;

use tailguard_lint::rules::ALL_RULES;
use tailguard_lint::{lint_paths, lint_workspace};

const USAGE: &str = "\
tailguard-lint: workspace determinism & hygiene analyzer

USAGE:
    tailguard-lint [OPTIONS]

OPTIONS:
    --root <DIR>     Workspace root to lint (default: current directory)
    --paths <P>...   Lint these files/directories instead of the workspace,
                     with every rule enabled (fixture mode)
    --json           Emit the machine-readable JSON report on stdout
    --list-rules     Print the rule catalog and exit
    -h, --help       Show this help

Suppress a finding with a justified control comment on (or right above)
the offending line:
    // tg-lint: allow(<rule>[, <rule>...]) -- <why this site is exempt>
";

struct Options {
    root: PathBuf,
    paths: Vec<PathBuf>,
    json: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        paths: Vec::new(),
        json: false,
        list_rules: false,
    };
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                i += 1;
                let dir = args.get(i).ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--paths" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    opts.paths.push(PathBuf::from(&args[i]));
                    i += 1;
                }
                if opts.paths.is_empty() {
                    return Err("--paths needs at least one file or directory".to_string());
                }
                continue;
            }
            "-h" | "--help" => {
                return Err(String::new()); // triggers usage, exit 0 handled below
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wants_help = args.iter().any(|a| a == "-h" || a == "--help");
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if wants_help {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for &rule in ALL_RULES {
            println!("{:<16} {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let result = if opts.paths.is_empty() {
        lint_workspace(&opts.root)
    } else {
        lint_paths(&opts.paths)
    };
    let report = match result {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
